"""Setuptools shim so `pip install -e .` works without network access.

All project metadata lives in pyproject.toml; this file only exists because
the build environment has no `wheel` package, which the PEP 660 editable
route would require.
"""

from setuptools import setup

setup()
