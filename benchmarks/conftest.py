"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  Expensive
shared state (the tuning catalog, the sampled uncertainty benchmark, the
simulator experiment) is session-scoped so tunings computed for one figure
are reused by the others, mirroring how the paper's experiment pipeline runs.

Each benchmark also writes a plain-text report with the regenerated
rows/series to ``benchmarks/results/``, so the paper-vs-measured comparison
in EXPERIMENTS.md can be re-derived from the files in that directory.
Scale knobs (benchmark-set size, queries per session, ρ grid) default to
laptop-friendly values; the paper-scale settings are noted in EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis import SystemExperiment, TuningCatalog
from repro.lsm import SystemConfig, simulator_system
from repro.storage import ExecutorConfig
from repro.workloads import UncertaintyBenchmark

#: Directory where the regenerated figure/table data is written.
RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Reduced ρ grid reused across model-based figures (paper: 0…4 step 0.25).
RHO_VALUES = (0.25, 0.5, 1.0, 2.0)


@pytest.fixture(scope="session")
def model_system() -> SystemConfig:
    """Model-scale system configuration (paper defaults)."""
    return SystemConfig()


@pytest.fixture(scope="session")
def catalog(model_system) -> TuningCatalog:
    """Session-wide cache of nominal and robust tunings."""
    return TuningCatalog(system=model_system, starts_per_policy=2)


@pytest.fixture(scope="session")
def bench_set() -> UncertaintyBenchmark:
    """The sampled uncertainty benchmark B (reduced to 1000 samples)."""
    return UncertaintyBenchmark(size=1_000, seed=42)


@pytest.fixture(scope="session")
def system_experiment() -> SystemExperiment:
    """Simulator-backed experiment used by the Figure 8–18 benchmarks."""
    return SystemExperiment(
        system=simulator_system(num_entries=20_000),
        executor_config=ExecutorConfig(queries_per_workload=1_000, seed=29),
        benchmark=UncertaintyBenchmark(size=500, seed=29),
        starts_per_policy=2,
        seed=29,
    )


@pytest.fixture(scope="session")
def report():
    """Writer that records each benchmark's regenerated data under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")

    return write


def run_once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
