"""Macro-benchmark — the shard-per-worker serving layer.

Two sections, one table (``results/sharded_serving.txt``):

* **Shard scaling** — the million-op read-heavy endurance trace (the same
  recipe the vectorised-execute benchmark pins) is served at 1, 2 and 4
  shards.  Each shard replays its hash-partitioned slice of the stream
  through the serving loop (``execute_serving_batched``, which coalesces
  GET spans across range scans); the fleet's wall-clock cost is the
  *critical path* — the slowest shard.  On one CPU the speedup is
  algorithmic, not parallel: each shard probes a tree a quarter the size
  and its point reads coalesce into longer ``get_many`` batches.  The
  single-shard run is pinned bit-identical (counters and final tree
  state) to the classic batched executor replay, and the 4-shard critical
  path is pinned at ``MIN_SHARD_SPEEDUP``x the single-shard time.

* **Admission pacing** — an adaptive run over a bursty drift sequence
  (calm read sessions alternating with write-burst sessions that trigger
  incremental re-tuning migrations).  Under the classic fixed cadence the
  plan's page traffic lands inside whatever session is being served;
  under ``queue-depth`` admission steps defer until the backlog drains
  and drain in the inter-session lulls (``note_idle``), so the paced run
  is pinned to a strictly lower worst-session I/O cost per query — even
  in configurations where deferral lets *more* total migration work
  happen.  Both runs are deterministic: every row here is drift-checked.

The report keeps deterministic rows apart from timing lines (prefixed
``wall-clock``) so CI can diff the former and ignore the latter via
``git diff -I '^wall-clock'``.  Set ``REPRO_BENCH_SMOKE=1`` for CI smoke
runs: the deterministic configuration (trace, counters, admission rows) is
unchanged, but timings drop to one repetition and the wall-clock speedup
floor — too noisy on shared runners — is not asserted.
"""

import gc
import os
import time

from conftest import run_once

from repro.lsm import LSMTuning, Policy, simulator_system
from repro.online import OnlineConfig
from repro.serving import execute_serving_batched, partition_keys, shard_operations
from repro.serving.executor import tree_fingerprint
from repro.storage import ExecutorConfig, LSMTree, WorkloadExecutor
from repro.storage.lsm_tree import execute_operations_batched
from repro.workloads import (
    KeySpace,
    Session,
    SessionSequence,
    SessionType,
    TraceGenerator,
    Workload,
)

#: Smoke mode (CI): one timing repetition, no wall-clock floor assertion.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: Interleaved timing repetitions per shard count; reported time is the min.
REPS = 1 if SMOKE else 3

#: Acceptance floor: the 4-shard critical path must beat the single-shard
#: serving replay by at least this factor on the read-heavy trace.
MIN_SHARD_SPEEDUP = 2.0

#: The endurance trace of the vectorised-execute benchmark: a million ops,
#: 98% point reads, over a 20k-entry leveled tree.
SERVING_OPS = 1_000_000
SERVING_WORKLOAD = Workload(z0=0.30, z1=0.68, q=0.01, w=0.01)
SHARD_COUNTS = (1, 2, 4)

TUNING = LSMTuning(size_ratio=6.0, bits_per_entry=8.0, policy=Policy.LEVELING)

#: Admission section: calm read sessions alternating with write bursts that
#: drive the online controller into incremental migrations.
EXPECTED = Workload(z0=0.45, z1=0.45, q=0.05, w=0.05)
BURST = Workload(z0=0.05, z1=0.05, q=0.0, w=0.90)
QUERIES_PER_SESSION = 2_000


def _system():
    return simulator_system(num_entries=20_000)


def _fresh_tree(system, keys) -> LSMTree:
    tree = LSMTree(TUNING, system, seed=7)
    tree.bulk_load(keys)
    tree.disk.reset()
    return tree


def _timed(func) -> float:
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = time.perf_counter()
        func()
        return time.perf_counter() - start
    finally:
        if gc_was_enabled:
            gc.enable()


def _shard_scaling() -> dict[str, object]:
    system = _system()
    space = KeySpace.build(system.num_entries, seed=29)
    operations = TraceGenerator(space, seed=29).operations(
        SERVING_WORKLOAD, SERVING_OPS
    )

    # Reference: the classic executor's batched replay on one full tree.
    reference = _fresh_tree(system, space.existing)
    classic_s = min(
        _timed(
            lambda t=_fresh_tree(system, space.existing): (
                execute_operations_batched(t, operations)
            )
        )
        for _ in range(REPS)
    )
    execute_operations_batched(reference, operations)

    rows = []
    for num_shards in SHARD_COUNTS:
        parts = partition_keys(space.existing, num_shards)
        streams = [
            shard_operations(operations, shard, num_shards)
            for shard in range(num_shards)
        ]
        counter_trees = [_fresh_tree(system, part) for part in parts]
        for tree, stream in zip(counter_trees, streams):
            execute_serving_batched(tree, stream)
        critical_s = min(
            max(
                _timed(
                    lambda t=_fresh_tree(system, part), st=stream: (
                        execute_serving_batched(t, st)
                    )
                )
                for part, stream in zip(parts, streams)
            )
            for _ in range(REPS)
        )
        merged = {
            field: sum(
                getattr(tree.disk.counters, field) for tree in counter_trees
            )
            for field in (
                "query_reads", "query_writes", "flush_writes",
                "compaction_reads", "compaction_writes",
            )
        }
        rows.append(
            {
                "num_shards": num_shards,
                "merged": merged,
                "ops_per_shard": [len(stream) for stream in streams],
                "critical_s": critical_s,
                "trees": counter_trees,
            }
        )

    single = rows[0]["trees"][0]
    identical = (
        single.disk.counters == reference.disk.counters
        and single.stats() == reference.stats()
        and tree_fingerprint(single) == tree_fingerprint(reference)
    )
    return {"rows": rows, "classic_s": classic_s, "identical": identical}


def _admission_run(admission: str):
    calm = Session(SessionType.EXPECTED, "calm", (EXPECTED,))
    burst = Session(SessionType.WRITE, "burst", (BURST,))
    sequence = SessionSequence(
        expected=EXPECTED, sessions=(calm, burst, calm, burst, calm)
    )
    online = OnlineConfig(
        window=600, check_interval=64, min_observations=256, cooldown=4_000,
        confirm_checks=2, mode="nominal", horizon_ops=200_000,
        migration="incremental", migration_step_ops=32,
        migration_step_pages=8, admission=admission,
        admission_max_backlog=0, admission_starvation_ops=100_000,
        admission_idle_steps=1_000,
    )
    executor = WorkloadExecutor(
        _system(), ExecutorConfig(queries_per_workload=QUERIES_PER_SESSION, seed=29)
    )
    return executor.run_sequence_adaptive(TUNING, sequence, online=online)


def _run_benchmark():
    scaling = _shard_scaling()
    admission = {mode: _admission_run(mode) for mode in ("fixed", "queue-depth")}
    return scaling, admission


def test_sharded_serving(benchmark, report):
    scaling, admission = run_once(benchmark, _run_benchmark)

    # Single-shard serving is the classic measurement, byte for byte.
    assert scaling["identical"], (
        "single-shard serving replay diverged from the classic batched "
        "executor (counters, stats or tree fingerprint)"
    )

    rows = scaling["rows"]
    single_s = rows[0]["critical_s"]
    four = next(r for r in rows if r["num_shards"] == 4)
    speedup = single_s / four["critical_s"]
    if not SMOKE:
        assert speedup >= MIN_SHARD_SPEEDUP, (
            f"4-shard critical path only {speedup:.2f}x faster than the "
            f"single-shard serving replay (floor {MIN_SHARD_SPEEDUP:.1f}x)"
        )

    # Admission pacing must strictly improve the worst session, and the
    # per-session io/q rows are fully deterministic (drift-checked).
    worst = {
        mode: max(s.ios_per_query for s in m.sessions)
        for mode, m in admission.items()
    }
    assert worst["queue-depth"] < worst["fixed"], (
        f"queue-depth admission did not beat the fixed cadence on "
        f"worst-session io/q: {worst['queue-depth']:.4f} vs {worst['fixed']:.4f}"
    )

    lines = [
        f"sharded serving — {SERVING_OPS} ops, read-heavy "
        f"(z0={SERVING_WORKLOAD.z0} z1={SERVING_WORKLOAD.z1} "
        f"q={SERVING_WORKLOAD.q} w={SERVING_WORKLOAD.w}), "
        f"20k entries, leveling T=6 h=8",
        f"{'shards':>6}{'ops/shard':>30}{'query_reads':>13}{'query_writes':>14}"
        f"{'flush_writes':>14}{'compaction_reads':>18}{'compaction_writes':>19}",
    ]
    for row in rows:
        m = row["merged"]
        per_shard = "/".join(str(n) for n in row["ops_per_shard"])
        lines.append(
            f"{row['num_shards']:>6}{per_shard:>30}{m['query_reads']:>13}"
            f"{m['query_writes']:>14}{m['flush_writes']:>14}"
            f"{m['compaction_reads']:>18}{m['compaction_writes']:>19}"
        )
    lines.append(
        "single-shard parity: counters, stats and tree fingerprint identical "
        "to the classic batched executor replay"
    )
    lines.append(
        f"admission pacing — 5 sessions x {QUERIES_PER_SESSION} queries "
        "(calm/burst alternating), incremental migration step_ops=32 "
        "step_pages=8, queue-depth max_backlog=0"
    )
    for mode, measurement in admission.items():
        ios = " ".join(f"{s.ios_per_query:.4f}" for s in measurement.sessions)
        lines.append(
            f"admission={mode:<12} session io/q: {ios}  worst={worst[mode]:.4f}  "
            f"migrations={measurement.num_migrations} "
            f"pages={measurement.migration_pages}"
        )
    lines.append(
        f"admission win: queue-depth worst {worst['queue-depth']:.4f} < "
        f"fixed worst {worst['fixed']:.4f}"
    )
    for row in rows:
        lines.append(
            f"wall-clock shards={row['num_shards']} "
            f"critical-path {row['critical_s']:>5.2f}s"
        )
    lines.append(
        f"wall-clock classic batched replay {scaling['classic_s']:>5.2f}s; "
        f"4-shard speedup {speedup:.2f}x over single-shard serving "
        f"(floor {MIN_SHARD_SPEEDUP:.1f}x)"
    )
    text = "\n".join(lines)
    report("sharded_serving", text)
    print("\n" + text)
