"""Policy frontier — where the fluid LSM (K-hybrid) beats the classical pair.

Dostoevsky's argument, reproduced under this repository's cost model: on a
flash-constrained system (scarce filter memory, write I/O several times the
cost of a read) and workloads mixing point lookups, writes and a short/long
blend of range queries, neither classical policy is optimal — leveling pays
too much for writes, tiering pays the multi-run largest level on long scans.
The fluid policy's tuner-selected run bounds (K on upper levels, Z on the
largest) land in the interior and strictly beat both.

The committed table doubles as the acceptance artefact: the ``mixed-pw``
row pins a strict fluid win (tuner-selected K > 1, Z = 1) over both
classical policies on a mixed short/long-range workload.
"""

import numpy as np
from conftest import run_once

from repro.analysis import policy_frontier
from repro.lsm import Policy, SystemConfig
from repro.lsm.system import MIB
from repro.workloads import Workload

#: Flash-constrained system: 4 MiB of memory for 10M entries (~3.3 bits per
#: entry shared by buffer and filters) and write I/O 4x the cost of a read.
FRONTIER_SYSTEM = SystemConfig(
    total_memory_bytes=4 * MIB,
    read_write_asymmetry=4.0,
    long_range_selectivity=2e-5,
)

#: The checked-in workload set: classical corners plus mixed short/long-range
#: points.  ``mixed-pw`` is the acceptance workload (see module docstring).
FRONTIER_WORKLOADS = [
    ("read-heavy", Workload(0.30, 0.45, 0.15, 0.10, long_range_fraction=0.0)),
    ("write-heavy", Workload(0.05, 0.10, 0.01, 0.84, long_range_fraction=0.0)),
    ("mixed-pw", Workload(0.05, 0.15, 0.05, 0.75, long_range_fraction=0.2)),
    ("mixed-scan", Workload(0.10, 0.20, 0.30, 0.40, long_range_fraction=0.5)),
    ("long-scan", Workload(0.05, 0.10, 0.60, 0.25, long_range_fraction=0.8)),
]

#: Deployable integer size ratios swept by every per-policy tuner.
RATIO_CANDIDATES = np.arange(2.0, 41.0)


def test_policy_frontier_fluid_beats_the_classical_pair(benchmark, report):
    rows = run_once(
        benchmark,
        lambda: policy_frontier(
            FRONTIER_WORKLOADS,
            system=FRONTIER_SYSTEM,
            ratio_candidates=RATIO_CANDIDATES,
        ),
    )
    assert len(rows) == len(FRONTIER_WORKLOADS)

    by_name = {row["workload"]: row for row in rows}
    for row in rows:
        # Fluid contains every other policy as a (K, Z) corner, so its
        # tuner-selected optimum can never lose to the classical pair.
        classical = min(row["leveling_cost"], row["tiering_cost"])
        assert row["fluid_cost"] <= classical * (1.0 + 1e-9), row["workload"]

    # Acceptance pin: on the mixed short/long-range point-lookup + write
    # workload the tuner-selected fluid design strictly beats BOTH classical
    # policies (by >= 2%), and it does so with an interior upper-level run
    # bound (K > 1) and a single-run largest level (Z = 1) — i.e. a true
    # hybrid, not a classical corner rediscovered.
    pinned = by_name["mixed-pw"]
    classical = min(pinned["leveling_cost"], pinned["tiering_cost"])
    assert pinned["fluid_cost"] < 0.98 * classical
    assert pinned["best_policy"] in {"fluid", "lazy-leveling"}
    assert ", K: " in pinned["fluid_tuning"] and ", Z: 1" in pinned["fluid_tuning"]
    assert ", K: 1," not in pinned["fluid_tuning"]

    # The classical corners still own their home turf: leveling the
    # read/scan-heavy rows, tiering (or its fluid equivalent) the
    # range-free write row.
    assert by_name["read-heavy"]["leveling_cost"] <= (
        by_name["read-heavy"]["tiering_cost"]
    )
    assert by_name["write-heavy"]["tiering_cost"] <= (
        by_name["write-heavy"]["leveling_cost"]
    )

    policies = [p.value for p in Policy]
    lines = [
        "Policy frontier on a flash-constrained system "
        "(4 MiB / 10M entries, write cost 4x read, long-scan selectivity 2e-5)",
        "",
        f"{'workload':<12}{'composition':<46}"
        + "".join(f"{p + ' cost':>20}" for p in policies)
        + f"  {'best':<14}{'fluid tuning (tuner-selected K, Z)'}",
    ]
    for row in rows:
        lines.append(
            f"{row['workload']:<12}{row['composition']:<46}"
            + "".join(f"{row[f'{p}_cost']:>20.4f}" for p in policies)
            + f"  {row['best_policy']:<14}{row['fluid_tuning']}"
        )
    text = "\n".join(lines)
    report("policy_frontier", text)
    print("\n" + text)
