"""Figure 6 — throughput histograms (6a) and throughput range Θ_B vs ρ (6b)."""

import numpy as np
from conftest import RHO_VALUES, run_once

from repro.analysis import figure6_throughput_histograms, figure6_throughput_range


def test_fig06a_throughput_histograms_w11(benchmark, catalog, bench_set, report):
    rhos = (0.0, 0.25, 1.0, 2.0)
    result = run_once(
        benchmark,
        lambda: figure6_throughput_histograms(
            catalog, bench_set, expected_index=11, rhos=rhos
        ),
    )
    lines = ["Figure 6a: throughput distribution 1/C(w_hat, Phi) for w11 tunings"]
    for name, data in result.items():
        if name == "bin_edges":
            continue
        tp = data["throughput"]
        lines.append(
            f"{name:<18} tuning[{data['tuning']}]  "
            f"min={tp.min():.3f} median={np.median(tp):.3f} max={tp.max():.3f}"
        )
    text = "\n".join(lines)
    report("fig06a_throughput_histograms", text)
    print("\n" + text)


def test_fig06b_throughput_range(benchmark, catalog, bench_set, report):
    # Averaged over a representative subset of expected workloads to keep the
    # run short; the paper averages over all 15.
    result = run_once(
        benchmark,
        lambda: figure6_throughput_range(
            catalog, bench_set, rhos=RHO_VALUES, expected_indices=(1, 5, 7, 11)
        ),
    )
    # Paper shape: the robust throughput range shrinks as rho grows and ends
    # below the nominal range.
    robust = [result["robust"][rho] for rho in RHO_VALUES]
    assert robust[-1] <= robust[0] + 1e-9
    assert result["robust"][RHO_VALUES[-1]] <= result["nominal"][RHO_VALUES[-1]]

    lines = ["Figure 6b: throughput range Theta_B(Phi) vs rho (mean over workloads)"]
    lines.append(f"{'rho':<8}{'nominal':<12}{'robust':<12}")
    for rho in RHO_VALUES:
        lines.append(f"{rho:<8g}{result['nominal'][rho]:<12.3f}{result['robust'][rho]:<12.3f}")
    text = "\n".join(lines)
    report("fig06b_throughput_range", text)
    print("\n" + text)
