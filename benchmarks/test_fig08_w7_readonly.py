"""Figure 8 — read-only sequence for w7 with ρ matching the observed divergence."""

from _system_figures import run_system_figure


def test_fig08_w7_read_only_sequence(benchmark, system_experiment, report):
    comparison = run_system_figure(
        benchmark,
        system_experiment,
        report,
        name="fig08_w7_readonly",
        expected_index=7,
        rho=2.0,
        include_writes=False,
    )
    # w7 expects half point reads / half writes, so its nominal tuning leans
    # on tiering; under a read-only observed sequence the robust leveling
    # tuning should be predicted cheaper by the model on range queries.
    range_sessions = [s for s in comparison.sessions if s.session == "range"]
    assert range_sessions
    assert range_sessions[0].model_ios["robust"] <= range_sessions[0].model_ios["nominal"]
