"""Figure 18 — system sequences for the trimodal workloads w12–w14."""

import pytest

from _system_figures import run_system_figure

#: (figure name, Table 2 index, rho) following the paper's observed divergences.
_CASES = [
    ("fig18_w12_trimodal", 12, 0.4),
    ("fig18_w13_trimodal", 13, 0.6),
    ("fig18_w14_trimodal", 14, 0.6),
]


@pytest.mark.parametrize("name,index,rho", _CASES)
def test_fig18_trimodal_workloads(benchmark, system_experiment, report, name, index, rho):
    comparison = run_system_figure(
        benchmark,
        system_experiment,
        report,
        name=name,
        expected_index=index,
        rho=rho,
        include_writes=True,
    )
    # All sessions must produce finite, sensible measurements under both
    # tunings; the model/system ordering check lives in the shared driver.
    for session in comparison.sessions:
        assert 0.0 <= session.system_ios["nominal"] < 1e4
        assert 0.0 <= session.system_ios["robust"] < 1e4
