"""Figure 12 — uniform expected workload w0: nominal and robust nearly coincide."""

from _system_figures import run_system_figure


def test_fig12_uniform_workload(benchmark, system_experiment, report):
    comparison = run_system_figure(
        benchmark,
        system_experiment,
        report,
        name="fig12_uniform",
        expected_index=0,
        rho=0.01,
        include_writes=True,
    )
    nominal = comparison.tunings["nominal"]
    robust = comparison.tunings["robust"]
    # With the uniform workload and essentially no uncertainty the two
    # tunings produce similar designs and similar performance.
    assert nominal.policy == robust.policy
    assert abs(nominal.size_ratio - robust.size_ratio) <= 2.0
    assert abs(comparison.summary()["io_reduction"]) < 0.5
