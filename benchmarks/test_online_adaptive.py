"""Online adaptive tuning over a drifting sequence — the online analogue of
the Figure 8–18 system experiments.

A read-heavy expected workload (w11) drifts into a sustained write-heavy
phase.  The static nominal tuning keeps paying the write amplification of
its read-optimised configuration; the adaptive executor detects the drift,
re-tunes on the observed stream, migrates the live tree — with every
migrated page charged to its measured I/O — and settles at the tuning a
hindsight operator would have deployed for the write phase.

Pinned claims (the ISSUE-2 acceptance criteria):

* adaptive beats the static nominal tuning on measured I/Os per query, with
  migration I/O included in the accounting, and
* once converged, the adaptive executor is within noise of the best
  per-phase static tuning.
"""

from conftest import run_once

from repro.analysis import AdaptiveExperiment, format_adaptive_comparison
from repro.workloads import expected_workload

#: Expected workload of the static tunings (w11: read-heavy trimodal).
EXPECTED_INDEX = 11

#: Radius of the static robust baseline.
RHO = 0.5

#: Converged sessions may exceed the per-phase oracle by at most this factor
#: (simulator noise between identically shaped runs is ~20-30%).
CONVERGED_NOISE_FACTOR = 1.5


def test_adaptive_beats_static_nominal_under_drift(benchmark, report):
    experiment = AdaptiveExperiment(seed=29)
    comparison = run_once(
        benchmark,
        lambda: experiment.run(expected_workload(EXPECTED_INDEX).workload, rho=RHO),
    )
    summary = comparison.summary()

    # The drift was detected and at least one migration was applied, and its
    # pages were charged to the measured stream.
    assert comparison.num_migrations >= 1
    assert comparison.migration_pages > 0

    # Adaptive beats the static nominal tuning outright (migration included).
    assert (
        summary["adaptive_mean_io_per_query"] < summary["nominal_mean_io_per_query"]
    ), "adaptive executor should beat the static nominal tuning under drift"

    # After convergence the adaptive executor tracks the hindsight per-phase
    # static tuning to within simulator noise.
    assert summary["adaptive_vs_oracle_converged"] <= CONVERGED_NOISE_FACTOR, (
        f"converged adaptive sessions are "
        f"{summary['adaptive_vs_oracle_converged']:.2f}x the per-phase oracle"
    )

    text = format_adaptive_comparison(comparison)
    report("online_adaptive", text)
    print("\n" + text)
