"""Figures 15 and 17 — system sequences for the bimodal workloads w5–w10."""

import pytest

from _system_figures import run_system_figure

#: (figure name, Table 2 index, rho) following the paper's observed divergences.
_CASES = [
    ("fig15_w5_bimodal", 5, 0.8),
    ("fig15_w6_bimodal", 6, 1.0),
    ("fig17_w8_bimodal", 8, 1.0),
    ("fig17_w9_bimodal", 9, 1.0),
    ("fig17_w10_bimodal", 10, 1.2),
]


@pytest.mark.parametrize("name,index,rho", _CASES)
def test_fig15_17_bimodal_workloads(benchmark, system_experiment, report, name, index, rho):
    comparison = run_system_figure(
        benchmark,
        system_experiment,
        report,
        name=name,
        expected_index=index,
        rho=rho,
        include_writes=True,
    )
    # Robust tunings sacrifice a little on the expected mix but must protect
    # the write-dominated session (compaction cost) for read-leaning expected
    # workloads; the model-predicted write-session cost of the robust tuning
    # never exceeds the nominal one.  (Measured costs are lumpier because a
    # single deep compaction can land in any one session, as the paper also
    # notes for w9/w10 in §8.3.)
    write_sessions = [s for s in comparison.sessions if s.session == "write"]
    assert write_sessions
    session = write_sessions[0]
    assert session.model_ios["robust"] <= session.model_ios["nominal"] * 1.05
