"""Macro-benchmark — scalar vs vectorised batch trace execution.

The simulator's hot path is trace replay: every session measurement walks
operations one by one through ``LSMTree.apply``.  The vectorised path cuts
the stream into maximal write-free GET spans and routes them through the
batched read stack (``might_contain_many`` → ``lookup_many`` → ``get_many``),
whose contract is *bit identity*: the virtual disk must record exactly the
counters the scalar replay records, operation for operation.

This benchmark replays a million-op read-heavy endurance trace both ways,
asserts the I/O counters match byte for byte, and pins the speedup floor.
A mixed read/write trace rides along to pin the other side of the contract:
batching must not slow down write-heavy streams where GET spans are short
(short spans fall back to the scalar path via ``SCALAR_SPAN_CUTOFF``).

The report keeps the deterministic I/O rows apart from the wall-clock lines
(prefixed ``wall-clock``) so CI can diff the former and ignore the latter.

Timings are the min over ``REPS`` interleaved repetitions with the garbage
collector quiesced, so a transient load spike on the host (the full tier-1
suite runs ~30 benchmarks before this one) cannot sink one path's number
while leaving the other's intact.
"""

import gc
import time

from conftest import run_once

from repro.lsm import LSMTuning, Policy, simulator_system
from repro.storage import LSMTree
from repro.storage.lsm_tree import execute_operation, execute_operations_batched
from repro.workloads import KeySpace, TraceGenerator, Workload

#: The acceptance floor: batched replay of the read-heavy endurance trace
#: must be at least this much faster than the scalar loop.
MIN_SPEEDUP = 5.0

#: The mixed trace may not regress beyond timing noise (batched time must
#: stay below this multiple of scalar time).
MAX_MIXED_SLOWDOWN = 1.15

#: (label, workload, operations) rows replayed by the benchmark.  The first
#: row is the headline: an endurance-style read phase (98% point reads, the
#: stream an online tuner idles through between drift events) at 1M ops.
TRACES = (
    ("read-heavy", Workload(z0=0.30, z1=0.68, q=0.01, w=0.01), 1_000_000),
    ("mixed", Workload(z0=0.20, z1=0.30, q=0.20, w=0.30), 200_000),
)

#: Interleaved timing repetitions per path; each reported time is the min.
REPS = 2


def _fresh_tree(system, space) -> LSMTree:
    tuning = LSMTuning(size_ratio=6.0, bits_per_entry=8.0, policy=Policy.LEVELING)
    tree = LSMTree(tuning, system, seed=7)
    tree.bulk_load(space.existing)
    tree.disk.reset()
    return tree


def _scalar_replay(tree: LSMTree, operations) -> None:
    for operation in operations:
        execute_operation(tree, operation)


def _timed_replay(system, space, operations, runner) -> tuple[float, LSMTree]:
    tree = _fresh_tree(system, space)
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = time.perf_counter()
        runner(tree, operations)
        elapsed = time.perf_counter() - start
    finally:
        if gc_was_enabled:
            gc.enable()
    return elapsed, tree


def _time_replays() -> list[dict[str, object]]:
    system = simulator_system(num_entries=20_000)
    space = KeySpace.build(system.num_entries, seed=29)
    trace = TraceGenerator(space, seed=29)
    rows: list[dict[str, object]] = []
    for label, workload, num_ops in TRACES:
        operations = trace.operations(workload, num_ops)
        scalar_times: list[float] = []
        batched_times: list[float] = []
        counters = None
        for _ in range(REPS):
            scalar_s, scalar_tree = _timed_replay(
                system, space, operations, _scalar_replay
            )
            batched_s, batched_tree = _timed_replay(
                system, space, operations, execute_operations_batched
            )
            # The contract: batching changes wall-clock, never the measurement.
            assert batched_tree.disk.counters == scalar_tree.disk.counters
            assert batched_tree.stats() == scalar_tree.stats()
            scalar_times.append(scalar_s)
            batched_times.append(batched_s)
            counters = scalar_tree.disk.counters

        scalar_s, batched_s = min(scalar_times), min(batched_times)
        rows.append(
            {
                "trace": label,
                "ops": num_ops,
                "counters": counters,
                "scalar_s": scalar_s,
                "batched_s": batched_s,
                "speedup": scalar_s / batched_s,
            }
        )
    return rows


def test_vectorized_execute_speedup(benchmark, report):
    rows = run_once(benchmark, _time_replays)

    by_trace = {row["trace"]: row for row in rows}
    headline = by_trace["read-heavy"]["speedup"]
    assert headline >= MIN_SPEEDUP, (
        f"batched replay only {headline:.1f}x faster than scalar on the "
        f"read-heavy endurance trace (floor {MIN_SPEEDUP:.0f}x)"
    )
    mixed = by_trace["mixed"]
    assert mixed["batched_s"] <= mixed["scalar_s"] * MAX_MIXED_SLOWDOWN, (
        f"batched replay regressed the mixed trace: "
        f"{mixed['batched_s']:.2f}s vs scalar {mixed['scalar_s']:.2f}s"
    )

    # Deterministic I/O rows first (drift-checked in CI), wall-clock after
    # (excluded from the drift check via `git diff -I '^wall-clock'`).
    lines = [
        f"{'trace':<12}{'ops':>10}{'query_reads':>13}{'query_writes':>14}"
        f"{'flush_writes':>14}{'compaction_reads':>18}{'compaction_writes':>19}"
    ]
    for row in rows:
        c = row["counters"]
        lines.append(
            f"{row['trace']:<12}{row['ops']:>10}{c.query_reads:>13}"
            f"{c.query_writes:>14}{c.flush_writes:>14}{c.compaction_reads:>18}"
            f"{c.compaction_writes:>19}"
        )
    lines.append("io parity: batched == scalar, counter for counter")
    for row in rows:
        lines.append(
            f"wall-clock {row['trace']:<12} scalar {row['scalar_s']:>7.2f}s  "
            f"batched {row['batched_s']:>6.2f}s  speedup {row['speedup']:>4.1f}x"
        )
    lines.append(
        f"wall-clock floors: read-heavy >= {MIN_SPEEDUP:.0f}x, "
        f"mixed <= {MAX_MIXED_SLOWDOWN:.2f}x scalar"
    )
    text = "\n".join(lines)
    report("vectorized_execute", text)
    print("\n" + text)
