"""Figure 9 — read-only sequence for w11 where the observed workload stays close."""

from _system_figures import run_system_figure


def test_fig09_w11_read_only_sequence(benchmark, system_experiment, report):
    comparison = run_system_figure(
        benchmark,
        system_experiment,
        report,
        name="fig09_w11_readonly",
        expected_index=11,
        rho=0.25,
        include_writes=False,
    )
    # Read-only sessions keep the tree shape fixed, so per-session measured
    # I/Os should stay modest for both tunings (no compaction storms).
    for session in comparison.sessions:
        assert session.system_ios["nominal"] < 50
        assert session.system_ios["robust"] < 50
