"""A→B→A endurance regression: incremental migrations + drift-aware radii.

Real drifting workloads are cyclic (HTAP-style phase alternation): a
range-heavy phase A gives way to a write-heavy phase B, and then *A returns*.
This benchmark replays exactly that sequence and pins the two online-tuning
behaviours PR 2's all-at-once executor could not deliver:

* **Bounded migration spikes.**  The ``full`` executor migrates twice (into
  the write tuning, then back) and concentrates each rebuild in the session
  the detector fired in; the ``incremental`` executor moves the *same* total
  pages through a level-by-level plan spread over the stream, so its worst
  per-session I/O stays strictly below full migration's — while the whole
  run lands within a pinned factor of the per-phase oracle.
* **Tuned once for the cycle.**  The fixed-radius executor thrashes: phase B
  triggers a migration and the returning phase A triggers a second one.  The
  drift-aware executor widens its robust radius with the observed
  KL-trajectory volatility at the first firing, covers the whole cycle with
  one robust tuning, and performs strictly fewer migrations.

The regenerated table is committed to ``results/online_endurance.txt`` and
drift-checked by the ``online-endurance`` CI job.
"""

from conftest import run_once

from repro.analysis import EnduranceComparison, format_endurance_comparison
from repro.analysis.online_eval import AdaptiveExperiment
from repro.online import OnlineConfig
from repro.workloads import expected_workload

#: Expected workload of the static tunings (w11: read-heavy trimodal).
EXPECTED_INDEX = 11

#: Radius of the static robust baseline.
RHO = 0.5

#: The A→B→A phase script: range-heavy, write-heavy, range-heavy again.
PHASES = ("range", "write", "range")

#: Incremental runs must stay within this factor of the per-phase oracle.
ORACLE_FACTOR = 1.5

#: Shared knobs of every executor variant.  The confirmation span covers ~3
#: estimator windows, so the detector re-centres on the settled phase mix
#: rather than a transient blend (a blended centre sits between the phases
#: and masks the returning drift entirely).
_BASE = dict(
    window=300,
    check_interval=64,
    min_observations=256,
    cooldown=2_048,
    confirm_checks=14,
    rho=0.75,
    horizon_ops=12_000,
)

#: Incremental-migration knobs: ~128-page steps every 128 operations spread
#: one rebuild over roughly two sessions (and let both plans complete well
#: before the stream ends).
_INCREMENTAL = dict(
    migration="incremental", migration_step_ops=128, migration_step_pages=128
)


def _variants() -> dict[str, OnlineConfig]:
    return {
        EnduranceComparison.FULL: OnlineConfig(
            **_BASE, mode="nominal", migration="full"
        ),
        EnduranceComparison.INCREMENTAL: OnlineConfig(
            **_BASE, mode="nominal", **_INCREMENTAL
        ),
        EnduranceComparison.ADAPTIVE_RHO: OnlineConfig(
            **_BASE,
            mode="robust",
            **_INCREMENTAL,
            rho_adaptive=True,
            volatility_gain=2.0,
        ),
    }


def test_endurance_a_b_a(benchmark, report):
    experiment = AdaptiveExperiment(seed=29)
    comparison = run_once(
        benchmark,
        lambda: EnduranceComparison(
            variants=experiment.run_variants(
                expected_workload(EXPECTED_INDEX).workload,
                rho=RHO,
                variants=_variants(),
                phases=PHASES,
                sessions_per_phase=3,
            )
        ),
    )
    summary = comparison.summary()
    full = comparison.variants[EnduranceComparison.FULL]
    incremental = comparison.variants[EnduranceComparison.INCREMENTAL]
    adaptive_rho = comparison.variants[EnduranceComparison.ADAPTIVE_RHO]

    # The cyclic trace really thrashes the fixed-radius executors: into the
    # write tuning at phase B, back out when phase A returns.
    assert full.num_migrations == 2
    assert incremental.num_migrations == 2

    # Incremental migration moves exactly the pages full migration moves —
    # it spreads the spike, it does not discount the work.
    assert incremental.migration_pages == full.migration_pages

    # Claim 1: the worst per-session I/O spike is strictly below full
    # migration's on the same trace.
    assert (
        summary["incremental_worst_session_io"] < summary["full_worst_session_io"]
    ), (
        f"incremental worst session {summary['incremental_worst_session_io']:.2f}"
        f" must undercut full migration's {summary['full_worst_session_io']:.2f}"
    )

    # Claim 2: spreading the migration does not cost overall performance —
    # the incremental run lands within the pinned factor of the per-phase
    # oracle (hindsight static tunings, one per phase occurrence).
    assert summary["incremental_vs_oracle_ratio"] <= ORACLE_FACTOR, (
        f"incremental mean is {summary['incremental_vs_oracle_ratio']:.2f}x "
        f"the per-phase oracle (pinned at {ORACLE_FACTOR}x)"
    )

    # Claim 3: the drift-aware radius tunes once for the whole cycle.
    assert adaptive_rho.num_migrations < incremental.num_migrations, (
        "adaptive-rho must migrate strictly less often than fixed-rho on the "
        f"cyclic trace ({adaptive_rho.num_migrations} vs "
        f"{incremental.num_migrations})"
    )
    # Its single migration was solved for a genuinely widened ball.
    widened = [e.decision.rho for e in adaptive_rho.events if e.migrated]
    assert widened and all(rho > _BASE["rho"] for rho in widened)

    text = format_endurance_comparison(comparison)
    report("online_endurance", text)
    print("\n" + text)
