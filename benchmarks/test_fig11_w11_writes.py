"""Figure 11 — w11 sequence with writes: the paper's headline system result."""

from _system_figures import run_system_figure


def test_fig11_w11_sequence_with_writes(benchmark, system_experiment, report):
    comparison = run_system_figure(
        benchmark,
        system_experiment,
        report,
        name="fig11_w11_writes",
        expected_index=11,
        rho=0.25,
        include_writes=True,
        expect_robust_wins_overall=True,
    )
    # The nominal tuning for w11 uses a very large size ratio; once the write
    # session arrives its compactions become much more expensive than the
    # robust tuning's (the paper reports up to 90% I/O and latency reduction).
    write_sessions = [s for s in comparison.sessions if s.session == "write"]
    assert write_sessions
    session = write_sessions[0]
    assert session.system_ios["robust"] < session.system_ios["nominal"]
    assert session.latency_us["robust"] < session.latency_us["nominal"]
