"""Figure 16 — impact of database size on the nominal/robust performance gap."""

from conftest import run_once

from repro.analysis import scaling_experiment


def test_fig16_scaling_with_database_size(benchmark, report):
    rows = run_once(
        benchmark,
        lambda: scaling_experiment(
            expected_index=11,
            rho=0.25,
            sizes=(10_000, 30_000, 100_000),
            queries_per_workload=500,
            seed=31,
        ),
    )
    assert len(rows) == 3

    # Paper shape: the write-buffer allocation grows with the database size
    # and the nominal/robust gap persists across sizes.
    buffers = [row["robust_buffer_bytes"] for row in rows]
    assert buffers == sorted(buffers)

    lines = [
        "Figure 16: average I/Os per query vs database size (expected workload w11)",
        f"{'N':<12}{'nominal io/q':<15}{'robust io/q':<15}"
        f"{'nominal tuning':<30}{'robust tuning':<30}",
    ]
    for row in rows:
        lines.append(
            f"{int(row['num_entries']):<12}{row['nominal_io_per_query']:<15.2f}"
            f"{row['robust_io_per_query']:<15.2f}{row['nominal_tuning']:<30}"
            f"{row['robust_tuning']:<30}"
        )
    text = "\n".join(lines)
    report("fig16_scaling", text)
    print("\n" + text)
