"""Shared driver for the system-experiment figures (Figures 8–18).

Each of those figures has the same structure: pick an expected workload and a
value of ρ, compute the nominal and robust tunings, execute the six-session
query sequence on the storage engine under both, and report the model I/Os,
measured I/Os and latency per session.  This module implements that driver
once; the per-figure benchmark files parameterise it.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis import SequenceComparison, format_comparison
from repro.workloads import expected_workload


def run_system_figure(
    benchmark,
    system_experiment,
    report,
    name: str,
    expected_index: int,
    rho: float,
    include_writes: bool = True,
    expect_robust_wins_overall: bool | None = None,
) -> SequenceComparison:
    """Run one Figure 8–18 style experiment and record its report.

    Parameters
    ----------
    benchmark, system_experiment, report:
        The pytest-benchmark fixture and the shared session fixtures.
    name:
        Report file name (e.g. ``"fig11_w11_writes"``).
    expected_index:
        Index of the expected workload in Table 2.
    rho:
        Uncertainty radius used for the robust tuning (the paper sets it to
        the KL divergence it expects the observed sessions to exhibit).
    include_writes:
        Whether the sequence contains a write-dominated session (Figures
        10–18) or is read-only (Figures 8–9).
    expect_robust_wins_overall:
        If not ``None``, assert that the robust tuning does (or does not)
        reduce total measured I/O over the whole sequence.
    """
    expected = expected_workload(expected_index)

    comparison = run_once(
        benchmark,
        lambda: system_experiment.run(
            expected.workload, rho=rho, include_writes=include_writes
        ),
    )
    assert len(comparison.sessions) == 6

    # Sanity: every session produced finite, non-negative measurements under
    # both tunings.
    for session in comparison.sessions:
        for tuning_name in ("nominal", "robust"):
            assert 0.0 <= session.system_ios[tuning_name] < 1e5
            assert 0.0 <= session.latency_us[tuning_name] < 1e8

    # Record whether the model-predicted ordering of the two tunings matches
    # the measured one over the whole sequence.  The paper itself reports
    # discrepancies for several workloads (fence pointers on short range
    # queries in Figure 8, tree-structure changes after the write session for
    # w9/w10 in §8.3), so this is reported rather than asserted; hard
    # assertions live in the per-figure files where the paper's claim is
    # unambiguous (e.g. Figure 11).
    model_nominal = sum(s.model_ios["nominal"] for s in comparison.sessions)
    model_robust = sum(s.model_ios["robust"] for s in comparison.sessions)
    system_nominal = sum(s.system_ios["nominal"] for s in comparison.sessions)
    system_robust = sum(s.system_ios["robust"] for s in comparison.sessions)
    orderings_agree = (model_robust < model_nominal) == (system_robust < system_nominal)

    if expect_robust_wins_overall is not None:
        robust_wins = comparison.summary()["io_reduction"] > 0.0
        assert robust_wins == expect_robust_wins_overall

    header = f"{name}: expected workload {expected.name} {expected.workload.describe()}"
    text = (
        header
        + "\n"
        + format_comparison(comparison)
        + f"\n  model/system ordering agree: {orderings_agree}"
    )
    report(name, text)
    print("\n" + text)
    return comparison
