"""Macro-benchmark — the persistent SSTable backend against the cost model.

The persistent backend puts real files behind the ``LSMTree`` interface:
every write goes through a write-ahead log, flushes materialise SSTables
with fence/Bloom sidecars, and compactions rewrite files on disk.  Its
contract with the simulator is structural bit-identity — same runs, same
Bloom seeds, same ``VirtualDisk`` page counters — so the one thing it adds
is a signal the simulator cannot produce: *wall-clock* latency.

Two sections exercise that signal, lsmtreedb ``simple_bench`` style:

* **simple_bench** — fillrandom (N puts from empty) then readrandom
  (N gets), with compaction on and off, reporting writes/sec and
  reads/sec.  The page counters of both variants are deterministic and
  drift-checked; the throughput lines are wall-clock.
* **model vs measured** — a read-tuned and a write-tuned deployment each
  replay a read-heavy and a write-heavy trace.  The analytical cost model
  (Endure Eqs. 12–16) must rank the two tunings the same way measured
  wall-clock latency does on both workloads: reproducing the paper's
  premise that the model's I/O costs track real latency.

The report keeps deterministic rows apart from timing lines (prefixed
``wall-clock``) so CI can diff the former and ignore the latter via
``git diff -I '^wall-clock'``.  Set ``REPRO_BENCH_SMOKE=1`` for CI smoke
runs: op counts (and therefore every deterministic line) are unchanged,
but timings drop to one repetition and the ranking assertion — too noisy
on shared runners — is skipped.
"""

import gc
import os
import tempfile
import time

import numpy as np
from conftest import run_once

from repro.lsm import LSMCostModel, LSMTuning, Policy, simulator_system
from repro.storage import PersistentLSMTree
from repro.storage.lsm_tree import execute_operation
from repro.workloads import KeySpace, TraceGenerator, Workload

#: Smoke mode (CI): one timing repetition, no wall-clock ranking assertion.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: Interleaved timing repetitions per configuration; reported time is the min.
REPS = 1 if SMOKE else 2

#: Extra repetitions for the ranking cells: the read-heavy gap between the
#: two deployments is real but modest (~15% wall-clock), so the min is taken
#: over more repetitions to keep a transient host load spike from flipping
#: the measured order.
RANK_REPS = 1 if SMOKE else 3

#: Operations per simple_bench phase and per ranking trace.  Fixed across
#: smoke and full mode so the deterministic counter lines never drift.
SIMPLE_BENCH_OPS = 5_000
RANKING_OPS = 20_000

#: The two deployments the model must rank.  The read-tuned tree spends
#: memory on Bloom filters and merges eagerly; the write-tuned tree stacks
#: runs with near-useless filters, trading read I/O for cheap writes.
TUNINGS = (
    ("read-tuned", LSMTuning(6.0, 10.0, Policy.LEVELING)),
    ("write-tuned", LSMTuning(8.0, 1.0, Policy.TIERING)),
)

WORKLOADS = (
    ("read-heavy", Workload(z0=0.30, z1=0.55, q=0.11, w=0.04)),
    ("write-heavy", Workload(z0=0.05, z1=0.15, q=0.05, w=0.75)),
)

#: Middle-of-the-road deployment for the simple_bench phases.
BENCH_TUNING = LSMTuning(6.0, 8.0, Policy.LEVELING)


def _fresh_tree(system, tuning, compaction_enabled=True) -> PersistentLSMTree:
    data_dir = tempfile.mkdtemp(prefix="bench-tree-")
    tree = PersistentLSMTree(tuning, system, data_dir=data_dir, seed=7)
    tree.compaction_enabled = compaction_enabled
    return tree


def _timed(func) -> float:
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = time.perf_counter()
        func()
        return time.perf_counter() - start
    finally:
        if gc_was_enabled:
            gc.enable()


def _simple_bench(system) -> list[dict[str, object]]:
    """fillrandom then readrandom on an initially empty tree, both
    compaction modes; returns per-mode counters and phase timings."""
    rng = np.random.default_rng(17)
    fill_keys = rng.choice(
        np.arange(4 * system.num_entries), size=SIMPLE_BENCH_OPS, replace=False
    )
    read_keys = rng.choice(fill_keys, size=SIMPLE_BENCH_OPS, replace=True)
    rows = []
    for compaction in (True, False):
        fill_times, read_times = [], []
        counters = None
        for _ in range(REPS):
            tree = _fresh_tree(system, BENCH_TUNING, compaction_enabled=compaction)
            try:
                fill_times.append(
                    _timed(lambda: [tree.put(int(k)) for k in fill_keys])
                )
                read_times.append(
                    _timed(lambda: [tree.get(int(k)) for k in read_keys])
                )
                counters = tree.disk.counters.snapshot()
                num_runs = sum(len(runs) for runs in tree.levels)
            finally:
                tree.destroy()
        rows.append(
            {
                "compaction": compaction,
                "counters": counters,
                "num_runs": num_runs,
                "fill_s": min(fill_times),
                "read_s": min(read_times),
            }
        )
    return rows


def _ranking(system) -> dict[str, object]:
    """Replay each workload trace on each deployment; model + wall-clock."""
    space = KeySpace.build(system.num_entries, seed=29)
    trace = TraceGenerator(space, seed=29)
    model = LSMCostModel(system)
    traces = {
        label: trace.operations(workload, RANKING_OPS)
        for label, workload in WORKLOADS
    }
    cells: dict[tuple[str, str], dict[str, object]] = {}
    for tuning_label, tuning in TUNINGS:
        for workload_label, workload in WORKLOADS:
            times = []
            counters = None
            for _ in range(RANK_REPS):
                tree = _fresh_tree(system, tuning)
                try:
                    tree.bulk_load(space.existing)
                    tree.disk.reset()
                    operations = traces[workload_label]
                    times.append(
                        _timed(
                            lambda: [
                                execute_operation(tree, op) for op in operations
                            ]
                        )
                    )
                    counters = tree.disk.counters.snapshot()
                finally:
                    tree.destroy()
            cells[tuning_label, workload_label] = {
                "model_cost": float(workload.as_array() @ model.cost_vector(tuning)),
                "counters": counters,
                "seconds": min(times),
            }
    return cells


def _winner(cells, workload_label, field):
    read = cells["read-tuned", workload_label][field]
    write = cells["write-tuned", workload_label][field]
    return "read-tuned" if read < write else "write-tuned"


def _run_benchmark() -> tuple[list, dict]:
    system = simulator_system(num_entries=20_000)
    return _simple_bench(system), _ranking(system)


def test_persistent_backend_model_vs_measured(benchmark, report):
    bench_rows, cells = run_once(benchmark, _run_benchmark)

    # The model's verdicts are analytic; the measured ones are wall-clock.
    agreement = {
        workload_label: _winner(cells, workload_label, "model_cost")
        == _winner(cells, workload_label, "seconds")
        for workload_label, _ in WORKLOADS
    }
    if not SMOKE:
        assert agreement["read-heavy"], (
            "cost model and wall-clock disagree on the read-heavy workload"
        )
        assert agreement["write-heavy"], (
            "cost model and wall-clock disagree on the write-heavy workload"
        )
        # Compaction-off must actually skip compaction I/O.
        off = next(r for r in bench_rows if not r["compaction"])
        assert off["counters"].compaction_writes == 0

    lines = [
        "persistent SSTable backend — simple_bench + model-vs-measured ranking",
        f"simple_bench: {SIMPLE_BENCH_OPS} fillrandom puts then "
        f"{SIMPLE_BENCH_OPS} readrandom gets, leveling T=6 h=8, WAL buffered",
    ]
    for row in bench_rows:
        c = row["counters"]
        mode = "on " if row["compaction"] else "off"
        lines.append(
            f"compaction={mode} runs={row['num_runs']:>3} "
            f"query_reads={c.query_reads:>7} flush_writes={c.flush_writes:>6} "
            f"compaction_reads={c.compaction_reads:>7} "
            f"compaction_writes={c.compaction_writes:>7}"
        )
    lines.append(
        f"ranking traces: {RANKING_OPS} ops over a bulk-loaded 20k-entry tree; "
        "tunings read-tuned=leveling T=6 h=10, write-tuned=tiering T=8 h=1"
    )
    for workload_label, workload in WORKLOADS:
        parts = []
        for tuning_label, _ in TUNINGS:
            cell = cells[tuning_label, workload_label]
            parts.append(f"{tuning_label}={cell['model_cost']:.3f}")
        lines.append(
            f"model cost/op {workload_label:<11} {' '.join(parts)} "
            f"-> {_winner(cells, workload_label, 'model_cost')} first"
        )
    for tuning_label, _ in TUNINGS:
        for workload_label, _ in WORKLOADS:
            c = cells[tuning_label, workload_label]["counters"]
            lines.append(
                f"counters {tuning_label:<11} {workload_label:<11} "
                f"reads={c.total_reads:>7} writes={c.total_writes:>7}"
            )
    for row in bench_rows:
        mode = "on " if row["compaction"] else "off"
        lines.append(
            f"wall-clock simple_bench compaction={mode} "
            f"fill {SIMPLE_BENCH_OPS / row['fill_s']:>9.0f} writes/sec  "
            f"read {SIMPLE_BENCH_OPS / row['read_s']:>9.0f} reads/sec"
        )
    for workload_label, _ in WORKLOADS:
        parts = [
            f"{label}={cells[label, workload_label]['seconds']:.2f}s"
            for label, _ in TUNINGS
        ]
        lines.append(
            f"wall-clock {workload_label:<11} {' '.join(parts)} "
            f"-> {_winner(cells, workload_label, 'seconds')} first"
        )
    lines.append(
        "wall-clock agreement: "
        f"read-heavy={agreement['read-heavy']} "
        f"write-heavy={agreement['write-heavy']}"
    )
    text = "\n".join(lines)
    report("persistent_backend", text)
    print("\n" + text)
