"""Table 2 — the 15 expected workloads of the uncertainty benchmark."""

from conftest import run_once

from repro.workloads import expected_workloads


def test_table2_expected_workloads(benchmark, report):
    rows = run_once(benchmark, expected_workloads)
    assert len(rows) == 15

    lines = [f"{'index':<6}{'(z0, z1, q, w)':<28}{'type':<10}"]
    for row in rows:
        lines.append(f"{row.index:<6}{row.workload.describe():<28}{row.category.value:<10}")
    text = "\n".join(lines)
    report("table2_expected_workloads", text)
    print("\n" + text)
