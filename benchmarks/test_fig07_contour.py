"""Figure 7 — contours of delta throughput over (ρ, observed KL divergence)."""

import numpy as np
import pytest
from conftest import run_once

from repro.analysis import figure7_contour


@pytest.mark.parametrize("expected_index", [7, 11])
def test_fig07_contour(benchmark, catalog, bench_set, report, expected_index):
    rhos = [0.25, 0.5, 1.0, 2.0, 3.0]
    result = run_once(
        benchmark,
        lambda: figure7_contour(
            catalog, bench_set, expected_index=expected_index, rhos=rhos, kl_bins=6
        ),
    )
    grid = result["delta"]
    assert grid.shape == (len(rhos), 6)

    # Paper shape: once rho is past ~0.25 and the observed divergence is
    # substantial, the robust tuning wins (positive delta in the upper-right
    # region of the contour).
    finite_last_column = grid[:, -1][~np.isnan(grid[:, -1])]
    assert finite_last_column.size == 0 or finite_last_column.max() > 0.0

    lines = [f"Figure 7: mean delta throughput over (rho, KL) for w{expected_index}"]
    edges = result["kl_edges"]
    header = f"{'rho':<8}" + "".join(
        f"[{edges[j]:.1f},{edges[j + 1]:.1f})".ljust(12) for j in range(grid.shape[1])
    )
    lines.append(header)
    for i, rho in enumerate(rhos):
        cells = "".join(
            ("   nan      " if np.isnan(v) else f"{v:<12.3f}") for v in grid[i]
        )
        lines.append(f"{rho:<8g}{cells}")
    text = "\n".join(lines)
    report(f"fig07_contour_w{expected_index}", text)
    print("\n" + text)
