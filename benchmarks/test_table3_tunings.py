"""Tuning table — nominal vs robust configurations for every Table 2 workload.

The paper reports these configurations atop Figures 8–18 (policy, size ratio
``T`` and Bloom-filter bits ``h`` for both tunings).
"""

from conftest import run_once

from repro.analysis import tuning_table


def test_table3_nominal_vs_robust_tunings(benchmark, catalog, report):
    rows = run_once(benchmark, lambda: tuning_table(catalog, rho=1.0))
    assert len(rows) == 15
    # The robust worst case of the chosen tuning can never undercut the
    # nominal optimum evaluated on the expected workload itself.
    for row in rows:
        assert row["robust_worst_case_cost"] >= row["nominal_cost"] - 1e-6

    lines = [
        f"{'workload':<10}{'composition':<28}{'category':<10}"
        f"{'nominal tuning':<34}{'robust tuning (rho=1)':<34}"
    ]
    for row in rows:
        lines.append(
            f"{row['workload']:<10}{row['composition']:<28}{row['category']:<10}"
            f"{row['nominal']:<34}{row['robust']:<34}"
        )
    text = "\n".join(lines)
    report("table3_tunings", text)
    print("\n" + text)
