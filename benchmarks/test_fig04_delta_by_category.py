"""Figure 4 — average delta throughput per expected-workload category vs ρ."""

from conftest import RHO_VALUES, run_once

from repro.analysis import figure4_delta_by_category


def test_fig04_delta_by_category(benchmark, catalog, bench_set, report):
    result = run_once(
        benchmark,
        lambda: figure4_delta_by_category(catalog, bench_set, rhos=RHO_VALUES),
    )
    assert set(result) == {"uniform", "unimodal", "bimodal", "trimodal"}

    # Paper shape: unimodal/bimodal/trimodal categories gain substantially
    # from robust tuning for rho >= 0.5, the uniform category does not.
    for category in ("unimodal", "bimodal", "trimodal"):
        assert result[category][1.0] > 0.2
    assert result["uniform"][1.0] < result["trimodal"][1.0]

    lines = ["Figure 4: mean delta throughput Delta(Phi_N, Phi_R) by category"]
    header = f"{'category':<12}" + "".join(f"rho={rho:<8g}" for rho in RHO_VALUES)
    lines.append(header)
    for category, per_rho in result.items():
        row = f"{category:<12}" + "".join(f"{per_rho[rho]:<12.3f}" for rho in RHO_VALUES)
        lines.append(row)
    text = "\n".join(lines)
    report("fig04_delta_by_category", text)
    print("\n" + text)
