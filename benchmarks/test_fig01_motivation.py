"""Figure 1 — motivating example: expected tuning vs per-session perfect tuning.

A database tuned for a point-read-heavy workload experiences a session whose
reads shift to short range queries.  The paper shows the average I/Os per
query roughly doubling during the shifted session, while a perfectly re-tuned
system would not degrade.
"""

from conftest import run_once

from repro.core import NominalTuner
from repro.workloads import Workload


def test_fig01_motivating_example(benchmark, system_experiment, report):
    expected = Workload(z0=0.20, z1=0.20, q=0.06, w=0.54)
    shifted = Workload(z0=0.02, z1=0.02, q=0.41, w=0.55)

    comparison = run_once(
        benchmark,
        lambda: system_experiment.run_motivation(expected, shifted, rho=1.0),
    )
    assert len(comparison.sessions) == 3

    # Per-session "perfect" tunings for the second line of the figure.
    tuner = NominalTuner(system=system_experiment.system, starts_per_policy=2)
    perfect = {
        "expected workload": tuner.tune(expected).tuning,
        "uncertain workload": tuner.tune(shifted).tuning,
    }
    model = system_experiment.cost_model

    lines = [
        "Figure 1: expected tuning vs per-session perfect tuning (model I/Os per query)",
        f"{'session':<22}{'expected tuning':<18}{'perfect tuning':<18}",
    ]
    expected_tuning_degrades = []
    for session in comparison.sessions:
        observed = session.observed_workload
        expected_cost = session.model_ios["nominal"]
        perfect_cost = model.workload_cost(observed, perfect[session.session])
        expected_tuning_degrades.append(expected_cost)
        lines.append(f"{session.session:<22}{expected_cost:<18.2f}{perfect_cost:<18.2f}")

    # Paper shape: the shifted middle session costs the statically tuned
    # system noticeably more than the surrounding expected sessions.
    assert expected_tuning_degrades[1] > expected_tuning_degrades[0]
    assert expected_tuning_degrades[1] > expected_tuning_degrades[2]

    text = "\n".join(lines)
    report("fig01_motivation", text)
    print("\n" + text)
