"""Figures 13–14 — system sequences for the unimodal workloads w1–w4."""

import pytest

from _system_figures import run_system_figure

#: (figure name, Table 2 index, rho).  The paper matches rho to the observed
#: divergence of the executed sessions (1.5–1.8 for the unimodal workloads).
_CASES = [
    ("fig13_w1_unimodal", 1, 1.5),
    ("fig13_w2_unimodal", 2, 1.5),
    ("fig14_w3_unimodal", 3, 1.75),
    ("fig14_w4_unimodal", 4, 1.75),
]


@pytest.mark.parametrize("name,index,rho", _CASES)
def test_fig13_14_unimodal_workloads(benchmark, system_experiment, report, name, index, rho):
    comparison = run_system_figure(
        benchmark,
        system_experiment,
        report,
        name=name,
        expected_index=index,
        rho=rho,
        include_writes=True,
    )
    # Unimodal expected workloads produce strongly specialised nominal
    # tunings, so the *model* must predict that the robust tuning protects
    # the worst session of the shifted sequence.  (Measured session costs can
    # be lumpy because a single deep compaction lands in one session — the
    # paper makes the same observation for w3/w4 in §8.3.)
    worst_nominal = max(s.model_ios["nominal"] for s in comparison.sessions)
    worst_robust = max(s.model_ios["robust"] for s in comparison.sessions)
    assert worst_robust <= worst_nominal * 1.05
