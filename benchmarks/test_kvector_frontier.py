"""K-vector frontier — where a non-uniform per-level ladder beats every
uniform fluid hybrid.

Full Dostoevsky generality gives every upper level its own run bound
``K_i``.  The per-level trade-off is genuinely asymmetric: Monkey's bloom
allocation makes extra runs nearly free for point lookups on *shallow*
levels but expensive on *deep* ones, and the long-range scan worst case
charges extra runs in proportion to the level's capacity — deepest levels
dominate.  Writes, by contrast, are saved equally by a high bound on any
level.  On a write-heavy workload that still pays for point lookups and
long scans, the optimum is therefore a *front-loaded ladder* — tiered
shallow levels descending to leveled deep ones — which no uniform ``(K, Z)``
pair (hence no classical policy either) can represent.

The committed table doubles as the acceptance artefact: the
``write-point`` row pins a strict (>= 1.5%) win of the tuner-selected
non-uniform ladder over the best uniform fluid tuning, and the read-heavy /
write-only corner rows pin that the vector search recovers the uniform
optima (zero advantage) where uniformity is actually optimal.  A companion
check pins exact corner recovery when the vector search space is restricted
to uniform families.
"""

import numpy as np
from conftest import run_once

from repro.analysis import kvector_frontier
from repro.core import NominalTuner
from repro.lsm import Policy, PolicySpec, SystemConfig
from repro.workloads import Workload

#: Paper-default memory (10 bits/entry total) with a mild write asymmetry:
#: ample bloom memory is what makes shallow-level runs nearly free for reads
#: and the per-level trade-off non-uniform.
FRONTIER_SYSTEM = SystemConfig(read_write_asymmetry=2.0)

#: The checked-in workload set: ``write-point`` is the acceptance workload
#: (see module docstring); the corner rows pin uniform recovery.
FRONTIER_WORKLOADS = [
    ("write-point", Workload(0.05, 0.25, 0.05, 0.65, long_range_fraction=0.3)),
    ("write-scan", Workload(0.02, 0.38, 0.10, 0.50, long_range_fraction=0.5)),
    ("read-heavy", Workload(0.30, 0.45, 0.15, 0.10, long_range_fraction=0.1)),
    ("write-only", Workload(0.02, 0.03, 0.01, 0.94, long_range_fraction=0.0)),
]

#: Deployable integer size ratios swept by every tuner here.
RATIO_CANDIDATES = np.arange(2.0, 21.0)


def test_kvector_frontier_ladder_beats_best_uniform(benchmark, report):
    rows = run_once(
        benchmark,
        lambda: kvector_frontier(
            FRONTIER_WORKLOADS,
            system=FRONTIER_SYSTEM,
            ratio_candidates=RATIO_CANDIDATES,
        ),
    )
    assert len(rows) == len(FRONTIER_WORKLOADS)
    by_name = {row["workload"]: row for row in rows}

    # The vector family contains every uniform design, so the advantage can
    # never be negative.
    for row in rows:
        assert row["vector_advantage"] >= 0.0, row["workload"]

    # Acceptance pin: on the write-heavy point-lookup + long-scan workload
    # the tuner-selected per-level ladder strictly beats the BEST uniform
    # (K, Z) fluid tuning (>= 1.5%), and it does so with a genuinely
    # non-uniform, front-loaded (non-increasing, >1 -> 1) bound vector.
    pinned = by_name["write-point"]
    assert pinned["vector_cost"] < 0.985 * pinned["uniform_cost"]
    ladder = pinned["vector_k_bounds"]
    assert ladder is not None and len(set(ladder)) > 1, "must be non-uniform"
    assert ladder == sorted(ladder, reverse=True), "front-loaded ladder"
    assert ladder[0] > 1.0 and ladder[-1] == 1.0

    # The corners keep their uniform optima: where one shared bound is
    # optimal the vector search must not hallucinate structure.
    for corner in ("read-heavy", "write-only"):
        row = by_name[corner]
        assert row["vector_advantage"] <= 5e-4, corner
        bounds = row["vector_k_bounds"]
        assert bounds is None or len(set(bounds)) == 1, corner

    lines = [
        "K-vector frontier on the paper-default system "
        "(10 bits/entry memory, write cost 2x read): per-level K_i ladders "
        "vs the best uniform fluid (K, Z) tuning",
        "",
        f"{'workload':<12}{'composition':<46}{'uniform cost':>14}"
        f"{'vector cost':>14}{'advantage':>11}  "
        f"{'uniform tuning':<42}{'vector tuning (tuner-selected K_i)'}",
    ]
    for row in rows:
        lines.append(
            f"{row['workload']:<12}{row['composition']:<46}"
            f"{row['uniform_cost']:>14.4f}{row['vector_cost']:>14.4f}"
            f"{row['vector_advantage'] * 100:>10.2f}%  "
            f"{row['uniform_tuning']:<42}{row['vector_tuning']}"
        )
    text = "\n".join(lines)
    report("kvector_frontier", text)
    print("\n" + text)


def test_uniform_families_recover_the_scalar_corners_exactly():
    """Restricting the vector search space to uniform families reproduces
    every scalar (K, Z) fluid optimum exactly: same objective, same (T, h)."""
    workload = FRONTIER_WORKLOADS[0][1]
    for k, z in ((1.0, 1.0), (2.0, 1.0), (4.0, 2.0), (8.0, 8.0)):
        scalar_spec = PolicySpec(Policy.FLUID, k_bound=k, z_bound=z)
        uniform_spec = PolicySpec(Policy.FLUID, k_bounds=(k,) * 4, z_bound=z)
        results = [
            NominalTuner(
                system=FRONTIER_SYSTEM,
                policies=(spec,),
                ratio_candidates=RATIO_CANDIDATES,
                seed=0,
            ).tune(workload)
            for spec in (scalar_spec, uniform_spec)
        ]
        scalar, uniform = results
        assert uniform.objective == scalar.objective, (k, z)
        assert uniform.tuning.size_ratio == scalar.tuning.size_ratio, (k, z)
        assert uniform.tuning.bits_per_entry == scalar.tuning.bits_per_entry, (k, z)
