"""Section 8.4 headline — fraction of comparisons the robust tuning wins."""

from conftest import RHO_VALUES, run_once

from repro.analysis import section84_win_rate


def test_sec84_robust_win_rate(benchmark, catalog, bench_set, report):
    result = run_once(
        benchmark,
        lambda: section84_win_rate(catalog, bench_set, rhos=RHO_VALUES),
    )
    # Paper: robust tunings win over 80% of ~8.6M comparisons.  On the reduced
    # grid we still expect a clear majority.
    assert result["win_rate"] > 0.6

    text = (
        "Section 8.4: robust vs nominal comparisons over the benchmark set\n"
        f"comparisons: {int(result['comparisons'])}\n"
        f"robust win rate: {100 * result['win_rate']:.1f}% (paper reports > 80%)"
    )
    report("sec84_win_rate", text)
    print("\n" + text)
