"""Micro-benchmark — scalar vs vectorised tuner candidate sweep.

The tuners' hot path is the sweep over every candidate ``(T, h, π)`` design.
The vectorised path evaluates the whole grid with one broadcasted
``LSMCostModel.cost_matrix`` pass per policy and Brent-refines only the
near-optimal candidates; the scalar reference path runs one grid + Brent
solve per candidate size ratio.  This benchmark times both on the same
workloads, verifies they select the same tunings, and records the speedup as
a perf baseline for future PRs.
"""

import time

from conftest import run_once

from repro.core import NominalTuner, RobustTuner
from repro.lsm import SystemConfig
from repro.workloads import expected_workload

#: Workloads swept by the benchmark (uniform, write-heavy, trimodal).
WORKLOAD_INDICES = (0, 4, 11)

#: The acceptance floor: the vectorised sweep must be at least this much
#: faster than the scalar reference.
MIN_SPEEDUP = 3.0


def _time_sweeps(system: SystemConfig) -> list[dict[str, float | str]]:
    rows: list[dict[str, float | str]] = []
    for index in WORKLOAD_INDICES:
        workload = expected_workload(index).workload
        for kind, make in (
            ("nominal", lambda v: NominalTuner(system=system, polish=False, vectorized=v)),
            ("robust", lambda v: RobustTuner(rho=1.0, system=system, polish=False, vectorized=v)),
        ):
            start = time.perf_counter()
            vectorized = make(True).tune(workload)
            mid = time.perf_counter()
            scalar = make(False).tune(workload)
            end = time.perf_counter()
            vec_s, sca_s = mid - start, end - mid
            assert vectorized.tuning.policy is scalar.tuning.policy
            assert abs(vectorized.tuning.size_ratio - scalar.tuning.size_ratio) < 0.05
            assert (
                abs(vectorized.tuning.bits_per_entry - scalar.tuning.bits_per_entry)
                < 0.05
            )
            rows.append(
                {
                    "workload": f"w{index}",
                    "tuner": kind,
                    "scalar_s": sca_s,
                    "vectorized_s": vec_s,
                    "speedup": sca_s / vec_s,
                    "tuning": vectorized.tuning.describe(),
                }
            )
    return rows


def test_vectorized_sweep_speedup(benchmark, model_system, report):
    rows = run_once(benchmark, lambda: _time_sweeps(model_system))

    total_scalar = sum(r["scalar_s"] for r in rows)
    total_vectorized = sum(r["vectorized_s"] for r in rows)
    overall = total_scalar / total_vectorized
    assert overall >= MIN_SPEEDUP, (
        f"vectorised sweep only {overall:.1f}x faster than the scalar baseline"
    )

    lines = [
        f"{'workload':<10}{'tuner':<10}{'scalar (s)':>12}{'vectorized (s)':>16}"
        f"{'speedup':>10}  {'selected tuning':<30}"
    ]
    for row in rows:
        lines.append(
            f"{row['workload']:<10}{row['tuner']:<10}{row['scalar_s']:>12.3f}"
            f"{row['vectorized_s']:>16.3f}{row['speedup']:>9.1f}x  {row['tuning']:<30}"
        )
    lines.append(
        f"overall: scalar {total_scalar:.2f}s vs vectorized {total_vectorized:.2f}s"
        f" -> {overall:.1f}x (floor {MIN_SPEEDUP:.0f}x)"
    )
    text = "\n".join(lines)
    report("vectorized_sweep", text)
    print("\n" + text)
