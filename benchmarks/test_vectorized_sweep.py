"""Micro-benchmark — scalar vs vectorised tuner candidate sweep.

The tuners' hot path is the sweep over every candidate ``(T, h, π)`` design.
The vectorised path evaluates the whole grid with one broadcasted
``LSMCostModel.cost_matrix`` pass per policy and Brent-refines only the
near-optimal candidates; the scalar reference path runs one grid + Brent
solve per candidate size ratio.  This benchmark times both on the same
workloads, verifies they select the same tunings, and records the speedup as
a perf baseline for future PRs.
"""

import time

from conftest import run_once

from repro.core import NominalTuner, RobustTuner
from repro.lsm import SystemConfig
from repro.workloads import expected_workload

#: Workloads swept by the benchmark (uniform, write-heavy, trimodal).
WORKLOAD_INDICES = (0, 4, 11)

#: The acceptance floor: the vectorised sweep must be at least this much
#: faster than the scalar reference.
MIN_SPEEDUP = 3.0


def _time_sweeps(system: SystemConfig) -> list[dict[str, float | str]]:
    rows: list[dict[str, float | str]] = []
    for index in WORKLOAD_INDICES:
        workload = expected_workload(index).workload
        for kind, make in (
            ("nominal", lambda v: NominalTuner(system=system, polish=False, vectorized=v)),
            ("robust", lambda v: RobustTuner(rho=1.0, system=system, polish=False, vectorized=v)),
        ):
            start = time.perf_counter()
            vectorized = make(True).tune(workload)
            mid = time.perf_counter()
            scalar = make(False).tune(workload)
            end = time.perf_counter()
            vec_s, sca_s = mid - start, end - mid
            assert vectorized.tuning.policy is scalar.tuning.policy
            assert abs(vectorized.tuning.size_ratio - scalar.tuning.size_ratio) < 0.05
            assert (
                abs(vectorized.tuning.bits_per_entry - scalar.tuning.bits_per_entry)
                < 0.05
            )
            rows.append(
                {
                    "workload": f"w{index}",
                    "tuner": kind,
                    "scalar_s": sca_s,
                    "vectorized_s": vec_s,
                    "speedup": sca_s / vec_s,
                    "tuning": vectorized.tuning.describe(),
                }
            )
    return rows


def test_vectorized_sweep_speedup(benchmark, model_system, report):
    rows = run_once(benchmark, lambda: _time_sweeps(model_system))

    total_scalar = sum(r["scalar_s"] for r in rows)
    total_vectorized = sum(r["vectorized_s"] for r in rows)
    overall = total_scalar / total_vectorized
    assert overall >= MIN_SPEEDUP, (
        f"vectorised sweep only {overall:.1f}x faster than the scalar baseline"
    )

    lines = [
        f"{'workload':<10}{'tuner':<10}{'scalar (s)':>12}{'vectorized (s)':>16}"
        f"{'speedup':>10}  {'selected tuning':<30}"
    ]
    for row in rows:
        lines.append(
            f"{row['workload']:<10}{row['tuner']:<10}{row['scalar_s']:>12.3f}"
            f"{row['vectorized_s']:>16.3f}{row['speedup']:>9.1f}x  {row['tuning']:<30}"
        )
    lines.append(
        f"overall: scalar {total_scalar:.2f}s vs vectorized {total_vectorized:.2f}s"
        f" -> {overall:.1f}x (floor {MIN_SPEEDUP:.0f}x)"
    )
    text = "\n".join(lines)
    report("vectorized_sweep", text)
    print("\n" + text)


#: Workloads exercised by the batched-polish parity benchmark.
POLISH_WORKLOAD_INDICES = (4, 7, 11)

#: The batched-gradient polish must not regress on the scalar-FD path by more
#: than timing noise (it typically runs 1.1-1.4x faster).
MAX_POLISH_SLOWDOWN = 1.5


def _time_polish(system: SystemConfig) -> list[dict[str, float | str]]:
    """Time the SLSQP polish with batched vs scalar finite differences.

    Both tuners share the same vectorised candidate sweep; only the polish
    step differs, so it is timed in isolation from identical sweep results.
    """
    rows: list[dict[str, float | str]] = []
    for index in POLISH_WORKLOAD_INDICES:
        workload = expected_workload(index).workload
        outcomes = {}
        for batched in (True, False):
            tuner = RobustTuner(
                rho=1.0,
                system=system,
                seed=3,
                starts_per_policy=4,
                batched_polish=batched,
            )
            ratio, inner, policy, value, _ = tuner._sweep_vectorized(workload)
            start = time.perf_counter()
            polished = tuner._polish(ratio, inner, policy, workload, value)
            outcomes[batched] = (polished, time.perf_counter() - start)
        (b_design, b_s), (s_design, s_s) = outcomes[True], outcomes[False]
        # Parity pin: the batched gradient must land on the same design and
        # at least match the scalar objective (up to solver tolerance).
        assert abs(b_design[0] - s_design[0]) < 0.05
        assert abs(b_design[1][0] - s_design[1][0]) < 0.05
        assert b_design[2] <= s_design[2] * (1.0 + 1e-4)
        rows.append(
            {
                "workload": f"w{index}",
                "scalar_s": s_s,
                "batched_s": b_s,
                "speedup": s_s / b_s,
                "objective": b_design[2],
            }
        )
    return rows


def test_batched_polish_finite_differences(benchmark, model_system, report):
    rows = run_once(benchmark, lambda: _time_polish(model_system))

    total_scalar = sum(r["scalar_s"] for r in rows)
    total_batched = sum(r["batched_s"] for r in rows)
    overall = total_scalar / total_batched
    assert overall >= 1.0 / MAX_POLISH_SLOWDOWN, (
        f"batched polish gradient is {1 / overall:.2f}x slower than scalar FD"
    )

    lines = [
        f"{'workload':<10}{'scalar FD (s)':>14}{'batched (s)':>14}{'speedup':>10}"
        f"{'objective':>14}"
    ]
    for row in rows:
        lines.append(
            f"{row['workload']:<10}{row['scalar_s']:>14.3f}{row['batched_s']:>14.3f}"
            f"{row['speedup']:>9.2f}x{row['objective']:>14.6f}"
        )
    lines.append(
        f"overall: scalar {total_scalar:.3f}s vs batched {total_batched:.3f}s"
        f" -> {overall:.2f}x"
    )
    text = "\n".join(lines)
    report("vectorized_polish", text)
    print("\n" + text)
