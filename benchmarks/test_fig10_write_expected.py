"""Figure 10 — write-heavy expected workload, observed sessions close to ρ."""

import pytest
from conftest import run_once

from repro.analysis import format_comparison
from repro.workloads import Workload


def test_fig10_write_heavy_expected_workload(benchmark, system_experiment, report):
    # The paper uses the expected workload (10%, 10%, 10%, 70%) with rho = 0.5.
    expected = Workload(0.10, 0.10, 0.10, 0.70)
    comparison = run_once(
        benchmark,
        lambda: system_experiment.run(expected, rho=0.5, include_writes=True),
    )
    assert len(comparison.sessions) == 6

    # A write-heavy expected workload leads both tunings to write-friendly
    # designs, so neither should collapse during the write session.
    write_sessions = [s for s in comparison.sessions if s.session == "write"]
    assert write_sessions
    nominal_io = write_sessions[0].system_ios["nominal"]
    robust_io = write_sessions[0].system_ios["robust"]
    assert nominal_io == pytest.approx(robust_io, rel=2.0, abs=10.0)

    text = "fig10: expected workload (10%, 10%, 10%, 70%)\n" + format_comparison(comparison)
    report("fig10_write_expected", text)
    print("\n" + text)
