"""Figure 5 — impact of ρ on delta throughput vs observed KL divergence (w11)."""

import numpy as np
from conftest import run_once

from repro.analysis import figure5_rho_impact


def test_fig05_rho_impact_w11(benchmark, catalog, bench_set, report):
    rhos = (0.0, 0.25, 1.0, 2.0)
    result = run_once(
        benchmark,
        lambda: figure5_rho_impact(catalog, bench_set, expected_index=11, rhos=rhos),
    )
    assert set(result) == set(rhos)

    # Paper shape: at rho=0 the robust tuning matches the nominal; for larger
    # rho the advantage on high-divergence workloads grows.
    assert np.abs(np.median(result[0.0]["delta"])) < 0.25
    high_kl_gain = {
        rho: float(np.mean(result[rho]["delta"][result[rho]["kl"] > 1.0]))
        for rho in (0.25, 1.0, 2.0)
    }
    assert high_kl_gain[1.0] > 0.0

    lines = ["Figure 5: delta throughput vs I_KL(w_hat, w11) for increasing rho"]
    for rho in rhos:
        data = result[rho]
        kl, delta = data["kl"], data["delta"]
        lines.append(f"\nrho = {rho:g}  robust tuning: {data['tuning']}")
        lines.append(f"{'KL bin':<16}{'mean delta':<12}{'samples':<8}")
        edges = np.linspace(0.0, 4.0, 9)
        for lo, hi in zip(edges[:-1], edges[1:]):
            mask = (kl >= lo) & (kl < hi)
            if mask.any():
                lines.append(f"[{lo:.1f}, {hi:.1f})      {np.mean(delta[mask]):<12.3f}{int(mask.sum()):<8}")
    text = "\n".join(lines)
    report("fig05_rho_impact", text)
    print("\n" + text)
