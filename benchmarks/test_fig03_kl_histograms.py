"""Figure 3 — KL-divergence histograms of the benchmark set w.r.t. w0 and w1."""

from conftest import run_once

from repro.analysis import figure3_kl_histograms


def test_fig03_kl_histograms(benchmark, bench_set, report):
    result = run_once(
        benchmark, lambda: figure3_kl_histograms(bench_set, reference_indices=(0, 1), bins=16)
    )
    assert set(result) == {"w0", "w1"}
    # The paper's observation: the uniform reference w0 produces a tight
    # histogram near zero, the highly skewed w1 spreads out to divergences > 1.
    assert result["w0"]["mean"][0] < result["w1"]["mean"][0]

    lines = ["Figure 3: histogram of I_KL(w_hat, w) over the benchmark set B"]
    for name, data in result.items():
        lines.append(f"\nreference {name} (mean divergence {data['mean'][0]:.3f})")
        edges = data["bin_edges"]
        for i, density in enumerate(data["density"]):
            bar = "#" * int(round(40 * density / max(data["density"].max(), 1e-9)))
            lines.append(f"  [{edges[i]:.2f}, {edges[i + 1]:.2f}) {density:6.3f} {bar}")
    text = "\n".join(lines)
    report("fig03_kl_histograms", text)
    print("\n" + text)
