#!/usr/bin/env python3
"""Quickstart: tune an LSM tree robustly for an uncertain workload.

This example walks through the core Endure workflow:

1. describe the system (entry size, page size, memory budget),
2. describe the expected workload,
3. compute the classical (nominal) tuning and the robust tuning,
4. compare how both behave when the observed workload drifts.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import LSMCostModel, NominalTuner, RobustTuner, SystemConfig, Workload


def main() -> None:
    # 1. The system: 10M entries of 1 KiB, 4 KiB pages, a shared memory budget
    #    for the write buffer and the Bloom filters (the paper's §7 setup).
    system = SystemConfig(
        entry_size_bytes=1024,
        page_size_bytes=4096,
        num_entries=10_000_000,
    )
    model = LSMCostModel(system)

    # 2. The workload we *expect*: mostly point lookups and range scans, with
    #    a trickle of writes (this is w11 from the paper's Table 2).
    expected = Workload(z0=0.33, z1=0.33, q=0.33, w=0.01)

    # 3a. Classical tuning: optimal if the expectation is exactly right.
    nominal = NominalTuner(system=system).tune(expected)
    print("nominal tuning :", nominal.tuning.describe())
    print("  expected cost:", f"{nominal.objective:.3f} I/Os per query")

    # 3b. Robust tuning: optimal for the worst case within a KL-divergence
    #     ball of radius rho around the expectation.  A good default for rho
    #     is the mean divergence between historically observed workloads.
    rho = 1.0
    robust = RobustTuner(rho=rho, system=system).tune(expected)
    print(f"robust tuning  : {robust.tuning.describe()}  (rho = {rho})")
    print("  worst-case cost:", f"{robust.objective:.3f} I/Os per query")

    # 4. What happens when the observed workload drifts?  Suppose writes jump
    #    from 1% to 33% (this is w12 from Table 2).
    observed = Workload(z0=0.33, z1=0.33, q=0.01, w=0.33)
    print("\nobserved workload drifts to", observed.describe())
    for name, result in (("nominal", nominal), ("robust", robust)):
        cost = model.workload_cost(observed, result.tuning)
        throughput = 1.0 / cost
        print(f"  {name:<8} cost {cost:6.3f} I/Os per query  (throughput {throughput:.3f})")

    gain = model.workload_cost(observed, nominal.tuning) / model.workload_cost(
        observed, robust.tuning
    )
    print(f"\nThe robust tuning is {gain:.1f}x cheaper on the drifted workload.")


if __name__ == "__main__":
    main()
