#!/usr/bin/env python3
"""Model-based study over the uncertainty benchmark (a miniature Section 7).

Reproduces, at reduced scale, the paper's model-based evaluation: for a few
expected workloads it computes nominal and robust tunings across several
uncertainty radii and reports the average delta throughput and the throughput
range over a sampled benchmark of noisy workloads.

Run with::

    python examples/uncertainty_benchmark_study.py
"""

from __future__ import annotations


from repro import LSMCostModel, NominalTuner, RobustTuner, SystemConfig, UncertaintyBenchmark
from repro.analysis import average_delta_throughput, throughput_range
from repro.workloads import expected_workload

#: Expected workloads studied here (uniform, bimodal, trimodal).
WORKLOAD_INDICES = (0, 7, 11)

#: Uncertainty radii to sweep.
RHOS = (0.25, 1.0, 2.0)


def main() -> None:
    system = SystemConfig()
    model = LSMCostModel(system)
    benchmark = UncertaintyBenchmark(size=500, seed=7)
    sampled = list(benchmark)

    print("Average delta throughput and throughput range over 500 noisy workloads\n")
    header = f"{'workload':<10}{'rho':<6}{'nominal tuning':<30}{'robust tuning':<30}" \
             f"{'mean delta':<12}{'theta nominal':<15}{'theta robust':<15}"
    print(header)
    print("-" * len(header))

    for index in WORKLOAD_INDICES:
        expected = expected_workload(index)
        nominal = NominalTuner(system=system).tune(expected.workload)
        nominal_range = throughput_range(model, sampled, nominal.tuning)
        for rho in RHOS:
            robust = RobustTuner(rho=rho, system=system).tune(expected.workload)
            delta = average_delta_throughput(
                model, sampled, nominal.tuning, robust.tuning
            )
            robust_range = throughput_range(model, sampled, robust.tuning)
            print(
                f"{expected.name:<10}{rho:<6g}{nominal.tuning.describe():<30}"
                f"{robust.tuning.describe():<30}{delta:<12.3f}"
                f"{nominal_range:<15.3f}{robust_range:<15.3f}"
            )
        print()

    print(
        "Reading the table: positive 'mean delta' means the robust tuning delivers\n"
        "higher throughput than the nominal one on average across noisy workloads;\n"
        "a smaller 'theta' means more consistent performance (Figure 4 and 6b)."
    )


if __name__ == "__main__":
    main()
