#!/usr/bin/env python3
"""Deploy tunings on the simulated storage engine (a miniature Section 8).

Builds two instances of the pure-Python LSM-tree engine — one with the
nominal tuning, one with the robust tuning — bulk-loads the same data into
both, replays a paper-style sequence of workload sessions (reads, range
scans, empty reads, writes, …) and reports the measured I/Os and simulated
latency per query, exactly like the panels of Figures 8–18.

Run with::

    python examples/storage_engine_session.py
"""

from __future__ import annotations

from repro.analysis import SystemExperiment, format_comparison
from repro.lsm import simulator_system
from repro.storage import ExecutorConfig
from repro.workloads import UncertaintyBenchmark, expected_workload


def main() -> None:
    # A laptop-scale database: 20k entries of 1 KiB (the paper uses 10M on a
    # server); the per-entry memory budget matches the paper's setup so the
    # resulting tunings have the same shape.
    experiment = SystemExperiment(
        system=simulator_system(num_entries=20_000),
        executor_config=ExecutorConfig(queries_per_workload=1_000, seed=3),
        benchmark=UncertaintyBenchmark(size=500, seed=3),
        seed=3,
    )

    # Expected workload w11 (33% empty reads, 33% reads, 33% ranges, 1% writes)
    # with the uncertainty radius the paper uses for Figure 11.
    expected = expected_workload(11)
    print(f"Expected workload {expected.name}: {expected.workload.describe()}\n")

    comparison = experiment.run(expected.workload, rho=0.25, include_writes=True)
    print(format_comparison(comparison))

    summary = comparison.summary()
    print(
        "\nOver the whole sequence the robust tuning reduces measured I/O by "
        f"{100 * summary['io_reduction']:.0f}% and simulated latency by "
        f"{100 * summary['latency_reduction']:.0f}% relative to the nominal tuning."
    )


if __name__ == "__main__":
    main()
