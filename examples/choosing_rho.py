#!/usr/bin/env python3
"""How to choose the uncertainty parameter rho (the paper's §7.3 guidance).

The paper advises administrators to set ``rho`` to the mean KL divergence
between historically observed workloads and the expected one.  This example
simulates that situation: it takes a history of observed workloads, derives
``rho`` from it, and shows that the resulting robust tuning is close to the
best choice over a sweep of candidate radii.

Run with::

    python examples/choosing_rho.py
"""

from __future__ import annotations

import numpy as np

from repro import LSMCostModel, NominalTuner, RobustTuner, SystemConfig
from repro.workloads import UncertaintyBenchmark, Workload, expected_workload


def main() -> None:
    system = SystemConfig()
    model = LSMCostModel(system)
    expected = expected_workload(11).workload

    # A "history" of observed workloads: benchmark samples reweighted towards
    # the expected workload, as a production trace would look.
    benchmark = UncertaintyBenchmark(size=300, seed=11)
    history = [expected.mix(sample, 0.5) for sample in benchmark.sample(60, seed=1)]

    # The paper's recommendation: rho = mean KL divergence of the history.
    divergences = [observed.distance_to(expected) for observed in history]
    recommended_rho = float(np.mean(divergences))
    print(f"mean KL divergence of the workload history: {recommended_rho:.3f}")
    print("-> recommended rho =", round(recommended_rho, 2), "\n")

    nominal = NominalTuner(system=system).tune(expected)

    def mean_history_cost(tuning) -> float:
        return float(np.mean([model.workload_cost(observed, tuning) for observed in history]))

    print(f"{'rho':<8}{'robust tuning':<32}{'mean cost on history':<22}")
    print("-" * 62)
    print(f"{'(nominal)':<8}{nominal.tuning.describe():<32}{mean_history_cost(nominal.tuning):<22.3f}")

    best_rho, best_cost = None, float("inf")
    for rho in sorted({0.1, 0.25, 0.5, round(recommended_rho, 2), 1.5, 3.0}):
        robust = RobustTuner(rho=rho, system=system).tune(expected)
        cost = mean_history_cost(robust.tuning)
        if cost < best_cost:
            best_rho, best_cost = rho, cost
        marker = "  <- recommended" if abs(rho - round(recommended_rho, 2)) < 1e-9 else ""
        print(f"{rho:<8.2f}{robust.tuning.describe():<32}{cost:<22.3f}{marker}")

    print(
        f"\nBest radius on this history: rho = {best_rho:.2f} "
        f"(mean cost {best_cost:.3f}); the recommended value lands in the same regime,"
        "\nmatching the paper's advice that historical divergence is a sound default."
    )


if __name__ == "__main__":
    main()
