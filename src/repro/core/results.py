"""Result containers returned by the tuners."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..lsm.tuning import LSMTuning
from ..workloads.workload import Workload


@dataclass(frozen=True)
class TuningResult:
    """Outcome of one tuning optimisation.

    Attributes
    ----------
    tuning:
        The recommended LSM-tree configuration ``Φ``.
    objective:
        The optimised objective value: the nominal cost ``C(w, Φ)`` for the
        nominal tuner, or the worst-case (dual) cost for the robust tuner.
    expected_workload:
        The workload the tuner was given.
    rho:
        Size of the uncertainty region used (0 for the nominal tuner).
    solver_info:
        Free-form diagnostics from the optimiser (iterations, success flags,
        per-policy candidate objectives, …).
    """

    tuning: LSMTuning
    objective: float
    expected_workload: Workload
    rho: float = 0.0
    solver_info: dict[str, Any] = field(default_factory=dict)

    @property
    def nominal(self) -> bool:
        """Whether this result came from a zero-uncertainty (nominal) problem."""
        return self.rho == 0.0

    def describe(self) -> str:
        """One-line human-readable description of the result."""
        kind = "nominal" if self.nominal else f"robust(rho={self.rho:g})"
        return f"{kind}: {self.tuning.describe()} | objective={self.objective:.4f}"
