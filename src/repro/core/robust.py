"""The Robust Tuning problem (Problem 2, §3.3–§4).

Endure replaces the single-workload objective with the worst case over a
KL-divergence ball of radius ``ρ`` around the expected workload:

    min_Φ  max_{ŵ : I_KL(ŵ, w) ≤ ρ}  ŵ · c(Φ).

Following Ben-Tal et al. (2013), the inner maximisation is dualised with the
conjugate of the KL divergence (``φ*_KL(s) = eˢ − 1``).  Optimising the dual
variable ``η`` in closed form leaves the exponential-tilting dual

    g(Φ, λ) = ρ·λ + λ · log Σ_i w_i · exp(c_i(Φ) / λ),

a smooth function jointly minimised over the design and the remaining
Lagrangian variable ``λ ≥ 0``.  The tuner sweeps candidate size ratios,
optimises ``(h, λ)`` at each with nested bounded minimisation, and refines
the winner with SciPy's SLSQP over the full continuous design — the solver
used by the original Endure implementation (§4).  Strong duality makes the
optimum equal the primal worst-case cost, which the test-suite verifies
against the exact inner-maximisation solver in :mod:`repro.core.uncertainty`.
"""

from __future__ import annotations

import numpy as np
from scipy.special import logsumexp

from ..lsm.policy import PolicySpec
from ..workloads.workload import Workload
from .base import BaseTuner
from .nominal import NominalTuner
from .results import TuningResult
from .uncertainty import UncertaintyRegion

#: Bounds of log(λ) used when optimising the dual variable.
_LOG_LAMBDA_BOUNDS = (-9.0, 12.0)

#: Bounds of λ used by the SLSQP polish step.
_LAMBDA_BOUNDS = (np.exp(_LOG_LAMBDA_BOUNDS[0]), np.exp(_LOG_LAMBDA_BOUNDS[1]))


class RobustTuner(BaseTuner):
    """Solves the robust tuning problem for a given uncertainty radius ``ρ``."""

    #: Inner variable layout at a fixed size ratio: ``[bits_per_entry, lambda]``.
    INNER_DIMENSION = 2

    def __init__(self, rho: float, **kwargs) -> None:
        if rho < 0:
            raise ValueError("rho must be non-negative")
        super().__init__(**kwargs)
        self.rho = rho

    # ------------------------------------------------------------------
    # Dual objective
    # ------------------------------------------------------------------
    def dual_value(self, cost_vector: np.ndarray, workload: Workload, lam: float) -> float:
        """Evaluate ``g(Φ, λ) = ρλ + λ log Σ_i w_i exp(c_i/λ)``.

        This is the dual of the inner maximisation with ``η`` eliminated; for
        any ``λ > 0`` it upper-bounds the worst-case cost and its minimum over
        ``λ`` equals it (strong duality).
        """
        lam = float(max(lam, _LAMBDA_BOUNDS[0]))
        weights = workload.as_array()
        support = weights > 0.0
        log_expectation = float(
            logsumexp(cost_vector[support] / lam, b=weights[support])
        )
        return self.rho * lam + lam * log_expectation

    def _dual_values_on_grid(
        self, cost_vector: np.ndarray, weights: np.ndarray, lams: np.ndarray
    ) -> np.ndarray:
        """Vectorised evaluation of the dual over a grid of λ values.

        Only the workload's support enters the log-expectation: a zero-weight
        component contributes nothing to ``Σ w_i exp(c_i/λ)``, but if its cost
        dominated the stabilising shift it would drive every supported term to
        underflow and the log to ``-inf`` for small λ.
        """
        support = weights > 0.0
        scaled = cost_vector[..., None, support] / lams[..., :, None]
        shift = scaled.max(axis=-1)
        log_expectation = (
            np.log(np.exp(scaled - shift[..., None]) @ weights[support]) + shift
        )
        return self.rho * lams + lams * log_expectation

    def _worst_case_batch(
        self, cost_matrix: np.ndarray, workload: Workload
    ) -> np.ndarray:
        """Worst-case cost of every cell of a batch of cost vectors.

        The batched counterpart of :meth:`_worst_case_of_cost`: evaluates the
        dual of all cells over the same logarithmic λ grid at once, then
        refines each cell inside its best bracket — one broadcasted pass for
        the tuner's whole ``(T, h)`` candidate grid.
        """
        weights = workload.as_array()
        support = weights > 0.0
        if self.rho == 0.0:
            # Support-restricted dot: a zero-weight query type with a
            # degenerate cost must not poison the batch (0 * inf guard).
            return cost_matrix[..., support] @ weights[support]
        log_grid = np.linspace(*_LOG_LAMBDA_BOUNDS, 64)
        values = self._dual_values_on_grid(cost_matrix, weights, np.exp(log_grid))
        best = np.argmin(values, axis=-1)
        lo = log_grid[np.maximum(best - 1, 0)]
        hi = log_grid[np.minimum(best + 1, log_grid.size - 1)]
        fractions = np.linspace(0.0, 1.0, 17)
        refine = lo[..., None] + (hi - lo)[..., None] * fractions
        refined = self._dual_values_on_grid(cost_matrix, weights, np.exp(refine))
        return refined.min(axis=-1)

    def _worst_case_of_cost(
        self, cost_vector: np.ndarray, workload: Workload
    ) -> tuple[float, float]:
        """Minimise the dual over ``λ`` for a fixed cost vector.

        Evaluates the dual on a logarithmic λ grid (vectorised) and refines the
        best point with a parabolic step in ``log λ``.  Returns
        ``(worst_case_value, lambda_star)``.  With ``ρ = 0`` the dual
        degenerates to the nominal expected cost (``λ → ∞``).
        """
        weights = workload.as_array()
        support = weights > 0.0
        if self.rho == 0.0:
            return float(cost_vector[support] @ weights[support]), float("inf")
        log_grid = np.linspace(*_LOG_LAMBDA_BOUNDS, 64)
        values = self._dual_values_on_grid(cost_vector, weights, np.exp(log_grid))
        best = int(np.argmin(values))
        lo, hi = max(best - 1, 0), min(best + 1, log_grid.size - 1)
        refine = np.linspace(log_grid[lo], log_grid[hi], 17)
        refined = self._dual_values_on_grid(cost_vector, weights, np.exp(refine))
        best_refined = int(np.argmin(refined))
        return float(refined[best_refined]), float(np.exp(refine[best_refined]))

    # ------------------------------------------------------------------
    # Candidate-sweep hooks (vectorised path)
    # ------------------------------------------------------------------
    def _objective_from_costs(
        self, cost_matrix: np.ndarray, workload: Workload
    ) -> np.ndarray:
        return self._worst_case_batch(cost_matrix, workload)

    def _value_at(
        self, size_ratio: float, bits: float, policy: PolicySpec, workload: Workload
    ) -> float:
        try:
            tuning = self._tuning_from(size_ratio, bits, policy)
            cost_vector = self.cost_model.cost_vector(
                tuning, workload.long_range_fraction
            )
        except (ValueError, OverflowError):
            return float("inf")
        return self._worst_case_of_cost(cost_vector, workload)[0]

    def _inner_from_design(
        self, size_ratio: float, bits: float, policy: PolicySpec, workload: Workload
    ) -> np.ndarray:
        tuning = self._tuning_from(size_ratio, bits, policy)
        _, lam = self._worst_case_of_cost(
            self.cost_model.cost_vector(tuning, workload.long_range_fraction), workload
        )
        return np.array([bits, min(lam, _LAMBDA_BOUNDS[1])])

    # ------------------------------------------------------------------
    # Inner optimisation at a fixed size ratio
    # ------------------------------------------------------------------
    def _optimize_inner(
        self, size_ratio: float, policy: PolicySpec, workload: Workload
    ) -> tuple[np.ndarray, float]:
        bits, value = self._grid_then_refine(
            lambda b: self._value_at(size_ratio, float(b), policy, workload),
            self.bits_per_entry_bounds,
        )
        return self._inner_from_design(size_ratio, bits, policy, workload), value

    # ------------------------------------------------------------------
    # Batched finite differences (used by the SLSQP polish)
    # ------------------------------------------------------------------
    def _polish_jacobian(self, policy: PolicySpec, workload: Workload):
        """Batched finite-difference gradient of the polish objective.

        SLSQP's own finite differences evaluate the scalar objective once per
        design perturbation, and each evaluation rebuilds a cost vector from
        scratch.  The polish objective only depends on the design through
        ``c(T, h)``, so all cost-vector perturbations fit in a single 2×2
        :meth:`~repro.lsm.cost_model.LSMCostModel.cost_matrix` call — the
        ``(T, T+δ) × (h, h+δ)`` grid — and the λ perturbation reuses the base
        cost vector (the dual is an analytic function of λ for a fixed
        ``c``).  One batched pass replaces four scalar cost evaluations per
        gradient.
        """

        def jacobian(design: np.ndarray) -> np.ndarray:
            return self._batched_polish_gradient(
                np.asarray(design, dtype=float), policy, workload
            )

        return jacobian

    def _batched_polish_gradient(
        self, design: np.ndarray, policy: PolicySpec, workload: Workload
    ) -> np.ndarray:
        size_ratio, bits, lam = design
        t_lo, t_hi = self.size_ratio_bounds
        h_lo, h_hi = self.bits_per_entry_bounds
        # Mirror the clamping of the scalar objective so the gradient is taken
        # at the point the objective actually evaluates.
        size_ratio = float(np.clip(size_ratio, t_lo, t_hi))
        bits = float(np.clip(bits, h_lo, h_hi))
        lam = float(np.clip(lam, *_LAMBDA_BOUNDS))

        sqrt_eps = float(np.sqrt(np.finfo(float).eps))
        # Forward steps, flipped to backward at the upper bounds so every
        # perturbed design stays inside the legal box.
        dt = sqrt_eps * max(1.0, abs(size_ratio))
        if size_ratio + dt > t_hi:
            dt = -dt
        dh = sqrt_eps * max(1.0, abs(bits))
        if bits + dh > h_hi:
            dh = -dh
        dl = sqrt_eps * max(1.0, abs(lam))
        if lam + dl > _LAMBDA_BOUNDS[1]:
            dl = -dl

        try:
            costs = self.cost_model.cost_matrix(
                [size_ratio, size_ratio + dt],
                [bits, bits + dh],
                policy,
                long_range_fraction=workload.long_range_fraction,
            )
        except (ValueError, OverflowError):
            # Degenerate corner of the design box: let the value at the
            # perturbed design be what the scalar objective would report.
            return np.zeros(3)

        weights = workload.as_array()
        support = weights > 0.0
        if self.rho == 0.0:
            base = float(costs[0, 0, support] @ weights[support])
            grad_t = (float(costs[1, 0, support] @ weights[support]) - base) / dt
            grad_h = (float(costs[0, 1, support] @ weights[support]) - base) / dh
            return np.array([grad_t, grad_h, 0.0])
        base = self.dual_value(costs[0, 0], workload, lam)
        grad_t = (self.dual_value(costs[1, 0], workload, lam) - base) / dt
        grad_h = (self.dual_value(costs[0, 1], workload, lam) - base) / dh
        grad_l = (self.dual_value(costs[0, 0], workload, lam + dl) - base) / dl
        return np.array([grad_t, grad_h, grad_l])

    # ------------------------------------------------------------------
    # Full-design objective (used by the SLSQP polish)
    # ------------------------------------------------------------------
    def _objective(
        self, size_ratio: float, inner: np.ndarray, policy: PolicySpec, workload: Workload
    ) -> float:
        bits, lam = float(inner[0]), float(inner[1])
        try:
            tuning = self._tuning_from(size_ratio, bits, policy)
            cost_vector = self.cost_model.cost_vector(
                tuning, workload.long_range_fraction
            )
        except (ValueError, OverflowError):
            return float("inf")
        if self.rho == 0.0:
            weights = workload.as_array()
            support = weights > 0.0
            return float(cost_vector[support] @ weights[support])
        return self.dual_value(cost_vector, workload, lam)

    def _inner_bounds(self) -> list[tuple[float, float]]:
        return [self.bits_per_entry_bounds, _LAMBDA_BOUNDS]

    def _result_from_design(
        self,
        size_ratio: float,
        inner: np.ndarray,
        policy: PolicySpec,
        workload: Workload,
        objective: float,
        solver_info: dict,
    ) -> TuningResult:
        tuning = self._tuning_from(size_ratio, float(inner[0]), policy)
        solver_info = dict(solver_info)
        solver_info["lambda"] = float(inner[1])
        solver_info["dual_objective"] = objective
        # Report the exact primal worst-case cost of the selected tuning: it
        # is the quantity the problem statement optimises and, by strong
        # duality, matches the dual objective at the optimum.
        region = UncertaintyRegion(expected=workload, rho=self.rho)
        worst_case = region.worst_case_cost(
            self.cost_model.cost_vector(tuning, workload.long_range_fraction)
        )
        return TuningResult(
            tuning=tuning,
            objective=worst_case,
            expected_workload=workload,
            rho=self.rho,
            solver_info=solver_info,
        )


def tune_robust(workload: Workload, rho: float, system=None, **kwargs) -> TuningResult:
    """Convenience wrapper: build a :class:`RobustTuner` and solve once."""
    return RobustTuner(rho=rho, system=system, **kwargs).tune(workload)


def tune_nominal(workload: Workload, system=None, **kwargs) -> TuningResult:
    """Convenience wrapper: build a :class:`NominalTuner` and solve once."""
    return NominalTuner(system=system, **kwargs).tune(workload)
