"""Shared optimisation machinery for the nominal and robust tuners.

Both tuners minimise an objective over the design space ``(T, h, π)``.  The
number of levels ``L(T)`` is a step function of the size ratio, so the cost
surface is piecewise smooth with plateaus and jumps in ``T``; a single
continuous solve is unreliable there.  The tuners therefore:

1. enumerate candidate size ratios (every deployable integer by default),
2. evaluate the whole ``(T, h)`` candidate grid in one vectorised
   :meth:`~repro.lsm.cost_model.LSMCostModel.cost_matrix` pass and refine the
   promising candidates with bounded scalar minimisation (Brent) over the
   remaining smooth sub-problem, and
3. polish the best candidate with a final continuous SLSQP solve over all
   design variables — the solver the paper uses — which recovers the
   fractional size ratios the paper reports.

Each compaction policy is optimised independently and the better one wins.
The pre-vectorisation scalar sweep (one Brent solve per candidate size
ratio) is kept behind ``vectorized=False`` as a reference implementation;
the micro-benchmark in ``benchmarks/`` times one against the other.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np
from scipy import optimize

from ..lsm.cost_model import LSMCostModel
from ..lsm.policy import (
    CLASSIC_POLICIES,
    DEFAULT_VECTOR_LEVELS,
    Policy,
    PolicySpec,
    expand_policy_specs,
)
from ..lsm.system import SystemConfig
from ..lsm.tuning import LSMTuning, round_half_up
from ..workloads.workload import Workload
from .results import TuningResult

#: Small margin keeping the solver away from degenerate boundary values.
_EPSILON = 1e-6

#: Number of Bloom-filter grid points of the candidate sweep (both paths).
_BITS_GRID_POINTS = 24

#: Candidates whose grid objective is within this factor of the per-policy
#: best are Brent-refined in the vectorised sweep; everything else is pruned.
_REFINE_MARGIN = 1.05

#: Per-level candidate bounds tried by the coordinate-descent refinement of a
#: fluid bound vector (clamped per ``T``); a geometric ladder keeps each
#: coordinate pass cheap while spanning the leveling → tiering spectrum.
_DESCENT_BOUNDS: tuple[float, ...] = (1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64)

#: Hard cap on coordinate-descent passes over the bound vector.  A pass with
#: no improving move ends the descent early; in practice the descent
#: converges in one or two passes, so the cap only guards pathological
#: objectives.
_DESCENT_MAX_PASSES = 4


def default_ratio_candidates(max_size_ratio: float) -> np.ndarray:
    """Candidate size ratios: every integer from 2 up to ``max_size_ratio``.

    Deployable LSM tunings use integer size ratios, and the cost surface is
    smooth between consecutive integers, so this grid combined with the
    continuous polish step covers the whole design space.
    """
    upper = int(np.floor(max_size_ratio))
    return np.arange(2, upper + 1, dtype=float)


class BaseTuner(abc.ABC):
    """Common candidate-sweep + SLSQP-polish scaffolding used by every tuner.

    Parameters
    ----------
    system:
        System configuration to tune for.
    policies:
        Compaction policies to consider (the paper's classical pair —
        leveling and tiering — by default; pass
        :data:`~repro.lsm.policy.ALL_POLICIES` to include the hybrids).
        Entries may be enum members, strings, or explicit
        :class:`~repro.lsm.policy.PolicySpec` instances pinning fluid
        ``K``/``Z`` run bounds; ``Policy.FLUID`` expands into the default
        ``(K, Z)`` candidate grid, so the sweep optimises the fluid bounds
        alongside ``(T, h, π)``.
    fluid_k_grid / fluid_z_grid:
        Fluid run-bound candidates used when ``Policy.FLUID`` is expanded
        (defaults: :data:`~repro.lsm.policy.DEFAULT_FLUID_K_GRID` /
        :data:`~repro.lsm.policy.DEFAULT_FLUID_Z_GRID`).
    ratio_candidates:
        Candidate size ratios swept by the outer loop; defaults to all
        integers in ``[2, max_size_ratio]``.
    starts_per_policy:
        Number of starting points used by the final SLSQP polish.
    polish:
        Whether to run the final continuous SLSQP refinement (including ``T``)
        around the best candidate.
    vectorized:
        Whether the candidate sweep evaluates the ``(T, h)`` grid with the
        batched :meth:`~repro.lsm.cost_model.LSMCostModel.cost_matrix`
        (default) or with one scalar Brent solve per candidate size ratio
        (the pre-vectorisation reference path).
    batched_polish:
        Whether the SLSQP polish uses the tuner's batched finite-difference
        gradient (one :meth:`~repro.lsm.cost_model.LSMCostModel.cost_matrix`
        pass per gradient) where available, instead of SLSQP's own scalar
        finite differences.  Tuners that implement no batched gradient
        (see :meth:`_polish_jacobian`) fall back to the scalar path.
    k_vector_search:
        Whether the fluid sweep searches per-level ``K_i`` bound vectors:
        the candidate enumeration adds the structured vector families of
        :func:`~repro.lsm.policy.fluid_vector_specs` (front-loaded ladders,
        single-level perturbations), a coordinate-descent pass refines the
        winning fluid vector level by level, and the SLSQP polish relaxes
        every ``K_i`` (and ``Z``) to continuous values, rounding the result
        with a feasibility re-check.  Off by default: the scalar ``(K, Z)``
        sweep and its results are byte-identical to earlier releases.
    k_vector_levels:
        Upper levels covered explicitly by generated/refined bound vectors
        (deeper levels reuse the last element).
    seed:
        Seed of the random starting points used by the polish step.
    """

    def __init__(
        self,
        system: SystemConfig | None = None,
        policies: Sequence[Policy | str | PolicySpec] = CLASSIC_POLICIES,
        ratio_candidates: Sequence[float] | None = None,
        starts_per_policy: int = 2,
        polish: bool = True,
        vectorized: bool = True,
        batched_polish: bool = True,
        fluid_k_grid: Sequence[float] | None = None,
        fluid_z_grid: Sequence[float] | None = None,
        k_vector_search: bool = False,
        k_vector_levels: int = DEFAULT_VECTOR_LEVELS,
        seed: int = 0,
    ) -> None:
        self.system = system if system is not None else SystemConfig()
        self.cost_model = LSMCostModel(self.system)
        if k_vector_levels < 1:
            raise ValueError("k_vector_levels must be at least 1")
        self.k_vector_search = bool(k_vector_search)
        self.k_vector_levels = int(k_vector_levels)
        # The concrete candidates the sweeps iterate: one spec per classical
        # policy, a (K, Z) grid of specs for Policy.FLUID (plus the
        # structured K_i vector families when enabled).  An empty policy
        # list is rejected by the expansion itself.
        self.policy_specs = expand_policy_specs(
            policies,
            max_size_ratio=self.system.max_size_ratio,
            k_grid=fluid_k_grid,
            z_grid=fluid_z_grid,
            include_k_vectors=self.k_vector_search,
            vector_levels=self.k_vector_levels,
        )
        # Enum-level view kept for introspection and backwards compatibility.
        self.policies = tuple(dict.fromkeys(spec.policy for spec in self.policy_specs))
        if starts_per_policy <= 0:
            raise ValueError("starts_per_policy must be positive")
        self.starts_per_policy = starts_per_policy
        self.polish = polish
        self.vectorized = vectorized
        self.batched_polish = batched_polish
        if ratio_candidates is None:
            ratio_candidates = default_ratio_candidates(self.system.max_size_ratio)
        self.ratio_candidates = np.asarray(sorted(ratio_candidates), dtype=float)
        if self.ratio_candidates.size == 0:
            raise ValueError("ratio_candidates must not be empty")
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # Abstract interface
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _optimize_inner(
        self, size_ratio: float, policy: PolicySpec, workload: Workload
    ) -> tuple[np.ndarray, float]:
        """Optimise the non-ratio design variables at a fixed size ratio.

        Returns ``(inner_variables, objective_value)`` where the inner
        variables are ``[h]`` for the nominal tuner and ``[h, λ]`` for the
        robust tuner.  Used by the scalar reference sweep.
        """

    @abc.abstractmethod
    def _objective(
        self, size_ratio: float, inner: np.ndarray, policy: PolicySpec, workload: Workload
    ) -> float:
        """Objective value at one fully specified design point (for the polish)."""

    @abc.abstractmethod
    def _inner_bounds(self) -> list[tuple[float, float]]:
        """Box bounds of the inner variables (for the polish)."""

    @abc.abstractmethod
    def _result_from_design(
        self,
        size_ratio: float,
        inner: np.ndarray,
        policy: PolicySpec,
        workload: Workload,
        objective: float,
        solver_info: dict,
    ) -> TuningResult:
        """Convert the best design into a :class:`TuningResult`."""

    @abc.abstractmethod
    def _objective_from_costs(
        self, cost_matrix: np.ndarray, workload: Workload
    ) -> np.ndarray:
        """Batched objective over pre-computed cost vectors.

        ``cost_matrix`` has shape ``(..., 4)``; the result drops the last
        axis.  This is the vectorised counterpart of evaluating
        :meth:`_objective` at every grid cell and powers the candidate sweep.
        """

    @abc.abstractmethod
    def _value_at(
        self, size_ratio: float, bits: float, policy: PolicySpec, workload: Workload
    ) -> float:
        """Scalar objective at one ``(T, h)`` point (for the Brent refine)."""

    @abc.abstractmethod
    def _inner_from_design(
        self, size_ratio: float, bits: float, policy: PolicySpec, workload: Workload
    ) -> np.ndarray:
        """Recover the inner-variable vector of a swept ``(T, h)`` design."""

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    @property
    def size_ratio_bounds(self) -> tuple[float, float]:
        """Legal range of the size ratio ``T``."""
        return (2.0, self.system.max_size_ratio)

    @property
    def bits_per_entry_bounds(self) -> tuple[float, float]:
        """Legal range of the Bloom-filter bits per entry ``h``."""
        return (
            self.system.min_bits_per_entry,
            self.system.max_bits_per_entry - _EPSILON,
        )

    def _bits_grid(self, grid_points: int = _BITS_GRID_POINTS) -> np.ndarray:
        """The Bloom-filter grid swept for every candidate size ratio."""
        lo, hi = self.bits_per_entry_bounds
        return np.linspace(lo, hi, grid_points)

    def _tuning_from(
        self, size_ratio: float, bits: float, policy: Policy | PolicySpec
    ) -> LSMTuning:
        """Build a tuning, clamping the design into the legal box.

        ``policy`` may be a bare enum member or a
        :class:`~repro.lsm.policy.PolicySpec`; fluid specs carry their
        ``K``/``Z`` run bounds onto the tuning.
        """
        spec = PolicySpec.of(policy)
        t_lo, t_hi = self.size_ratio_bounds
        h_lo, h_hi = self.bits_per_entry_bounds
        return LSMTuning(
            size_ratio=float(np.clip(size_ratio, t_lo, t_hi)),
            bits_per_entry=float(np.clip(bits, h_lo, h_hi)),
            policy=spec.policy,
            k_bound=spec.k_bound,
            z_bound=spec.z_bound,
            k_bounds=spec.k_bounds,
        )

    def _minimize_scalar(self, objective, bounds: tuple[float, float]):
        """Bounded Brent minimisation used by the inner solves."""
        return optimize.minimize_scalar(
            objective, bounds=bounds, method="bounded", options={"xatol": 1e-4}
        )

    def _refine_bracket(
        self,
        objective,
        grid: np.ndarray,
        values: np.ndarray,
        best: int,
    ) -> tuple[float, float]:
        """Brent-refine inside the grid bracket around the best grid point."""
        bracket_lo = grid[max(best - 1, 0)]
        bracket_hi = grid[min(best + 1, grid.size - 1)]
        if bracket_hi <= bracket_lo:
            return float(grid[best]), float(values[best])
        result = optimize.minimize_scalar(
            objective,
            bounds=(bracket_lo, bracket_hi),
            method="bounded",
            options={"xatol": 1e-4},
        )
        if np.isfinite(result.fun) and result.fun < values[best]:
            return float(result.x), float(result.fun)
        return float(grid[best]), float(values[best])

    def _grid_then_refine(
        self, objective, bounds: tuple[float, float], grid_points: int = _BITS_GRID_POINTS
    ) -> tuple[float, float]:
        """Global-ish 1-D minimisation: coarse grid scan + local Brent refine.

        The cost surface is only piecewise smooth in the Bloom-filter budget
        (the level count jumps as the write buffer shrinks), so a pure local
        method can stall on a plateau; scanning a coarse grid first and then
        refining inside the best bracket is fast and reliable.
        """
        lo, hi = bounds
        grid = np.linspace(lo, hi, grid_points)
        values = np.array([objective(x) for x in grid])
        best = int(np.argmin(values))
        return self._refine_bracket(objective, grid, values, best)

    def _slsqp(
        self, objective, start: np.ndarray, bounds, jac=None
    ) -> optimize.OptimizeResult:
        """Run one SLSQP minimisation from a starting point."""
        return optimize.minimize(
            objective,
            np.asarray(start, dtype=float),
            method="SLSQP",
            jac=jac,
            bounds=bounds,
            options={"maxiter": 200, "ftol": 1e-10},
        )

    def _polish_jacobian(self, policy: PolicySpec, workload: Workload):
        """Gradient callable of the polish objective, or ``None``.

        Returning ``None`` (the default) lets SLSQP fall back to its own
        scalar finite differences.  Tuners whose objective is a function of
        the cost vector can override this with a batched implementation that
        prices all design perturbations through one
        :meth:`~repro.lsm.cost_model.LSMCostModel.cost_matrix` call.
        """
        return None

    # ------------------------------------------------------------------
    # Candidate sweeps
    # ------------------------------------------------------------------
    def _sweep_scalar(
        self, workload: Workload
    ) -> tuple[
        float | None, np.ndarray | None, PolicySpec | None, float, dict[str, float]
    ]:
        """Reference sweep: one Brent inner solve per (policy spec, size ratio)."""
        best_value = np.inf
        best_ratio: float | None = None
        best_inner: np.ndarray | None = None
        best_policy: PolicySpec | None = None
        per_policy: dict[str, float] = {}

        for policy in self.policy_specs:
            policy_best = np.inf
            for size_ratio in self.ratio_candidates:
                inner, value = self._optimize_inner(float(size_ratio), policy, workload)
                if not np.isfinite(value):
                    continue
                if value < policy_best:
                    policy_best = value
                if value < best_value:
                    best_value = value
                    best_ratio = float(size_ratio)
                    best_inner = np.asarray(inner, dtype=float)
                    best_policy = policy
            per_policy[policy.name] = policy_best
        return best_ratio, best_inner, best_policy, best_value, per_policy

    def _sweep_vectorized(
        self, workload: Workload
    ) -> tuple[
        float | None, np.ndarray | None, PolicySpec | None, float, dict[str, float]
    ]:
        """Batched sweep: one cost-matrix pass per policy + pruned refinement.

        The full ``(T, h)`` grid is evaluated in a single broadcasted NumPy
        pass; only candidates whose grid objective lands within
        :data:`_REFINE_MARGIN` of the per-policy best are Brent-refined, which
        preserves the scalar sweep's selections while skipping the vast
        majority of its scalar objective evaluations.
        """
        best_value = np.inf
        best_ratio: float | None = None
        best_bits: float | None = None
        best_policy: PolicySpec | None = None
        per_policy: dict[str, float] = {}
        bits_grid = self._bits_grid()

        for policy in self.policy_specs:
            costs = self.cost_model.cost_matrix(
                self.ratio_candidates,
                bits_grid,
                policy,
                long_range_fraction=workload.long_range_fraction,
            )
            objective = np.asarray(
                self._objective_from_costs(costs, workload), dtype=float
            )
            objective = np.where(np.isfinite(objective), objective, np.inf)
            row_best = np.argmin(objective, axis=1)
            row_values = objective[np.arange(objective.shape[0]), row_best]
            policy_best = float(np.min(row_values))
            if not np.isfinite(policy_best):
                per_policy[policy.name] = policy_best
                continue
            threshold = policy_best * _REFINE_MARGIN
            for row in np.flatnonzero(row_values <= threshold):
                size_ratio = float(self.ratio_candidates[row])
                bits, value = self._refine_bracket(
                    lambda h: self._value_at(size_ratio, float(h), policy, workload),
                    bits_grid,
                    objective[row],
                    int(row_best[row]),
                )
                if not np.isfinite(value):
                    continue
                if value < policy_best:
                    policy_best = value
                if value < best_value:
                    best_value = value
                    best_ratio = size_ratio
                    best_bits = bits
                    best_policy = policy
            per_policy[policy.name] = policy_best

        best_inner: np.ndarray | None = None
        if best_policy is not None:
            best_inner = self._inner_from_design(
                best_ratio, best_bits, best_policy, workload
            )
        return best_ratio, best_inner, best_policy, best_value, per_policy

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------
    def tune(self, workload: Workload) -> TuningResult:
        """Solve the tuning problem for ``workload`` and return the best result."""
        sweep = self._sweep_vectorized if self.vectorized else self._sweep_scalar
        best_ratio, best_inner, best_policy, best_value, per_policy = sweep(workload)

        if best_ratio is None or best_inner is None or best_policy is None:
            raise RuntimeError("the optimiser failed to produce any finite solution")

        solver_info: dict = {"per_policy_objective": per_policy}
        vector_search = self.k_vector_search and best_policy.policy is Policy.FLUID
        if vector_search:
            best_policy, best_inner, best_value = self._descend_k_vector(
                best_ratio, best_inner, best_policy, workload, best_value
            )

        if self.polish:
            # The fixed-spec polish runs either way (in vector mode it is the
            # same machinery the uniform path uses, batched gradient
            # included, so the vector path can never fall behind it); the
            # vector polish then relaxes the bounds from the polished point.
            best_ratio, best_inner, best_value = self._polish(
                best_ratio, best_inner, best_policy, workload, best_value
            )
            if vector_search:
                best_ratio, best_inner, best_policy, best_value = (
                    self._polish_with_vector(
                        best_ratio, best_inner, best_policy, workload, best_value
                    )
                )

        if vector_search:
            solver_info["k_vector_search"] = best_policy.name
        return self._result_from_design(
            best_ratio, best_inner, best_policy, workload, best_value, solver_info
        )

    # ------------------------------------------------------------------
    # Per-level K_i refinement (vector search only)
    # ------------------------------------------------------------------
    def _materialised_vector(
        self, spec: PolicySpec, size_ratio: float
    ) -> tuple[list[float], float]:
        """The explicit ``(K_i…, Z)`` of a fluid spec at one size ratio.

        Scalar and tracking specs materialise to the uniform vector they
        denote (length :attr:`k_vector_levels`); explicit vectors are padded
        to that length with their last element, matching the deep-level
        extension rule.
        """
        cap = max(1.0, float(size_ratio) - 1.0)
        if spec.k_bounds is not None:
            base = list(spec.k_bounds)
        elif spec.k_bound is not None:
            base = [float(spec.k_bound)]
        else:
            base = [cap]
        while len(base) < self.k_vector_levels:
            base.append(base[-1])
        vector = [float(np.clip(bound, 1.0, cap)) for bound in base]
        z = 1.0 if spec.z_bound is None else float(np.clip(spec.z_bound, 1.0, cap))
        return vector, z

    def _descend_k_vector(
        self,
        size_ratio: float,
        inner: np.ndarray,
        spec: PolicySpec,
        workload: Workload,
        current_value: float,
    ) -> tuple[PolicySpec, np.ndarray, float]:
        """Coordinate-descent refinement of the fluid bound vector.

        At the sweep winner's ``(T, h)``, each level's bound (and ``Z``) is
        moved in turn over the geometric candidate ladder, keeping any
        improvement; passes repeat until one completes with no move.  The
        enumeration families only seed structured shapes — this pass is what
        reaches arbitrary vectors without an exponential sweep.
        """
        bits = float(inner[0])
        cap = max(1.0, float(size_ratio) - 1.0)
        candidates = sorted(
            {float(min(bound, cap)) for bound in _DESCENT_BOUNDS} | {cap}
        )
        vector, z = self._materialised_vector(spec, size_ratio)

        def value_of(trial_vector: list[float], trial_z: float) -> float:
            trial = PolicySpec(
                Policy.FLUID, k_bounds=tuple(trial_vector), z_bound=trial_z
            )
            return self._value_at(size_ratio, bits, trial, workload)

        # The materialised vector reproduces the winning spec at this (T, h),
        # so its value matches ``current_value`` up to clamping noise.
        best_value = value_of(vector, z)
        for _ in range(_DESCENT_MAX_PASSES):
            improved = False
            for position in range(len(vector) + 1):
                is_z = position == len(vector)
                current = z if is_z else vector[position]
                for candidate in candidates:
                    if candidate == current:
                        continue
                    if is_z:
                        trial_value = value_of(vector, candidate)
                    else:
                        trial = list(vector)
                        trial[position] = candidate
                        trial_value = value_of(trial, z)
                    if np.isfinite(trial_value) and trial_value < best_value - 1e-15:
                        best_value = trial_value
                        if is_z:
                            z = candidate
                        else:
                            vector[position] = candidate
                        improved = True
            if not improved:
                break

        if not (np.isfinite(best_value) and best_value < current_value - 1e-15):
            if spec.k_bounds is None:
                # No strict win: keep the sweep winner's scalar/tracking
                # representation so uniform optima stay uniform.
                return spec, np.asarray(inner, dtype=float), current_value
            # A winning vector spec is normalised to its clamp at the
            # current ratio (a ladder peaking above T - 1 behaves as the
            # clamped vector; report the bounds that are actually in force).
        refined = PolicySpec(Policy.FLUID, k_bounds=tuple(vector), z_bound=z)
        return (
            refined,
            self._inner_from_design(size_ratio, bits, refined, workload),
            best_value,
        )

    def _polish_with_vector(
        self,
        size_ratio: float,
        inner: np.ndarray,
        spec: PolicySpec,
        workload: Workload,
        current_value: float,
    ) -> tuple[float, np.ndarray, PolicySpec, float]:
        """Continuous SLSQP polish over ``(T, inner, K_1…K_m, Z)``.

        The per-level run bounds join the design vector as continuous
        variables (closing the grid-selection gap of the scalar polish);
        after the solve the bounds are rounded to deployable integers with a
        feasibility re-check — clamped into ``[1, T - 1]`` at the polished
        ratio and re-evaluated — and the rounded design is kept when it is
        at least as good.  The batched polish gradient only covers the fixed
        3-variable design, so this path always uses SLSQP's own finite
        differences.
        """
        vector, z = self._materialised_vector(spec, size_ratio)
        n_inner = len(inner)

        def spec_of(design: np.ndarray) -> PolicySpec:
            bounds = np.maximum(design[1 + n_inner :], 1.0)
            return PolicySpec(
                Policy.FLUID,
                k_bounds=tuple(float(b) for b in bounds[:-1]),
                z_bound=float(bounds[-1]),
            )

        def full_objective(design: np.ndarray) -> float:
            return self._objective(
                design[0], design[1 : 1 + n_inner], spec_of(design), workload
            )

        bound_cap = max(1.0, self.system.max_size_ratio - 1.0)
        bounds = (
            [self.size_ratio_bounds]
            + list(self._inner_bounds())
            + [(1.0, bound_cap)] * (len(vector) + 1)
        )
        start = np.concatenate([[size_ratio], inner, vector, [z]])
        starts = [start]
        for _ in range(self.starts_per_policy - 1):
            jitter = self._rng.uniform(0.9, 1.1, size=start.size)
            starts.append(
                np.clip(
                    start * jitter,
                    [b[0] for b in bounds],
                    [b[1] for b in bounds],
                )
            )

        best_design = start
        best_value = current_value
        improved = False
        for candidate in starts:
            result = self._slsqp(full_objective, candidate, bounds, jac=None)
            value = float(result.fun)
            if np.isfinite(value) and value < best_value:
                best_design = np.asarray(result.x, dtype=float)
                best_value = value
                improved = True
        if not improved:
            # The sweep/descent winner stands; keep its representation.
            return size_ratio, np.asarray(inner, dtype=float), spec, current_value

        # Feasibility re-check: deployable bounds are integers in
        # [1, T - 1]; round the continuous solution, clamp it at the
        # polished ratio, and keep it only if the objective agrees.
        ratio = float(best_design[0])
        cap = max(1.0, float(round_half_up(ratio)) - 1.0)
        rounded = np.concatenate(
            [
                best_design[: 1 + n_inner],
                [
                    float(np.clip(round_half_up(b), 1.0, cap))
                    for b in best_design[1 + n_inner :]
                ],
            ]
        )
        rounded_value = full_objective(rounded)
        if np.isfinite(rounded_value) and rounded_value <= best_value:
            best_design, best_value = rounded, rounded_value

        polished_spec = spec_of(best_design)
        return (
            float(best_design[0]),
            np.asarray(best_design[1 : 1 + n_inner], dtype=float),
            polished_spec,
            best_value,
        )

    def _polish(
        self,
        size_ratio: float,
        inner: np.ndarray,
        policy: PolicySpec,
        workload: Workload,
        current_value: float,
    ) -> tuple[float, np.ndarray, float]:
        """Continuous SLSQP refinement over ``(T, inner)`` near the best candidate."""

        def full_objective(design: np.ndarray) -> float:
            return self._objective(design[0], design[1:], policy, workload)

        bounds = [self.size_ratio_bounds] + list(self._inner_bounds())
        starts = [np.concatenate([[size_ratio], inner])]
        for _ in range(self.starts_per_policy - 1):
            jitter = self._rng.uniform(0.9, 1.1, size=starts[0].size)
            starts.append(
                np.clip(
                    starts[0] * jitter,
                    [b[0] for b in bounds],
                    [b[1] for b in bounds],
                )
            )

        jac = self._polish_jacobian(policy, workload) if self.batched_polish else None
        best = (size_ratio, inner, current_value)
        for start in starts:
            result = self._slsqp(full_objective, start, bounds, jac=jac)
            value = float(result.fun)
            if np.isfinite(value) and value < best[2]:
                best = (
                    float(result.x[0]),
                    np.asarray(result.x[1:], dtype=float),
                    value,
                )
        return best
