"""Shared optimisation machinery for the nominal and robust tuners.

Both tuners minimise an objective over the design space ``(T, h, π)``.  The
number of levels ``L(T)`` is a step function of the size ratio, so the cost
surface is piecewise smooth with plateaus and jumps in ``T``; a single
continuous solve is unreliable there.  The tuners therefore:

1. enumerate candidate size ratios (every deployable integer by default),
2. solve the remaining smooth, low-dimensional sub-problem at each candidate
   with bounded scalar minimisation (Brent), which is fast and reliable, and
3. polish the best candidate with a final continuous SLSQP solve over all
   design variables — the solver the paper uses — which recovers the
   fractional size ratios the paper reports.

Each compaction policy is optimised independently and the better one wins.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np
from scipy import optimize

from ..lsm.cost_model import LSMCostModel
from ..lsm.policy import ALL_POLICIES, Policy
from ..lsm.system import SystemConfig
from ..lsm.tuning import LSMTuning
from ..workloads.workload import Workload
from .results import TuningResult

#: Small margin keeping the solver away from degenerate boundary values.
_EPSILON = 1e-6


def default_ratio_candidates(max_size_ratio: float) -> np.ndarray:
    """Candidate size ratios: every integer from 2 up to ``max_size_ratio``.

    Deployable LSM tunings use integer size ratios, and the cost surface is
    smooth between consecutive integers, so this grid combined with the
    continuous polish step covers the whole design space.
    """
    upper = int(np.floor(max_size_ratio))
    return np.arange(2, upper + 1, dtype=float)


class BaseTuner(abc.ABC):
    """Common candidate-sweep + SLSQP-polish scaffolding used by every tuner.

    Parameters
    ----------
    system:
        System configuration to tune for.
    policies:
        Compaction policies to consider (both, by default).
    ratio_candidates:
        Candidate size ratios swept by the outer loop; defaults to all
        integers in ``[2, max_size_ratio]``.
    starts_per_policy:
        Number of starting points used by the final SLSQP polish.
    polish:
        Whether to run the final continuous SLSQP refinement (including ``T``)
        around the best candidate.
    seed:
        Seed of the random starting points used by the polish step.
    """

    def __init__(
        self,
        system: SystemConfig | None = None,
        policies: Sequence[Policy] = ALL_POLICIES,
        ratio_candidates: Sequence[float] | None = None,
        starts_per_policy: int = 2,
        polish: bool = True,
        seed: int = 0,
    ) -> None:
        self.system = system if system is not None else SystemConfig()
        self.cost_model = LSMCostModel(self.system)
        self.policies = tuple(Policy.from_value(p) for p in policies)
        if not self.policies:
            raise ValueError("at least one compaction policy is required")
        if starts_per_policy <= 0:
            raise ValueError("starts_per_policy must be positive")
        self.starts_per_policy = starts_per_policy
        self.polish = polish
        if ratio_candidates is None:
            ratio_candidates = default_ratio_candidates(self.system.max_size_ratio)
        self.ratio_candidates = np.asarray(sorted(ratio_candidates), dtype=float)
        if self.ratio_candidates.size == 0:
            raise ValueError("ratio_candidates must not be empty")
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # Abstract interface
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _optimize_inner(
        self, size_ratio: float, policy: Policy, workload: Workload
    ) -> tuple[np.ndarray, float]:
        """Optimise the non-ratio design variables at a fixed size ratio.

        Returns ``(inner_variables, objective_value)`` where the inner
        variables are ``[h]`` for the nominal tuner and ``[h, λ]`` for the
        robust tuner.
        """

    @abc.abstractmethod
    def _objective(
        self, size_ratio: float, inner: np.ndarray, policy: Policy, workload: Workload
    ) -> float:
        """Objective value at one fully specified design point (for the polish)."""

    @abc.abstractmethod
    def _inner_bounds(self) -> list[tuple[float, float]]:
        """Box bounds of the inner variables (for the polish)."""

    @abc.abstractmethod
    def _result_from_design(
        self,
        size_ratio: float,
        inner: np.ndarray,
        policy: Policy,
        workload: Workload,
        objective: float,
        solver_info: dict,
    ) -> TuningResult:
        """Convert the best design into a :class:`TuningResult`."""

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    @property
    def size_ratio_bounds(self) -> tuple[float, float]:
        """Legal range of the size ratio ``T``."""
        return (2.0, self.system.max_size_ratio)

    @property
    def bits_per_entry_bounds(self) -> tuple[float, float]:
        """Legal range of the Bloom-filter bits per entry ``h``."""
        return (
            self.system.min_bits_per_entry,
            self.system.max_bits_per_entry - _EPSILON,
        )

    def _tuning_from(self, size_ratio: float, bits: float, policy: Policy) -> LSMTuning:
        """Build a tuning, clamping the design into the legal box."""
        t_lo, t_hi = self.size_ratio_bounds
        h_lo, h_hi = self.bits_per_entry_bounds
        return LSMTuning(
            size_ratio=float(np.clip(size_ratio, t_lo, t_hi)),
            bits_per_entry=float(np.clip(bits, h_lo, h_hi)),
            policy=policy,
        )

    def _minimize_scalar(self, objective, bounds: tuple[float, float]):
        """Bounded Brent minimisation used by the inner solves."""
        return optimize.minimize_scalar(
            objective, bounds=bounds, method="bounded", options={"xatol": 1e-4}
        )

    def _grid_then_refine(
        self, objective, bounds: tuple[float, float], grid_points: int = 24
    ) -> tuple[float, float]:
        """Global-ish 1-D minimisation: coarse grid scan + local Brent refine.

        The cost surface is only piecewise smooth in the Bloom-filter budget
        (the level count jumps as the write buffer shrinks), so a pure local
        method can stall on a plateau; scanning a coarse grid first and then
        refining inside the best bracket is fast and reliable.
        """
        lo, hi = bounds
        grid = np.linspace(lo, hi, grid_points)
        values = np.array([objective(x) for x in grid])
        best = int(np.argmin(values))
        bracket_lo = grid[max(best - 1, 0)]
        bracket_hi = grid[min(best + 1, grid_points - 1)]
        if bracket_hi <= bracket_lo:
            return float(grid[best]), float(values[best])
        result = optimize.minimize_scalar(
            objective,
            bounds=(bracket_lo, bracket_hi),
            method="bounded",
            options={"xatol": 1e-4},
        )
        if np.isfinite(result.fun) and result.fun < values[best]:
            return float(result.x), float(result.fun)
        return float(grid[best]), float(values[best])

    def _slsqp(self, objective, start: np.ndarray, bounds) -> optimize.OptimizeResult:
        """Run one SLSQP minimisation from a starting point."""
        return optimize.minimize(
            objective,
            np.asarray(start, dtype=float),
            method="SLSQP",
            bounds=bounds,
            options={"maxiter": 200, "ftol": 1e-10},
        )

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------
    def tune(self, workload: Workload) -> TuningResult:
        """Solve the tuning problem for ``workload`` and return the best result."""
        best_value = np.inf
        best_ratio: float | None = None
        best_inner: np.ndarray | None = None
        best_policy: Policy | None = None
        per_policy: dict[str, float] = {}

        for policy in self.policies:
            policy_best = np.inf
            for size_ratio in self.ratio_candidates:
                inner, value = self._optimize_inner(float(size_ratio), policy, workload)
                if not np.isfinite(value):
                    continue
                if value < policy_best:
                    policy_best = value
                if value < best_value:
                    best_value = value
                    best_ratio = float(size_ratio)
                    best_inner = np.asarray(inner, dtype=float)
                    best_policy = policy
            per_policy[policy.value] = policy_best

        if best_ratio is None or best_inner is None or best_policy is None:
            raise RuntimeError("the optimiser failed to produce any finite solution")

        if self.polish:
            best_ratio, best_inner, best_value = self._polish(
                best_ratio, best_inner, best_policy, workload, best_value
            )

        solver_info = {"per_policy_objective": per_policy}
        return self._result_from_design(
            best_ratio, best_inner, best_policy, workload, best_value, solver_info
        )

    def _polish(
        self,
        size_ratio: float,
        inner: np.ndarray,
        policy: Policy,
        workload: Workload,
        current_value: float,
    ) -> tuple[float, np.ndarray, float]:
        """Continuous SLSQP refinement over ``(T, inner)`` near the best candidate."""

        def full_objective(design: np.ndarray) -> float:
            return self._objective(design[0], design[1:], policy, workload)

        bounds = [self.size_ratio_bounds] + list(self._inner_bounds())
        starts = [np.concatenate([[size_ratio], inner])]
        for _ in range(self.starts_per_policy - 1):
            jitter = self._rng.uniform(0.9, 1.1, size=starts[0].size)
            starts.append(
                np.clip(
                    starts[0] * jitter,
                    [b[0] for b in bounds],
                    [b[1] for b in bounds],
                )
            )

        best = (size_ratio, inner, current_value)
        for start in starts:
            result = self._slsqp(full_objective, start, bounds)
            value = float(result.fun)
            if np.isfinite(value) and value < best[2]:
                best = (
                    float(result.x[0]),
                    np.asarray(result.x[1:], dtype=float),
                    value,
                )
        return best
