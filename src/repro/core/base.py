"""Shared optimisation machinery for the nominal and robust tuners.

Both tuners minimise an objective over the design space ``(T, h, π)``.  The
number of levels ``L(T)`` is a step function of the size ratio, so the cost
surface is piecewise smooth with plateaus and jumps in ``T``; a single
continuous solve is unreliable there.  The tuners therefore:

1. enumerate candidate size ratios (every deployable integer by default),
2. evaluate the whole ``(T, h)`` candidate grid in one vectorised
   :meth:`~repro.lsm.cost_model.LSMCostModel.cost_matrix` pass and refine the
   promising candidates with bounded scalar minimisation (Brent) over the
   remaining smooth sub-problem, and
3. polish the best candidate with a final continuous SLSQP solve over all
   design variables — the solver the paper uses — which recovers the
   fractional size ratios the paper reports.

Each compaction policy is optimised independently and the better one wins.
The pre-vectorisation scalar sweep (one Brent solve per candidate size
ratio) is kept behind ``vectorized=False`` as a reference implementation;
the micro-benchmark in ``benchmarks/`` times one against the other.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np
from scipy import optimize

from ..lsm.cost_model import LSMCostModel
from ..lsm.policy import CLASSIC_POLICIES, Policy, PolicySpec, expand_policy_specs
from ..lsm.system import SystemConfig
from ..lsm.tuning import LSMTuning
from ..workloads.workload import Workload
from .results import TuningResult

#: Small margin keeping the solver away from degenerate boundary values.
_EPSILON = 1e-6

#: Number of Bloom-filter grid points of the candidate sweep (both paths).
_BITS_GRID_POINTS = 24

#: Candidates whose grid objective is within this factor of the per-policy
#: best are Brent-refined in the vectorised sweep; everything else is pruned.
_REFINE_MARGIN = 1.05


def default_ratio_candidates(max_size_ratio: float) -> np.ndarray:
    """Candidate size ratios: every integer from 2 up to ``max_size_ratio``.

    Deployable LSM tunings use integer size ratios, and the cost surface is
    smooth between consecutive integers, so this grid combined with the
    continuous polish step covers the whole design space.
    """
    upper = int(np.floor(max_size_ratio))
    return np.arange(2, upper + 1, dtype=float)


class BaseTuner(abc.ABC):
    """Common candidate-sweep + SLSQP-polish scaffolding used by every tuner.

    Parameters
    ----------
    system:
        System configuration to tune for.
    policies:
        Compaction policies to consider (the paper's classical pair —
        leveling and tiering — by default; pass
        :data:`~repro.lsm.policy.ALL_POLICIES` to include the hybrids).
        Entries may be enum members, strings, or explicit
        :class:`~repro.lsm.policy.PolicySpec` instances pinning fluid
        ``K``/``Z`` run bounds; ``Policy.FLUID`` expands into the default
        ``(K, Z)`` candidate grid, so the sweep optimises the fluid bounds
        alongside ``(T, h, π)``.
    fluid_k_grid / fluid_z_grid:
        Fluid run-bound candidates used when ``Policy.FLUID`` is expanded
        (defaults: :data:`~repro.lsm.policy.DEFAULT_FLUID_K_GRID` /
        :data:`~repro.lsm.policy.DEFAULT_FLUID_Z_GRID`).
    ratio_candidates:
        Candidate size ratios swept by the outer loop; defaults to all
        integers in ``[2, max_size_ratio]``.
    starts_per_policy:
        Number of starting points used by the final SLSQP polish.
    polish:
        Whether to run the final continuous SLSQP refinement (including ``T``)
        around the best candidate.
    vectorized:
        Whether the candidate sweep evaluates the ``(T, h)`` grid with the
        batched :meth:`~repro.lsm.cost_model.LSMCostModel.cost_matrix`
        (default) or with one scalar Brent solve per candidate size ratio
        (the pre-vectorisation reference path).
    batched_polish:
        Whether the SLSQP polish uses the tuner's batched finite-difference
        gradient (one :meth:`~repro.lsm.cost_model.LSMCostModel.cost_matrix`
        pass per gradient) where available, instead of SLSQP's own scalar
        finite differences.  Tuners that implement no batched gradient
        (see :meth:`_polish_jacobian`) fall back to the scalar path.
    seed:
        Seed of the random starting points used by the polish step.
    """

    def __init__(
        self,
        system: SystemConfig | None = None,
        policies: Sequence[Policy | str | PolicySpec] = CLASSIC_POLICIES,
        ratio_candidates: Sequence[float] | None = None,
        starts_per_policy: int = 2,
        polish: bool = True,
        vectorized: bool = True,
        batched_polish: bool = True,
        fluid_k_grid: Sequence[float] | None = None,
        fluid_z_grid: Sequence[float] | None = None,
        seed: int = 0,
    ) -> None:
        self.system = system if system is not None else SystemConfig()
        self.cost_model = LSMCostModel(self.system)
        # The concrete candidates the sweeps iterate: one spec per classical
        # policy, a (K, Z) grid of specs for Policy.FLUID.  An empty policy
        # list is rejected by the expansion itself.
        self.policy_specs = expand_policy_specs(
            policies,
            max_size_ratio=self.system.max_size_ratio,
            k_grid=fluid_k_grid,
            z_grid=fluid_z_grid,
        )
        # Enum-level view kept for introspection and backwards compatibility.
        self.policies = tuple(dict.fromkeys(spec.policy for spec in self.policy_specs))
        if starts_per_policy <= 0:
            raise ValueError("starts_per_policy must be positive")
        self.starts_per_policy = starts_per_policy
        self.polish = polish
        self.vectorized = vectorized
        self.batched_polish = batched_polish
        if ratio_candidates is None:
            ratio_candidates = default_ratio_candidates(self.system.max_size_ratio)
        self.ratio_candidates = np.asarray(sorted(ratio_candidates), dtype=float)
        if self.ratio_candidates.size == 0:
            raise ValueError("ratio_candidates must not be empty")
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # Abstract interface
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _optimize_inner(
        self, size_ratio: float, policy: PolicySpec, workload: Workload
    ) -> tuple[np.ndarray, float]:
        """Optimise the non-ratio design variables at a fixed size ratio.

        Returns ``(inner_variables, objective_value)`` where the inner
        variables are ``[h]`` for the nominal tuner and ``[h, λ]`` for the
        robust tuner.  Used by the scalar reference sweep.
        """

    @abc.abstractmethod
    def _objective(
        self, size_ratio: float, inner: np.ndarray, policy: PolicySpec, workload: Workload
    ) -> float:
        """Objective value at one fully specified design point (for the polish)."""

    @abc.abstractmethod
    def _inner_bounds(self) -> list[tuple[float, float]]:
        """Box bounds of the inner variables (for the polish)."""

    @abc.abstractmethod
    def _result_from_design(
        self,
        size_ratio: float,
        inner: np.ndarray,
        policy: PolicySpec,
        workload: Workload,
        objective: float,
        solver_info: dict,
    ) -> TuningResult:
        """Convert the best design into a :class:`TuningResult`."""

    @abc.abstractmethod
    def _objective_from_costs(
        self, cost_matrix: np.ndarray, workload: Workload
    ) -> np.ndarray:
        """Batched objective over pre-computed cost vectors.

        ``cost_matrix`` has shape ``(..., 4)``; the result drops the last
        axis.  This is the vectorised counterpart of evaluating
        :meth:`_objective` at every grid cell and powers the candidate sweep.
        """

    @abc.abstractmethod
    def _value_at(
        self, size_ratio: float, bits: float, policy: PolicySpec, workload: Workload
    ) -> float:
        """Scalar objective at one ``(T, h)`` point (for the Brent refine)."""

    @abc.abstractmethod
    def _inner_from_design(
        self, size_ratio: float, bits: float, policy: PolicySpec, workload: Workload
    ) -> np.ndarray:
        """Recover the inner-variable vector of a swept ``(T, h)`` design."""

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    @property
    def size_ratio_bounds(self) -> tuple[float, float]:
        """Legal range of the size ratio ``T``."""
        return (2.0, self.system.max_size_ratio)

    @property
    def bits_per_entry_bounds(self) -> tuple[float, float]:
        """Legal range of the Bloom-filter bits per entry ``h``."""
        return (
            self.system.min_bits_per_entry,
            self.system.max_bits_per_entry - _EPSILON,
        )

    def _bits_grid(self, grid_points: int = _BITS_GRID_POINTS) -> np.ndarray:
        """The Bloom-filter grid swept for every candidate size ratio."""
        lo, hi = self.bits_per_entry_bounds
        return np.linspace(lo, hi, grid_points)

    def _tuning_from(
        self, size_ratio: float, bits: float, policy: Policy | PolicySpec
    ) -> LSMTuning:
        """Build a tuning, clamping the design into the legal box.

        ``policy`` may be a bare enum member or a
        :class:`~repro.lsm.policy.PolicySpec`; fluid specs carry their
        ``K``/``Z`` run bounds onto the tuning.
        """
        spec = PolicySpec.of(policy)
        t_lo, t_hi = self.size_ratio_bounds
        h_lo, h_hi = self.bits_per_entry_bounds
        return LSMTuning(
            size_ratio=float(np.clip(size_ratio, t_lo, t_hi)),
            bits_per_entry=float(np.clip(bits, h_lo, h_hi)),
            policy=spec.policy,
            k_bound=spec.k_bound,
            z_bound=spec.z_bound,
        )

    def _minimize_scalar(self, objective, bounds: tuple[float, float]):
        """Bounded Brent minimisation used by the inner solves."""
        return optimize.minimize_scalar(
            objective, bounds=bounds, method="bounded", options={"xatol": 1e-4}
        )

    def _refine_bracket(
        self,
        objective,
        grid: np.ndarray,
        values: np.ndarray,
        best: int,
    ) -> tuple[float, float]:
        """Brent-refine inside the grid bracket around the best grid point."""
        bracket_lo = grid[max(best - 1, 0)]
        bracket_hi = grid[min(best + 1, grid.size - 1)]
        if bracket_hi <= bracket_lo:
            return float(grid[best]), float(values[best])
        result = optimize.minimize_scalar(
            objective,
            bounds=(bracket_lo, bracket_hi),
            method="bounded",
            options={"xatol": 1e-4},
        )
        if np.isfinite(result.fun) and result.fun < values[best]:
            return float(result.x), float(result.fun)
        return float(grid[best]), float(values[best])

    def _grid_then_refine(
        self, objective, bounds: tuple[float, float], grid_points: int = _BITS_GRID_POINTS
    ) -> tuple[float, float]:
        """Global-ish 1-D minimisation: coarse grid scan + local Brent refine.

        The cost surface is only piecewise smooth in the Bloom-filter budget
        (the level count jumps as the write buffer shrinks), so a pure local
        method can stall on a plateau; scanning a coarse grid first and then
        refining inside the best bracket is fast and reliable.
        """
        lo, hi = bounds
        grid = np.linspace(lo, hi, grid_points)
        values = np.array([objective(x) for x in grid])
        best = int(np.argmin(values))
        return self._refine_bracket(objective, grid, values, best)

    def _slsqp(
        self, objective, start: np.ndarray, bounds, jac=None
    ) -> optimize.OptimizeResult:
        """Run one SLSQP minimisation from a starting point."""
        return optimize.minimize(
            objective,
            np.asarray(start, dtype=float),
            method="SLSQP",
            jac=jac,
            bounds=bounds,
            options={"maxiter": 200, "ftol": 1e-10},
        )

    def _polish_jacobian(self, policy: PolicySpec, workload: Workload):
        """Gradient callable of the polish objective, or ``None``.

        Returning ``None`` (the default) lets SLSQP fall back to its own
        scalar finite differences.  Tuners whose objective is a function of
        the cost vector can override this with a batched implementation that
        prices all design perturbations through one
        :meth:`~repro.lsm.cost_model.LSMCostModel.cost_matrix` call.
        """
        return None

    # ------------------------------------------------------------------
    # Candidate sweeps
    # ------------------------------------------------------------------
    def _sweep_scalar(
        self, workload: Workload
    ) -> tuple[
        float | None, np.ndarray | None, PolicySpec | None, float, dict[str, float]
    ]:
        """Reference sweep: one Brent inner solve per (policy spec, size ratio)."""
        best_value = np.inf
        best_ratio: float | None = None
        best_inner: np.ndarray | None = None
        best_policy: PolicySpec | None = None
        per_policy: dict[str, float] = {}

        for policy in self.policy_specs:
            policy_best = np.inf
            for size_ratio in self.ratio_candidates:
                inner, value = self._optimize_inner(float(size_ratio), policy, workload)
                if not np.isfinite(value):
                    continue
                if value < policy_best:
                    policy_best = value
                if value < best_value:
                    best_value = value
                    best_ratio = float(size_ratio)
                    best_inner = np.asarray(inner, dtype=float)
                    best_policy = policy
            per_policy[policy.name] = policy_best
        return best_ratio, best_inner, best_policy, best_value, per_policy

    def _sweep_vectorized(
        self, workload: Workload
    ) -> tuple[
        float | None, np.ndarray | None, PolicySpec | None, float, dict[str, float]
    ]:
        """Batched sweep: one cost-matrix pass per policy + pruned refinement.

        The full ``(T, h)`` grid is evaluated in a single broadcasted NumPy
        pass; only candidates whose grid objective lands within
        :data:`_REFINE_MARGIN` of the per-policy best are Brent-refined, which
        preserves the scalar sweep's selections while skipping the vast
        majority of its scalar objective evaluations.
        """
        best_value = np.inf
        best_ratio: float | None = None
        best_bits: float | None = None
        best_policy: PolicySpec | None = None
        per_policy: dict[str, float] = {}
        bits_grid = self._bits_grid()

        for policy in self.policy_specs:
            costs = self.cost_model.cost_matrix(
                self.ratio_candidates,
                bits_grid,
                policy,
                long_range_fraction=workload.long_range_fraction,
            )
            objective = np.asarray(
                self._objective_from_costs(costs, workload), dtype=float
            )
            objective = np.where(np.isfinite(objective), objective, np.inf)
            row_best = np.argmin(objective, axis=1)
            row_values = objective[np.arange(objective.shape[0]), row_best]
            policy_best = float(np.min(row_values))
            if not np.isfinite(policy_best):
                per_policy[policy.name] = policy_best
                continue
            threshold = policy_best * _REFINE_MARGIN
            for row in np.flatnonzero(row_values <= threshold):
                size_ratio = float(self.ratio_candidates[row])
                bits, value = self._refine_bracket(
                    lambda h: self._value_at(size_ratio, float(h), policy, workload),
                    bits_grid,
                    objective[row],
                    int(row_best[row]),
                )
                if not np.isfinite(value):
                    continue
                if value < policy_best:
                    policy_best = value
                if value < best_value:
                    best_value = value
                    best_ratio = size_ratio
                    best_bits = bits
                    best_policy = policy
            per_policy[policy.name] = policy_best

        best_inner: np.ndarray | None = None
        if best_policy is not None:
            best_inner = self._inner_from_design(
                best_ratio, best_bits, best_policy, workload
            )
        return best_ratio, best_inner, best_policy, best_value, per_policy

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------
    def tune(self, workload: Workload) -> TuningResult:
        """Solve the tuning problem for ``workload`` and return the best result."""
        sweep = self._sweep_vectorized if self.vectorized else self._sweep_scalar
        best_ratio, best_inner, best_policy, best_value, per_policy = sweep(workload)

        if best_ratio is None or best_inner is None or best_policy is None:
            raise RuntimeError("the optimiser failed to produce any finite solution")

        if self.polish:
            best_ratio, best_inner, best_value = self._polish(
                best_ratio, best_inner, best_policy, workload, best_value
            )

        solver_info = {"per_policy_objective": per_policy}
        return self._result_from_design(
            best_ratio, best_inner, best_policy, workload, best_value, solver_info
        )

    def _polish(
        self,
        size_ratio: float,
        inner: np.ndarray,
        policy: PolicySpec,
        workload: Workload,
        current_value: float,
    ) -> tuple[float, np.ndarray, float]:
        """Continuous SLSQP refinement over ``(T, inner)`` near the best candidate."""

        def full_objective(design: np.ndarray) -> float:
            return self._objective(design[0], design[1:], policy, workload)

        bounds = [self.size_ratio_bounds] + list(self._inner_bounds())
        starts = [np.concatenate([[size_ratio], inner])]
        for _ in range(self.starts_per_policy - 1):
            jitter = self._rng.uniform(0.9, 1.1, size=starts[0].size)
            starts.append(
                np.clip(
                    starts[0] * jitter,
                    [b[0] for b in bounds],
                    [b[1] for b in bounds],
                )
            )

        jac = self._polish_jacobian(policy, workload) if self.batched_polish else None
        best = (size_ratio, inner, current_value)
        for start in starts:
            result = self._slsqp(full_objective, start, bounds, jac=jac)
            value = float(result.fun)
            if np.isfinite(value) and value < best[2]:
                best = (
                    float(result.x[0]),
                    np.asarray(result.x[1:], dtype=float),
                    value,
                )
        return best
