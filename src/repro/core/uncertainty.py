"""KL-divergence uncertainty regions and their convex-duality machinery (§4).

The robust tuning problem maximises the worst-case cost over the uncertainty
region

    U_w^ρ = { ŵ ≥ 0 : ŵᵀe = 1, I_KL(ŵ, w) ≤ ρ }.

Ben-Tal et al. (2013) show that the inner maximisation has a tractable dual
built on the conjugate of the KL divergence, ``φ*_KL(s) = eˢ − 1``.  This
module provides:

* the conjugate function and the dual objective term,
* an exact solver for the *inner* problem (worst-case workload for a fixed
  cost vector), used both to evaluate tunings and to cross-check the dual.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize

from ..workloads.workload import Workload, kl_divergence


def kl_conjugate(s: np.ndarray | float) -> np.ndarray | float:
    """Conjugate of the KL divergence, ``φ*_KL(s) = eˢ − 1``."""
    return np.exp(s) - 1.0


@dataclass(frozen=True)
class UncertaintyRegion:
    """The KL ball ``U_w^ρ`` around an expected workload ``w``."""

    expected: Workload
    rho: float

    def __post_init__(self) -> None:
        if self.rho < 0:
            raise ValueError("rho must be non-negative")

    def contains(self, candidate: Workload, tolerance: float = 1e-9) -> bool:
        """Whether ``candidate`` lies inside the region (up to ``tolerance``)."""
        divergence = kl_divergence(candidate.as_array(), self.expected.as_array())
        return bool(divergence <= self.rho + tolerance)

    def divergence(self, candidate: Workload) -> float:
        """KL divergence of ``candidate`` from the expected workload."""
        return kl_divergence(candidate.as_array(), self.expected.as_array())

    # ------------------------------------------------------------------
    # Worst-case workload (inner maximisation)
    # ------------------------------------------------------------------
    def worst_case_workload(self, cost_vector: np.ndarray) -> Workload:
        """Workload in the region that maximises ``ŵ · c`` for a fixed ``c``.

        The maximiser has the exponential-tilting form
        ``ŵ_i ∝ w_i · exp(c_i / λ)`` where the single scalar ``λ ≥ 0`` is
        chosen so the KL constraint is tight (or ``λ → ∞``, i.e. ŵ = w, when
        ``ρ = 0``).  We solve for ``λ`` by bisection on the KL divergence of
        the tilted distribution, which is monotone in ``1/λ``.
        """
        cost = np.asarray(cost_vector, dtype=float)
        if cost.shape != (4,):
            raise ValueError("cost_vector must have exactly 4 components")
        base = self.expected.as_array()
        if self.rho == 0.0 or np.allclose(cost, cost[0]):
            return self.expected

        # The tilted maximiser lives on the support of the expected workload
        # (zero-weight components stay zero), so the stabilising shift must be
        # the largest *supported* cost — otherwise a dominating zero-weight
        # component would underflow every supported term to 0/0.
        support = base > 0.0
        cost_shift = float(cost[support].max())

        def tilted(inverse_lambda: float) -> np.ndarray:
            exponent = np.where(support, inverse_lambda * (cost - cost_shift), -np.inf)
            weights = base * np.exp(exponent)
            return weights / weights.sum()

        def divergence_of(inverse_lambda: float) -> float:
            return kl_divergence(tilted(inverse_lambda), base)

        # The divergence grows monotonically with 1/λ from 0 towards the
        # divergence of the point mass on argmax(c); cap the search there.
        upper = 1.0
        max_divergence = kl_divergence(
            _argmax_vertex(base, cost), base
        )
        target = min(self.rho, max_divergence - 1e-12)
        if target <= 1e-10:
            # Effectively no uncertainty (or a degenerate region): the tilted
            # solution coincides with the expected workload, and the bisection
            # below would lose the sign change to floating-point noise.
            return self.expected
        while divergence_of(upper) < target and upper < 1e6:
            upper *= 2.0
        if divergence_of(upper) < target:
            return Workload.from_array(tilted(upper))
        solution = optimize.brentq(
            lambda x: divergence_of(x) - target, 0.0, upper, xtol=1e-12
        )
        return Workload.from_array(tilted(solution))

    def worst_case_cost(self, cost_vector: np.ndarray) -> float:
        """Value of the inner maximisation ``max_{ŵ ∈ U} ŵ · c``."""
        worst = self.worst_case_workload(np.asarray(cost_vector, dtype=float))
        return float(np.dot(worst.as_array(), np.asarray(cost_vector, dtype=float)))


def _argmax_vertex(base: np.ndarray, cost: np.ndarray) -> np.ndarray:
    """Distribution concentrating all mass (minus support constraints) on the
    costliest *supported* component; used to bound the reachable KL divergence.

    Tilting can never move mass onto a component the expected workload gives
    zero weight, so the bound only considers the expected workload's support.
    """
    support = np.flatnonzero(base > 0.0)
    vertex = np.where(base > 0.0, 1e-12, 0.0)
    vertex[support[int(np.argmax(cost[support]))]] = 1.0
    return vertex / vertex.sum()


def dual_objective(
    cost_vector: np.ndarray,
    expected: Workload,
    rho: float,
    lam: float,
    eta: float,
) -> float:
    """The dual objective ``g(λ, η)`` of Equation (9) for a fixed cost vector.

    ``g = η + ρλ + λ Σ_i w_i φ*_KL((c_i − η)/λ)``.  As ``λ → 0`` the term
    tends to the max-constraint indicator; we guard against numerical
    overflow by clipping the exponent.
    """
    if lam < 0:
        raise ValueError("lambda must be non-negative")
    cost = np.asarray(cost_vector, dtype=float)
    weights = expected.as_array()
    if lam == 0.0:
        # Limit of the dual: eta must dominate every cost component.
        overshoot = np.max(cost - eta)
        return float(eta if overshoot <= 0 else np.inf)
    scaled = np.clip((cost - eta) / lam, -700.0, 700.0)
    return float(eta + rho * lam + lam * np.dot(weights, kl_conjugate(scaled)))


def minimize_dual_for_cost(
    cost_vector: np.ndarray, expected: Workload, rho: float
) -> tuple[float, float, float]:
    """Minimise the dual over ``(λ, η)`` for a fixed cost vector.

    Returns ``(value, λ*, η*)``.  Used in tests to confirm strong duality:
    the optimal dual value equals the exact worst-case cost computed by
    :meth:`UncertaintyRegion.worst_case_cost`.
    """
    cost = np.asarray(cost_vector, dtype=float)

    def objective(params: np.ndarray) -> float:
        lam, eta = params
        return dual_objective(cost, expected, rho, max(lam, 1e-12), eta)

    start = np.array([1.0, float(np.mean(cost))])
    result = optimize.minimize(
        objective,
        start,
        method="Nelder-Mead",
        options={"xatol": 1e-10, "fatol": 1e-12, "maxiter": 20_000},
    )
    lam, eta = result.x
    return float(result.fun), float(max(lam, 0.0)), float(eta)
