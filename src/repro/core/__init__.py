"""Endure's contribution: nominal and robust LSM-tree tuners."""

from .grid import GridTuner
from .nominal import NominalTuner
from .results import TuningResult
from .robust import RobustTuner, tune_nominal, tune_robust
from .uncertainty import (
    UncertaintyRegion,
    dual_objective,
    kl_conjugate,
    minimize_dual_for_cost,
)

__all__ = [
    "GridTuner",
    "NominalTuner",
    "RobustTuner",
    "TuningResult",
    "UncertaintyRegion",
    "dual_objective",
    "kl_conjugate",
    "minimize_dual_for_cost",
    "tune_nominal",
    "tune_robust",
]
