"""The Nominal Tuning problem (Problem 1, §3.2).

Given a single expected workload ``w``, find the tuning ``Φ_N`` minimising
the expected per-query cost ``C(w, Φ)``.  This is the classical tuning
paradigm of Monkey/Dostoevsky and the baseline Endure compares against.
"""

from __future__ import annotations

import numpy as np

from ..lsm.policy import PolicySpec
from ..workloads.workload import Workload
from .base import BaseTuner
from .results import TuningResult


class NominalTuner(BaseTuner):
    """Solves the nominal (classical, certainty-assuming) tuning problem."""

    #: Inner variable layout at a fixed size ratio: ``[bits_per_entry]``.
    INNER_DIMENSION = 1

    def _cost(
        self, size_ratio: float, bits: float, policy: PolicySpec, workload: Workload
    ) -> float:
        try:
            tuning = self._tuning_from(size_ratio, bits, policy)
            return self.cost_model.workload_cost(workload, tuning)
        except (ValueError, OverflowError):
            return float("inf")

    def _value_at(
        self, size_ratio: float, bits: float, policy: PolicySpec, workload: Workload
    ) -> float:
        return self._cost(size_ratio, bits, policy, workload)

    def _objective_from_costs(
        self, cost_matrix: np.ndarray, workload: Workload
    ) -> np.ndarray:
        # Restrict the dot product to the workload's support so a degenerate
        # cost of a zero-weight query type cannot poison the sweep (0 · inf).
        weights = workload.as_array()
        support = weights > 0.0
        return cost_matrix[..., support] @ weights[support]

    def _inner_from_design(
        self, size_ratio: float, bits: float, policy: PolicySpec, workload: Workload
    ) -> np.ndarray:
        return np.array([bits])

    def _optimize_inner(
        self, size_ratio: float, policy: PolicySpec, workload: Workload
    ) -> tuple[np.ndarray, float]:
        bits, value = self._grid_then_refine(
            lambda bits: self._cost(size_ratio, float(bits), policy, workload),
            self.bits_per_entry_bounds,
        )
        return np.array([bits]), value

    def _objective(
        self, size_ratio: float, inner: np.ndarray, policy: PolicySpec, workload: Workload
    ) -> float:
        return self._cost(size_ratio, float(inner[0]), policy, workload)

    def _inner_bounds(self) -> list[tuple[float, float]]:
        return [self.bits_per_entry_bounds]

    def _result_from_design(
        self,
        size_ratio: float,
        inner: np.ndarray,
        policy: PolicySpec,
        workload: Workload,
        objective: float,
        solver_info: dict,
    ) -> TuningResult:
        tuning = self._tuning_from(size_ratio, float(inner[0]), policy)
        return TuningResult(
            tuning=tuning,
            objective=objective,
            expected_workload=workload,
            rho=0.0,
            solver_info=solver_info,
        )
