"""Exhaustive grid-search tuner.

A brute-force baseline used to validate the SLSQP-based tuners: it sweeps an
integer grid of size ratios and a grid of Bloom-filter allocations for every
policy and keeps the configuration with the smallest objective.  It can
optimise either the nominal objective or the robust worst-case objective, so
the test-suite can confirm that the continuous solvers land at (or very near)
the grid optimum.

The cost vectors of the whole grid come from one vectorised
:meth:`~repro.lsm.cost_model.LSMCostModel.cost_matrix` pass per policy; only
the exact worst-case solve of the robust objective (``ρ > 0``) remains a
per-cell scalar computation.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..lsm.cost_model import LSMCostModel
from ..lsm.policy import CLASSIC_POLICIES, Policy, PolicySpec, expand_policy_specs
from ..lsm.system import SystemConfig
from ..lsm.tuning import LSMTuning
from ..workloads.workload import Workload
from .results import TuningResult
from .uncertainty import UncertaintyRegion


class GridTuner:
    """Exhaustive search over a discretised design space.

    Parameters
    ----------
    system:
        System configuration to tune for.
    size_ratios:
        Candidate size ratios; defaults to the integers 2 … max_size_ratio
        (capped at 100 values).
    bits_grid_points:
        Number of equally spaced Bloom-filter allocations to try.
    rho:
        Uncertainty radius; 0 reproduces the nominal objective.
    policies:
        Compaction policies to consider (the paper's classical pair by
        default; pass :data:`~repro.lsm.policy.ALL_POLICIES` to include the
        hybrids).  ``Policy.FLUID`` expands into its default ``(K, Z)``
        candidate grid, exactly like the continuous tuners; explicit
        :class:`~repro.lsm.policy.PolicySpec` entries — including per-level
        ``k_bounds`` vector specs — pass through untouched.
    k_vector_search:
        Whether the fluid expansion additionally sweeps the structured
        per-level ``K_i`` vector families (front-loaded ladders,
        single-level perturbations), mirroring the continuous tuners.
    """

    def __init__(
        self,
        system: SystemConfig | None = None,
        size_ratios: np.ndarray | None = None,
        bits_grid_points: int = 33,
        rho: float = 0.0,
        policies: Sequence[Policy | str | PolicySpec] = CLASSIC_POLICIES,
        k_vector_search: bool = False,
    ) -> None:
        if rho < 0:
            raise ValueError("rho must be non-negative")
        if bits_grid_points < 2:
            raise ValueError("bits_grid_points must be at least 2")
        self.system = system if system is not None else SystemConfig()
        self.cost_model = LSMCostModel(self.system)
        self.rho = rho
        # An empty policy list is rejected by the expansion itself.
        self.policy_specs = expand_policy_specs(
            policies,
            max_size_ratio=self.system.max_size_ratio,
            include_k_vectors=k_vector_search,
        )
        self.policies = tuple(dict.fromkeys(spec.policy for spec in self.policy_specs))
        if size_ratios is None:
            upper = int(min(self.system.max_size_ratio, 100.0))
            size_ratios = np.arange(2, upper + 1, dtype=float)
        self.size_ratios = np.asarray(size_ratios, dtype=float)
        self.bits_grid = np.linspace(
            self.system.min_bits_per_entry,
            self.system.max_bits_per_entry * 0.999,
            bits_grid_points,
        )

    def _objective_grid(self, workload: Workload, costs: np.ndarray) -> np.ndarray:
        """Objective of every grid cell, given its pre-computed cost vectors."""
        if self.rho == 0.0:
            # Support-restricted dot mirrors the continuous tuners' 0 * inf
            # guard for zero-weight query types.
            weights = workload.as_array()
            support = weights > 0.0
            return costs[..., support] @ weights[support]
        region = UncertaintyRegion(expected=workload, rho=self.rho)
        values = np.empty(costs.shape[:-1], dtype=float)
        for index in np.ndindex(values.shape):
            values[index] = region.worst_case_cost(costs[index])
        return values

    def tune(self, workload: Workload) -> TuningResult:
        """Exhaustively search the grid and return the best configuration."""
        best_tuning: LSMTuning | None = None
        best_value = np.inf
        evaluated = 0
        for spec in self.policy_specs:
            costs = self.cost_model.cost_matrix(
                self.size_ratios,
                self.bits_grid,
                spec,
                long_range_fraction=workload.long_range_fraction,
            )
            values = self._objective_grid(workload, costs)
            evaluated += values.size
            flat_best = int(np.argmin(values))
            row, col = np.unravel_index(flat_best, values.shape)
            if values[row, col] < best_value:
                best_value = float(values[row, col])
                best_tuning = LSMTuning(
                    size_ratio=float(self.size_ratios[row]),
                    bits_per_entry=float(self.bits_grid[col]),
                    policy=spec.policy,
                    k_bound=spec.k_bound,
                    z_bound=spec.z_bound,
                    k_bounds=spec.k_bounds,
                )
        if best_tuning is None or not np.isfinite(best_value):
            raise RuntimeError("grid search evaluated no configurations")
        return TuningResult(
            tuning=best_tuning,
            objective=float(best_value),
            expected_workload=workload,
            rho=self.rho,
            solver_info={"evaluated_configurations": evaluated},
        )
