"""Exhaustive grid-search tuner.

A brute-force baseline used to validate the SLSQP-based tuners: it sweeps an
integer grid of size ratios and a grid of Bloom-filter allocations for both
policies and keeps the configuration with the smallest objective.  It can
optimise either the nominal objective or the robust worst-case objective, so
the test-suite can confirm that the continuous solvers land at (or very near)
the grid optimum.
"""

from __future__ import annotations

import numpy as np

from ..lsm.cost_model import LSMCostModel
from ..lsm.policy import ALL_POLICIES, Policy
from ..lsm.system import SystemConfig
from ..lsm.tuning import LSMTuning
from ..workloads.workload import Workload
from .results import TuningResult
from .uncertainty import UncertaintyRegion


class GridTuner:
    """Exhaustive search over a discretised design space.

    Parameters
    ----------
    system:
        System configuration to tune for.
    size_ratios:
        Candidate size ratios; defaults to the integers 2 … max_size_ratio
        (capped at 100 values).
    bits_grid_points:
        Number of equally spaced Bloom-filter allocations to try.
    rho:
        Uncertainty radius; 0 reproduces the nominal objective.
    """

    def __init__(
        self,
        system: SystemConfig | None = None,
        size_ratios: np.ndarray | None = None,
        bits_grid_points: int = 33,
        rho: float = 0.0,
    ) -> None:
        if rho < 0:
            raise ValueError("rho must be non-negative")
        if bits_grid_points < 2:
            raise ValueError("bits_grid_points must be at least 2")
        self.system = system if system is not None else SystemConfig()
        self.cost_model = LSMCostModel(self.system)
        self.rho = rho
        if size_ratios is None:
            upper = int(min(self.system.max_size_ratio, 100.0))
            size_ratios = np.arange(2, upper + 1, dtype=float)
        self.size_ratios = np.asarray(size_ratios, dtype=float)
        self.bits_grid = np.linspace(
            self.system.min_bits_per_entry,
            self.system.max_bits_per_entry * 0.999,
            bits_grid_points,
        )

    def _objective(self, workload: Workload, tuning: LSMTuning) -> float:
        cost_vector = self.cost_model.cost_vector(tuning)
        if self.rho == 0.0:
            return float(np.dot(workload.as_array(), cost_vector))
        region = UncertaintyRegion(expected=workload, rho=self.rho)
        return region.worst_case_cost(cost_vector)

    def tune(self, workload: Workload) -> TuningResult:
        """Exhaustively search the grid and return the best configuration."""
        best_tuning: LSMTuning | None = None
        best_value = np.inf
        evaluated = 0
        for policy in ALL_POLICIES:
            for size_ratio in self.size_ratios:
                for bits in self.bits_grid:
                    tuning = LSMTuning(
                        size_ratio=float(size_ratio),
                        bits_per_entry=float(bits),
                        policy=policy,
                    )
                    value = self._objective(workload, tuning)
                    evaluated += 1
                    if value < best_value:
                        best_value = value
                        best_tuning = tuning
        if best_tuning is None:
            raise RuntimeError("grid search evaluated no configurations")
        return TuningResult(
            tuning=best_tuning,
            objective=float(best_value),
            expected_workload=workload,
            rho=self.rho,
            solver_info={"evaluated_configurations": evaluated},
        )
