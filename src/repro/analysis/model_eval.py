"""Model-based evaluation drivers (Section 7, Figures 3–7).

Each public function regenerates the data behind one figure of the paper's
model-based study: it computes nominal and robust tunings with the solvers in
:mod:`repro.core`, evaluates them over the uncertainty benchmark with the
analytical cost model, and returns plain data structures (dictionaries,
NumPy arrays) that the benchmark harness prints as the paper's rows/series.

The functions accept a scaled-down benchmark and ρ grid so the full pipeline
stays fast enough for CI; passing the paper's sizes (10,000 samples, 17 ρ
values) reproduces the original experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..core.nominal import NominalTuner
from ..core.results import TuningResult
from ..core.robust import RobustTuner
from ..lsm.cost_model import LSMCostModel
from ..lsm.policy import CLASSIC_POLICIES, Policy
from ..lsm.system import SystemConfig
from ..workloads.benchmark import (
    ExpectedWorkload,
    UncertaintyBenchmark,
    WorkloadCategory,
    expected_workloads,
    rho_grid,
)
from ..workloads.workload import Workload
from .metrics import (
    average_delta_throughput,
    delta_throughput,
    throughput_range,
    throughputs,
    win_rate,
)


@dataclass
class TuningCatalog:
    """Caches nominal and robust tunings for the expected workloads.

    Computing a tuning takes a fraction of a second; the model evaluation
    needs hundreds of them (15 workloads × the ρ grid), so they are computed
    lazily and memoised here.
    """

    system: SystemConfig = field(default_factory=SystemConfig)
    starts_per_policy: int = 4
    policies: Sequence[Policy] = CLASSIC_POLICIES
    _nominal: dict[int, TuningResult] = field(default_factory=dict, init=False)
    _robust: dict[tuple[int, float], TuningResult] = field(
        default_factory=dict, init=False
    )

    @property
    def cost_model(self) -> LSMCostModel:
        """Cost model bound to the catalog's system configuration."""
        return LSMCostModel(self.system)

    def nominal(self, expected: ExpectedWorkload) -> TuningResult:
        """Nominal tuning ``Φ_N`` for one expected workload (cached)."""
        if expected.index not in self._nominal:
            tuner = NominalTuner(
                system=self.system,
                starts_per_policy=self.starts_per_policy,
                policies=self.policies,
            )
            self._nominal[expected.index] = tuner.tune(expected.workload)
        return self._nominal[expected.index]

    def robust(self, expected: ExpectedWorkload, rho: float) -> TuningResult:
        """Robust tuning ``Φ_R`` for one expected workload and ``ρ`` (cached)."""
        key = (expected.index, round(float(rho), 6))
        if key not in self._robust:
            tuner = RobustTuner(
                rho=float(rho),
                system=self.system,
                starts_per_policy=self.starts_per_policy,
                policies=self.policies,
            )
            self._robust[key] = tuner.tune(expected.workload)
        return self._robust[key]


# ----------------------------------------------------------------------
# Figure 3 — KL-divergence histograms of the benchmark set
# ----------------------------------------------------------------------
def figure3_kl_histograms(
    benchmark: UncertaintyBenchmark,
    reference_indices: Sequence[int] = (0, 1),
    bins: int = 40,
    max_divergence: float = 4.0,
) -> dict[str, dict[str, np.ndarray]]:
    """Histogram the KL divergence of the benchmark w.r.t. expected workloads.

    Returns, per reference workload name, the histogram densities and bin
    edges — the data plotted in Figure 3.
    """
    table = expected_workloads()
    result: dict[str, dict[str, np.ndarray]] = {}
    edges = np.linspace(0.0, max_divergence, bins + 1)
    for index in reference_indices:
        reference = table[index]
        divergences = benchmark.kl_divergences(reference.workload)
        finite = divergences[np.isfinite(divergences)]
        density, _ = np.histogram(finite, bins=edges, density=True)
        result[reference.name] = {
            "density": density,
            "bin_edges": edges,
            "mean": np.array([finite.mean()]),
        }
    return result


# ----------------------------------------------------------------------
# Figure 4 — average delta throughput per workload category vs ρ
# ----------------------------------------------------------------------
def figure4_delta_by_category(
    catalog: TuningCatalog,
    benchmark: UncertaintyBenchmark,
    rhos: Sequence[float] | None = None,
    categories: Sequence[WorkloadCategory] | None = None,
) -> dict[str, dict[float, float]]:
    """Average ``Δ_ŵ(Φ_N, Φ_R)`` per expected-workload category and ρ.

    Returns ``{category: {rho: mean delta}}`` — the series of Figure 4.
    """
    if rhos is None:
        rhos = [r for r in rho_grid() if r > 0]
    if categories is None:
        categories = list(WorkloadCategory)
    model = catalog.cost_model
    sampled = list(benchmark)
    result: dict[str, dict[float, float]] = {}
    for category in categories:
        members = [w for w in expected_workloads() if w.category is category]
        per_rho: dict[float, float] = {}
        for rho in rhos:
            deltas = []
            for expected in members:
                nominal = catalog.nominal(expected).tuning
                robust = catalog.robust(expected, rho).tuning
                deltas.append(
                    average_delta_throughput(model, sampled, nominal, robust)
                )
            per_rho[float(rho)] = float(np.mean(deltas))
        result[category.value] = per_rho
    return result


# ----------------------------------------------------------------------
# Figure 5 — impact of ρ on delta throughput vs observed divergence
# ----------------------------------------------------------------------
def figure5_rho_impact(
    catalog: TuningCatalog,
    benchmark: UncertaintyBenchmark,
    expected_index: int = 11,
    rhos: Sequence[float] = (0.0, 0.25, 1.0, 2.0),
) -> dict[float, dict[str, np.ndarray | str]]:
    """Per-ρ scatter data of ``Δ_ŵ(Φ_N, Φ_R)`` against ``I_KL(ŵ, w)``.

    Returns ``{rho: {"kl": ..., "delta": ..., "tuning": description}}`` —
    the panels of Figure 5.
    """
    expected = expected_workloads()[expected_index]
    model = catalog.cost_model
    nominal = catalog.nominal(expected).tuning
    divergences = benchmark.kl_divergences(expected.workload)
    result: dict[float, dict[str, np.ndarray | str]] = {}
    for rho in rhos:
        robust = catalog.robust(expected, rho).tuning
        deltas = np.array(
            [
                delta_throughput(model, workload, nominal, robust)
                for workload in benchmark
            ]
        )
        result[float(rho)] = {
            "kl": divergences.copy(),
            "delta": deltas,
            "tuning": robust.describe(),
        }
    return result


# ----------------------------------------------------------------------
# Figure 6 — throughput histograms and throughput range vs ρ
# ----------------------------------------------------------------------
def figure6_throughput_histograms(
    catalog: TuningCatalog,
    benchmark: UncertaintyBenchmark,
    expected_index: int = 11,
    rhos: Sequence[float] = (0.0, 0.25, 1.0, 2.0),
    bins: int = 30,
) -> dict[str, dict]:
    """Throughput distributions of the nominal and robust tunings (Fig. 6a)."""
    expected = expected_workloads()[expected_index]
    model = catalog.cost_model
    workloads = list(benchmark)
    nominal = catalog.nominal(expected).tuning
    nominal_tp = throughputs(model, workloads, nominal)
    edges = np.histogram_bin_edges(nominal_tp, bins=bins)
    result: dict[str, dict] = {
        "nominal": {
            "throughput": nominal_tp,
            "tuning": nominal.describe(),
        }
    }
    for rho in rhos:
        robust = catalog.robust(expected, rho).tuning
        result[f"robust_rho_{rho:g}"] = {
            "throughput": throughputs(model, workloads, robust),
            "tuning": robust.describe(),
        }
    result["bin_edges"] = {"edges": edges}
    return result


def figure6_throughput_range(
    catalog: TuningCatalog,
    benchmark: UncertaintyBenchmark,
    rhos: Sequence[float] | None = None,
    expected_indices: Sequence[int] | None = None,
) -> dict[str, dict[float, float]]:
    """Throughput range ``Θ_B`` vs ρ, averaged over expected workloads (Fig. 6b).

    Returns ``{"nominal": {rho: mean range}, "robust": {rho: mean range}}``
    (the nominal range is constant in ρ but repeated for easy plotting).
    """
    if rhos is None:
        rhos = [r for r in rho_grid() if r > 0]
    table = expected_workloads()
    if expected_indices is None:
        expected_indices = range(len(table))
    model = catalog.cost_model
    workloads = list(benchmark)
    nominal_ranges = {}
    robust_ranges: dict[float, list[float]] = {float(r): [] for r in rhos}
    for index in expected_indices:
        expected = table[index]
        nominal = catalog.nominal(expected).tuning
        nominal_ranges[index] = throughput_range(model, workloads, nominal)
        for rho in rhos:
            robust = catalog.robust(expected, rho).tuning
            robust_ranges[float(rho)].append(
                throughput_range(model, workloads, robust)
            )
    mean_nominal = float(np.mean(list(nominal_ranges.values())))
    return {
        "nominal": {float(r): mean_nominal for r in rhos},
        "robust": {r: float(np.mean(v)) for r, v in robust_ranges.items()},
    }


# ----------------------------------------------------------------------
# Figure 7 — contour of delta throughput over (ρ, KL divergence)
# ----------------------------------------------------------------------
def figure7_contour(
    catalog: TuningCatalog,
    benchmark: UncertaintyBenchmark,
    expected_index: int,
    rhos: Sequence[float] | None = None,
    kl_bins: int = 8,
    max_divergence: float = 3.2,
) -> dict[str, np.ndarray]:
    """Mean ``Δ_ŵ(Φ_N, Φ_R)`` binned over (ρ, observed KL divergence).

    Returns the contour grid of Figure 7: ``rho_values``, ``kl_edges`` and a
    matrix ``delta`` of shape (len(rho_values), kl_bins) whose entry (i, j)
    is the mean delta of benchmark workloads falling in KL bin j under the
    robust tuning computed with ρ = rho_values[i].
    """
    if rhos is None:
        rhos = [r for r in rho_grid(0.25, 3.0, 0.25)]
    expected = expected_workloads()[expected_index]
    model = catalog.cost_model
    nominal = catalog.nominal(expected).tuning
    divergences = benchmark.kl_divergences(expected.workload)
    kl_edges = np.linspace(0.0, max_divergence, kl_bins + 1)
    bin_index = np.clip(np.digitize(divergences, kl_edges) - 1, 0, kl_bins - 1)

    grid = np.full((len(rhos), kl_bins), np.nan)
    for i, rho in enumerate(rhos):
        robust = catalog.robust(expected, rho).tuning
        deltas = np.array(
            [
                delta_throughput(model, workload, nominal, robust)
                for workload in benchmark
            ]
        )
        for j in range(kl_bins):
            mask = bin_index == j
            if np.any(mask):
                grid[i, j] = float(np.mean(deltas[mask]))
    return {
        "rho_values": np.asarray(list(rhos), dtype=float),
        "kl_edges": kl_edges,
        "delta": grid,
    }


# ----------------------------------------------------------------------
# Tuning table and §8.4 aggregate win rate
# ----------------------------------------------------------------------
def tuning_table(
    catalog: TuningCatalog, rho: float = 1.0
) -> list[dict[str, str | float]]:
    """Nominal vs robust tunings for every expected workload.

    One row per Table 2 workload with both tunings' (policy, T, h); this is
    the configuration information the paper reports atop Figures 8–18.
    """
    rows = []
    for expected in expected_workloads():
        nominal = catalog.nominal(expected)
        robust = catalog.robust(expected, rho)
        rows.append(
            {
                "workload": expected.name,
                "composition": expected.workload.describe(),
                "category": expected.category.value,
                "nominal": nominal.tuning.describe(),
                "robust": robust.tuning.describe(),
                "nominal_cost": nominal.objective,
                "robust_worst_case_cost": robust.objective,
            }
        )
    return rows


def cost_landscape(
    workload: Workload,
    policy: Policy | str,
    system: SystemConfig | None = None,
    size_ratios: Sequence[float] | np.ndarray | None = None,
    bits_grid_points: int = 33,
) -> dict[str, np.ndarray]:
    """Expected-cost surface of one policy over the ``(T, h)`` design grid.

    Evaluates ``C(w, Φ)`` for every candidate tuning in a single vectorised
    :meth:`~repro.lsm.cost_model.LSMCostModel.cost_matrix` pass — the data
    behind design-landscape contour plots and a direct way to eyeball why
    the tuner picks the configuration it picks.

    Returns ``{"size_ratios", "bits_per_entry", "cost"}`` where ``cost`` has
    shape ``(len(size_ratios), bits_grid_points)``.
    """
    system = system if system is not None else SystemConfig()
    model = LSMCostModel(system)
    if size_ratios is None:
        size_ratios = np.arange(2, int(system.max_size_ratio) + 1, dtype=float)
    size_ratios = np.asarray(size_ratios, dtype=float)
    bits = np.linspace(
        system.min_bits_per_entry, system.max_bits_per_entry * 0.999, bits_grid_points
    )
    cost = model.workload_cost_matrix(workload, size_ratios, bits, policy)
    return {"size_ratios": size_ratios, "bits_per_entry": bits, "cost": cost}


def policy_table(
    catalog: TuningCatalog,
    policies: Sequence[Policy] | None = None,
    expected_indices: Sequence[int] | None = None,
) -> list[dict[str, str | float]]:
    """Best nominal tuning of every expected workload under each policy alone.

    One row per Table 2 workload with, per policy, the optimal ``(T, h)``
    and its expected cost — the side-by-side view that shows where lazy
    leveling's hybrid wins over the two classical policies.
    """
    if policies is None:
        policies = list(Policy)
    table = expected_workloads()
    if expected_indices is None:
        expected_indices = range(len(table))
    rows: list[dict[str, str | float]] = []
    for expected in (table[i] for i in expected_indices):
        row: dict[str, str | float] = {
            "workload": expected.name,
            "composition": expected.workload.describe(),
        }
        best_policy, best_cost = None, np.inf
        for policy in policies:
            tuner = NominalTuner(
                system=catalog.system,
                starts_per_policy=catalog.starts_per_policy,
                policies=(policy,),
            )
            result = tuner.tune(expected.workload)
            row[f"{policy.value}_tuning"] = result.tuning.describe()
            row[f"{policy.value}_cost"] = result.objective
            if result.objective < best_cost:
                best_policy, best_cost = policy, result.objective
        row["best_policy"] = best_policy.value if best_policy is not None else ""
        rows.append(row)
    return rows


def policy_frontier(
    workloads: Sequence[tuple[str, Workload]],
    system: SystemConfig | None = None,
    policies: Sequence[Policy] | None = None,
    ratio_candidates: Sequence[float] | None = None,
    fluid_k_grid: Sequence[float] | None = None,
    fluid_z_grid: Sequence[float] | None = None,
    starts_per_policy: int = 2,
) -> list[dict[str, str | float]]:
    """Best nominal tuning of each named workload under every policy alone.

    The generalisation of :func:`policy_table` to arbitrary (possibly
    long-range-carrying) workloads: one row per workload with, per policy,
    the optimal tuning and its expected cost, plus the winning policy.  For
    ``Policy.FLUID`` the tuner selects the run bounds ``K``/``Z`` itself, so
    the table shows where in the workload space the hybrids pay off —
    Dostoevsky's frontier, evaluated under this model's short/long range
    split.
    """
    if system is None:
        system = SystemConfig()
    if policies is None:
        policies = list(Policy)
    rows: list[dict[str, str | float]] = []
    for name, workload in workloads:
        row: dict[str, str | float] = {
            "workload": name,
            "composition": workload.describe(),
        }
        best_policy, best_cost = None, np.inf
        for policy in policies:
            tuner = NominalTuner(
                system=system,
                starts_per_policy=starts_per_policy,
                policies=(policy,),
                ratio_candidates=ratio_candidates,
                fluid_k_grid=fluid_k_grid,
                fluid_z_grid=fluid_z_grid,
            )
            result = tuner.tune(workload)
            row[f"{policy.value}_tuning"] = result.tuning.describe()
            row[f"{policy.value}_cost"] = result.objective
            if result.objective < best_cost:
                best_policy, best_cost = policy, result.objective
        row["best_policy"] = best_policy.value if best_policy is not None else ""
        rows.append(row)
    return rows


def kvector_frontier(
    workloads: Sequence[tuple[str, Workload]],
    system: SystemConfig | None = None,
    ratio_candidates: Sequence[float] | None = None,
    fluid_k_grid: Sequence[float] | None = None,
    fluid_z_grid: Sequence[float] | None = None,
    starts_per_policy: int = 2,
    k_vector_levels: int = 4,
    seed: int = 0,
) -> list[dict[str, object]]:
    """Where a non-uniform per-level ``K_i`` ladder beats every uniform hybrid.

    For each named workload two fluid tuners run side by side:

    * the **uniform** tuner — the scalar ``(K, Z)`` sweep, i.e. the best
      tuning any single shared upper-level bound can reach;
    * the **vector** tuner — the same sweep plus the structured ``K_i``
      families, coordinate descent and the continuous-bound polish
      (``k_vector_search=True``).

    The row reports both optima and the vector advantage
    ``1 − vector_cost / uniform_cost``; a strictly positive advantage means
    no uniform ``(K, Z)`` pair — hence no classical policy either — can
    match the per-level ladder.  Because the vector search contains every
    uniform design, the advantage can never be negative.
    """
    if system is None:
        system = SystemConfig()
    rows: list[dict[str, object]] = []
    common = dict(
        system=system,
        policies=(Policy.FLUID,),
        ratio_candidates=ratio_candidates,
        fluid_k_grid=fluid_k_grid,
        fluid_z_grid=fluid_z_grid,
        starts_per_policy=starts_per_policy,
        seed=seed,
    )
    for name, workload in workloads:
        uniform = NominalTuner(**common).tune(workload)
        vector = NominalTuner(
            **common, k_vector_search=True, k_vector_levels=k_vector_levels
        ).tune(workload)
        uniform_cost = float(uniform.objective)
        # Every uniform design is a member of the vector space, so the
        # vector-space winner is whichever of the two solves came out ahead
        # — the reported tuning always achieves the reported cost, and a
        # vector-search regression surfaces as a zero advantage with the
        # uniform design reported, never as a phantom cost.
        if float(vector.objective) > uniform_cost:
            vector = uniform
        vector_cost = float(vector.objective)
        deployed = vector.tuning.rounded()
        rows.append(
            {
                "workload": name,
                "composition": workload.describe(),
                "uniform_cost": uniform_cost,
                "uniform_tuning": uniform.tuning.describe(),
                "vector_cost": vector_cost,
                "vector_tuning": vector.tuning.describe(),
                "vector_advantage": 1.0 - vector_cost / uniform_cost,
                # Machine-readable *deployable* bounds of the vector winner
                # (``None`` when it stayed scalar): the continuous polish
                # output rounded and clamped exactly as the simulator would
                # deploy it.
                "vector_k_bounds": (
                    None if deployed.k_bounds is None else list(deployed.k_bounds)
                ),
                "vector_z_bound": deployed.z_bound,
            }
        )
    return rows


def section84_win_rate(
    catalog: TuningCatalog,
    benchmark: UncertaintyBenchmark,
    rhos: Sequence[float] | None = None,
    expected_indices: Sequence[int] | None = None,
) -> dict[str, float]:
    """Fraction of (workload, ρ, ŵ) comparisons the robust tuning wins (§8.4)."""
    if rhos is None:
        rhos = [r for r in rho_grid() if r > 0]
    table = expected_workloads()
    if expected_indices is None:
        expected_indices = range(len(table))
    model = catalog.cost_model
    workloads = list(benchmark)
    rates = []
    comparisons = 0
    for index in expected_indices:
        expected = table[index]
        nominal = catalog.nominal(expected).tuning
        for rho in rhos:
            robust = catalog.robust(expected, rho).tuning
            rates.append(win_rate(model, workloads, nominal, robust))
            comparisons += len(workloads)
    return {
        "win_rate": float(np.mean(rates)),
        "comparisons": float(comparisons),
    }
