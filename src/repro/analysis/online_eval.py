"""Online adaptive tuning evaluation — the online analogue of Figures 8–18.

The paper's system experiments replay *drifting* session sequences against
statically tuned trees; this driver replays the same kind of sequences with
the online adaptive subsystem enabled and tabulates, per session,

* the measured I/Os per query of the *static nominal* tuning (tuned once for
  the expected workload),
* the static *robust* tuning (tuned once for the KL ball around it),
* the *per-phase static* tunings — one nominal tuning per drift phase, the
  hindsight configurations an oracle operator would have deployed —
* and the *adaptive* executor, which starts from the static nominal tuning
  and re-tunes on drift, with every migrated page charged to its stream.

The headline comparison: adaptive should beat static nominal outright (the
drift escapes the expectation) and, once its migration has converged, track
the best per-phase static tuning, while paying for its own migrations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..core.nominal import NominalTuner
from ..core.robust import RobustTuner
from ..lsm.policy import CLASSIC_POLICIES, Policy
from ..lsm.system import SystemConfig, simulator_system
from ..lsm.tuning import LSMTuning
from ..online.controller import OnlineConfig, RetuningEvent
from ..storage.executor import (
    AdaptiveSequenceMeasurement,
    ExecutorConfig,
    SequenceMeasurement,
    WorkloadExecutor,
)
from ..workloads.benchmark import UncertaintyBenchmark
from ..workloads.sessions import SessionGenerator, SessionSequence, SessionType
from ..workloads.workload import Workload, average_workload

#: Name of the adaptive executor's column in tables and dictionaries.
ADAPTIVE = "adaptive"

#: Prefix of the per-phase static tunings' column names.
PHASE_PREFIX = "phase-"


def drifting_sequence(
    generator: SessionGenerator,
    expected: Workload,
    phases: Sequence[SessionType | str] = (SessionType.READ, SessionType.WRITE),
    sessions_per_phase: int = 3,
    workloads_per_session: int = 2,
) -> SessionSequence:
    """A session sequence that dwells in each phase before drifting to the next.

    Unlike :meth:`~repro.workloads.sessions.SessionGenerator.paper_sequence`,
    which hops between session types every session, this produces sustained
    phases (``sessions_per_phase`` sessions each) — the kind of drift a
    windowed estimator can actually detect and a migration can pay off on.
    """
    if sessions_per_phase <= 0:
        raise ValueError("sessions_per_phase must be positive")
    if not phases:
        raise ValueError("at least one phase is required")
    sessions = tuple(
        generator.session(phase, expected, workloads_per_session)
        for phase in phases
        for _ in range(sessions_per_phase)
    )
    return SessionSequence(expected=expected, sessions=sessions)


def _phase_of(index: int, num_phases: int, num_sessions: int) -> int:
    """Phase index of session ``index`` in an evenly phased sequence."""
    per_phase = num_sessions // num_phases
    return min(index // per_phase, num_phases - 1)


def phase_names(phases: Sequence[SessionType | str]) -> list[str]:
    """Unique table-column name of each phase occurrence.

    A session type that recurs (e.g. the returning phase of an A→B→A
    sequence) gets an occurrence suffix, so every phase keeps its own
    per-phase static tuning instead of silently sharing one.
    """
    names: list[str] = []
    seen: dict[str, int] = {}
    for phase in phases:
        base = PHASE_PREFIX + str(SessionType(phase).value)
        seen[base] = seen.get(base, 0) + 1
        names.append(base if seen[base] == 1 else f"{base}-{seen[base]}")
    return names


@dataclass(frozen=True)
class AdaptiveSessionRow:
    """Measured I/Os per query of one session under every executor."""

    session: str
    phase: str
    observed_workload: Workload
    system_ios: Mapping[str, float]
    latency_us: Mapping[str, float]
    #: The per-phase static tuning this session's phase belongs to.
    oracle_name: str

    @property
    def oracle_ios(self) -> float:
        """Measured I/Os of the hindsight (per-phase static) tuning."""
        return self.system_ios[self.oracle_name]

    def to_dict(self) -> dict[str, object]:
        """Serialise to plain JSON-compatible data."""
        return {
            "session": self.session,
            "phase": self.phase,
            "observed_workload": self.observed_workload.as_dict(),
            "system_ios": dict(self.system_ios),
            "latency_us": dict(self.latency_us),
            "oracle_name": self.oracle_name,
        }


@dataclass(frozen=True)
class AdaptiveComparison:
    """Static nominal / static robust / per-phase / adaptive over one sequence."""

    expected: Workload
    rho: float
    tunings: Mapping[str, LSMTuning]
    sessions: tuple[AdaptiveSessionRow, ...]
    events: tuple[RetuningEvent, ...]
    final_tuning: LSMTuning

    @property
    def num_migrations(self) -> int:
        """Migrations the adaptive executor applied."""
        return sum(1 for event in self.events if event.migrated)

    @property
    def migration_pages(self) -> int:
        """Total pages read + written by those migrations."""
        return sum(event.migration_pages for event in self.events)

    def mean_ios(self, name: str) -> float:
        """Mean measured I/Os per query of one executor over all sessions."""
        return float(np.mean([row.system_ios[name] for row in self.sessions]))

    @property
    def oracle_mean_ios(self) -> float:
        """Mean I/Os of the best per-phase static tuning (hindsight baseline)."""
        return float(np.mean([row.oracle_ios for row in self.sessions]))

    def summary(self) -> dict[str, float]:
        """Aggregate comparison of the adaptive executor against the statics.

        ``adaptive_vs_oracle_converged`` compares only the *last* session of
        each drifted phase (every phase after the first) — after the detector
        has fired and any migration settled — which is the steady-state
        question the oracle baseline really asks; the plain means still
        charge the full detection lag and migration.
        """
        adaptive = self.mean_ios(ADAPTIVE)
        nominal = self.mean_ios("nominal")
        robust = self.mean_ios("robust")
        oracle = self.oracle_mean_ios
        # Keyed by the per-occurrence oracle name, so a returning phase
        # (A→B→A) contributes its own converged session rather than being
        # collapsed into the first occurrence.
        last_rows = {row.oracle_name: row for row in self.sessions}
        first_phase = self.sessions[0].oracle_name
        drifted = [
            row for name, row in last_rows.items() if name != first_phase
        ] or list(last_rows.values())
        converged = float(
            np.mean(
                [
                    row.system_ios[ADAPTIVE] / max(row.oracle_ios, 1e-12)
                    for row in drifted
                ]
            )
        )
        return {
            "nominal_mean_io_per_query": nominal,
            "robust_mean_io_per_query": robust,
            "adaptive_mean_io_per_query": adaptive,
            "oracle_mean_io_per_query": oracle,
            "adaptive_vs_nominal_reduction": 1.0 - adaptive / max(nominal, 1e-12),
            "adaptive_vs_robust_reduction": 1.0 - adaptive / max(robust, 1e-12),
            "adaptive_vs_oracle_ratio": adaptive / max(oracle, 1e-12),
            "adaptive_vs_oracle_converged": converged,
            "num_migrations": float(self.num_migrations),
            "migration_pages": float(self.migration_pages),
        }

    def to_dict(self) -> dict[str, object]:
        """Serialise the whole comparison to plain JSON-compatible data."""
        return {
            "expected_workload": self.expected.as_dict(),
            "rho": self.rho,
            "tunings": {
                name: tuning.to_dict() for name, tuning in self.tunings.items()
            },
            "final_tuning": self.final_tuning.to_dict(),
            "sessions": [row.to_dict() for row in self.sessions],
            "events": [event.to_dict() for event in self.events],
            "summary": self.summary(),
        }


@dataclass
class AdaptiveExperiment:
    """Runs one static-vs-adaptive experiment over a drifting sequence.

    Mirrors :class:`~repro.analysis.system_eval.SystemExperiment` but with
    sustained drift phases and the online subsystem in the comparison.
    """

    system: SystemConfig = field(default_factory=lambda: simulator_system(10_000))
    executor_config: ExecutorConfig = field(
        default_factory=lambda: ExecutorConfig(queries_per_workload=1_000)
    )
    benchmark: UncertaintyBenchmark | None = None
    online: OnlineConfig = field(
        default_factory=lambda: OnlineConfig(
            window=400,
            check_interval=64,
            min_observations=256,
            cooldown=2_048,
            confirm_checks=5,
            rho=1.0,
            mode="nominal",
            horizon_ops=12_000,
        )
    )
    policies: Sequence[Policy] = CLASSIC_POLICIES
    starts_per_policy: int = 2
    parallel: bool = False
    seed: int = 11

    def __post_init__(self) -> None:
        if self.benchmark is None:
            self.benchmark = UncertaintyBenchmark(size=500, seed=self.seed)
        self.executor = WorkloadExecutor(self.system, self.executor_config)

    # ------------------------------------------------------------------
    # Tunings
    # ------------------------------------------------------------------
    def _nominal_for(self, workload: Workload) -> LSMTuning:
        tuner = NominalTuner(
            system=self.system,
            policies=self.policies,
            starts_per_policy=self.starts_per_policy,
        )
        return tuner.tune(workload).tuning.rounded()

    def static_tunings(
        self, expected: Workload, rho: float, sequence: SessionSequence,
        phases: Sequence[SessionType | str],
    ) -> dict[str, LSMTuning]:
        """Static nominal + robust for ``expected``, plus one per drift phase.

        The per-phase tunings are nominal solutions for the *realised*
        average workload of each phase's sessions — exactly what an oracle
        operator with hindsight would have deployed.
        """
        tunings = {
            "nominal": self._nominal_for(expected),
            "robust": RobustTuner(
                rho=rho,
                system=self.system,
                policies=self.policies,
                starts_per_policy=self.starts_per_policy,
            ).tune(expected).tuning.rounded(),
        }
        num_phases = len(phases)
        for phase_index, name in enumerate(phase_names(phases)):
            phase_sessions = [
                session
                for index, session in enumerate(sequence)
                if _phase_of(index, num_phases, len(sequence)) == phase_index
            ]
            phase_average = average_workload(
                workload for session in phase_sessions for workload in session.workloads
            )
            tunings[name] = self._nominal_for(phase_average)
        return tunings

    # ------------------------------------------------------------------
    # Experiment execution
    # ------------------------------------------------------------------
    def run(
        self,
        expected: Workload,
        rho: float,
        phases: Sequence[SessionType | str] = (SessionType.READ, SessionType.WRITE),
        sessions_per_phase: int = 3,
        workloads_per_session: int = 2,
    ) -> AdaptiveComparison:
        """Execute the full static-vs-adaptive comparison."""
        phases = tuple(SessionType(p) if isinstance(p, str) else p for p in phases)
        sequence = self._sequence(
            expected, phases, sessions_per_phase, workloads_per_session
        )
        tunings = self.static_tunings(expected, rho, sequence, phases)
        measurements = self.executor.compare_adaptive(
            tunings,
            sequence,
            adaptive_from="nominal",
            online=self.online,
            policies=self.policies,
            parallel=self.parallel,
        )
        return self._build_comparison(
            expected, rho, phases, sequence, tunings, measurements
        )

    def run_variants(
        self,
        expected: Workload,
        rho: float,
        variants: Mapping[str, OnlineConfig],
        phases: Sequence[SessionType | str] = (
            SessionType.READ,
            SessionType.WRITE,
            SessionType.READ,
        ),
        sessions_per_phase: int = 3,
        workloads_per_session: int = 2,
    ) -> dict[str, AdaptiveComparison]:
        """One adaptive comparison per online configuration, statics shared.

        The session sequence, the static tunings and their measurements are
        computed once; each variant then replays the *same* operation stream
        through its own adaptive executor.  This is the endurance harness:
        e.g. ``{"full": ..., "incremental": ..., "adaptive-rho": ...}`` over
        an A→B→A sequence isolates what the migration mode and the
        drift-aware radius each change, everything else held fixed.
        """
        phases = tuple(SessionType(p) if isinstance(p, str) else p for p in phases)
        sequence = self._sequence(
            expected, phases, sessions_per_phase, workloads_per_session
        )
        tunings = self.static_tunings(expected, rho, sequence, phases)
        static = dict(self.executor.compare(tunings, sequence, parallel=self.parallel))
        comparisons: dict[str, AdaptiveComparison] = {}
        for name, online in variants.items():
            adaptive = self.executor.run_sequence_adaptive(
                tunings["nominal"], sequence, online=online, policies=self.policies
            )
            measurements: dict[str, SequenceMeasurement] = dict(static)
            measurements[ADAPTIVE] = adaptive
            comparisons[name] = self._build_comparison(
                expected, rho, phases, sequence, tunings, measurements
            )
        return comparisons

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _sequence(
        self,
        expected: Workload,
        phases: tuple[SessionType, ...],
        sessions_per_phase: int,
        workloads_per_session: int,
    ) -> SessionSequence:
        generator = SessionGenerator(self.benchmark, seed=self.seed)
        return drifting_sequence(
            generator,
            expected,
            phases=phases,
            sessions_per_phase=sessions_per_phase,
            workloads_per_session=workloads_per_session,
        )

    def _build_comparison(
        self,
        expected: Workload,
        rho: float,
        phases: tuple[SessionType, ...],
        sequence: SessionSequence,
        tunings: dict[str, LSMTuning],
        measurements: Mapping[str, SequenceMeasurement],
    ) -> AdaptiveComparison:
        adaptive: AdaptiveSequenceMeasurement = measurements[ADAPTIVE]
        rows = []
        num_phases = len(phases)
        oracle_names = phase_names(phases)
        for index, session in enumerate(sequence):
            phase_index = _phase_of(index, num_phases, len(sequence))
            names = list(tunings) + [ADAPTIVE]
            rows.append(
                AdaptiveSessionRow(
                    session=f"{index + 1}:{session.label}",
                    phase=str(phases[phase_index].value),
                    observed_workload=session.average,
                    system_ios={
                        name: measurements[name].sessions[index].ios_per_query
                        for name in names
                    },
                    latency_us={
                        name: measurements[name].sessions[index].latency_us_per_query
                        for name in names
                    },
                    oracle_name=oracle_names[phase_index],
                )
            )
        return AdaptiveComparison(
            expected=expected,
            rho=rho,
            tunings=tunings,
            sessions=tuple(rows),
            events=adaptive.events,
            final_tuning=adaptive.final_tuning,
        )


@dataclass(frozen=True)
class EnduranceComparison:
    """Adaptive-executor variants over one returning-phase (A→B→A) sequence.

    Produced by :meth:`AdaptiveExperiment.run_variants`; expects (at least)
    the three canonical variants:

    * ``"full"`` — all-at-once migrations with a fixed radius,
    * ``"incremental"`` — the level-by-level migration plan, fixed radius,
    * ``"adaptive-rho"`` — incremental migrations with the drift-aware
      (volatility-widened) robust radius.
    """

    variants: Mapping[str, AdaptiveComparison]

    FULL = "full"
    INCREMENTAL = "incremental"
    ADAPTIVE_RHO = "adaptive-rho"

    def __post_init__(self) -> None:
        required = {self.FULL, self.INCREMENTAL, self.ADAPTIVE_RHO}
        missing = required - set(self.variants)
        if missing:
            raise ValueError(
                "EnduranceComparison needs the canonical variants "
                f"{sorted(required)}; missing {sorted(missing)} "
                "(run_variants accepts arbitrary names — wrap only the "
                "endurance trio in this comparison)"
            )

    def worst_session_ios(self, name: str) -> float:
        """Worst per-session I/Os per query of one variant's adaptive run.

        The endurance suite's spike metric: a full migration concentrates
        its whole rebuild in the session the detector fired in, an
        incremental plan spreads it.
        """
        return max(row.system_ios[ADAPTIVE] for row in self.variants[name].sessions)

    def summary(self) -> dict[str, float]:
        """The endurance suite's pinned claims, as one flat mapping."""
        full = self.variants[self.FULL]
        incremental = self.variants[self.INCREMENTAL]
        adaptive_rho = self.variants[self.ADAPTIVE_RHO]
        full_worst = self.worst_session_ios(self.FULL)
        incremental_worst = self.worst_session_ios(self.INCREMENTAL)
        return {
            "full_worst_session_io": full_worst,
            "incremental_worst_session_io": incremental_worst,
            "spike_reduction": 1.0 - incremental_worst / max(full_worst, 1e-12),
            "full_mean_io": full.mean_ios(ADAPTIVE),
            "incremental_mean_io": incremental.mean_ios(ADAPTIVE),
            "oracle_mean_io": incremental.oracle_mean_ios,
            "incremental_vs_oracle_ratio": incremental.mean_ios(ADAPTIVE)
            / max(incremental.oracle_mean_ios, 1e-12),
            "fixed_rho_migrations": float(incremental.num_migrations),
            "adaptive_rho_migrations": float(adaptive_rho.num_migrations),
            "adaptive_rho_mean_io": adaptive_rho.mean_ios(ADAPTIVE),
            "adaptive_rho_migration_pages": float(adaptive_rho.migration_pages),
            "incremental_migration_pages": float(incremental.migration_pages),
        }

    def to_dict(self) -> dict[str, object]:
        """Serialise the whole endurance comparison to plain data."""
        return {
            "variants": {
                name: comparison.to_dict()
                for name, comparison in self.variants.items()
            },
            "summary": self.summary(),
        }


def format_endurance_comparison(comparison: EnduranceComparison) -> str:
    """Render an :class:`EnduranceComparison` as a text table."""
    variants = comparison.variants
    reference = next(iter(variants.values()))
    lines = [
        f"expected workload: {reference.expected.describe()}"
        f"  rho={reference.rho:g}  (A->B->A endurance)",
    ]
    for name, tuning in reference.tunings.items():
        lines.append(f"  {name + ':':<13}{tuning.describe()}")

    names = list(variants)
    header = f"  {'session':<18}{'oracle':>13}" + "".join(
        f"{name:>15}" for name in names
    )
    lines.append(header)
    for index, row in enumerate(reference.sessions):
        cells = "".join(
            f"{variants[name].sessions[index].system_ios[ADAPTIVE]:>15.2f}"
            for name in names
        )
        lines.append(f"  {row.session:<18}{row.oracle_ios:>13.2f}" + cells)

    for name in names:
        comp = variants[name]
        lines.append(
            f"  {name}: {comp.num_migrations} migration(s),"
            f" {comp.migration_pages} pages,"
            f" worst session {comparison.worst_session_ios(name):.2f} io/q,"
            f" mean {comp.mean_ios(ADAPTIVE):.2f} io/q,"
            f" final [{comp.final_tuning.describe()}]"
        )
        for event in comp.events:
            decision = event.decision
            action = (
                f"migrated over {event.migration_steps} step(s)"
                f" to [{decision.proposed.describe()}]"
                if event.migrated
                else "declined"
            )
            lines.append(
                f"    drift @ op {event.position}:"
                f" rho={decision.rho:.2f}"
                f"  migration={decision.migration_ios:.0f} I/Os -> {action}"
            )

    summary = comparison.summary()
    lines.append(
        "  worst per-session I/O spike:"
        f" full {summary['full_worst_session_io']:.2f}"
        f" -> incremental {summary['incremental_worst_session_io']:.2f}"
        f" ({100 * summary['spike_reduction']:.1f}% lower)"
    )
    lines.append(
        "  mean I/Os per query:"
        f" full {summary['full_mean_io']:.2f}"
        f"  incremental {summary['incremental_mean_io']:.2f}"
        f"  adaptive-rho {summary['adaptive_rho_mean_io']:.2f}"
        f"  oracle {summary['oracle_mean_io']:.2f}"
        f"  (incremental {summary['incremental_vs_oracle_ratio']:.2f}x oracle)"
    )
    lines.append(
        "  migrations on the cyclic trace:"
        f" fixed-rho {summary['fixed_rho_migrations']:.0f}"
        f" -> adaptive-rho {summary['adaptive_rho_migrations']:.0f}"
    )
    return "\n".join(lines)


def format_adaptive_comparison(comparison: AdaptiveComparison) -> str:
    """Render an :class:`AdaptiveComparison` as a text table."""
    lines = [
        f"expected workload: {comparison.expected.describe()}"
        f"  rho={comparison.rho:g}",
    ]
    for name, tuning in comparison.tunings.items():
        lines.append(f"  {name + ':':<13}{tuning.describe()}")
    lines.append(f"  {'final:':<13}{comparison.final_tuning.describe()}  (adaptive)")

    names = list(comparison.tunings) + [ADAPTIVE]
    header = f"  {'session':<18}" + "".join(f"{name:>13}" for name in names)
    lines.append(header)
    for row in comparison.sessions:
        lines.append(
            f"  {row.session:<18}"
            + "".join(f"{row.system_ios[name]:>13.2f}" for name in names)
        )

    for event in comparison.events:
        decision = event.decision
        action = (
            f"migrated to [{decision.proposed.describe()}]"
            if event.migrated
            else "declined"
        )
        lines.append(
            f"  drift @ op {event.position}: KL={event.divergence:.2f}"
            f"  gain={decision.predicted_gain:.2f} io/q"
            f"  migration={decision.migration_ios:.0f} I/Os -> {action}"
        )

    summary = comparison.summary()
    lines.append(
        "  mean I/Os per query:"
        f"  nominal {summary['nominal_mean_io_per_query']:.2f}"
        f"  robust {summary['robust_mean_io_per_query']:.2f}"
        f"  oracle {summary['oracle_mean_io_per_query']:.2f}"
        f"  adaptive {summary['adaptive_mean_io_per_query']:.2f}"
    )
    lines.append(
        f"  adaptive vs nominal: {100 * summary['adaptive_vs_nominal_reduction']:.1f}%"
        f" fewer I/Os; vs best per-phase static:"
        f" {summary['adaptive_vs_oracle_ratio']:.2f}x overall,"
        f" {summary['adaptive_vs_oracle_converged']:.2f}x converged"
        f" ({comparison.num_migrations} migration(s),"
        f" {comparison.migration_pages} pages)"
    )
    return "\n".join(lines)
