"""Evaluation metrics of Section 7.1.

* ``throughput(w, Φ) = 1 / C(w, Φ)`` — reciprocal of the expected per-query
  cost under the analytical model;
* normalised delta throughput ``Δ_w(Φ1, Φ2)`` — relative throughput gain of
  ``Φ2`` over ``Φ1`` on workload ``w``;
* throughput range ``Θ_B(Φ)`` — spread between the best- and worst-case
  throughput of one tuning over a benchmark set, a consistency measure.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..lsm.cost_model import LSMCostModel
from ..lsm.tuning import LSMTuning
from ..workloads.workload import Workload


def throughput(model: LSMCostModel, workload: Workload, tuning: LSMTuning) -> float:
    """Throughput proxy ``1 / C(w, Φ)`` of a tuning on one workload."""
    return model.throughput(workload, tuning)


def delta_throughput(
    model: LSMCostModel,
    workload: Workload,
    baseline: LSMTuning,
    candidate: LSMTuning,
) -> float:
    """Normalised delta throughput ``Δ_w(baseline, candidate)``.

    Positive values mean ``candidate`` outperforms ``baseline`` on
    ``workload``; ``-0.5`` means it achieves half the baseline's throughput.
    """
    base = throughput(model, workload, baseline)
    cand = throughput(model, workload, candidate)
    return (cand - base) / base


def average_delta_throughput(
    model: LSMCostModel,
    workloads: Iterable[Workload],
    baseline: LSMTuning,
    candidate: LSMTuning,
) -> float:
    """Mean of ``Δ_w`` over a collection of workloads."""
    deltas = [
        delta_throughput(model, workload, baseline, candidate) for workload in workloads
    ]
    if not deltas:
        raise ValueError("at least one workload is required")
    return float(np.mean(deltas))


def throughput_range(
    model: LSMCostModel, workloads: Sequence[Workload], tuning: LSMTuning
) -> float:
    """Throughput range ``Θ_B(Φ)`` over a benchmark set of workloads.

    Smaller values mean the tuning performs more consistently across the
    benchmark (lower variance in achievable throughput).
    """
    if not workloads:
        raise ValueError("at least one workload is required")
    values = np.array([throughput(model, w, tuning) for w in workloads])
    return float(values.max() - values.min())


def throughputs(
    model: LSMCostModel, workloads: Sequence[Workload], tuning: LSMTuning
) -> np.ndarray:
    """Throughput of one tuning on every workload of a benchmark set."""
    return np.array([throughput(model, w, tuning) for w in workloads])


def win_rate(
    model: LSMCostModel,
    workloads: Sequence[Workload],
    baseline: LSMTuning,
    candidate: LSMTuning,
    tolerance: float = 0.0,
) -> float:
    """Fraction of workloads where ``candidate`` beats ``baseline``.

    Used for the §8.4 headline ("robust tunings comprehensively outperform
    the nominal tunings in over 80% of comparisons").
    """
    if not workloads:
        raise ValueError("at least one workload is required")
    wins = sum(
        1
        for w in workloads
        if delta_throughput(model, w, baseline, candidate) > tolerance
    )
    return wins / len(workloads)
