"""Evaluation metrics and experiment drivers for the paper's figures."""

from .metrics import (
    average_delta_throughput,
    delta_throughput,
    throughput,
    throughput_range,
    throughputs,
    win_rate,
)
from .model_eval import (
    TuningCatalog,
    cost_landscape,
    figure3_kl_histograms,
    figure4_delta_by_category,
    figure5_rho_impact,
    figure6_throughput_histograms,
    figure6_throughput_range,
    figure7_contour,
    policy_frontier,
    policy_table,
    section84_win_rate,
    tuning_table,
)
from .online_eval import (
    AdaptiveComparison,
    AdaptiveExperiment,
    AdaptiveSessionRow,
    drifting_sequence,
    format_adaptive_comparison,
)
from .system_eval import (
    SequenceComparison,
    SessionComparison,
    SystemExperiment,
    format_comparison,
    scaling_experiment,
)

__all__ = [
    "AdaptiveComparison",
    "AdaptiveExperiment",
    "AdaptiveSessionRow",
    "SequenceComparison",
    "SessionComparison",
    "SystemExperiment",
    "TuningCatalog",
    "average_delta_throughput",
    "cost_landscape",
    "delta_throughput",
    "drifting_sequence",
    "figure3_kl_histograms",
    "figure4_delta_by_category",
    "figure5_rho_impact",
    "figure6_throughput_histograms",
    "figure6_throughput_range",
    "figure7_contour",
    "format_adaptive_comparison",
    "format_comparison",
    "policy_frontier",
    "policy_table",
    "scaling_experiment",
    "section84_win_rate",
    "throughput",
    "throughput_range",
    "throughputs",
    "tuning_table",
    "win_rate",
]
