"""System-based evaluation drivers (Section 8, Figures 1 and 8–18).

These functions pair the analytical cost model's predictions with actual
measurements from the pure-Python LSM-tree simulator, the reproduction's
stand-in for RocksDB.  Each driver returns, per session of a query sequence,

* the model-predicted I/Os per query for the nominal and robust tunings,
* the measured I/Os per query on the simulator,
* the simulated latency per query,

which is exactly the triptych (model I/O, system I/O, latency) the paper
plots in Figures 8–18.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..core.nominal import NominalTuner
from ..core.robust import RobustTuner
from ..lsm.cost_model import LSMCostModel
from ..lsm.policy import CLASSIC_POLICIES, Policy
from ..lsm.system import SystemConfig, simulator_system
from ..lsm.tuning import LSMTuning
from ..storage.executor import ExecutorConfig, WorkloadExecutor
from ..workloads.benchmark import UncertaintyBenchmark, expected_workloads
from ..workloads.sessions import SessionGenerator, SessionSequence
from ..workloads.workload import Workload


@dataclass(frozen=True)
class SessionComparison:
    """Model and system measurements of one session under two tunings."""

    session: str
    observed_workload: Workload
    model_ios: Mapping[str, float]
    system_ios: Mapping[str, float]
    latency_us: Mapping[str, float]

    def to_dict(self) -> dict[str, object]:
        """Serialise to plain JSON-compatible data."""
        return {
            "session": self.session,
            "observed_workload": self.observed_workload.as_dict(),
            "model_ios": dict(self.model_ios),
            "system_ios": dict(self.system_ios),
            "latency_us": dict(self.latency_us),
        }


@dataclass(frozen=True)
class SequenceComparison:
    """Full comparison of nominal vs robust tunings over a session sequence."""

    expected: Workload
    rho: float
    observed_divergence: float
    tunings: Mapping[str, LSMTuning]
    sessions: tuple[SessionComparison, ...]

    def summary(self) -> dict[str, float]:
        """Aggregate I/O and latency reductions of robust over nominal."""
        nominal_io = np.array([s.system_ios["nominal"] for s in self.sessions])
        robust_io = np.array([s.system_ios["robust"] for s in self.sessions])
        nominal_lat = np.array([s.latency_us["nominal"] for s in self.sessions])
        robust_lat = np.array([s.latency_us["robust"] for s in self.sessions])
        io_reduction = 1.0 - robust_io.sum() / max(nominal_io.sum(), 1e-12)
        latency_reduction = 1.0 - robust_lat.sum() / max(nominal_lat.sum(), 1e-12)
        return {
            "io_reduction": float(io_reduction),
            "latency_reduction": float(latency_reduction),
            "nominal_mean_io_per_query": float(nominal_io.mean()),
            "robust_mean_io_per_query": float(robust_io.mean()),
        }

    def to_dict(self) -> dict[str, object]:
        """Serialise the whole comparison to plain JSON-compatible data.

        This is what ``repro-endure compare --json`` emits, so downstream
        tooling can consume the experiment without scraping the text table.
        """
        return {
            "expected_workload": self.expected.as_dict(),
            "rho": self.rho,
            "observed_divergence": self.observed_divergence,
            "tunings": {
                name: tuning.to_dict() for name, tuning in self.tunings.items()
            },
            "sessions": [session.to_dict() for session in self.sessions],
            "summary": self.summary(),
        }


@dataclass
class SystemExperiment:
    """Runs one paper-style system experiment for a given expected workload.

    Parameters
    ----------
    system:
        Simulator-scale system configuration; defaults to a 50k-entry store.
    executor_config:
        Execution knobs (queries per session workload, latency model, seed).
    benchmark:
        Uncertainty benchmark supplying the session workloads.
    starts_per_policy:
        Multi-start budget of the tuners.
    policies:
        Compaction policies the tuners may choose from (the paper's
        classical pair by default; include
        :data:`~repro.lsm.policy.Policy.LAZY_LEVELING` to let the
        experiment deploy lazy-leveling trees).
    """

    system: SystemConfig = field(default_factory=simulator_system)
    executor_config: ExecutorConfig = field(default_factory=ExecutorConfig)
    benchmark: UncertaintyBenchmark | None = None
    starts_per_policy: int = 4
    policies: Sequence[Policy] = CLASSIC_POLICIES
    seed: int = 11

    def __post_init__(self) -> None:
        if self.benchmark is None:
            self.benchmark = UncertaintyBenchmark(size=1_000, seed=self.seed)
        self.cost_model = LSMCostModel(self.system)
        self.executor = WorkloadExecutor(self.system, self.executor_config)

    # ------------------------------------------------------------------
    # Tunings
    # ------------------------------------------------------------------
    def tunings_for(self, expected: Workload, rho: float) -> dict[str, LSMTuning]:
        """Nominal and robust tunings (deployable, integer T) for ``expected``."""
        nominal = NominalTuner(
            system=self.system,
            starts_per_policy=self.starts_per_policy,
            policies=self.policies,
        ).tune(expected)
        robust = RobustTuner(
            rho=rho,
            system=self.system,
            starts_per_policy=self.starts_per_policy,
            policies=self.policies,
        ).tune(expected)
        return {
            "nominal": nominal.tuning.rounded(),
            "robust": robust.tuning.rounded(),
        }

    # ------------------------------------------------------------------
    # Experiment execution
    # ------------------------------------------------------------------
    def run(
        self,
        expected: Workload,
        rho: float,
        include_writes: bool = True,
        workloads_per_session: int = 2,
    ) -> SequenceComparison:
        """Execute the six-session comparison of Figures 8–18.

        When ``expected`` carries a long-range fraction, the same split is
        applied to every session workload: the benchmark set is sampled over
        the four query types only, so the short/long range regime is a
        property of the experiment, not of the sampling.
        """
        generator = SessionGenerator(self.benchmark, seed=self.seed)
        sequence = generator.paper_sequence(
            expected,
            include_writes=include_writes,
            workloads_per_session=workloads_per_session,
        )
        if expected.long_range_fraction > 0.0:
            sequence = sequence.with_long_range_fraction(
                expected.long_range_fraction
            )
        tunings = self.tunings_for(expected, rho)
        return self._compare(expected, rho, sequence, tunings)

    def run_sharded(
        self,
        expected: Workload,
        rho: float,
        include_writes: bool = True,
        workloads_per_session: int = 2,
        parallel: bool = False,
    ):
        """The :meth:`run` comparison served by a hash-partitioned shard fleet.

        Shard count (and per-shard data dirs for the persistent backend)
        come from ``executor_config``; the merged fleet measurements read
        like :meth:`run`'s and collapse to them exactly at ``num_shards=1``.
        Returns a :class:`~repro.serving.executor.ShardedComparison`.
        """
        # Imported here: analysis stays importable without the serving layer.
        from ..serving import ShardedComparison, ShardedExecutor

        generator = SessionGenerator(self.benchmark, seed=self.seed)
        sequence = generator.paper_sequence(
            expected,
            include_writes=include_writes,
            workloads_per_session=workloads_per_session,
        )
        if expected.long_range_fraction > 0.0:
            sequence = sequence.with_long_range_fraction(
                expected.long_range_fraction
            )
        tunings = self.tunings_for(expected, rho)
        sharded = ShardedExecutor(self.system, self.executor_config)
        measurements = sharded.compare(tunings, sequence, parallel=parallel)
        return ShardedComparison(
            expected=expected,
            rho=rho,
            num_shards=self.executor_config.num_shards,
            tunings=tunings,
            measurements=measurements,
        )

    def run_motivation(
        self,
        expected: Workload,
        shifted: Workload,
        rho: float = 1.0,
        workloads_per_session: int = 2,
    ) -> SequenceComparison:
        """Figure 1: expected / shifted / expected sessions, expected vs ideal tuning."""
        generator = SessionGenerator(self.benchmark, seed=self.seed)
        sequence = generator.motivation_sequence(
            expected, shifted, workloads_per_session=workloads_per_session
        )
        tunings = self.tunings_for(expected, rho)
        return self._compare(expected, rho, sequence, tunings)

    def _compare(
        self,
        expected: Workload,
        rho: float,
        sequence: SessionSequence,
        tunings: dict[str, LSMTuning],
    ) -> SequenceComparison:
        measurements = self.executor.compare(tunings, sequence)
        sessions = []
        for position, session in enumerate(sequence):
            observed = session.average
            model_ios = {
                name: self.cost_model.workload_cost(observed, tuning)
                for name, tuning in tunings.items()
            }
            system_ios = {
                name: measurements[name].sessions[position].ios_per_query
                for name in tunings
            }
            latency = {
                name: measurements[name].sessions[position].latency_us_per_query
                for name in tunings
            }
            sessions.append(
                SessionComparison(
                    session=session.label,
                    observed_workload=observed,
                    model_ios=model_ios,
                    system_ios=system_ios,
                    latency_us=latency,
                )
            )
        return SequenceComparison(
            expected=expected,
            rho=rho,
            observed_divergence=sequence.observed_divergence(),
            tunings=tunings,
            sessions=tuple(sessions),
        )


# ----------------------------------------------------------------------
# Figure 16 — scaling with database size
# ----------------------------------------------------------------------
def scaling_experiment(
    expected_index: int = 11,
    rho: float = 0.25,
    sizes: Sequence[int] = (10_000, 30_000, 100_000),
    queries_per_workload: int = 1_000,
    seed: int = 11,
) -> list[dict[str, float | str]]:
    """Average I/Os per query as the database size ``N`` grows (Figure 16).

    The nominal and robust tunings are computed once on the model-scale
    system (they depend only on the workload and the per-entry memory
    budget), then deployed on simulators of increasing size; the paper's
    observation is that the performance gap is stable across sizes.
    """
    expected = expected_workloads()[expected_index].workload
    rows: list[dict[str, float | str]] = []
    for size in sizes:
        system = simulator_system(num_entries=size)
        experiment = SystemExperiment(
            system=system,
            executor_config=ExecutorConfig(queries_per_workload=queries_per_workload),
            benchmark=UncertaintyBenchmark(size=500, seed=seed),
            seed=seed,
        )
        comparison = experiment.run(expected, rho=rho, include_writes=True)
        summary = comparison.summary()
        buffer_bytes = {
            name: tuning.buffer_memory_bytes(system)
            for name, tuning in comparison.tunings.items()
        }
        rows.append(
            {
                "num_entries": float(size),
                "nominal_io_per_query": summary["nominal_mean_io_per_query"],
                "robust_io_per_query": summary["robust_mean_io_per_query"],
                "nominal_tuning": comparison.tunings["nominal"].describe(),
                "robust_tuning": comparison.tunings["robust"].describe(),
                "nominal_buffer_bytes": float(buffer_bytes["nominal"]),
                "robust_buffer_bytes": float(buffer_bytes["robust"]),
            }
        )
    return rows


def format_comparison(comparison: SequenceComparison) -> str:
    """Render a :class:`SequenceComparison` as the paper-style text table."""
    lines = [
        f"expected workload: {comparison.expected.describe()}  rho={comparison.rho:g}"
        f"  observed KL={comparison.observed_divergence:.2f}",
        f"  nominal: {comparison.tunings['nominal'].describe()}",
        f"  robust:  {comparison.tunings['robust'].describe()}",
    ]
    header = (
        f"  {'session':<16}{'model N':>9}{'model R':>9}"
        f"{'sys N':>9}{'sys R':>9}{'lat N(us)':>11}{'lat R(us)':>11}"
    )
    lines.append(header)
    for session in comparison.sessions:
        lines.append(
            f"  {session.session:<16}"
            f"{session.model_ios['nominal']:>9.2f}{session.model_ios['robust']:>9.2f}"
            f"{session.system_ios['nominal']:>9.2f}{session.system_ios['robust']:>9.2f}"
            f"{session.latency_us['nominal']:>11.1f}{session.latency_us['robust']:>11.1f}"
        )
    summary = comparison.summary()
    lines.append(
        f"  I/O reduction: {100 * summary['io_reduction']:.1f}%"
        f"  latency reduction: {100 * summary['latency_reduction']:.1f}%"
    )
    return "\n".join(lines)
