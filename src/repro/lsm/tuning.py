"""The tunable design parameters of an LSM tree.

A tuning ``Φ = (T, h, π)`` fixes the size ratio between levels, the number of
Bloom-filter bits allocated per entry (equivalently ``m_filt``) and the
compaction policy.  Fluid tunings carry two further dimensions — the run
bounds ``K`` (upper levels) and ``Z`` (largest level) of Dostoevsky's fluid
LSM.  The write-buffer memory is derived from the system's total memory
budget: ``m_buf = m − m_filt``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Mapping

from .policy import CompactionPolicy, Policy
from .system import SystemConfig


@dataclass(frozen=True)
class LSMTuning:
    """A concrete LSM-tree tuning configuration.

    Parameters
    ----------
    size_ratio:
        Size ratio ``T`` between consecutive levels (``T >= 2``).  Stored as a
        float because the optimiser works in a continuous relaxation; use
        :meth:`rounded` before deploying on the simulator.
    bits_per_entry:
        Bloom-filter budget ``h = m_filt / N`` in bits per entry.
    policy:
        Compaction policy (leveling, tiering, lazy leveling, 1-leveling or
        fluid).
    k_bound:
        Fluid run bound ``K`` of every level but the largest.  Only
        meaningful for :attr:`Policy.FLUID`; defaults to ``T - 1`` there
        (tiering-like upper levels) and is forced to ``None`` for every
        other policy so classical tunings compare equal regardless of how
        they were built.
    z_bound:
        Fluid run bound ``Z`` of the largest level; defaults to ``1`` (a
        single leveled run) for fluid tunings, ``None`` otherwise.
    """

    size_ratio: float
    bits_per_entry: float
    policy: Policy
    k_bound: float | None = None
    z_bound: float | None = None

    def __post_init__(self) -> None:
        if self.size_ratio < 2.0:
            raise ValueError(f"size_ratio must be >= 2, got {self.size_ratio}")
        if self.bits_per_entry < 0.0:
            raise ValueError(
                f"bits_per_entry must be non-negative, got {self.bits_per_entry}"
            )
        object.__setattr__(self, "policy", Policy.from_value(self.policy))
        if self.policy is Policy.FLUID:
            k = self.size_ratio - 1.0 if self.k_bound is None else float(self.k_bound)
            z = 1.0 if self.z_bound is None else float(self.z_bound)
            if k < 1.0 or z < 1.0:
                raise ValueError(
                    f"fluid run bounds must be at least 1, got K={k}, Z={z}"
                )
            object.__setattr__(self, "k_bound", k)
            object.__setattr__(self, "z_bound", z)
        else:
            # Classical policies carry no run bounds; normalising them to
            # ``None`` keeps equality and hashing independent of the caller.
            object.__setattr__(self, "k_bound", None)
            object.__setattr__(self, "z_bound", None)

    @property
    def strategy(self) -> CompactionPolicy:
        """The :class:`CompactionPolicy` of this tuning, bound to its ``K``/``Z``."""
        return self.policy.strategy.for_tuning(self)

    # ------------------------------------------------------------------
    # Derived memory quantities
    # ------------------------------------------------------------------
    def filter_memory_bits(self, system: SystemConfig) -> float:
        """Total memory devoted to Bloom filters (``m_filt``) in bits."""
        return system.filter_memory_bits(self.bits_per_entry)

    def buffer_memory_bits(self, system: SystemConfig) -> float:
        """Memory left for the write buffer (``m_buf``) in bits."""
        return system.buffer_memory_bits(self.bits_per_entry)

    def buffer_memory_bytes(self, system: SystemConfig) -> float:
        """Write-buffer memory in bytes."""
        return system.buffer_memory_bytes(self.bits_per_entry)

    def num_levels(self, system: SystemConfig) -> int:
        """Number of disk levels ``L(T)`` this tuning produces."""
        return system.num_levels(self.size_ratio, self.bits_per_entry)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def rounded(self) -> "LSMTuning":
        """Return a copy with an integer size ratio suitable for deployment.

        Real LSM engines cannot use fractional size ratios, so — like the
        paper does when deploying on RocksDB — we round the continuous value
        produced by the optimiser up to the nearest integer (never below 2).
        Fluid run bounds are rounded the same way (runs are counted in whole
        numbers) and clamped to the deployable range ``[1, T - 1]``.
        """
        rounded_ratio = max(2, round(self.size_ratio))
        changes: dict[str, Any] = {"size_ratio": float(rounded_ratio)}
        if self.policy is Policy.FLUID:
            cap = max(1, rounded_ratio - 1)
            changes["k_bound"] = float(min(max(1, round(self.k_bound)), cap))
            changes["z_bound"] = float(min(max(1, round(self.z_bound)), cap))
        return replace(self, **changes)

    def with_policy(self, policy: Policy | str) -> "LSMTuning":
        """Return a copy with a different compaction policy.

        Switching to fluid materialises the default run bounds (``K = T - 1``,
        ``Z = 1``); switching away drops them.
        """
        return replace(
            self, policy=Policy.from_value(policy), k_bound=None, z_bound=None
        )

    def with_bounds(
        self, k_bound: float | None = None, z_bound: float | None = None
    ) -> "LSMTuning":
        """Return a fluid copy of this tuning with the given run bounds."""
        return replace(
            self, policy=Policy.FLUID, k_bound=k_bound, z_bound=z_bound
        )

    def clamped(self, system: SystemConfig) -> "LSMTuning":
        """Return a copy with parameters clamped to the system's legal ranges."""
        ratio = min(max(self.size_ratio, 2.0), system.max_size_ratio)
        bits = min(
            max(self.bits_per_entry, system.min_bits_per_entry),
            system.max_bits_per_entry,
        )
        return replace(self, size_ratio=ratio, bits_per_entry=bits)

    # ------------------------------------------------------------------
    # Serialisation / display
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Serialise to a plain dictionary.

        The fluid run bounds only appear when present, so serialised
        classical tunings are byte-identical to earlier releases.
        """
        data: dict[str, Any] = {
            "size_ratio": self.size_ratio,
            "bits_per_entry": self.bits_per_entry,
            "policy": self.policy.value,
        }
        if self.k_bound is not None:
            data["k_bound"] = self.k_bound
        if self.z_bound is not None:
            data["z_bound"] = self.z_bound
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LSMTuning":
        """Build a tuning from a mapping produced by :meth:`to_dict`."""
        k_bound = data.get("k_bound")
        z_bound = data.get("z_bound")
        return cls(
            size_ratio=float(data["size_ratio"]),
            bits_per_entry=float(data["bits_per_entry"]),
            policy=Policy.from_value(data["policy"]),
            k_bound=None if k_bound is None else float(k_bound),
            z_bound=None if z_bound is None else float(z_bound),
        )

    def describe(self) -> str:
        """Human-readable one-line description, matching the paper's figures."""
        base = (
            f"π: {self.policy.value}, T: {self.size_ratio:.1f}, "
            f"h: {self.bits_per_entry:.1f}"
        )
        if self.policy is Policy.FLUID:
            base += f", K: {self.k_bound:.0f}, Z: {self.z_bound:.0f}"
        return base
