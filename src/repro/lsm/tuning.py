"""The tunable design parameters of an LSM tree.

A tuning ``Φ = (T, h, π)`` fixes the size ratio between levels, the number of
Bloom-filter bits allocated per entry (equivalently ``m_filt``) and the
compaction policy.  The write-buffer memory is derived from the system's
total memory budget: ``m_buf = m − m_filt``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Mapping

from .policy import Policy
from .system import SystemConfig


@dataclass(frozen=True)
class LSMTuning:
    """A concrete LSM-tree tuning configuration.

    Parameters
    ----------
    size_ratio:
        Size ratio ``T`` between consecutive levels (``T >= 2``).  Stored as a
        float because the optimiser works in a continuous relaxation; use
        :meth:`rounded` before deploying on the simulator.
    bits_per_entry:
        Bloom-filter budget ``h = m_filt / N`` in bits per entry.
    policy:
        Compaction policy (leveling, tiering or lazy leveling).
    """

    size_ratio: float
    bits_per_entry: float
    policy: Policy

    def __post_init__(self) -> None:
        if self.size_ratio < 2.0:
            raise ValueError(f"size_ratio must be >= 2, got {self.size_ratio}")
        if self.bits_per_entry < 0.0:
            raise ValueError(
                f"bits_per_entry must be non-negative, got {self.bits_per_entry}"
            )
        object.__setattr__(self, "policy", Policy.from_value(self.policy))

    # ------------------------------------------------------------------
    # Derived memory quantities
    # ------------------------------------------------------------------
    def filter_memory_bits(self, system: SystemConfig) -> float:
        """Total memory devoted to Bloom filters (``m_filt``) in bits."""
        return system.filter_memory_bits(self.bits_per_entry)

    def buffer_memory_bits(self, system: SystemConfig) -> float:
        """Memory left for the write buffer (``m_buf``) in bits."""
        return system.buffer_memory_bits(self.bits_per_entry)

    def buffer_memory_bytes(self, system: SystemConfig) -> float:
        """Write-buffer memory in bytes."""
        return system.buffer_memory_bytes(self.bits_per_entry)

    def num_levels(self, system: SystemConfig) -> int:
        """Number of disk levels ``L(T)`` this tuning produces."""
        return system.num_levels(self.size_ratio, self.bits_per_entry)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def rounded(self) -> "LSMTuning":
        """Return a copy with an integer size ratio suitable for deployment.

        Real LSM engines cannot use fractional size ratios, so — like the
        paper does when deploying on RocksDB — we round the continuous value
        produced by the optimiser up to the nearest integer (never below 2).
        """
        rounded_ratio = max(2, round(self.size_ratio))
        return replace(self, size_ratio=float(rounded_ratio))

    def with_policy(self, policy: Policy | str) -> "LSMTuning":
        """Return a copy with a different compaction policy."""
        return replace(self, policy=Policy.from_value(policy))

    def clamped(self, system: SystemConfig) -> "LSMTuning":
        """Return a copy with parameters clamped to the system's legal ranges."""
        ratio = min(max(self.size_ratio, 2.0), system.max_size_ratio)
        bits = min(
            max(self.bits_per_entry, system.min_bits_per_entry),
            system.max_bits_per_entry,
        )
        return replace(self, size_ratio=ratio, bits_per_entry=bits)

    # ------------------------------------------------------------------
    # Serialisation / display
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Serialise to a plain dictionary."""
        return {
            "size_ratio": self.size_ratio,
            "bits_per_entry": self.bits_per_entry,
            "policy": self.policy.value,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LSMTuning":
        """Build a tuning from a mapping produced by :meth:`to_dict`."""
        return cls(
            size_ratio=float(data["size_ratio"]),
            bits_per_entry=float(data["bits_per_entry"]),
            policy=Policy.from_value(data["policy"]),
        )

    def describe(self) -> str:
        """Human-readable one-line description, matching the paper's figures."""
        return (
            f"π: {self.policy.value}, T: {self.size_ratio:.1f}, "
            f"h: {self.bits_per_entry:.1f}"
        )
