"""The tunable design parameters of an LSM tree.

A tuning ``Φ = (T, h, π)`` fixes the size ratio between levels, the number of
Bloom-filter bits allocated per entry (equivalently ``m_filt``) and the
compaction policy.  Fluid tunings carry further dimensions — the run bounds
of Dostoevsky's fluid LSM, in either of two representations:

* the scalar pair ``K`` (one bound shared by every level but the largest)
  and ``Z`` (the largest level), the classical fluid parameterisation; or
* a per-level bound vector ``K_i`` (``k_bounds``), one independent run bound
  per upper level, which is the fully general Dostoevsky design space.  The
  scalar ``K`` is the uniform special case of the vector; levels deeper than
  the vector's length reuse its last element, so one vector stays meaningful
  across the whole ``(T, h)`` grid the tuners sweep.

The write-buffer memory is derived from the system's total memory budget:
``m_buf = m − m_filt``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Any, Mapping, Sequence

from .policy import CompactionPolicy, Policy
from .system import SystemConfig


def round_half_up(value: float) -> int:
    """Round to the nearest integer, ties away from zero.

    ``round()`` rounds half to even, so a size ratio of exactly 2.5 would
    round *down* to 2 — and at ``T = 2`` the deployable run-bound range
    ``[1, T - 1]`` collapses to the single point 1, crushing any fluid bound
    the continuous optimiser chose.  Deterministic half-up rounding keeps the
    documented "round up at the midpoint" contract and the bound clamp
    consistent.
    """
    return int(math.floor(float(value) + 0.5))


@dataclass(frozen=True)
class LSMTuning:
    """A concrete LSM-tree tuning configuration.

    Parameters
    ----------
    size_ratio:
        Size ratio ``T`` between consecutive levels (``T >= 2``).  Stored as a
        float because the optimiser works in a continuous relaxation; use
        :meth:`rounded` before deploying on the simulator.
    bits_per_entry:
        Bloom-filter budget ``h = m_filt / N`` in bits per entry.
    policy:
        Compaction policy (leveling, tiering, lazy leveling, 1-leveling or
        fluid).
    k_bound:
        Fluid run bound ``K`` of every level but the largest — the *uniform*
        parameterisation.  Only meaningful for :attr:`Policy.FLUID`; defaults
        to ``T - 1`` there (tiering-like upper levels) and is forced to
        ``None`` for every other policy so classical tunings compare equal
        regardless of how they were built.  Forced to ``None`` when a
        per-level vector is supplied (the vector is authoritative).
    z_bound:
        Fluid run bound ``Z`` of the largest level; defaults to ``1`` (a
        single leveled run) for fluid tunings, ``None`` otherwise.
    k_bounds:
        Optional per-level run-bound vector ``(K_1, K_2, …)`` for the upper
        levels, shallowest first.  Levels deeper than the vector reuse its
        last element; the largest level always reads ``z_bound``.  ``None``
        (the default) keeps the scalar representation, so every pre-vector
        tuning round-trips bit-identically through :meth:`to_dict` /
        :meth:`from_dict`.
    """

    size_ratio: float
    bits_per_entry: float
    policy: Policy
    k_bound: float | None = None
    z_bound: float | None = None
    k_bounds: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if self.size_ratio < 2.0:
            raise ValueError(f"size_ratio must be >= 2, got {self.size_ratio}")
        if self.bits_per_entry < 0.0:
            raise ValueError(
                f"bits_per_entry must be non-negative, got {self.bits_per_entry}"
            )
        object.__setattr__(self, "policy", Policy.from_value(self.policy))
        if self.policy is Policy.FLUID:
            z = 1.0 if self.z_bound is None else float(self.z_bound)
            if z < 1.0:
                raise ValueError(f"fluid run bounds must be at least 1, got Z={z}")
            if self.k_bounds is not None:
                vector = tuple(float(bound) for bound in self.k_bounds)
                if not vector:
                    raise ValueError("k_bounds must hold at least one level bound")
                if any(bound < 1.0 for bound in vector):
                    raise ValueError(
                        f"fluid run bounds must be at least 1, got K_i={vector}"
                    )
                # The vector is authoritative: the scalar K is dropped so two
                # tunings with the same vector compare equal regardless of
                # what scalar the caller also passed.
                object.__setattr__(self, "k_bound", None)
                object.__setattr__(self, "k_bounds", vector)
            else:
                k = (
                    self.size_ratio - 1.0
                    if self.k_bound is None
                    else float(self.k_bound)
                )
                if k < 1.0:
                    raise ValueError(
                        f"fluid run bounds must be at least 1, got K={k}"
                    )
                object.__setattr__(self, "k_bound", k)
            object.__setattr__(self, "z_bound", z)
        else:
            # Classical policies carry no run bounds; normalising them to
            # ``None`` keeps equality and hashing independent of the caller.
            object.__setattr__(self, "k_bound", None)
            object.__setattr__(self, "z_bound", None)
            object.__setattr__(self, "k_bounds", None)

    @property
    def strategy(self) -> CompactionPolicy:
        """The :class:`CompactionPolicy` of this tuning, bound to its bounds."""
        return self.policy.strategy.for_tuning(self)

    # ------------------------------------------------------------------
    # Derived memory quantities
    # ------------------------------------------------------------------
    def filter_memory_bits(self, system: SystemConfig) -> float:
        """Total memory devoted to Bloom filters (``m_filt``) in bits."""
        return system.filter_memory_bits(self.bits_per_entry)

    def buffer_memory_bits(self, system: SystemConfig) -> float:
        """Memory left for the write buffer (``m_buf``) in bits."""
        return system.buffer_memory_bits(self.bits_per_entry)

    def buffer_memory_bytes(self, system: SystemConfig) -> float:
        """Write-buffer memory in bytes."""
        return system.buffer_memory_bytes(self.bits_per_entry)

    def num_levels(self, system: SystemConfig) -> int:
        """Number of disk levels ``L(T)`` this tuning produces."""
        return system.num_levels(self.size_ratio, self.bits_per_entry)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def rounded(self) -> "LSMTuning":
        """Return a copy with an integer size ratio suitable for deployment.

        Real LSM engines cannot use fractional size ratios, so — like the
        paper does when deploying on RocksDB — we round the continuous value
        produced by the optimiser up to the nearest integer (never below 2),
        with ties at the midpoint going up (:func:`round_half_up`; built-in
        ``round`` would send ``T = 2.5`` *down* to 2, where the deployable
        bound range ``[1, T - 1]`` collapses to 1 and crushes every fluid
        bound).  Fluid run bounds are rounded the same way (runs are counted
        in whole numbers) and clamped — element-wise for a per-level vector —
        to the deployable range ``[1, T - 1]``.
        """
        rounded_ratio = max(2, round_half_up(self.size_ratio))
        changes: dict[str, Any] = {"size_ratio": float(rounded_ratio)}
        if self.policy is Policy.FLUID:
            cap = max(1, rounded_ratio - 1)

            def deploy(bound: float) -> float:
                return float(min(max(1, round_half_up(bound)), cap))

            if self.k_bounds is not None:
                changes["k_bounds"] = tuple(deploy(bound) for bound in self.k_bounds)
            else:
                changes["k_bound"] = deploy(self.k_bound)
            changes["z_bound"] = deploy(self.z_bound)
        return replace(self, **changes)

    def with_policy(self, policy: Policy | str) -> "LSMTuning":
        """Return a copy with a different compaction policy.

        Switching to fluid materialises the default run bounds (``K = T - 1``,
        ``Z = 1``); switching away drops them.
        """
        return replace(
            self,
            policy=Policy.from_value(policy),
            k_bound=None,
            z_bound=None,
            k_bounds=None,
        )

    def with_bounds(
        self,
        k_bound: float | None = None,
        z_bound: float | None = None,
        k_bounds: Sequence[float] | None = None,
    ) -> "LSMTuning":
        """Return a fluid copy of this tuning with the given run bounds."""
        return replace(
            self,
            policy=Policy.FLUID,
            k_bound=k_bound,
            z_bound=z_bound,
            k_bounds=None if k_bounds is None else tuple(k_bounds),
        )

    def clamped(self, system: SystemConfig) -> "LSMTuning":
        """Return a copy with parameters clamped to the system's legal ranges."""
        ratio = min(max(self.size_ratio, 2.0), system.max_size_ratio)
        bits = min(
            max(self.bits_per_entry, system.min_bits_per_entry),
            system.max_bits_per_entry,
        )
        return replace(self, size_ratio=ratio, bits_per_entry=bits)

    # ------------------------------------------------------------------
    # Serialisation / display
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Serialise to a plain dictionary.

        The fluid run bounds only appear when present — and the per-level
        vector only when one was supplied — so serialised classical and
        scalar-fluid tunings are byte-identical to earlier releases.
        """
        data: dict[str, Any] = {
            "size_ratio": self.size_ratio,
            "bits_per_entry": self.bits_per_entry,
            "policy": self.policy.value,
        }
        if self.k_bound is not None:
            data["k_bound"] = self.k_bound
        if self.z_bound is not None:
            data["z_bound"] = self.z_bound
        if self.k_bounds is not None:
            data["k_bounds"] = list(self.k_bounds)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LSMTuning":
        """Build a tuning from a mapping produced by :meth:`to_dict`."""
        k_bound = data.get("k_bound")
        z_bound = data.get("z_bound")
        k_bounds = data.get("k_bounds")
        return cls(
            size_ratio=float(data["size_ratio"]),
            bits_per_entry=float(data["bits_per_entry"]),
            policy=Policy.from_value(data["policy"]),
            k_bound=None if k_bound is None else float(k_bound),
            z_bound=None if z_bound is None else float(z_bound),
            k_bounds=(
                None
                if k_bounds is None
                else tuple(float(bound) for bound in k_bounds)
            ),
        )

    def describe(self) -> str:
        """Human-readable one-line description, matching the paper's figures."""
        base = (
            f"π: {self.policy.value}, T: {self.size_ratio:.1f}, "
            f"h: {self.bits_per_entry:.1f}"
        )
        if self.policy is Policy.FLUID:
            if self.k_bounds is not None:
                vector = ",".join(f"{bound:.0f}" for bound in self.k_bounds)
                base += f", K: [{vector}], Z: {self.z_bound:.0f}"
            else:
                base += f", K: {self.k_bound:.0f}, Z: {self.z_bound:.0f}"
        return base
