"""Bloom-filter modelling: false-positive rates and Monkey-style allocation.

The cost model follows the Monkey allocation scheme (Dayan et al., SIGMOD'17):
rather than giving every level the same bits-per-entry, memory is skewed
towards the smaller levels so that the *sum* of false-positive rates (and
hence the expected number of wasted I/Os of an empty point lookup) is
minimised.  Equation (11) of the Endure paper gives the resulting per-level
false-positive rate, which this module implements, along with the classical
uniform-allocation formula for comparison and for the simulator's concrete
filters.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

#: ln(2)^2, the constant appearing in the standard Bloom-filter FPR formula.
LN2_SQUARED = math.log(2.0) ** 2


def uniform_false_positive_rate(bits_per_entry: float) -> float:
    """False-positive rate of a standard Bloom filter with ``m/n`` bits/entry.

    Uses the classical approximation ``ε = exp(-(m/n) · ln(2)²)`` which assumes
    the optimal number of hash functions.
    """
    if bits_per_entry < 0:
        raise ValueError("bits_per_entry must be non-negative")
    return float(min(1.0, math.exp(-bits_per_entry * LN2_SQUARED)))


def optimal_hash_count(bits_per_entry: float) -> int:
    """Optimal number of hash functions ``k = (m/n) · ln 2`` (at least 1)."""
    if bits_per_entry <= 0:
        return 1
    return max(1, round(bits_per_entry * math.log(2.0)))


def monkey_false_positive_rates(
    size_ratio: float, bits_per_entry: float, num_levels: int
) -> np.ndarray:
    """Per-level false-positive rates under the Monkey allocation (Eq. 11).

    Parameters
    ----------
    size_ratio:
        Size ratio ``T`` of the tree.
    bits_per_entry:
        Overall Bloom-filter budget ``m_filt / N`` in bits per entry.
    num_levels:
        Number of disk levels ``L(T)``.

    Returns
    -------
    numpy.ndarray
        Array ``f`` of length ``num_levels`` where ``f[i-1]`` is the
        false-positive rate of the filters at level ``i``; every entry is
        clamped to ``[0, 1]``.
    """
    if size_ratio < 2.0:
        raise ValueError("size_ratio must be at least 2")
    if num_levels < 1:
        raise ValueError("num_levels must be at least 1")
    if bits_per_entry < 0:
        raise ValueError("bits_per_entry must be non-negative")

    levels = np.arange(1, num_levels + 1, dtype=float)
    return monkey_false_positive_rates_batch(
        size_ratio, bits_per_entry, num_levels, levels
    )


def monkey_false_positive_rates_batch(size_ratio, bits_per_entry, num_levels, level):
    """Broadcastable form of :func:`monkey_false_positive_rates` (Eq. 11).

    All four arguments may be scalars or NumPy arrays of compatible shapes;
    the result is the elementwise false-positive rate of the filters at
    ``level`` in a tree of ``num_levels`` levels, clamped to ``[0, 1]``.
    This is the kernel of the vectorised
    :meth:`~repro.lsm.cost_model.LSMCostModel.cost_matrix` pass.
    """
    size_ratio = np.asarray(size_ratio, dtype=float)
    # T^(T/(T-1)) / T^(L+1-i): smaller (higher) levels receive more memory and
    # therefore exhibit lower false-positive rates.
    exponent = size_ratio / (size_ratio - 1.0) - (num_levels + 1.0 - np.asarray(level))
    rates = np.power(size_ratio, exponent) * np.exp(
        -np.asarray(bits_per_entry, dtype=float) * LN2_SQUARED
    )
    return np.clip(rates, 0.0, 1.0)


def expected_empty_probe_cost(false_positive_rates: Sequence[float]) -> float:
    """Expected wasted I/Os of an empty point lookup with one run per level.

    This is simply the sum of the per-level false-positive rates; a tiered
    tree multiplies this by the number of runs per level.
    """
    return float(np.sum(np.asarray(false_positive_rates, dtype=float)))


def monkey_bits_per_level(
    size_ratio: float,
    bits_per_entry: float,
    num_levels: int,
    level_entries: Sequence[float],
) -> np.ndarray:
    """Translate Monkey false-positive rates into per-level bits-per-entry.

    The simulator needs a concrete number of bits to allocate to the filters
    of each level.  Inverting the uniform-FPR formula per level gives
    ``bits_i = -ln(f_i) / ln(2)²`` (0 when ``f_i >= 1``, i.e. the level keeps
    no filter at all).

    Parameters
    ----------
    size_ratio, bits_per_entry, num_levels:
        Same as :func:`monkey_false_positive_rates`.
    level_entries:
        Number of entries expected to reside at each level; only used to
        validate the length of the result.

    Returns
    -------
    numpy.ndarray
        Bits-per-entry to use for the filter(s) of each level.
    """
    if len(level_entries) != num_levels:
        raise ValueError("level_entries must have one entry per level")
    rates = monkey_false_positive_rates(size_ratio, bits_per_entry, num_levels)
    bits = np.zeros(num_levels, dtype=float)
    positive = rates < 1.0
    with np.errstate(divide="ignore"):
        bits[positive] = -np.log(rates[positive]) / LN2_SQUARED
    return bits
