"""Analytical LSM-tree substrate: system parameters, tunings and cost model."""

from .bloom import (
    monkey_bits_per_level,
    monkey_false_positive_rates,
    monkey_false_positive_rates_batch,
    optimal_hash_count,
    uniform_false_positive_rate,
)
from .cost_model import COST_COMPONENTS, CostBreakdown, LSMCostModel
from .policy import (
    ALL_POLICIES,
    CLASSIC_POLICIES,
    DEFAULT_FLUID_K_GRID,
    DEFAULT_FLUID_Z_GRID,
    CompactionPolicy,
    FluidPolicy,
    LazyLevelingPolicy,
    LevelingPolicy,
    OneLevelingPolicy,
    Policy,
    PolicySpec,
    TieringPolicy,
    expand_policy_specs,
    get_policy,
)
from .system import DEFAULT_SYSTEM, SystemConfig, simulator_system
from .tuning import LSMTuning

__all__ = [
    "ALL_POLICIES",
    "CLASSIC_POLICIES",
    "COST_COMPONENTS",
    "CompactionPolicy",
    "CostBreakdown",
    "DEFAULT_FLUID_K_GRID",
    "DEFAULT_FLUID_Z_GRID",
    "DEFAULT_SYSTEM",
    "FluidPolicy",
    "LSMCostModel",
    "LSMTuning",
    "LazyLevelingPolicy",
    "LevelingPolicy",
    "OneLevelingPolicy",
    "Policy",
    "PolicySpec",
    "SystemConfig",
    "TieringPolicy",
    "expand_policy_specs",
    "get_policy",
    "monkey_bits_per_level",
    "monkey_false_positive_rates",
    "monkey_false_positive_rates_batch",
    "optimal_hash_count",
    "simulator_system",
    "uniform_false_positive_rate",
]
