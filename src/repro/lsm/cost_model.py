"""Analytical I/O cost model of an LSM tree (Section 5 of the paper).

The model expresses, for a tuning ``Φ = (T, h, π)``, the expected number of
I/O operations of the four basic query types:

* ``Z0(Φ)`` — point lookup with an empty result (Equation 12),
* ``Z1(Φ)`` — point lookup with a non-empty result (Equation 14),
* ``Q(Φ)``  — range lookup (Equation 15),
* ``W(Φ)``  — write, amortised over the compactions it triggers (Equation 16).

Given a workload ``w = (z0, z1, q, w)`` the expected per-query cost is the
dot product ``C(w, Φ) = w · c(Φ)`` (Equation 2), and the throughput used in
the evaluation is its reciprocal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .bloom import monkey_false_positive_rates
from .policy import Policy
from .system import SystemConfig
from .tuning import LSMTuning

#: Names of the cost-vector components, in workload order.
COST_COMPONENTS: tuple[str, ...] = ("empty_read", "non_empty_read", "range", "write")


@dataclass(frozen=True)
class CostBreakdown:
    """The expected per-query I/O costs of one tuning, by query type."""

    empty_read: float
    non_empty_read: float
    range_read: float
    write: float

    def as_array(self) -> np.ndarray:
        """Return the cost vector ``c(Φ) = (Z0, Z1, Q, W)`` as a NumPy array."""
        return np.array(
            [self.empty_read, self.non_empty_read, self.range_read, self.write],
            dtype=float,
        )

    def as_dict(self) -> dict[str, float]:
        """Return the costs keyed by query-type name."""
        return {
            "empty_read": self.empty_read,
            "non_empty_read": self.non_empty_read,
            "range": self.range_read,
            "write": self.write,
        }


class LSMCostModel:
    """Endure's analytical cost model, bound to one :class:`SystemConfig`.

    The model is deliberately a plain object with pure methods: every cost is
    a deterministic function of the tuning, which is what allows the robust
    optimisation to treat it as a smooth objective.
    """

    def __init__(self, system: SystemConfig | None = None) -> None:
        self.system = system if system is not None else SystemConfig()

    # ------------------------------------------------------------------
    # Structural helpers
    # ------------------------------------------------------------------
    def num_levels(self, tuning: LSMTuning) -> int:
        """Number of disk levels ``L(T)`` for this tuning."""
        return self.system.num_levels(tuning.size_ratio, tuning.bits_per_entry)

    def false_positive_rates(self, tuning: LSMTuning) -> np.ndarray:
        """Per-level Monkey false-positive rates for this tuning."""
        return monkey_false_positive_rates(
            tuning.size_ratio, tuning.bits_per_entry, self.num_levels(tuning)
        )

    # ------------------------------------------------------------------
    # Individual query costs
    # ------------------------------------------------------------------
    def empty_read_cost(self, tuning: LSMTuning) -> float:
        """Expected I/Os of a zero-result point lookup, ``Z0(Φ)`` (Eq. 12).

        Every run in the tree may trigger a false positive; under leveling
        there is one run per level, under tiering up to ``T - 1`` runs per
        level with identical false-positive rates.
        """
        rates = self.false_positive_rates(tuning)
        total = float(np.sum(rates))
        if tuning.policy is Policy.TIERING:
            total *= tuning.size_ratio - 1.0
        return total

    def non_empty_read_cost(self, tuning: LSMTuning) -> float:
        """Expected I/Os of a successful point lookup, ``Z1(Φ)`` (Eq. 14).

        The lookup finds its key at level ``i`` with probability proportional
        to the level's capacity; it pays one guaranteed I/O there plus the
        expected false-positive I/Os of the levels above it (and, for
        tiering, of the runs probed within level ``i`` before the match).
        """
        size_ratio = tuning.size_ratio
        levels = self.num_levels(tuning)
        rates = self.false_positive_rates(tuning)
        buffer_entries = self.system.buffer_entries(tuning.bits_per_entry)

        level_capacity = np.array(
            [
                (size_ratio - 1.0) * size_ratio ** (i - 1) * buffer_entries
                for i in range(1, levels + 1)
            ],
            dtype=float,
        )
        full_tree = float(np.sum(level_capacity))
        residence_probability = level_capacity / full_tree
        preceding_fp = np.concatenate(([0.0], np.cumsum(rates)[:-1]))

        if tuning.policy is Policy.LEVELING:
            per_level_cost = 1.0 + preceding_fp
        else:
            # Runs above the match each cost a false-positive probe; within
            # the matching level the entry is found, on average, in the middle
            # run, incurring (T-2)/2 extra false-positive probes.
            per_level_cost = (
                1.0
                + (size_ratio - 1.0) * preceding_fp
                + (size_ratio - 2.0) / 2.0 * rates
            )
        return float(np.sum(residence_probability * per_level_cost))

    def range_read_cost(self, tuning: LSMTuning) -> float:
        """Expected I/Os of a range lookup, ``Q(Φ)`` (Eq. 15).

        One seek per qualifying run plus a sequential scan whose length is
        governed by the range selectivity ``S_RQ``.
        """
        levels = self.num_levels(tuning)
        scan_pages = (
            self.system.range_selectivity
            * self.system.num_entries
            / self.system.entries_per_page
        )
        if tuning.policy is Policy.LEVELING:
            seeks = float(levels)
        else:
            seeks = float(levels) * (tuning.size_ratio - 1.0)
        return scan_pages + seeks

    def write_cost(self, tuning: LSMTuning) -> float:
        """Amortised I/Os of one write, ``W(Φ)`` (Eq. 16).

        Every entry is eventually merged through all ``L(T)`` levels; under
        leveling it takes part in roughly ``(T-1)/2`` merges per level, under
        tiering ``(T-1)/T``.  Costs are expressed per page (``/B``) and writes
        are weighted by the device's read/write asymmetry.
        """
        levels = self.num_levels(tuning)
        entries_per_page = self.system.entries_per_page
        asymmetry = 1.0 + self.system.read_write_asymmetry
        if tuning.policy is Policy.LEVELING:
            merges = (tuning.size_ratio - 1.0) / 2.0
        else:
            merges = (tuning.size_ratio - 1.0) / tuning.size_ratio
        return levels / entries_per_page * merges * asymmetry

    # ------------------------------------------------------------------
    # Aggregate costs
    # ------------------------------------------------------------------
    def cost_breakdown(self, tuning: LSMTuning) -> CostBreakdown:
        """All four per-query costs of a tuning as a :class:`CostBreakdown`."""
        return CostBreakdown(
            empty_read=self.empty_read_cost(tuning),
            non_empty_read=self.non_empty_read_cost(tuning),
            range_read=self.range_read_cost(tuning),
            write=self.write_cost(tuning),
        )

    def cost_vector(self, tuning: LSMTuning) -> np.ndarray:
        """The cost vector ``c(Φ) = (Z0, Z1, Q, W)``."""
        return self.cost_breakdown(tuning).as_array()

    def workload_cost(self, workload, tuning: LSMTuning) -> float:
        """Expected cost ``C(w, Φ) = w · c(Φ)`` of one query from ``workload``.

        ``workload`` may be anything exposing ``as_array()`` (a
        :class:`repro.workloads.Workload`) or a length-4 sequence ordered as
        ``(z0, z1, q, w)``.
        """
        weights = _workload_array(workload)
        return float(np.dot(weights, self.cost_vector(tuning)))

    def throughput(self, workload, tuning: LSMTuning) -> float:
        """Throughput proxy ``1 / C(w, Φ)`` used throughout the evaluation."""
        cost = self.workload_cost(workload, tuning)
        if cost <= 0:
            raise ValueError("workload cost must be positive to define throughput")
        return 1.0 / cost


def _workload_array(workload) -> np.ndarray:
    """Coerce a workload-like object into a length-4 float array."""
    if hasattr(workload, "as_array"):
        weights = np.asarray(workload.as_array(), dtype=float)
    else:
        weights = np.asarray(workload, dtype=float)
    if weights.shape != (4,):
        raise ValueError(f"expected a length-4 workload vector, got shape {weights.shape}")
    if np.any(weights < 0):
        raise ValueError("workload proportions must be non-negative")
    return weights
