"""Analytical I/O cost model of an LSM tree (Section 5 of the paper).

The model expresses, for a tuning ``Φ = (T, h, π)``, the expected number of
I/O operations of the four basic query types:

* ``Z0(Φ)`` — point lookup with an empty result (Equation 12),
* ``Z1(Φ)`` — point lookup with a non-empty result (Equation 14),
* ``Q(Φ)``  — range lookup (Equation 15, split into short and long ranges),
* ``W(Φ)``  — write, amortised over the compactions it triggers (Equation 16).

Given a workload ``w = (z0, z1, q, w)`` the expected per-query cost is the
dot product ``C(w, Φ) = w · c(Φ)`` (Equation 2), and the throughput used in
the evaluation is its reciprocal.

Following Dostoevsky §4 the range cost distinguishes two regimes:

* **short** ranges are seek-dominated — one page I/O per qualifying run plus
  a short scan governed by ``SystemConfig.range_selectivity`` (the paper's
  near-zero-selectivity setup; the historical behaviour of this model);
* **long** ranges are scan-dominated — besides the per-run seeks they pay
  ``long_range_selectivity`` worth of sequential pages *per run and level*:
  in the worst case every run of a level holds (live or obsolete) versions
  of the interval's entries, so a level with ``r`` runs costs up to ``r``
  times the pages a single-run level costs.  This is what makes a single-run
  largest level (lazy leveling, fluid with ``Z = 1``) dominate long scans
  while tiering pays the ``T - 1``-fold worst case.

A workload's ``long_range_fraction`` ``ν`` blends the two:
``Q = (1 - ν) · Q_short + ν · Q_long``; with ``ν = 0`` every cost is
identical to the pre-split model.

All per-policy structure enters through exactly two quantities supplied by
the :class:`~repro.lsm.policy.CompactionPolicy` strategy objects — the
expected number of runs per level and the per-level merge amortisation
factor — so adding a policy never touches the equations here.  Both
quantities are evaluated along an explicit level axis and *summed per
level* (never via a closed-form scalar ``K``), which is what lets fluid
tunings carry a per-level run-bound vector ``K_i``: the strategy answers
each level from its vector, and every cost term — the false-positive sum of
``Z0``/``Z1``, the per-run seeks and worst-case scan pages of ``Q``, the
merge amortisation of ``W`` — picks the per-level bound up unchanged.  The
same definitions power two evaluation paths:

* the scalar methods (:meth:`LSMCostModel.cost_vector` and friends), and
* :meth:`LSMCostModel.cost_matrix`, which evaluates a whole ``(T, h)``
  candidate grid in one broadcasted NumPy pass — the tuners' hot path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .bloom import monkey_false_positive_rates, monkey_false_positive_rates_batch
from .policy import CompactionPolicy, Policy, PolicySpec
from .system import SystemConfig
from .tuning import LSMTuning

#: Names of the cost-vector components, in workload order.
COST_COMPONENTS: tuple[str, ...] = ("empty_read", "non_empty_read", "range", "write")


@dataclass(frozen=True)
class CostBreakdown:
    """The expected per-query I/O costs of one tuning, by query type."""

    empty_read: float
    non_empty_read: float
    range_read: float
    write: float

    def as_array(self) -> np.ndarray:
        """Return the cost vector ``c(Φ) = (Z0, Z1, Q, W)`` as a NumPy array."""
        return np.array(
            [self.empty_read, self.non_empty_read, self.range_read, self.write],
            dtype=float,
        )

    def as_dict(self) -> dict[str, float]:
        """Return the costs keyed by query-type name."""
        return {
            "empty_read": self.empty_read,
            "non_empty_read": self.non_empty_read,
            "range": self.range_read,
            "write": self.write,
        }


class LSMCostModel:
    """Endure's analytical cost model, bound to one :class:`SystemConfig`.

    The model is deliberately a plain object with pure methods: every cost is
    a deterministic function of the tuning, which is what allows the robust
    optimisation to treat it as a smooth objective.
    """

    def __init__(self, system: SystemConfig | None = None) -> None:
        self.system = system if system is not None else SystemConfig()

    # ------------------------------------------------------------------
    # Structural helpers
    # ------------------------------------------------------------------
    def num_levels(self, tuning: LSMTuning) -> int:
        """Number of disk levels ``L(T)`` for this tuning."""
        return self.system.num_levels(tuning.size_ratio, tuning.bits_per_entry)

    def false_positive_rates(self, tuning: LSMTuning) -> np.ndarray:
        """Per-level Monkey false-positive rates for this tuning."""
        return monkey_false_positive_rates(
            tuning.size_ratio, tuning.bits_per_entry, self.num_levels(tuning)
        )

    def _level_structure(
        self, tuning: LSMTuning
    ) -> tuple[int, np.ndarray, np.ndarray]:
        """Per-level ``(L, false-positive rates, runs)`` of one tuning."""
        levels = self.num_levels(tuning)
        rates = self.false_positive_rates(tuning)
        indices = np.arange(1, levels + 1, dtype=float)
        runs = np.asarray(
            tuning.strategy.runs_per_level(
                tuning.size_ratio, indices, float(levels)
            ),
            dtype=float,
        )
        return levels, rates, runs

    def _level_capacities(self, tuning: LSMTuning, levels: int) -> np.ndarray:
        """Per-level capacities in entries: ``(T-1) T^(i-1) · m_buf / E``.

        Computed with integer exponents, exactly as the pre-split model did,
        so the scalar costs of classical tunings stay bit-identical.
        """
        size_ratio = tuning.size_ratio
        buffer_entries = self.system.buffer_entries(tuning.bits_per_entry)
        return np.array(
            [
                (size_ratio - 1.0) * size_ratio ** (i - 1) * buffer_entries
                for i in range(1, levels + 1)
            ],
            dtype=float,
        )

    # ------------------------------------------------------------------
    # Individual query costs
    # ------------------------------------------------------------------
    def empty_read_cost(self, tuning: LSMTuning) -> float:
        """Expected I/Os of a zero-result point lookup, ``Z0(Φ)`` (Eq. 12).

        Every run in the tree may trigger a false positive, so the cost is
        the sum over levels of (runs per level) × (false-positive rate) —
        one run per level under leveling, ``T - 1`` under tiering, and the
        hybrid split under lazy leveling.
        """
        _, rates, runs = self._level_structure(tuning)
        return float(np.sum(runs * rates))

    def non_empty_read_cost(self, tuning: LSMTuning) -> float:
        """Expected I/Os of a successful point lookup, ``Z1(Φ)`` (Eq. 14).

        The lookup finds its key at level ``i`` with probability proportional
        to the level's capacity; it pays one guaranteed I/O there plus the
        expected false-positive I/Os of every run above it and, on average,
        of half the other runs within level ``i`` probed before the match.
        """
        levels, rates, runs = self._level_structure(tuning)
        level_capacity = self._level_capacities(tuning, levels)
        residence_probability = level_capacity / float(np.sum(level_capacity))
        level_fp = runs * rates
        preceding_fp = np.cumsum(level_fp) - level_fp
        per_level_cost = 1.0 + preceding_fp + (runs - 1.0) / 2.0 * rates
        return float(np.sum(residence_probability * per_level_cost))

    def short_range_cost(self, tuning: LSMTuning) -> float:
        """Expected I/Os of a *short* (seek-dominated) range lookup.

        One seek per qualifying run plus a sequential scan governed by the
        short-range selectivity ``S_RQ`` (near zero in the paper's setup).
        This is the historical ``Q(Φ)`` of the pre-split model.
        """
        _, _, runs = self._level_structure(tuning)
        scan_pages = (
            self.system.range_selectivity
            * self.system.num_entries
            / self.system.entries_per_page
        )
        return scan_pages + float(np.sum(runs))

    def long_range_cost(self, tuning: LSMTuning) -> float:
        """Expected I/Os of a *long* (scan-dominated) range lookup.

        Besides the per-run seeks, every level contributes its worst-case
        sequential pages: the long-range selectivity's share of the level's
        capacity, *per resident run* — overlapping runs may each hold (live
        or obsolete) versions of the interval's entries, so a tiered level
        costs up to ``T - 1`` times a leveled one (Dostoevsky §4).  A
        single-run largest level therefore dominates this term.
        """
        levels, _, runs = self._level_structure(tuning)
        capacities = self._level_capacities(tuning, levels)
        scan_pages = (
            self.system.long_range_selectivity
            * float(np.sum(runs * capacities))
            / self.system.entries_per_page
        )
        return scan_pages + float(np.sum(runs))

    def range_read_cost(
        self, tuning: LSMTuning, long_range_fraction: float = 0.0
    ) -> float:
        """Expected I/Os of a range lookup, ``Q(Φ)`` (Eq. 15, split regimes).

        Blend of the short- and long-range costs weighted by the workload's
        long-range fraction ``ν``.  The ``ν = 0`` fast path never evaluates
        the long-range selectivity split, so workloads without long ranges
        (and the pre-split call sites) see bit-identical costs — and a
        degenerate long-range term can never poison a short-range workload.
        """
        if long_range_fraction <= 0.0:
            return self.short_range_cost(tuning)
        if long_range_fraction >= 1.0:
            return self.long_range_cost(tuning)
        return (1.0 - long_range_fraction) * self.short_range_cost(
            tuning
        ) + long_range_fraction * self.long_range_cost(tuning)

    def write_cost(self, tuning: LSMTuning) -> float:
        """Amortised I/Os of one write, ``W(Φ)`` (Eq. 16).

        Every entry is eventually merged through all ``L(T)`` levels, taking
        part in the policy's per-level merge amortisation factor worth of
        rewrites at each.  Costs are expressed per page (``/B``) and writes
        are weighted by the device's read/write asymmetry.
        """
        levels = self.num_levels(tuning)
        indices = np.arange(1, levels + 1, dtype=float)
        merges = np.asarray(
            tuning.strategy.merge_factor(
                tuning.size_ratio, indices, float(levels)
            ),
            dtype=float,
        )
        asymmetry = 1.0 + self.system.read_write_asymmetry
        return float(np.sum(merges)) / self.system.entries_per_page * asymmetry

    # ------------------------------------------------------------------
    # Aggregate costs
    # ------------------------------------------------------------------
    def cost_breakdown(
        self, tuning: LSMTuning, long_range_fraction: float = 0.0
    ) -> CostBreakdown:
        """All four per-query costs of a tuning as a :class:`CostBreakdown`."""
        return CostBreakdown(
            empty_read=self.empty_read_cost(tuning),
            non_empty_read=self.non_empty_read_cost(tuning),
            range_read=self.range_read_cost(tuning, long_range_fraction),
            write=self.write_cost(tuning),
        )

    def cost_vector(
        self, tuning: LSMTuning, long_range_fraction: float = 0.0
    ) -> np.ndarray:
        """The cost vector ``c(Φ) = (Z0, Z1, Q, W)``.

        ``long_range_fraction`` is the workload's ``ν``: the range component
        blends the short- and long-range regimes accordingly.
        """
        return self.cost_breakdown(tuning, long_range_fraction).as_array()

    def cost_matrix(
        self,
        size_ratios: Sequence[float] | np.ndarray,
        bits_per_entry: Sequence[float] | np.ndarray,
        policy: Policy | str | PolicySpec,
        long_range_fraction: float = 0.0,
    ) -> np.ndarray:
        """Cost vectors of a whole ``(T, h)`` candidate grid in one pass.

        Evaluates ``c(Φ)`` for every combination of the given size ratios and
        Bloom-filter allocations under one policy, using a single broadcasted
        NumPy computation over a ``(T, h, level)`` tensor instead of a Python
        loop of scalar :meth:`cost_vector` calls.  This is the tuners' hot
        path: the candidate sweep of :class:`~repro.core.base.BaseTuner` and
        the exhaustive :class:`~repro.core.grid.GridTuner` both run on it.

        Parameters
        ----------
        size_ratios:
            1-D array of candidate size ratios (each ``>= 2``).
        bits_per_entry:
            1-D array of candidate Bloom-filter budgets (each ``>= 0`` and
            small enough to leave room for a write buffer).
        policy:
            The compaction policy of every candidate — an enum member, a
            string, or a :class:`~repro.lsm.policy.PolicySpec` carrying fluid
            ``K``/``Z`` run bounds.
        long_range_fraction:
            The workload's ``ν``: fraction of range lookups that are long
            (scan-dominated).  ``0`` skips the long-range term entirely.

        Returns
        -------
        numpy.ndarray
            Array of shape ``(len(size_ratios), len(bits_per_entry), 4)``
            whose ``[i, j]`` slice is ``(Z0, Z1, Q, W)`` of the tuning
            ``(size_ratios[i], bits_per_entry[j], policy)``.  Matches the
            scalar :meth:`cost_vector` to ~1e-12 relative error.
        """
        system = self.system
        strategy = _resolve_strategy(policy)
        ratios = np.asarray(size_ratios, dtype=float).reshape(-1, 1, 1)
        bits = np.asarray(bits_per_entry, dtype=float).reshape(1, -1, 1)
        if ratios.size == 0 or bits.size == 0:
            raise ValueError("size_ratios and bits_per_entry must be non-empty")
        if np.any(ratios < 2.0):
            raise ValueError("every size ratio must be at least 2")
        if np.any(bits < 0.0):
            raise ValueError("bits_per_entry must be non-negative")

        buffer_bits = system.total_memory_bits - bits * system.num_entries
        if np.any(buffer_bits <= 0):
            raise ValueError("bits_per_entry exceeds the total memory budget")
        buffer_entries = buffer_bits / system.entry_size_bits

        # L(T, h) = ceil(log_T(N·E / m_buf + 1)), clipped to at least 1.
        size_bits = float(system.num_entries) * system.entry_size_bits
        log_ratio = np.log(size_bits / buffer_bits + 1.0)
        levels = np.maximum(1.0, np.ceil(log_ratio / np.log(ratios)))

        max_levels = int(levels.max())
        index = np.arange(1, max_levels + 1, dtype=float).reshape(1, 1, -1)
        mask = index <= levels

        rates = monkey_false_positive_rates_batch(ratios, bits, levels, index)
        runs = np.where(
            mask, strategy.runs_per_level(ratios, index, levels), 0.0
        )

        # Z0: every run may cost one false-positive probe.
        level_fp = np.where(mask, runs * rates, 0.0)
        empty_read = np.sum(level_fp, axis=-1)

        # Z1: guaranteed hit at the residence level plus the false-positive
        # probes of every run above it and half the runs beside it.
        capacity = np.where(
            mask, (ratios - 1.0) * ratios ** (index - 1.0) * buffer_entries, 0.0
        )
        residence = capacity / np.sum(capacity, axis=-1, keepdims=True)
        preceding_fp = np.cumsum(level_fp, axis=-1) - level_fp
        per_level_cost = 1.0 + preceding_fp + (runs - 1.0) / 2.0 * rates
        non_empty_read = np.sum(residence * per_level_cost, axis=-1)

        # Q: one seek per run plus the selectivity-governed sequential scans.
        # Short ranges scan S_RQ of the whole store; long ranges pay the
        # worst-case per-run share of every level's capacity.  The ν = 0 fast
        # path never evaluates the long-range split (zero-weight guard).
        seeks = np.sum(runs, axis=-1)
        short_scan = (
            system.range_selectivity * system.num_entries / system.entries_per_page
        )
        nu = float(long_range_fraction)
        if nu <= 0.0:
            range_read = seeks + short_scan
        else:
            long_scan = (
                system.long_range_selectivity
                * np.sum(runs * capacity, axis=-1)
                / system.entries_per_page
            )
            range_read = seeks + (1.0 - nu) * short_scan + nu * long_scan

        # W: per-level merge amortisation, per page, weighted by asymmetry.
        merges = np.where(mask, strategy.merge_factor(ratios, index, levels), 0.0)
        write = (
            np.sum(merges, axis=-1)
            / system.entries_per_page
            * (1.0 + system.read_write_asymmetry)
        )

        return np.stack([empty_read, non_empty_read, range_read, write], axis=-1)

    def workload_cost(self, workload, tuning: LSMTuning) -> float:
        """Expected cost ``C(w, Φ) = w · c(Φ)`` of one query from ``workload``.

        ``workload`` may be anything exposing ``as_array()`` (a
        :class:`repro.workloads.Workload`) or a length-4 sequence ordered as
        ``(z0, z1, q, w)``.  The workload's ``long_range_fraction`` (when it
        carries one) selects the short/long range blend, and the dot product
        runs over the workload's support only, so a zero-weight query type
        can never contribute — even if its cost component is degenerate
        (the ``0 · inf`` guard, mirroring the robust dual's support mask).
        """
        weights = _workload_array(workload)
        vector = self.cost_vector(tuning, _long_range_fraction(workload))
        return _support_dot(vector, weights)

    def workload_cost_matrix(
        self,
        workload,
        size_ratios: Sequence[float] | np.ndarray,
        bits_per_entry: Sequence[float] | np.ndarray,
        policy: Policy | str | PolicySpec,
    ) -> np.ndarray:
        """``C(w, Φ)`` over a whole ``(T, h)`` grid in one broadcasted pass."""
        weights = _workload_array(workload)
        costs = self.cost_matrix(
            size_ratios, bits_per_entry, policy, _long_range_fraction(workload)
        )
        return _support_dot(costs, weights)

    def throughput(self, workload, tuning: LSMTuning) -> float:
        """Throughput proxy ``1 / C(w, Φ)`` used throughout the evaluation."""
        cost = self.workload_cost(workload, tuning)
        if cost <= 0:
            raise ValueError("workload cost must be positive to define throughput")
        return 1.0 / cost


def _workload_array(workload) -> np.ndarray:
    """Coerce a workload-like object into a length-4 float array."""
    if hasattr(workload, "as_array"):
        weights = np.asarray(workload.as_array(), dtype=float)
    else:
        weights = np.asarray(workload, dtype=float)
    if weights.shape != (4,):
        raise ValueError(f"expected a length-4 workload vector, got shape {weights.shape}")
    if np.any(weights < 0):
        raise ValueError("workload proportions must be non-negative")
    return weights


def _long_range_fraction(workload) -> float:
    """The ``ν`` of a workload-like object (0 for plain sequences)."""
    return float(getattr(workload, "long_range_fraction", 0.0))


def _support_dot(costs: np.ndarray, weights: np.ndarray) -> np.ndarray | float:
    """``costs @ weights`` restricted to the weights' support.

    Zero-weight components are excluded *before* the multiplication so that a
    non-finite cost of an unused query type cannot poison the total via
    ``0 · inf = nan`` — the same guard the robust dual applies to its
    log-expectation.  ``costs`` may be a single vector or a ``(..., 4)``
    batch; scalars come back as plain floats.
    """
    support = weights > 0.0
    result = costs[..., support] @ weights[support]
    if np.ndim(result) == 0:
        return float(result)
    return result


def _resolve_strategy(policy: Policy | str | PolicySpec | CompactionPolicy):
    """Resolve any policy-like value to a concrete strategy object."""
    if isinstance(policy, CompactionPolicy):
        return policy
    if isinstance(policy, PolicySpec):
        return policy.strategy
    return Policy.from_value(policy).strategy
