"""Compaction policies: first-class strategy objects shared by the cost
model and the storage engine.

The paper's design space contains the two classical merge policies; this
reproduction additionally supports the *lazy leveling* hybrid of Dostoevsky
(Dayan & Idreos, SIGMOD'18):

* **Leveling** — each level holds at most one sorted run; a run arriving from
  the level above is immediately sort-merged into the resident run.  Reads are
  cheap (one run per level), writes pay repeated merges.
* **Tiering** — each level accumulates up to ``T - 1`` runs before compacting
  them together into the next level.  Writes are cheap, reads have to examine
  several runs per level.
* **Lazy leveling** — tiering on every level except the largest, which is
  kept as a single leveled run.  Point reads stay close to leveling (the
  largest level dominates the residence probability) while writes avoid most
  of leveling's repeated merges.

Two views of a policy coexist:

* :class:`Policy` — a lightweight enum used as the *identity* of a policy in
  tunings, dictionaries and CLI flags.
* :class:`CompactionPolicy` — the strategy object carrying the actual
  per-policy logic.  It supplies the analytical quantities the cost model
  needs (runs per level, merge amortisation factors, both NumPy
  broadcastable) and the runtime hooks the simulated LSM tree needs
  (merge-on-arrival levels, compaction trigger, bulk-load fill fractions).
  ``Policy.strategy`` resolves the enum to its singleton strategy, so no
  other module ever branches on the enum value.
"""

from __future__ import annotations

import abc
import enum

import numpy as np


class Policy(enum.Enum):
    """Merge/compaction policy of an LSM tree."""

    LEVELING = "leveling"
    TIERING = "tiering"
    LAZY_LEVELING = "lazy-leveling"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def strategy(self) -> "CompactionPolicy":
        """The singleton :class:`CompactionPolicy` implementing this policy."""
        return _STRATEGIES[self]

    @classmethod
    def from_value(cls, value: "Policy | str") -> "Policy":
        """Coerce a user-supplied value (enum member or string) to a policy.

        Accepts the enum member itself, its ``value`` string, or common
        abbreviations (``"level"``/``"tier"``/``"lazy"``, ``"L"``/``"T"``) so
        that configuration files and CLI flags stay pleasant to write.
        """
        if isinstance(value, cls):
            return value
        if not isinstance(value, str):
            raise TypeError(f"cannot interpret {value!r} as a compaction policy")
        norm = value.strip().lower()
        aliases = {
            "leveling": cls.LEVELING,
            "level": cls.LEVELING,
            "levelled": cls.LEVELING,
            "leveled": cls.LEVELING,
            "l": cls.LEVELING,
            "tiering": cls.TIERING,
            "tier": cls.TIERING,
            "tiered": cls.TIERING,
            "t": cls.TIERING,
            "lazy-leveling": cls.LAZY_LEVELING,
            "lazy_leveling": cls.LAZY_LEVELING,
            "lazyleveling": cls.LAZY_LEVELING,
            "lazy": cls.LAZY_LEVELING,
            "ll": cls.LAZY_LEVELING,
        }
        try:
            return aliases[norm]
        except KeyError as exc:
            raise ValueError(f"unknown compaction policy {value!r}") from exc


class CompactionPolicy(abc.ABC):
    """Strategy object carrying all per-policy logic.

    The analytical methods (:meth:`runs_per_level`, :meth:`merge_factor`)
    accept scalars *or* NumPy arrays and broadcast, so the same definition
    powers both the scalar cost equations and the vectorised
    :meth:`~repro.lsm.cost_model.LSMCostModel.cost_matrix` grid pass.  The
    runtime methods steer the simulated LSM tree in
    :mod:`repro.storage.lsm_tree`.
    """

    #: The enum identity of this strategy; set by subclasses.
    policy: Policy

    @property
    def name(self) -> str:
        """Canonical string name of the policy."""
        return self.policy.value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"

    # ------------------------------------------------------------------
    # Analytical quantities (NumPy broadcastable)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def runs_per_level(self, size_ratio, level, num_levels):
        """Expected number of sorted runs resident at ``level``.

        All arguments broadcast: ``size_ratio`` is ``T`` (scalar or array),
        ``level`` the 1-based level index and ``num_levels`` the tree depth
        ``L``.  This single quantity determines the false-positive probes of
        point lookups and the seeks of range queries.
        """

    @abc.abstractmethod
    def merge_factor(self, size_ratio, level, num_levels):
        """Expected number of merges an entry takes part in at ``level``.

        Broadcastable like :meth:`runs_per_level`.  Under leveling an entry
        is rewritten about ``(T-1)/2`` times per level, under tiering
        ``(T-1)/T`` times (it is merged once when the level fills up).
        """

    # ------------------------------------------------------------------
    # Runtime hooks for the simulated LSM tree
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def merges_on_arrival(self, level: int, last_level: int) -> bool:
        """Whether ``level`` keeps a single run (leveled behaviour).

        When ``True`` an arriving run is sort-merged into the resident run
        immediately; when ``False`` runs stack up until the compaction
        trigger fires.  ``last_level`` is the tree's current deepest level.
        """

    def max_resident_runs(self, size_ratio: int) -> int:
        """Runs a stacking level may hold before compaction triggers."""
        return max(1, int(size_ratio) - 1)

    def bulk_load_fill_fraction(
        self, level: int, last_level: int, headroom: float
    ) -> float:
        """Fraction of a level's capacity that bulk loading may fill.

        Levels that merge on arrival trigger compaction on *size*, so they
        are loaded with ``headroom`` (< 1) to keep the first trickle of
        post-load writes from rewriting the level; stacking levels trigger on
        the *run count* and can be loaded full.
        """
        return headroom if self.merges_on_arrival(level, last_level) else 1.0


class LevelingPolicy(CompactionPolicy):
    """Classical leveling: one sorted run per level."""

    policy = Policy.LEVELING

    def runs_per_level(self, size_ratio, level, num_levels):
        shape = np.broadcast_shapes(
            np.shape(size_ratio), np.shape(level), np.shape(num_levels)
        )
        return np.ones(shape, dtype=float)

    def merge_factor(self, size_ratio, level, num_levels):
        size_ratio, _, _ = np.broadcast_arrays(size_ratio, level, num_levels)
        return (size_ratio - 1.0) / 2.0

    def merges_on_arrival(self, level: int, last_level: int) -> bool:
        return True


class TieringPolicy(CompactionPolicy):
    """Classical tiering: up to ``T - 1`` overlapping runs per level."""

    policy = Policy.TIERING

    def runs_per_level(self, size_ratio, level, num_levels):
        size_ratio, _, _ = np.broadcast_arrays(size_ratio, level, num_levels)
        return size_ratio - 1.0

    def merge_factor(self, size_ratio, level, num_levels):
        size_ratio, _, _ = np.broadcast_arrays(size_ratio, level, num_levels)
        return (size_ratio - 1.0) / size_ratio

    def merges_on_arrival(self, level: int, last_level: int) -> bool:
        return False


class LazyLevelingPolicy(CompactionPolicy):
    """Lazy leveling: tiering on upper levels, leveling on the largest.

    With a single disk level it degenerates to plain leveling, which the
    test-suite verifies against :class:`LevelingPolicy` exactly.
    """

    policy = Policy.LAZY_LEVELING

    def runs_per_level(self, size_ratio, level, num_levels):
        size_ratio, level, num_levels = np.broadcast_arrays(
            size_ratio, level, num_levels
        )
        return np.where(level >= num_levels, 1.0, size_ratio - 1.0)

    def merge_factor(self, size_ratio, level, num_levels):
        size_ratio, level, num_levels = np.broadcast_arrays(
            size_ratio, level, num_levels
        )
        return np.where(
            level >= num_levels,
            (size_ratio - 1.0) / 2.0,
            (size_ratio - 1.0) / size_ratio,
        )

    def merges_on_arrival(self, level: int, last_level: int) -> bool:
        return level >= last_level


#: Singleton strategy instances, keyed by their enum identity.
_STRATEGIES: dict[Policy, CompactionPolicy] = {
    Policy.LEVELING: LevelingPolicy(),
    Policy.TIERING: TieringPolicy(),
    Policy.LAZY_LEVELING: LazyLevelingPolicy(),
}


def get_policy(value: Policy | str) -> CompactionPolicy:
    """Resolve an enum member or string to its :class:`CompactionPolicy`."""
    return Policy.from_value(value).strategy


#: The paper's classical design space, in a stable order.  This is the
#: default search space of the tuners, keeping the reproduction faithful.
CLASSIC_POLICIES: tuple[Policy, ...] = (Policy.LEVELING, Policy.TIERING)

#: Every supported policy, in a stable order (useful for exhaustive searches).
ALL_POLICIES: tuple[Policy, ...] = (
    Policy.LEVELING,
    Policy.TIERING,
    Policy.LAZY_LEVELING,
)
