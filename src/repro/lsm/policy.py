"""Compaction policies supported by the LSM-tree model and simulator.

The paper (and this reproduction) considers the two classical merge policies:

* **Leveling** — each level holds at most one sorted run; a run arriving from
  the level above is immediately sort-merged into the resident run.  Reads are
  cheap (one run per level), writes pay repeated merges.
* **Tiering** — each level accumulates up to ``T - 1`` runs before compacting
  them together into the next level.  Writes are cheap, reads have to examine
  several runs per level.
"""

from __future__ import annotations

import enum


class Policy(enum.Enum):
    """Merge/compaction policy of an LSM tree."""

    LEVELING = "leveling"
    TIERING = "tiering"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @classmethod
    def from_value(cls, value: "Policy | str") -> "Policy":
        """Coerce a user-supplied value (enum member or string) to a policy.

        Accepts the enum member itself, its ``value`` string, or common
        abbreviations (``"level"``/``"tier"``, ``"L"``/``"T"``) so that
        configuration files and CLI flags stay pleasant to write.
        """
        if isinstance(value, cls):
            return value
        if not isinstance(value, str):
            raise TypeError(f"cannot interpret {value!r} as a compaction policy")
        norm = value.strip().lower()
        aliases = {
            "leveling": cls.LEVELING,
            "level": cls.LEVELING,
            "levelled": cls.LEVELING,
            "leveled": cls.LEVELING,
            "l": cls.LEVELING,
            "tiering": cls.TIERING,
            "tier": cls.TIERING,
            "tiered": cls.TIERING,
            "t": cls.TIERING,
        }
        try:
            return aliases[norm]
        except KeyError as exc:
            raise ValueError(f"unknown compaction policy {value!r}") from exc


#: All policies, in a stable order (useful for exhaustive searches).
ALL_POLICIES: tuple[Policy, ...] = (Policy.LEVELING, Policy.TIERING)
