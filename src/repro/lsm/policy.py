"""Compaction policies: first-class strategy objects shared by the cost
model and the storage engine.

The paper's design space contains the two classical merge policies; this
reproduction additionally supports the hybrid designs of Dostoevsky
(Dayan & Idreos, SIGMOD'18):

* **Leveling** — each level holds at most one sorted run; a run arriving from
  the level above is immediately sort-merged into the resident run.  Reads are
  cheap (one run per level), writes pay repeated merges.
* **Tiering** — each level accumulates up to ``T - 1`` runs before compacting
  them together into the next level.  Writes are cheap, reads have to examine
  several runs per level.
* **Lazy leveling** — tiering on every level except the largest, which is
  kept as a single leveled run.  Point reads stay close to leveling (the
  largest level dominates the residence probability) while writes avoid most
  of leveling's repeated merges.
* **1-leveling** — the mirror image of lazy leveling: leveling on the first
  disk level only, tiering below it.  The smallest level absorbs the flush
  churn as a single run while the bulk of the tree keeps tiering's cheap
  writes.
* **Fluid** — Dostoevsky's fluid LSM: a run *bound* ``K`` on every level but
  the largest and a separate bound ``Z`` on the largest level, both tunable.
  ``K = Z = 1`` recovers leveling exactly, ``K = Z = T - 1`` recovers
  tiering, and ``K = T - 1, Z = 1`` recovers lazy leveling, so the fluid
  family is a superset of every other policy here; the tuners sweep a
  ``(K, Z)`` grid alongside ``(T, h)``.  In full Dostoevsky generality the
  single upper-level bound ``K`` becomes a per-level vector ``K_i``
  (``k_bounds``): one independent run bound per upper level, shallowest
  first, with levels deeper than the vector reusing its last element.  The
  uniform vector reproduces the scalar ``K`` exactly; non-uniform vectors
  (e.g. front-loaded "lazy ladders" — tiered shallow levels descending to
  leveled deep ones) open the part of the design space no scalar ``(K, Z)``
  pair reaches.

Two views of a policy coexist:

* :class:`Policy` — a lightweight enum used as the *identity* of a policy in
  tunings, dictionaries and CLI flags.
* :class:`CompactionPolicy` — the strategy object carrying the actual
  per-policy logic.  It supplies the analytical quantities the cost model
  needs (runs per level, merge amortisation factors, both NumPy
  broadcastable) and the runtime hooks the simulated LSM tree needs
  (merge-on-arrival levels, per-level compaction triggers, bulk-load fill
  fractions).  ``Policy.strategy`` resolves the enum to its singleton
  strategy, so no other module ever branches on the enum value.

Parameterised policies (fluid's ``K``/``Z``) add a third, lightweight view:

* :class:`PolicySpec` — a hashable ``(policy, k_bound, z_bound)`` triple the
  tuners sweep.  ``CompactionPolicy.for_tuning`` binds a strategy to the
  bounds carried on a concrete :class:`~repro.lsm.tuning.LSMTuning`, and
  :func:`expand_policy_specs` unfolds ``Policy.FLUID`` into the default
  ``(K, Z)`` candidate grid.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np


class Policy(enum.Enum):
    """Merge/compaction policy of an LSM tree."""

    LEVELING = "leveling"
    TIERING = "tiering"
    LAZY_LEVELING = "lazy-leveling"
    ONE_LEVELING = "1-leveling"
    FLUID = "fluid"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def strategy(self) -> "CompactionPolicy":
        """The singleton :class:`CompactionPolicy` implementing this policy."""
        return _STRATEGIES[self]

    @classmethod
    def from_value(cls, value: "Policy | str") -> "Policy":
        """Coerce a user-supplied value (enum member or string) to a policy.

        Accepts the enum member itself, its ``value`` string, or common
        abbreviations (``"level"``/``"tier"``/``"lazy"``, ``"L"``/``"T"``) so
        that configuration files and CLI flags stay pleasant to write.
        """
        if isinstance(value, cls):
            return value
        if not isinstance(value, str):
            raise TypeError(f"cannot interpret {value!r} as a compaction policy")
        norm = value.strip().lower()
        aliases = {
            "leveling": cls.LEVELING,
            "level": cls.LEVELING,
            "levelled": cls.LEVELING,
            "leveled": cls.LEVELING,
            "l": cls.LEVELING,
            "tiering": cls.TIERING,
            "tier": cls.TIERING,
            "tiered": cls.TIERING,
            "t": cls.TIERING,
            "lazy-leveling": cls.LAZY_LEVELING,
            "lazy_leveling": cls.LAZY_LEVELING,
            "lazyleveling": cls.LAZY_LEVELING,
            "lazy": cls.LAZY_LEVELING,
            "ll": cls.LAZY_LEVELING,
            "1-leveling": cls.ONE_LEVELING,
            "1_leveling": cls.ONE_LEVELING,
            "1leveling": cls.ONE_LEVELING,
            "one-leveling": cls.ONE_LEVELING,
            "one_leveling": cls.ONE_LEVELING,
            "1l": cls.ONE_LEVELING,
            "fluid": cls.FLUID,
            "fluid-lsm": cls.FLUID,
            "k-hybrid": cls.FLUID,
            "khybrid": cls.FLUID,
            "f": cls.FLUID,
        }
        try:
            return aliases[norm]
        except KeyError as exc:
            raise ValueError(f"unknown compaction policy {value!r}") from exc


class CompactionPolicy(abc.ABC):
    """Strategy object carrying all per-policy logic.

    The analytical methods (:meth:`runs_per_level`, :meth:`merge_factor`)
    accept scalars *or* NumPy arrays and broadcast, so the same definition
    powers both the scalar cost equations and the vectorised
    :meth:`~repro.lsm.cost_model.LSMCostModel.cost_matrix` grid pass.  The
    runtime methods steer the simulated LSM tree in
    :mod:`repro.storage.lsm_tree`.
    """

    #: The enum identity of this strategy; set by subclasses.
    policy: Policy

    @property
    def name(self) -> str:
        """Canonical string name of the policy."""
        return self.policy.value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"

    def for_tuning(self, tuning) -> "CompactionPolicy":
        """Bind this strategy to the per-tuning parameters it needs.

        Stateless policies return themselves; parameterised policies (fluid's
        ``K``/``Z`` run bounds) return an instance configured with the bounds
        carried on the :class:`~repro.lsm.tuning.LSMTuning`.
        """
        return self

    # ------------------------------------------------------------------
    # Analytical quantities (NumPy broadcastable)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def runs_per_level(self, size_ratio, level, num_levels):
        """Expected number of sorted runs resident at ``level``.

        All arguments broadcast: ``size_ratio`` is ``T`` (scalar or array),
        ``level`` the 1-based level index and ``num_levels`` the tree depth
        ``L``.  This single quantity determines the false-positive probes of
        point lookups, the seeks of range queries and the worst-case pages a
        long range scan touches per level.
        """

    @abc.abstractmethod
    def merge_factor(self, size_ratio, level, num_levels):
        """Expected number of merges an entry takes part in at ``level``.

        Broadcastable like :meth:`runs_per_level`.  Under leveling an entry
        is rewritten about ``(T-1)/2`` times per level, under tiering
        ``(T-1)/T`` times (it is merged once when the level fills up); a
        fluid level with run bound ``m`` interpolates as ``(T-1)/(m+1)``,
        which recovers both classical values at ``m = 1`` and ``m = T - 1``.
        """

    # ------------------------------------------------------------------
    # Runtime hooks for the simulated LSM tree
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def merges_on_arrival(self, level: int, last_level: int) -> bool:
        """Whether ``level`` keeps a single run (leveled behaviour).

        When ``True`` an arriving run is sort-merged into the resident run
        immediately; when ``False`` runs stack up until the compaction
        trigger fires.  ``last_level`` is the tree's current deepest level.
        """

    def max_resident_runs(
        self, size_ratio: int, level: int = 1, last_level: int | None = None
    ) -> int:
        """Runs a stacking level may hold before compaction triggers.

        ``level``/``last_level`` let per-level policies (fluid's ``K`` on
        upper levels vs ``Z`` on the largest) answer per level; stateless
        policies ignore them, so calls without level context keep returning
        the classical ``T - 1`` trigger.
        """
        return max(1, int(size_ratio) - 1)

    def compacts_within_level(self, level: int, last_level: int) -> bool:
        """Whether hitting the run bound merges *within* the level.

        Classical policies merge a full level into the next one (the run
        bound coincides with the level being at capacity).  Fluid policies
        with a bound below ``T - 1`` hit the bound while the level still has
        entry headroom; they restore the bound by merging the level's runs in
        place and only spill down once the level's capacity is exhausted.
        """
        return False

    def bulk_load_fill_fraction(
        self, level: int, last_level: int, headroom: float
    ) -> float:
        """Fraction of a level's capacity that bulk loading may fill.

        Levels that merge on arrival trigger compaction on *size*, so they
        are loaded with ``headroom`` (< 1) to keep the first trickle of
        post-load writes from rewriting the level; stacking levels trigger on
        the *run count* and can be loaded full.
        """
        return headroom if self.merges_on_arrival(level, last_level) else 1.0


class LevelingPolicy(CompactionPolicy):
    """Classical leveling: one sorted run per level."""

    policy = Policy.LEVELING

    def runs_per_level(self, size_ratio, level, num_levels):
        shape = np.broadcast_shapes(
            np.shape(size_ratio), np.shape(level), np.shape(num_levels)
        )
        return np.ones(shape, dtype=float)

    def merge_factor(self, size_ratio, level, num_levels):
        size_ratio, _, _ = np.broadcast_arrays(size_ratio, level, num_levels)
        return (size_ratio - 1.0) / 2.0

    def merges_on_arrival(self, level: int, last_level: int) -> bool:
        return True


class TieringPolicy(CompactionPolicy):
    """Classical tiering: up to ``T - 1`` overlapping runs per level."""

    policy = Policy.TIERING

    def runs_per_level(self, size_ratio, level, num_levels):
        size_ratio, _, _ = np.broadcast_arrays(size_ratio, level, num_levels)
        return size_ratio - 1.0

    def merge_factor(self, size_ratio, level, num_levels):
        size_ratio, _, _ = np.broadcast_arrays(size_ratio, level, num_levels)
        return (size_ratio - 1.0) / size_ratio

    def merges_on_arrival(self, level: int, last_level: int) -> bool:
        return False


class LazyLevelingPolicy(CompactionPolicy):
    """Lazy leveling: tiering on upper levels, leveling on the largest.

    With a single disk level it degenerates to plain leveling, which the
    test-suite verifies against :class:`LevelingPolicy` exactly.
    """

    policy = Policy.LAZY_LEVELING

    def runs_per_level(self, size_ratio, level, num_levels):
        size_ratio, level, num_levels = np.broadcast_arrays(
            size_ratio, level, num_levels
        )
        return np.where(level >= num_levels, 1.0, size_ratio - 1.0)

    def merge_factor(self, size_ratio, level, num_levels):
        size_ratio, level, num_levels = np.broadcast_arrays(
            size_ratio, level, num_levels
        )
        return np.where(
            level >= num_levels,
            (size_ratio - 1.0) / 2.0,
            (size_ratio - 1.0) / size_ratio,
        )

    def merges_on_arrival(self, level: int, last_level: int) -> bool:
        return level >= last_level


class OneLevelingPolicy(CompactionPolicy):
    """1-leveling: leveling on the first disk level, tiering below it.

    The mirror image of lazy leveling: the *smallest* level is kept as a
    single run (absorbing the high-frequency flush churn with cheap merges —
    level 1 is small, so rewriting it is inexpensive) while every deeper
    level stacks runs like tiering.  With a single disk level it degenerates
    to plain leveling, exactly like lazy leveling does.
    """

    policy = Policy.ONE_LEVELING

    def runs_per_level(self, size_ratio, level, num_levels):
        size_ratio, level, num_levels = np.broadcast_arrays(
            size_ratio, level, num_levels
        )
        return np.where(level <= 1, 1.0, size_ratio - 1.0)

    def merge_factor(self, size_ratio, level, num_levels):
        size_ratio, level, num_levels = np.broadcast_arrays(
            size_ratio, level, num_levels
        )
        return np.where(
            level <= 1,
            (size_ratio - 1.0) / 2.0,
            (size_ratio - 1.0) / size_ratio,
        )

    def merges_on_arrival(self, level: int, last_level: int) -> bool:
        return level <= 1


class FluidPolicy(CompactionPolicy):
    """Dostoevsky's fluid LSM: tunable run bounds ``K`` (upper) and ``Z`` (last).

    Every level but the largest holds at most ``K`` runs, the largest at most
    ``Z``.  Bounds are clamped per level to the feasible range ``[1, T - 1]``,
    so a single ``(K, Z)`` pair stays meaningful across the whole size-ratio
    grid the tuners sweep.  The analytical quantities interpolate the
    classical formulas:

    * runs per level — the (clamped) bound itself,
    * merge factor — ``(T - 1) / (bound + 1)``, which equals leveling's
      ``(T-1)/2`` at bound 1 and tiering's ``(T-1)/T`` at bound ``T - 1``.

    ``k_bound=None`` defaults to ``T - 1`` (tiering-like upper levels) and
    ``z_bound=None`` to ``1`` (a single leveled run at the largest level), so
    an unparameterised fluid tuning is lazy leveling.

    Full Dostoevsky generality replaces the shared scalar ``K`` with a
    per-level vector ``k_bounds = (K_1, K_2, …)``, shallowest level first:
    ``runs_per_level(level)`` reads ``k_bounds[level - 1]`` (levels deeper
    than the vector reuse its last element) and the largest level reads
    ``Z``, so this strategy is a thin view over the vector.  A uniform
    vector behaves bit-identically to the scalar it repeats.
    """

    policy = Policy.FLUID

    def __init__(
        self,
        k_bound: float | None = None,
        z_bound: float | None = None,
        k_bounds: Sequence[float] | None = None,
    ) -> None:
        if k_bounds is not None:
            if k_bound is not None:
                raise ValueError(
                    "scalar k_bound and per-level k_bounds are mutually exclusive"
                )
            vector = tuple(float(bound) for bound in k_bounds)
            if not vector:
                raise ValueError("k_bounds must hold at least one level bound")
            if any(bound < 1.0 for bound in vector):
                raise ValueError(f"k_bounds must all be at least 1, got {vector}")
            self.k_bounds: tuple[float, ...] | None = vector
        else:
            self.k_bounds = None
        if k_bound is not None and k_bound < 1.0:
            raise ValueError(f"k_bound must be at least 1, got {k_bound}")
        if z_bound is not None and z_bound < 1.0:
            raise ValueError(f"z_bound must be at least 1, got {z_bound}")
        self.k_bound = None if k_bound is None else float(k_bound)
        self.z_bound = 1.0 if z_bound is None else float(z_bound)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.k_bounds is not None:
            k = "(" + ",".join(f"{bound:g}" for bound in self.k_bounds) + ")"
        else:
            k = "T-1" if self.k_bound is None else f"{self.k_bound:g}"
        return f"FluidPolicy(K={k}, Z={self.z_bound:g})"

    def for_tuning(self, tuning) -> "FluidPolicy":
        return FluidPolicy(
            k_bound=tuning.k_bound,
            z_bound=tuning.z_bound,
            k_bounds=getattr(tuning, "k_bounds", None),
        )

    # ------------------------------------------------------------------
    # Effective (clamped) bounds
    # ------------------------------------------------------------------
    def effective_bounds(self, size_ratio):
        """Per-``T`` effective ``(K, Z)``: the bounds clamped to ``[1, T-1]``.

        For a per-level vector the ``K`` component is the *first* level's
        bound (the scalar view of a vector policy is level-dependent; use
        :meth:`upper_level_bounds` for the whole vector).
        """
        cap = np.maximum(np.asarray(size_ratio, dtype=float) - 1.0, 1.0)
        if self.k_bounds is not None:
            k = np.clip(self.k_bounds[0], 1.0, cap)
        elif self.k_bound is None:
            k = cap
        else:
            k = np.clip(self.k_bound, 1.0, cap)
        z = np.clip(self.z_bound, 1.0, cap)
        return k, z

    def upper_level_bounds(self, size_ratio, level):
        """Clamped run bound of each (upper) ``level``, broadcastable.

        Reads the per-level vector when one is present — ``level`` indexes it
        1-based, levels past its end reuse the last element — and falls back
        to the scalar ``K`` (or the tracking default ``T - 1``) otherwise.
        """
        cap = np.maximum(np.asarray(size_ratio, dtype=float) - 1.0, 1.0)
        if self.k_bounds is not None:
            vector = np.asarray(self.k_bounds, dtype=float)
            index = np.clip(
                np.asarray(level).astype(np.int64) - 1, 0, vector.size - 1
            )
            return np.clip(vector[index], 1.0, cap)
        if self.k_bound is None:
            return cap
        return np.clip(self.k_bound, 1.0, cap)

    def _raw_upper_bound(self, level: int) -> float | None:
        """Unclamped bound of one upper ``level`` (``None`` = track ``T-1``)."""
        if self.k_bounds is not None:
            return self.k_bounds[min(level, len(self.k_bounds)) - 1]
        return self.k_bound

    # ------------------------------------------------------------------
    # Analytical quantities
    # ------------------------------------------------------------------
    def runs_per_level(self, size_ratio, level, num_levels):
        size_ratio, level, num_levels = np.broadcast_arrays(
            size_ratio, level, num_levels
        )
        cap = np.maximum(np.asarray(size_ratio, dtype=float) - 1.0, 1.0)
        k = self.upper_level_bounds(size_ratio, level)
        z = np.clip(self.z_bound, 1.0, cap)
        return np.where(level >= num_levels, z, k)

    def merge_factor(self, size_ratio, level, num_levels):
        size_ratio, level, num_levels = np.broadcast_arrays(
            size_ratio, level, num_levels
        )
        size_ratio = np.asarray(size_ratio, dtype=float)
        cap = np.maximum(size_ratio - 1.0, 1.0)
        k = self.upper_level_bounds(size_ratio, level)
        z = np.clip(self.z_bound, 1.0, cap)
        return np.where(
            level >= num_levels,
            (size_ratio - 1.0) / (z + 1.0),
            (size_ratio - 1.0) / (k + 1.0),
        )

    # ------------------------------------------------------------------
    # Runtime hooks
    # ------------------------------------------------------------------
    def merges_on_arrival(self, level: int, last_level: int) -> bool:
        if level >= last_level:
            return self.z_bound == 1.0
        return self._raw_upper_bound(level) == 1.0

    def max_resident_runs(
        self, size_ratio: int, level: int = 1, last_level: int | None = None
    ) -> int:
        cap = max(1, int(size_ratio) - 1)
        if last_level is not None and level >= last_level:
            return int(np.clip(self.z_bound, 1, cap))
        bound = self._raw_upper_bound(level)
        if bound is None:
            return cap
        return int(np.clip(bound, 1, cap))

    def compacts_within_level(self, level: int, last_level: int) -> bool:
        return True


@dataclass(frozen=True)
class PolicySpec:
    """A fully specified policy candidate: identity plus fluid run bounds.

    The tuners sweep a sequence of these; for classical policies the bounds
    are ``None`` and the spec is just the enum.  Fluid specs carry either the
    scalar ``(K, Z)`` pair or a per-level ``k_bounds`` vector (shallowest
    level first, deeper levels reusing the last element).  Specs are
    hashable, so they can key per-policy result dictionaries.
    """

    policy: Policy
    k_bound: float | None = None
    z_bound: float | None = None
    k_bounds: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "policy", Policy.from_value(self.policy))
        if self.policy is not Policy.FLUID and (
            self.k_bound is not None
            or self.z_bound is not None
            or self.k_bounds is not None
        ):
            raise ValueError("run bounds are only meaningful for the fluid policy")
        if self.k_bounds is not None:
            if self.k_bound is not None:
                raise ValueError(
                    "scalar k_bound and per-level k_bounds are mutually exclusive"
                )
            object.__setattr__(
                self, "k_bounds", tuple(float(bound) for bound in self.k_bounds)
            )

    @classmethod
    def of(cls, value: "Policy | str | PolicySpec") -> "PolicySpec":
        """Coerce a policy-like value (enum, string or spec) to a spec."""
        if isinstance(value, cls):
            return value
        return cls(policy=Policy.from_value(value))

    @property
    def name(self) -> str:
        """Stable display name, e.g. ``fluid[K=4,Z=1]`` or ``leveling``."""
        if self.policy is not Policy.FLUID:
            return self.policy.value
        if self.k_bounds is not None:
            k = "(" + ",".join(f"{bound:g}" for bound in self.k_bounds) + ")"
        else:
            k = "T-1" if self.k_bound is None else f"{self.k_bound:g}"
        z = "1" if self.z_bound is None else f"{self.z_bound:g}"
        return f"fluid[K={k},Z={z}]"

    @property
    def strategy(self) -> CompactionPolicy:
        """The (possibly parameterised) strategy this spec describes."""
        if self.policy is Policy.FLUID:
            return FluidPolicy(
                k_bound=self.k_bound, z_bound=self.z_bound, k_bounds=self.k_bounds
            )
        return self.policy.strategy


#: Default fluid ``K`` candidates (clamped per ``T`` to ``[1, T-1]``); a
#: geometric-ish ladder so the sweep covers the leveling → tiering spectrum
#: without a quadratic number of cost-matrix passes.
DEFAULT_FLUID_K_GRID: tuple[float, ...] = (1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64)

#: Default fluid ``Z`` candidates for the largest level.  ``Z = 1`` (leveled
#: largest level) dominates unless writes dominate the workload, so the grid
#: stays small; the diagonal ``Z = K`` specs added by
#: :func:`expand_policy_specs` cover the tiering corner exactly.
DEFAULT_FLUID_Z_GRID: tuple[float, ...] = (1, 2, 4)

#: ``K`` peaks of the front-loaded ladder family swept when per-level
#: vectors are enabled: each peak unrolls into the halving ladder
#: ``(K, K/2, …, 1)``.  A subset of the scalar grid keeps the vector sweep
#: polynomial (one cost-matrix pass per spec).
DEFAULT_LADDER_PEAKS: tuple[float, ...] = (2, 3, 4, 8, 16, 32)

#: Upper levels covered explicitly by generated bound vectors; deeper levels
#: reuse the vector's last element, so the families stay meaningful for any
#: tree depth the ``(T, h)`` sweep produces.
DEFAULT_VECTOR_LEVELS = 4


def halving_ladder(peak: float) -> tuple[float, ...]:
    """The front-loaded "lazy ladder" ``(peak, peak/2, …, 1)``.

    Shallow levels stack up to ``peak`` runs (cheap writes where levels are
    small and merge often), each deeper level halves the bound until the
    leveled ``1`` is reached — deep levels hold almost all data, so keeping
    them single-run is what wins point and long-range reads.
    """
    bounds: list[float] = []
    bound = max(1.0, float(peak))
    while bound > 1.0:
        bounds.append(float(np.ceil(bound)))
        bound /= 2.0
    bounds.append(1.0)
    return tuple(bounds)


def fluid_vector_specs(
    max_size_ratio: float = 100.0,
    ladder_peaks: Sequence[float] | None = None,
    z_grid: Sequence[float] | None = None,
    vector_levels: int = DEFAULT_VECTOR_LEVELS,
) -> tuple[PolicySpec, ...]:
    """Structured per-level bound-vector candidates for the fluid sweep.

    Two families keep the enumeration polynomial while covering the
    non-uniform part of the Dostoevsky design space:

    * **front-loaded ladders** — :func:`halving_ladder` of each peak in
      ``ladder_peaks``, crossed with the ``Z`` grid (``Z <= peak``, matching
      the scalar sweep's diagonal cut);
    * **single-level perturbations** — the all-leveled vector with one level
      bumped to a peak, for each of the first ``vector_levels`` levels: the
      minimal non-uniform designs, and the natural seeds of the
      coordinate-descent refinement the tuners run afterwards.

    Uniform vectors are deliberately absent: the scalar ``(K, Z)`` grid of
    :func:`expand_policy_specs` covers them bit-identically.
    """
    if ladder_peaks is None:
        ladder_peaks = DEFAULT_LADDER_PEAKS
    if z_grid is None:
        z_grid = DEFAULT_FLUID_Z_GRID
    cap = max(1.0, float(max_size_ratio) - 1.0)
    # Filter on the *clamped* peak: at a tiny ratio cap every peak collapses
    # to 1 and would only re-emit the all-leveled uniform vectors the scalar
    # grid already covers.
    peaks = sorted(
        {float(min(peak, cap)) for peak in ladder_peaks if min(peak, cap) > 1}
    )
    zs = sorted({float(min(z, cap)) for z in z_grid if z >= 1})
    specs: list[PolicySpec] = []
    seen: set[PolicySpec] = set()

    def add(spec: PolicySpec) -> None:
        if spec not in seen:
            seen.add(spec)
            specs.append(spec)

    for peak in peaks:
        ladder = halving_ladder(peak)
        if len(set(ladder)) > 1:
            for z in zs:
                if z <= peak:
                    add(PolicySpec(Policy.FLUID, k_bounds=ladder, z_bound=z))
        for position in range(max(1, int(vector_levels))):
            bumped = [1.0] * max(position + 1, 2)
            bumped[position] = peak
            add(PolicySpec(Policy.FLUID, k_bounds=tuple(bumped), z_bound=1.0))
    return tuple(specs)


def expand_policy_specs(
    policies: Iterable["Policy | str | PolicySpec"],
    max_size_ratio: float = 100.0,
    k_grid: Sequence[float] | None = None,
    z_grid: Sequence[float] | None = None,
    include_k_vectors: bool = False,
    vector_levels: int = DEFAULT_VECTOR_LEVELS,
) -> tuple[PolicySpec, ...]:
    """Unfold a policy list into the concrete specs a tuner sweeps.

    Classical policies map to a single spec each.  ``Policy.FLUID`` expands
    into the ``(K, Z)`` candidate grid:

    * the *K-tracking* specs first — ``k_bound=None`` means ``K = T - 1``
      at every size ratio, so the lazy-leveling-shaped designs stay coupled
      to ``T`` through the continuous polish exactly like the dedicated
      lazy policy does (a fixed ``K`` has a clamp kink at ``T = K + 1``
      that can stall the polish on a tie);
    * all combinations of ``k_grid`` × ``z_grid`` with ``Z <= K`` (bounds
      above ``K`` never beat the ``Z = K`` diagonal for the workloads a
      bounded largest level targets), plus the ``Z = K`` diagonal itself so
      the tiering corner is represented exactly, plus a top candidate at
      ``max_size_ratio - 1`` so tiering/lazy leveling are recovered exactly
      for every size ratio on the sweep grid;
    * with ``include_k_vectors`` the structured per-level families of
      :func:`fluid_vector_specs` (front-loaded ladders and single-level
      perturbations) join the sweep after the scalar grid, opening the
      non-uniform Dostoevsky space while keeping the enumeration
      polynomial.

    Tracking specs precede fixed-``K`` specs so they win exact ties in the
    sweep.  Explicit :class:`PolicySpec` entries pass through untouched, so
    callers can pin ``K``/``Z`` — or a whole ``K_i`` vector — by hand.
    """
    if k_grid is None:
        k_grid = DEFAULT_FLUID_K_GRID
    if z_grid is None:
        z_grid = DEFAULT_FLUID_Z_GRID
    cap = max(1.0, float(max_size_ratio) - 1.0)
    specs: list[PolicySpec] = []
    seen: set[PolicySpec] = set()

    def add(spec: PolicySpec) -> None:
        if spec not in seen:
            seen.add(spec)
            specs.append(spec)

    for entry in policies:
        if isinstance(entry, PolicySpec):
            add(entry)
            continue
        policy = Policy.from_value(entry)
        if policy is not Policy.FLUID:
            add(PolicySpec(policy=policy))
            continue
        ks = sorted({float(min(k, cap)) for k in k_grid if k >= 1} | {cap})
        zs = sorted({float(min(z, cap)) for z in z_grid if z >= 1})
        for z in zs:
            add(PolicySpec(policy=policy, k_bound=None, z_bound=z))
        for k in ks:
            for z in zs:
                if z <= k:
                    add(PolicySpec(policy=policy, k_bound=k, z_bound=z))
            add(PolicySpec(policy=policy, k_bound=k, z_bound=k))
        if include_k_vectors:
            for spec in fluid_vector_specs(
                max_size_ratio=max_size_ratio,
                z_grid=z_grid,
                vector_levels=vector_levels,
            ):
                add(spec)
    if not specs:
        raise ValueError("at least one compaction policy is required")
    return tuple(specs)


#: Singleton strategy instances, keyed by their enum identity.
_STRATEGIES: dict[Policy, CompactionPolicy] = {
    Policy.LEVELING: LevelingPolicy(),
    Policy.TIERING: TieringPolicy(),
    Policy.LAZY_LEVELING: LazyLevelingPolicy(),
    Policy.ONE_LEVELING: OneLevelingPolicy(),
    Policy.FLUID: FluidPolicy(),
}


def get_policy(value: Policy | str) -> CompactionPolicy:
    """Resolve an enum member or string to its :class:`CompactionPolicy`."""
    return Policy.from_value(value).strategy


#: The paper's classical design space, in a stable order.  This is the
#: default search space of the tuners, keeping the reproduction faithful.
CLASSIC_POLICIES: tuple[Policy, ...] = (Policy.LEVELING, Policy.TIERING)

#: Every supported policy, in a stable order (useful for exhaustive searches).
ALL_POLICIES: tuple[Policy, ...] = (
    Policy.LEVELING,
    Policy.TIERING,
    Policy.LAZY_LEVELING,
    Policy.ONE_LEVELING,
    Policy.FLUID,
)
