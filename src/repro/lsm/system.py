"""System (non-tunable) parameters of an LSM-tree deployment.

These are the quantities the tuner cannot change: entry size, page size,
number of entries, the total memory budget shared by the write buffer and the
Bloom filters, the read/write cost asymmetry of the storage device and the
selectivity of range queries.  They correspond to the "System" rows of
Table 1 in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Any, Mapping

#: Number of bits in one byte; used for the many bit/byte conversions below.
BITS_PER_BYTE = 8

#: Number of bytes in one mebibyte.
MIB = 1024 * 1024

#: Number of bytes in one gibibyte.
GIB = 1024 * MIB


@dataclass(frozen=True)
class SystemConfig:
    """Immutable description of the environment an LSM tree runs in.

    Parameters
    ----------
    entry_size_bytes:
        Size ``E`` of one key-value entry in bytes (paper default: 1 KiB).
    page_size_bytes:
        Size of one disk page in bytes (paper default: 4 KiB).  The number of
        entries per page ``B`` is derived from this and ``entry_size_bytes``.
    num_entries:
        Total number of entries ``N`` stored in the tree.
    total_memory_bytes:
        Total main memory budget ``m`` in bytes, shared between the write
        buffer and the Bloom filters (``m = m_buf + m_filt``).
    read_write_asymmetry:
        Storage asymmetry ``A_rw``: how much more expensive a write I/O is
        than a read I/O (1.0 means symmetric).
    range_selectivity:
        Expected selectivity ``S_RQ`` of *short* range queries, i.e. the
        fraction of all entries returned by an average short range query.
        The paper's system experiments use "short" range queries with
        near-zero selectivity.
    long_range_selectivity:
        Expected selectivity of *long* range queries (Dostoevsky §4 splits
        the two regimes: short ranges are seek-dominated, long ranges
        scan-dominated).  Only enters the cost model when a workload carries
        a non-zero ``long_range_fraction``.  The default (2e-5, i.e. a
        200-entry scan ≈ 50 sequential pages at paper scale) makes a long
        scan clearly scan-dominated while keeping it comparable to tens of
        point lookups, so the tuner's trade-off stays non-degenerate.
    min_bits_per_entry:
        Lower bound on Bloom-filter bits per entry the tuner may choose.
    max_size_ratio:
        Upper bound on the size ratio ``T`` explored by the tuner.
    """

    entry_size_bytes: int = 1024
    page_size_bytes: int = 4096
    num_entries: int = 10_000_000
    total_memory_bytes: float = 20 * MIB
    read_write_asymmetry: float = 1.0
    range_selectivity: float = 0.0
    long_range_selectivity: float = 2e-5
    min_bits_per_entry: float = 0.0
    max_size_ratio: float = 100.0

    def __post_init__(self) -> None:
        if self.entry_size_bytes <= 0:
            raise ValueError("entry_size_bytes must be positive")
        if self.page_size_bytes < self.entry_size_bytes:
            raise ValueError("page_size_bytes must be at least entry_size_bytes")
        if self.num_entries <= 0:
            raise ValueError("num_entries must be positive")
        if self.total_memory_bytes <= 0:
            raise ValueError("total_memory_bytes must be positive")
        if self.read_write_asymmetry < 0:
            raise ValueError("read_write_asymmetry must be non-negative")
        if not 0.0 <= self.range_selectivity <= 1.0:
            raise ValueError("range_selectivity must be in [0, 1]")
        if not 0.0 <= self.long_range_selectivity <= 1.0:
            raise ValueError("long_range_selectivity must be in [0, 1]")
        if self.max_size_ratio < 2.0:
            raise ValueError("max_size_ratio must be at least 2")
        if self.max_bits_per_entry <= max(self.min_bits_per_entry, 0.0):
            raise ValueError(
                "total memory budget leaves no room for a write buffer; "
                "increase total_memory_bytes or num_entries"
            )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def entries_per_page(self) -> int:
        """Number of entries that fit in one page (``B`` in the paper)."""
        return max(1, self.page_size_bytes // self.entry_size_bytes)

    @property
    def entry_size_bits(self) -> int:
        """Entry size expressed in bits."""
        return self.entry_size_bytes * BITS_PER_BYTE

    @property
    def total_memory_bits(self) -> float:
        """Total memory budget ``m`` in bits."""
        return self.total_memory_bytes * BITS_PER_BYTE

    @property
    def total_bits_per_entry(self) -> float:
        """Total memory budget normalised per entry, in bits per entry."""
        return self.total_memory_bits / self.num_entries

    @property
    def max_bits_per_entry(self) -> float:
        """Largest Bloom-filter bits-per-entry ``h`` that still leaves memory
        for a non-empty write buffer.

        The write buffer must be able to hold at least one full page of
        entries, otherwise the tree degenerates.
        """
        min_buffer_bits = self.entries_per_page * self.entry_size_bits
        return (self.total_memory_bits - min_buffer_bits) / self.num_entries

    @property
    def data_size_bytes(self) -> float:
        """Total logical size of the stored data in bytes (``N * E``)."""
        return float(self.num_entries) * self.entry_size_bytes

    # ------------------------------------------------------------------
    # Memory split helpers
    # ------------------------------------------------------------------
    def filter_memory_bits(self, bits_per_entry: float) -> float:
        """Memory devoted to Bloom filters, in bits, for a given ``h``."""
        return bits_per_entry * self.num_entries

    def buffer_memory_bits(self, bits_per_entry: float) -> float:
        """Memory left for the write buffer, in bits, for a given ``h``.

        ``m_buf = m - m_filt``; raises if the requested filter memory exceeds
        the total budget.
        """
        remaining = self.total_memory_bits - self.filter_memory_bits(bits_per_entry)
        if remaining <= 0:
            raise ValueError(
                f"bits_per_entry={bits_per_entry} exceeds the total memory budget"
            )
        return remaining

    def buffer_memory_bytes(self, bits_per_entry: float) -> float:
        """Memory left for the write buffer, in bytes, for a given ``h``."""
        return self.buffer_memory_bits(bits_per_entry) / BITS_PER_BYTE

    def buffer_entries(self, bits_per_entry: float) -> float:
        """Number of entries the write buffer can hold for a given ``h``."""
        return self.buffer_memory_bits(bits_per_entry) / self.entry_size_bits

    # ------------------------------------------------------------------
    # Tree shape helpers
    # ------------------------------------------------------------------
    def num_levels(self, size_ratio: float, bits_per_entry: float) -> int:
        """Number of disk-resident levels ``L(T)`` (Equation 1 of the paper).

        ``L(T) = ceil( log_T( N * E / m_buf + 1 ) )`` with all sizes in bits.
        """
        if size_ratio < 2.0:
            raise ValueError("size_ratio must be at least 2")
        buffer_bits = self.buffer_memory_bits(bits_per_entry)
        ratio = (self.num_entries * self.entry_size_bits) / buffer_bits + 1.0
        levels = math.ceil(math.log(ratio) / math.log(size_ratio))
        return max(1, int(levels))

    def level_capacity_entries(
        self, level: int, size_ratio: float, bits_per_entry: float
    ) -> float:
        """Capacity of disk level ``i`` in entries: ``(T-1) T^(i-1) m_buf / E``."""
        if level < 1:
            raise ValueError("disk levels are numbered from 1")
        buffer_entries = self.buffer_entries(bits_per_entry)
        return (size_ratio - 1.0) * size_ratio ** (level - 1) * buffer_entries

    def full_tree_entries(self, size_ratio: float, bits_per_entry: float) -> float:
        """Number of entries in a tree completely full up to ``L(T)`` levels.

        This is ``N_f(T)`` from Equation (13).
        """
        levels = self.num_levels(size_ratio, bits_per_entry)
        return sum(
            self.level_capacity_entries(i, size_ratio, bits_per_entry)
            for i in range(1, levels + 1)
        )

    # ------------------------------------------------------------------
    # Convenience constructors / serialisation
    # ------------------------------------------------------------------
    def scaled(self, num_entries: int) -> "SystemConfig":
        """Return a copy with a different number of entries.

        The memory budget is scaled proportionally so that the bits-per-entry
        budget (and therefore the qualitative tuning landscape) is preserved.
        This is how the scaling experiment (Figure 16) varies database size.
        """
        if num_entries <= 0:
            raise ValueError("num_entries must be positive")
        factor = num_entries / self.num_entries
        return replace(
            self,
            num_entries=num_entries,
            total_memory_bytes=self.total_memory_bytes * factor,
        )

    def to_dict(self) -> dict[str, Any]:
        """Serialise to a plain dictionary (useful for logging and JSON)."""
        return {
            "entry_size_bytes": self.entry_size_bytes,
            "page_size_bytes": self.page_size_bytes,
            "num_entries": self.num_entries,
            "total_memory_bytes": self.total_memory_bytes,
            "read_write_asymmetry": self.read_write_asymmetry,
            "range_selectivity": self.range_selectivity,
            "long_range_selectivity": self.long_range_selectivity,
            "min_bits_per_entry": self.min_bits_per_entry,
            "max_size_ratio": self.max_size_ratio,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SystemConfig":
        """Build a configuration from a mapping produced by :meth:`to_dict`."""
        return cls(**dict(data))


#: Default configuration used throughout the model-based evaluation.  It
#: mirrors the paper's setup (10M entries of 1 KiB, 4 KiB pages) with a memory
#: budget that yields Bloom-filter allocations in the same few-bits-per-entry
#: range the paper reports.
DEFAULT_SYSTEM = SystemConfig()


def simulator_system(
    num_entries: int = 50_000,
    entry_size_bytes: int = 1024,
    page_size_bytes: int = 4096,
    bits_per_entry_budget: float = 16.0,
    read_write_asymmetry: float = 1.0,
    range_selectivity: float = 0.0,
    long_range_selectivity: float = 0.01,
) -> SystemConfig:
    """Build a small :class:`SystemConfig` suitable for the LSM simulator.

    The paper runs its system experiments on RocksDB with 10M entries; the
    pure-Python simulator uses a scaled-down database so experiments finish
    quickly, keeping the per-entry memory budget comparable.  For very small
    stores the budget is raised to the minimum that still leaves room for a
    couple of write-buffer pages next to the Bloom filters.
    """
    entries_per_page = max(1, page_size_bytes // entry_size_bytes)
    minimum_bytes = 2.0 * entries_per_page * entry_size_bytes
    total_memory_bytes = max(
        bits_per_entry_budget * num_entries / BITS_PER_BYTE, minimum_bytes
    )
    return SystemConfig(
        entry_size_bytes=entry_size_bytes,
        page_size_bytes=page_size_bytes,
        num_entries=num_entries,
        total_memory_bytes=total_memory_bytes,
        read_write_asymmetry=read_write_asymmetry,
        range_selectivity=range_selectivity,
        long_range_selectivity=long_range_selectivity,
    )
