"""Workload-drift detection against the tuned-for uncertainty region.

A deployed tuning was optimised for the KL ball ``U_w^ρ`` around a nominal
workload (robust tunings explicitly, nominal tunings with ``ρ = 0`` in
spirit).  The detector keeps that region — reusing
:class:`~repro.core.uncertainty.UncertaintyRegion` — and compares the rolling
:class:`~repro.online.observed.ObservedWorkload` estimate against it: while
the observed workload stays inside the ball the deployed tuning's worst-case
guarantee still covers the stream, and the detector stays quiet; once the
divergence exceeds the radius the guarantee has been escaped and the detector
fires, subject to a warm-up floor (too few observations make the estimate
noise) and a cooldown (a re-tuning must be given time to pay off before the
next one is considered).

Two edge cases are handled explicitly rather than by accident:

* a *zero-weight component of the nominal workload* observed live makes the
  KL divergence infinite — that is a genuine escape (no tilting of the
  nominal workload can reach the observed one) and fires the detector;
* a *zero-weight component of the observed workload* contributes nothing to
  the divergence, matching the convention of
  :func:`~repro.workloads.workload.kl_divergence`.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

import numpy as np

from ..core.uncertainty import UncertaintyRegion
from ..workloads.workload import Workload


@dataclass(frozen=True)
class DriftCheck:
    """Outcome of one drift check."""

    position: int
    divergence: float
    fired: bool
    #: Why the check did (or did not) fire: ``inside``, ``warmup``,
    #: ``confirming``, ``cooldown`` or ``drift``.
    reason: str


class DriftDetector:
    """Fires when the observed workload escapes the tuned-for KL ball.

    Parameters
    ----------
    region:
        The uncertainty region the deployed tuning was computed for; its
        ``rho`` is the drift threshold.
    min_observations:
        Number of operations the estimator must have folded in before a
        check may fire (the empirical workload of a handful of queries is
        noise, not drift).
    cooldown:
        Number of operations after a firing (or an explicit
        :meth:`mute`/:meth:`recenter`) during which further firings are
        suppressed, so one drift episode triggers one re-tuning.
    confirm_checks:
        Number of *consecutive* out-of-region checks required before the
        detector fires.  Confirmation delays the firing past the front of a
        drift episode, by which time the rolling estimator's window has
        flushed the pre-drift mix — so the re-tuner solves for the settled
        new workload, not for a transient blend of old and new.
    trajectory_window:
        Number of recent (finite) check divergences kept as the *KL
        trajectory*.  Its dispersion is the detector's volatility signal: a
        stream that keeps swinging around its nominal centre — a cyclic
        HTAP-style workload — shows a high-variance trajectory even when
        individual checks stay quiet, and the adaptive re-tuner widens its
        robust radius with it (see
        :meth:`~repro.online.retuner.AdaptiveTuner.effective_rho`).
    """

    def __init__(
        self,
        region: UncertaintyRegion,
        min_observations: int = 512,
        cooldown: int = 4_096,
        confirm_checks: int = 1,
        trajectory_window: int = 32,
    ) -> None:
        if min_observations < 0:
            raise ValueError("min_observations must be non-negative")
        if cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        if confirm_checks <= 0:
            raise ValueError("confirm_checks must be positive")
        if trajectory_window <= 1:
            raise ValueError("trajectory_window must be at least 2")
        self.region = region
        self.min_observations = int(min_observations)
        self.cooldown = int(cooldown)
        self.confirm_checks = int(confirm_checks)
        self._muted_until = 0
        self._consecutive_outside = 0
        self._trajectory: deque[float] = deque(maxlen=int(trajectory_window))

    # ------------------------------------------------------------------
    # Checking
    # ------------------------------------------------------------------
    @property
    def threshold(self) -> float:
        """The KL-divergence radius beyond which the detector fires."""
        return self.region.rho

    def divergence(self, observed: Workload) -> float:
        """KL divergence of ``observed`` from the region's nominal workload.

        May be ``inf`` when the observed workload puts mass on a component
        the nominal workload gives zero weight — an unreachable escape.
        """
        return self.region.divergence(observed)

    def check(
        self,
        observed: Workload | None,
        position: int,
        observations: int | None = None,
    ) -> DriftCheck:
        """Evaluate the drift condition at stream ``position``.

        ``observations`` is the estimator's (undecayed) operation count; when
        provided and below ``min_observations`` the check reports ``warmup``
        without firing.  A firing check arms the cooldown.
        """
        if observed is None or (
            observations is not None and observations < self.min_observations
        ):
            return DriftCheck(position, math.nan, False, "warmup")
        divergence = self.divergence(observed)
        if math.isfinite(divergence):
            # Infinite divergences (the zero-weight escape) fire the detector
            # but carry no magnitude the volatility statistic could use.
            self._trajectory.append(divergence)
        if divergence <= self.threshold:
            self._consecutive_outside = 0
            return DriftCheck(position, divergence, False, "inside")
        self._consecutive_outside += 1
        if self._consecutive_outside < self.confirm_checks:
            return DriftCheck(position, divergence, False, "confirming")
        if position < self._muted_until:
            return DriftCheck(position, divergence, False, "cooldown")
        self.mute(position)
        self._consecutive_outside = 0
        return DriftCheck(position, divergence, True, "drift")

    # ------------------------------------------------------------------
    # Volatility
    # ------------------------------------------------------------------
    @property
    def trajectory(self) -> tuple[float, ...]:
        """The windowed KL trajectory (recent finite check divergences)."""
        return tuple(self._trajectory)

    def volatility(self) -> float:
        """Dispersion of the windowed KL trajectory (its standard deviation).

        Zero until at least two checks have contributed.  A stationary
        stream hovers near one divergence level (volatility ≈ 0); a cyclic
        or thrashing stream sweeps the trajectory up and down, and the
        resulting spread is what the adaptive re-tuner adds to its robust
        radius — the square root of the trajectory variance keeps the
        widening in the same (KL) units as ρ itself.
        """
        if len(self._trajectory) < 2:
            return 0.0
        return float(np.std(np.asarray(self._trajectory, dtype=float)))

    # ------------------------------------------------------------------
    # State transitions
    # ------------------------------------------------------------------
    def mute(self, position: int) -> None:
        """Suppress firings for ``cooldown`` operations starting at ``position``."""
        self._muted_until = position + self.cooldown

    def recenter(
        self, expected: Workload, position: int, rho: float | None = None
    ) -> None:
        """Re-centre the region on a new nominal workload (after a migration).

        By default the radius is preserved: the re-tuned configuration covers
        the same amount of uncertainty around its own nominal workload.  A
        drift-aware re-tuning passes the widened ``rho`` it actually solved
        for, so the detector watches the ball the new tuning really covers.
        The cooldown is armed so the fresh tuning gets time to pay off; the
        KL trajectory is *kept* — volatility is a property of the stream, not
        of the centre, and forgetting it would make a cyclic workload look
        calm right after every migration.
        """
        radius = self.region.rho if rho is None else float(rho)
        self.region = UncertaintyRegion(expected=expected, rho=radius)
        self._consecutive_outside = 0
        self.mute(position)
