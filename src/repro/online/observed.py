"""Rolling empirical estimate of the live workload.

The offline pipeline works with *declared* workload proportions; the online
subsystem has to infer them from the operation stream itself.  This module
folds a stream of :class:`~repro.workloads.traces.Operation`s into a
sliding-window empirical workload: every recorded operation decays all
previous observations by a constant factor, so the estimate is an
exponentially weighted average whose effective window is ``window``
operations.  Old sessions fade out instead of being sharply truncated, which
keeps the drift signal smooth across session boundaries.
"""

from __future__ import annotations

from ..workloads.traces import Operation, OperationType
from ..workloads.workload import Workload

#: Workload-vector index of each operation type, matching ``(z0, z1, q, w)``.
_COMPONENT_INDEX: dict[OperationType, int] = {
    OperationType.EMPTY_GET: 0,
    OperationType.GET: 1,
    OperationType.RANGE: 2,
    OperationType.PUT: 3,
}


class ObservedWorkload:
    """Exponentially decayed sliding-window estimate of the workload mix.

    Parameters
    ----------
    window:
        Effective window size in operations.  Each new operation decays the
        accumulated counts by ``1 - 1/window``, so the total decayed weight
        converges to ``window`` and an operation ``window`` steps in the past
        contributes ``~1/e`` of a fresh one.
    smoothing:
        Optional floor applied to every component of the reported workload
        (mirroring :meth:`~repro.workloads.workload.Workload.smoothed`).  A
        small positive floor keeps KL divergences finite when a query type
        momentarily disappears from the stream; ``0`` reports the raw
        empirical mix, where zero-weight components are legal and handled by
        the divergence machinery.
    """

    def __init__(self, window: int = 2_000, smoothing: float = 0.0) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        if not 0.0 <= smoothing < 0.25:
            raise ValueError("smoothing must lie in [0, 0.25)")
        self.window = int(window)
        self.smoothing = float(smoothing)
        self.decay = 1.0 - 1.0 / self.window
        self._counts = [0.0, 0.0, 0.0, 0.0]
        self._weight = 0.0
        self._observations = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, operation: Operation) -> None:
        """Fold one operation into the estimate."""
        self.record_kind(operation.kind)

    def record_kind(self, kind: OperationType) -> None:
        """Fold one operation of the given type into the estimate."""
        index = _COMPONENT_INDEX[kind]
        decay = self.decay
        counts = self._counts
        counts[0] *= decay
        counts[1] *= decay
        counts[2] *= decay
        counts[3] *= decay
        counts[index] += 1.0
        self._weight = self._weight * decay + 1.0
        self._observations += 1

    def record_batch(self, operations) -> None:
        """Fold a sequence of operations into the estimate, in order."""
        for operation in operations:
            self.record_kind(operation.kind)

    def reset(self) -> None:
        """Forget everything observed so far."""
        self._counts = [0.0, 0.0, 0.0, 0.0]
        self._weight = 0.0
        self._observations = 0

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def observations(self) -> int:
        """Number of operations folded in since the last reset (undecayed)."""
        return self._observations

    @property
    def weight(self) -> float:
        """Total decayed weight of the estimate (converges to ``window``)."""
        return self._weight

    def workload(self) -> Workload | None:
        """The current empirical workload, or ``None`` before any operation."""
        if self._weight <= 0.0:
            return None
        estimate = Workload.from_counts(self._counts)
        if self.smoothing > 0.0:
            estimate = estimate.smoothed(self.smoothing)
        return estimate
