"""The online control loop: observe, detect drift, re-tune, migrate.

:class:`OnlineLSMController` wraps a live :class:`~repro.storage.lsm_tree.LSMTree`
and executes the operation stream through it while running the adaptive loop:

1. every executed operation is folded into the rolling
   :class:`~repro.online.observed.ObservedWorkload` estimate,
2. every ``check_interval`` operations the
   :class:`~repro.online.drift.DriftDetector` compares the estimate against
   the region the deployed tuning was computed for,
3. on drift, the :class:`~repro.online.retuner.AdaptiveTuner` solves for the
   best tuning of the observed workload and prices the migration,
4. a justified proposal is applied *in place*: the tree's resident data is
   read out and rebuilt under the new tuning — new size ratio, new
   compaction policy, new Monkey bloom allocation — with every migrated page
   charged to the shared virtual disk as compaction traffic, so adaptivity
   is honestly priced in the measured I/O stream.  In ``full`` mode the
   rebuild happens at the firing (one concentrated spike); in
   ``incremental`` mode a :class:`~repro.online.migration.MigrationPlan`
   spreads the same pages over bounded steps while the mixed old/new state
   keeps serving the stream.

After a migration the detector is re-centred on the workload the new tuning
was computed for, and its cooldown gives the migration time to pay off
before the next drift episode may fire.  With ``rho_adaptive`` enabled the
re-tuner widens its robust radius by the detector's observed KL-trajectory
volatility, so a cyclic workload is tuned once for the whole cycle instead
of migrating back and forth every phase.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..core.uncertainty import UncertaintyRegion
from ..lsm.policy import CLASSIC_POLICIES, Policy, PolicySpec
from ..lsm.system import SystemConfig
from ..lsm.tuning import LSMTuning
from ..storage.lsm_tree import POINT_READ_KINDS, SCALAR_SPAN_CUTOFF, LSMTree
from ..storage.run import consolidate_versions
from ..workloads.traces import Operation
from ..workloads.workload import Workload
from .admission import StepAdmission
from .drift import DriftDetector
from .migration import MigrationPlan
from .observed import ObservedWorkload
from .retuner import AdaptiveTuner, RetuningDecision

#: Migration execution modes: rebuild the whole tree in one shot, or spread a
#: level-by-level :class:`~repro.online.migration.MigrationPlan` over the
#: operation stream.
MIGRATION_MODES: tuple[str, ...] = ("full", "incremental")


@dataclass
class OnlineConfig:
    """Knobs of the online adaptive-tuning loop."""

    #: Effective window (in operations) of the rolling workload estimator.
    window: int = 2_000
    #: Operations between drift checks.
    check_interval: int = 256
    #: Estimator observations required before drift may fire (warm-up).
    min_observations: int = 512
    #: Operations after a firing/migration during which drift is suppressed.
    cooldown: int = 4_096
    #: Consecutive out-of-region checks required before drift fires (lets the
    #: estimator window flush the pre-drift mix before re-tuning).
    confirm_checks: int = 3
    #: KL-divergence radius beyond which drift fires; ``None`` uses ``rho``
    #: (the detector watches the same ball the robust tuner optimised for).
    threshold: float | None = None
    #: Re-tuning mode on drift: ``"nominal"`` or ``"robust"``.
    mode: str = "robust"
    #: Uncertainty radius of robust re-tunings (and the default threshold).
    rho: float = 0.25
    #: Amortisation horizon of migrations, in operations.
    horizon_ops: int = 20_000
    #: Multiplier on the migration cost the predicted savings must clear.
    safety_factor: float = 1.0
    #: Component floor of the reported observed workload (0 = raw mix).
    smoothing: float = 0.0
    #: Whether re-tunings run the SLSQP polish (the sweep alone is usually
    #: enough online, and much faster).
    polish: bool = False
    #: Migration execution: ``"full"`` rebuilds the whole tree at the firing
    #: (one concentrated I/O spike), ``"incremental"`` spreads a level-by-
    #: level plan over the stream, serving queries from the mixed state.
    migration: str = "full"
    #: Operations between incremental migration steps (after the first step,
    #: which runs at the firing itself).
    migration_step_ops: int = 256
    #: Page cap per incremental step; ``None`` moves one run per step.
    migration_step_pages: int | None = None
    #: Whether re-tunings widen ρ with the drift detector's observed
    #: KL-trajectory volatility (cyclic workloads get tuned once for the
    #: whole cycle instead of migrating every phase).  Requires
    #: ``mode="robust"`` — a nominal re-tuning has no radius to widen.
    rho_adaptive: bool = False
    #: Multiplier on the KL-trajectory volatility added to ρ.
    volatility_gain: float = 2.0
    #: Upper bound of the widened radius.
    rho_cap: float = 4.0
    #: Whether fluid re-tunings search per-level ``K_i`` bound vectors (the
    #: offline tuners' ``k_vector_search`` flag, threaded through the
    #: re-tuner).  Vector proposals migrate like any other tuning — the
    #: decision serialises the vector and the migration plan deploys it.
    k_vector_search: bool = False
    #: How incremental migration steps are admitted against the stream:
    #: ``"fixed"`` runs one step every ``migration_step_ops`` operations
    #: (the classic cadence), ``"queue-depth"`` defers due steps while the
    #: serving backlog is deeper than ``admission_max_backlog`` and drains
    #: deferred steps during idle periods (see
    #: :class:`~repro.online.admission.StepAdmission`).
    admission: str = "fixed"
    #: Backlog at or below which a due step is admitted (``"queue-depth"``).
    admission_max_backlog: int = 256
    #: Operations after which a step is forced regardless of backlog
    #: (``"queue-depth"`` starvation bound; must be ≥ ``migration_step_ops``).
    admission_starvation_ops: int = 4_096
    #: Steps drained per :meth:`OnlineLSMController.note_idle` call
    #: (``"queue-depth"``; ``"fixed"`` ignores idle notifications).
    admission_idle_steps: int = 8

    def __post_init__(self) -> None:
        if self.check_interval <= 0:
            raise ValueError("check_interval must be positive")
        if self.threshold is not None and self.threshold < 0:
            raise ValueError("threshold must be non-negative")
        if self.rho < 0:
            raise ValueError("rho must be non-negative")
        if self.migration not in MIGRATION_MODES:
            raise ValueError(
                f"migration must be one of {MIGRATION_MODES}, got {self.migration!r}"
            )
        if self.migration_step_ops <= 0:
            raise ValueError("migration_step_ops must be positive")
        if self.migration_step_pages is not None and self.migration_step_pages <= 0:
            raise ValueError("migration_step_pages must be positive")
        if self.rho_adaptive and self.mode != "robust":
            raise ValueError(
                "rho_adaptive requires mode='robust': nominal re-tunings have "
                "no radius to widen"
            )
        # Constructing the admission policy validates the admission knobs
        # (mode membership, starvation ≥ step cadence, non-negative bounds).
        self.step_admission()

    def step_admission(self) -> StepAdmission:
        """The migration-step admission policy these knobs describe."""
        return StepAdmission(
            mode=self.admission,
            step_ops=self.migration_step_ops,
            max_backlog=self.admission_max_backlog,
            starvation_ops=self.admission_starvation_ops,
            idle_step_burst=self.admission_idle_steps,
        )

    @property
    def drift_threshold(self) -> float:
        """The KL radius the drift detector watches."""
        return self.rho if self.threshold is None else self.threshold


@dataclass(frozen=True)
class RetuningEvent:
    """One firing of the drift detector and what came of it."""

    position: int
    divergence: float
    observed: Workload
    decision: RetuningDecision
    migrated: bool
    migration_read_pages: int
    migration_write_pages: int
    #: Steps the migration is spread over (1 for a full rebuild; for an
    #: incremental plan the page totals above are *planned* figures, charged
    #: to the disk step by step as the plan advances).
    migration_steps: int = 1

    @property
    def migration_pages(self) -> int:
        """Total pages moved by the migration (0 when it was declined)."""
        return self.migration_read_pages + self.migration_write_pages

    def to_dict(self) -> dict[str, object]:
        """Serialise to plain JSON-compatible data.

        An infinite divergence (the zero-weight-component escape) maps to
        ``None``: ``json.dumps`` would otherwise emit the non-standard
        ``Infinity`` literal, which strict JSON parsers reject.
        """
        return {
            "position": self.position,
            "divergence": self.divergence if math.isfinite(self.divergence) else None,
            "observed": self.observed.as_dict(),
            "decision": self.decision.to_dict(),
            "migrated": self.migrated,
            "migration_read_pages": self.migration_read_pages,
            "migration_write_pages": self.migration_write_pages,
            "migration_steps": self.migration_steps,
        }


@dataclass
class OnlineLSMController:
    """Drives a live LSM tree and re-tunes it when the workload drifts.

    Parameters
    ----------
    tree:
        The live (already loaded) tree; its virtual disk keeps accounting
        across migrations, so measurement deltas taken around the controller
        see query, compaction *and* migration traffic on one stream.
    expected:
        The nominal workload the initial tuning was computed for; the drift
        detector's region is centred here until the first migration.
    config:
        Online-loop knobs; defaults are reasonable for simulator-scale runs.
    policies:
        Compaction policies re-tunings may deploy (enum members, strings,
        or explicit :class:`~repro.lsm.policy.PolicySpec` entries — including
        per-level ``k_bounds`` vector specs).
    system:
        System configuration; defaults to the tree's own.
    """

    tree: LSMTree
    expected: Workload
    config: OnlineConfig = field(default_factory=OnlineConfig)
    policies: Sequence[Policy | str | PolicySpec] = CLASSIC_POLICIES
    system: SystemConfig | None = None

    def __post_init__(self) -> None:
        if self.system is None:
            self.system = self.tree.system
        self.disk = self.tree.disk
        self.estimator = ObservedWorkload(
            window=self.config.window, smoothing=self.config.smoothing
        )
        self.detector = DriftDetector(
            UncertaintyRegion(expected=self.expected, rho=self.config.drift_threshold),
            min_observations=self.config.min_observations,
            cooldown=self.config.cooldown,
            confirm_checks=self.config.confirm_checks,
        )
        self.retuner = AdaptiveTuner(
            system=self.system,
            mode=self.config.mode,
            rho=self.config.rho,
            policies=self.policies,
            horizon_ops=self.config.horizon_ops,
            safety_factor=self.config.safety_factor,
            polish=self.config.polish,
            rho_adaptive=self.config.rho_adaptive,
            volatility_gain=self.config.volatility_gain,
            rho_cap=self.config.rho_cap,
            k_vector_search=self.config.k_vector_search,
        )
        self.admission = self.config.step_admission()
        self.position = 0
        self.events: list[RetuningEvent] = []
        self._plan: MigrationPlan | None = None
        self._plan_started = 0
        self._last_step_position = 0
        self._backlog = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def tuning(self) -> LSMTuning:
        """The tuning currently deployed on the live tree."""
        return self.tree.tuning

    @property
    def num_migrations(self) -> int:
        """Number of migrations applied so far."""
        return sum(1 for event in self.events if event.migrated)

    @property
    def migration_in_progress(self) -> bool:
        """Whether an incremental migration plan is currently executing."""
        return self._plan is not None

    @property
    def migration_plan(self) -> MigrationPlan | None:
        """The active incremental migration plan, if any."""
        return self._plan

    def observed_workload(self) -> Workload | None:
        """The estimator's current workload estimate."""
        return self.estimator.workload()

    def resident_pages(self) -> int:
        """Disk pages currently occupied by the tree's runs."""
        return self.tree.resident_pages

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def apply(self, operation: Operation) -> None:
        """Execute one operation on the live tree and run the adaptive loop.

        While an incremental migration plan is in flight the operation is
        served by the mixed old/new state, the plan advances one step every
        ``migration_step_ops`` operations, and drift checks are suspended —
        the detector's cooldown (armed at the firing) is meanwhile running,
        and the estimator keeps observing, so the loop resumes with a warm
        window once the plan completes.
        """
        if self._plan is not None:
            self._plan.apply(operation)
        else:
            self.tree.apply(operation)
        self.estimator.record_kind(operation.kind)
        self.position += 1
        if self._backlog > 0:
            self._backlog -= 1
        if self._plan is not None:
            if self.admission.should_step(
                self.position, self._plan_started, self._last_step_position,
                self._backlog,
            ):
                self.advance_migration()
        elif self.position % self.config.check_interval == 0:
            self.maybe_retune()

    def execute(self, operations: Iterable[Operation]) -> None:
        """Execute a stream of operations through the adaptive loop.

        The length of the stream seeds the serving backlog the admission
        policy observes: under ``admission="queue-depth"`` migration steps
        that fall due while the chunk is still deep are deferred until it has
        drained to ``admission_max_backlog`` (or the starvation bound).
        """
        operations = (
            operations if isinstance(operations, list) else list(operations)
        )
        self._backlog = len(operations)
        for operation in operations:
            self.apply(operation)
        self._backlog = 0

    def note_idle(self) -> None:
        """Signal a serving lull: drain deferred migration steps.

        Under ``admission="queue-depth"`` an idle shard runs up to
        ``admission_idle_steps`` steps of its in-flight plan immediately —
        reorganisation I/O lands in the lull instead of the next busy window.
        Under ``admission="fixed"`` this is a no-op, preserving the classic
        cadence bit-for-bit.
        """
        self._backlog = 0
        for _ in range(self.admission.idle_steps):
            if self._plan is None:
                break
            self.advance_migration()

    def _ops_until_boundary(self) -> int:
        """Operations until the next adaptive-loop boundary (at least 1).

        While a migration plan is in flight the boundary is its next admitted
        step (the admission policy's closed-form
        :meth:`~repro.online.admission.StepAdmission.ops_until_step`);
        otherwise it is the next drift check (``check_interval``).  A batched
        GET span must not cross either: the drift detector and the plan have
        to observe the stream at exactly the per-operation granularity of
        :meth:`apply`.
        """
        if self._plan is not None:
            return self.admission.ops_until_step(
                self.position, self._plan_started, self._last_step_position,
                self._backlog,
            )
        interval = self.config.check_interval
        return interval - self.position % interval

    def _after_batch(self) -> None:
        """Run the boundary work :meth:`apply` would have run, if due."""
        if self._plan is not None:
            if self.admission.should_step(
                self.position, self._plan_started, self._last_step_position,
                self._backlog,
            ):
                self.advance_migration()
        elif self.position % self.config.check_interval == 0:
            self.maybe_retune()

    def execute_batched(
        self, operations: Sequence[Operation], max_batch_ops: int = 4_096
    ) -> None:
        """Execute a stream through the adaptive loop, batching GET spans.

        Write-free spans of point reads run through the engine's vectorised
        ``get_many`` — the live tree's, or the mixed migration state's while
        a plan is in flight.  Batches are additionally bounded by the next
        adaptive-loop boundary (drift check or migration step), so the
        detector fires at the same stream positions, migrations start and
        advance at the same operations, and the estimator folds in the same
        operation sequence as the scalar :meth:`execute` — the measured
        stream is bit-identical, just cheaper to replay.
        """
        if max_batch_ops <= 0:
            raise ValueError("max_batch_ops must be positive")
        operations = (
            operations if isinstance(operations, list) else list(operations)
        )
        index = 0
        total = len(operations)
        self._backlog = total
        while index < total:
            operation = operations[index]
            if operation.kind not in POINT_READ_KINDS:
                self.apply(operation)
                index += 1
                continue
            stop = min(index + min(self._ops_until_boundary(), max_batch_ops), total)
            end = index
            while end < stop and operations[end].kind in POINT_READ_KINDS:
                end += 1
            span = operations[index:end]
            engine = self._plan if self._plan is not None else self.tree
            if len(span) < SCALAR_SPAN_CUTOFF:
                for op in span:
                    engine.get(op.key)
            else:
                engine.get_many(
                    np.fromiter((op.key for op in span), dtype=np.int64, count=len(span))
                )
            for op in span:
                self.estimator.record_kind(op.kind)
            self.position += len(span)
            self._backlog = max(0, self._backlog - len(span))
            index = end
            self._after_batch()
        self._backlog = 0

    # ------------------------------------------------------------------
    # Adaptive loop
    # ------------------------------------------------------------------
    def maybe_retune(self) -> RetuningEvent | None:
        """Run one drift check; re-tune and possibly migrate when it fires.

        The operation stream only reveals the four query-type proportions;
        the short/long range split is a property of the range queries the
        deployment was configured for, so the expected workload's
        ``long_range_fraction`` is carried onto the observed estimate before
        pricing — otherwise a re-tuning could migrate to a design (e.g. a
        multi-run largest level) the long-range regime penalises.
        """
        if self._plan is not None:
            # An in-flight migration plan owns the tree; drift checks resume
            # once it completes (the cooldown armed at its firing still runs).
            return None
        observed = self.estimator.workload()
        if observed is not None and self.expected.long_range_fraction > 0.0:
            observed = observed.with_long_range_fraction(
                self.expected.long_range_fraction
            )
        check = self.detector.check(
            observed, self.position, self.estimator.observations
        )
        if not check.fired:
            return None
        decision = self.retuner.retune(
            observed,
            self.tree.tuning,
            self.resident_pages(),
            volatility=self.detector.volatility(),
        )
        migrated = decision.justified and decision.proposed != self.tree.tuning
        read_pages = write_pages = 0
        steps = 1
        if migrated:
            if self.config.migration == "incremental":
                read_pages, write_pages, steps = self._begin_incremental_migration(
                    decision.proposed
                )
            else:
                read_pages, write_pages = self._migrate(decision.proposed)
            # The new tuning is nominal for the workload it was computed on:
            # watch for the *next* drift relative to that, with fresh cooldown.
            # A drift-aware re-tuning solved for a widened radius; the
            # detector watches the ball the new tuning actually covers
            # (unless an explicit threshold overrides the coupling).
            new_rho = None
            if self.config.rho_adaptive and self.config.threshold is None:
                new_rho = decision.rho
            self.detector.recenter(observed, self.position, rho=new_rho)
        event = RetuningEvent(
            position=self.position,
            divergence=check.divergence,
            observed=observed,
            decision=decision,
            migrated=migrated,
            migration_read_pages=read_pages,
            migration_write_pages=write_pages,
            migration_steps=steps,
        )
        self.events.append(event)
        return event

    # ------------------------------------------------------------------
    # Migration
    # ------------------------------------------------------------------
    def _live_keys(self) -> np.ndarray:
        """All live keys of the tree (runs + memtable), tombstones resolved.

        Versions are consolidated newest-first exactly like a full compaction
        (via :func:`~repro.storage.run.consolidate_versions`): a tombstone in
        a recent run *shadows* older live versions of its key in deeper runs,
        so deleted keys are not resurrected by the rebuild.  Run contents are
        read through the backend-agnostic ``entries()`` accessor, so a
        persistent tree checkpoints the same way the simulated one does.
        """
        tree = self.tree
        key_parts: list[np.ndarray] = []
        tombstone_parts: list[np.ndarray] = []
        buffered_keys, buffered_tombstones = tree.memtable.sorted_items()
        if buffered_keys.size:
            key_parts.append(buffered_keys)
            tombstone_parts.append(buffered_tombstones)
        # ``levels`` runs shallow-to-deep, and runs within a level are kept
        # most-recent first — the recency order consolidation expects.
        for runs in tree.levels:
            for run in runs:
                run_keys, run_tombstones = run.entries()
                key_parts.append(run_keys)
                tombstone_parts.append(run_tombstones)
        if not key_parts:
            return np.empty(0, dtype=np.int64)
        keys, _ = consolidate_versions(key_parts, tombstone_parts, drop_tombstones=True)
        return keys.copy()

    def _migrate(self, new_tuning: LSMTuning) -> tuple[int, int]:
        """Rebuild the live tree under ``new_tuning``, charging the I/O.

        Every resident page of the old tree is read and every run page of the
        rebuilt tree is written, both recorded as compaction traffic on the
        shared virtual disk — the migration is part of the measured stream,
        not free.  Buffered (memtable) entries move without I/O, as they
        would in a real engine where the write buffer lives in RAM.
        """
        read_pages = self.resident_pages()
        keys = self._live_keys()
        replacement = self._replacement_tree(new_tuning)
        replacement.bulk_load(keys)
        write_pages = sum(
            run.num_pages for runs in replacement.levels for run in runs
        )
        self.disk.read_pages(read_pages, compaction=True)
        self.disk.write_pages(write_pages, compaction=True)
        replaced = self.tree
        self.tree = replacement
        replaced.dispose()
        return read_pages, write_pages

    def _replacement_tree(self, new_tuning: LSMTuning) -> LSMTree:
        """An empty tree under ``new_tuning`` sharing the live disk.

        Built through the live tree's ``successor`` factory, so the
        replacement runs on the same backend (a persistent tree migrates to
        another persistent tree).
        """
        return self.tree.successor(
            new_tuning,
            seed=self.tree._seed + self.tree._run_counter + 1,
        )

    def _begin_incremental_migration(
        self, new_tuning: LSMTuning
    ) -> tuple[int, int, int]:
        """Start a level-by-level migration plan towards ``new_tuning``.

        The first step executes at the firing itself (the migration makes
        observable progress immediately); subsequent steps run every
        ``migration_step_ops`` operations from :meth:`apply`.  Returns the
        plan's *planned* read/write page totals — identical to what a full
        migration would move — and its step count.
        """
        plan = MigrationPlan(
            source=self.tree,
            target=self._replacement_tree(new_tuning),
            checkpoint_keys=self._live_keys(),
            max_step_pages=self.config.migration_step_pages,
        )
        totals = (plan.total_read_pages, plan.total_write_pages, plan.num_steps)
        self._plan = plan
        self._plan_started = self.position
        self._last_step_position = self.position
        plan.run_next_step()
        self._maybe_finish_migration()
        return totals

    def advance_migration(self) -> None:
        """Run the next step of the active plan (no-op without one)."""
        if self._plan is None:
            return
        self._last_step_position = self.position
        self._plan.run_next_step()
        self._maybe_finish_migration()

    def finish_migration(self) -> None:
        """Drain every remaining step of the active plan (no-op without one)."""
        if self._plan is None:
            return
        self._plan.run_to_completion()
        self._maybe_finish_migration()

    def _maybe_finish_migration(self) -> None:
        if self._plan is not None and self._plan.completed:
            replaced = self.tree
            self.tree = self._plan.target
            self._plan = None
            # Every live entry now resides in the target; the source tree's
            # backend storage is garbage.
            replaced.dispose()
