"""Incremental, level-by-level migration of a live LSM tree.

The full migration of :class:`~repro.online.controller.OnlineLSMController`
reads every resident page and rewrites the whole tree in one shot — an I/O
spike proportional to the database size, concentrated in whichever session
the drift detector happened to fire in.  A :class:`MigrationPlan` replaces
that with a sequence of bounded steps:

1. at planning time the live contents of the *source* tree are consolidated
   into a checkpoint snapshot (tombstones resolved, exactly like a full
   compaction), and the *target* tree's bulk-load placements are computed for
   it via :meth:`~repro.storage.lsm_tree.LSMTree.plan_bulk_load` — the same
   placements a fresh bulk load would install, so the finished migration is
   byte-identical to rebuilding from scratch;
2. the placements are cut into steps of at most ``max_step_pages`` pages;
   each executed step charges its tranche of reads (a proportional share of
   the source's resident pages, allocated so the steps sum *exactly* to the
   full migration's read cost) and writes (the tranche's pages of the run
   under construction) to the shared virtual disk as compaction traffic, and
   the step completing a run installs it into the target;
3. between steps the pair serves the live stream in a *mixed state*: writes
   land in the target (it survives the migration), point and range reads
   consult the target first and fall back to the frozen source, with the
   target's tombstones shadowing the source snapshot;
4. the final step verifies the **checkpoint-equality invariant** — the
   migrated placements, re-assembled, must equal the checkpoint snapshot
   key-for-key — and raises :class:`MigrationInvariantError` otherwise, so a
   planning bug can never silently lose or duplicate data.

A plan is resumable: an interrupted migration (e.g. the operator pausing it,
or drift firing mid-flight and the controller electing to finish later)
leaves a queryable mixed state, and ``run_next_step`` continues from where it
stopped.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..storage.lsm_tree import LSMTree, execute_operation
from ..workloads.traces import Operation


class MigrationInvariantError(RuntimeError):
    """The migrated placements do not reproduce the checkpoint snapshot."""


@dataclass(frozen=True)
class MigrationStep:
    """One bounded tranche of an incremental migration."""

    #: Position of the step within the plan.
    index: int
    #: Target-tree disk level the tranche belongs to.
    level: int
    #: Half-open entry range of the target run this step moves.
    start: int
    stop: int
    #: Source pages read by this step (the tranche's share of the snapshot).
    read_pages: int
    #: Target pages written by this step.
    write_pages: int
    #: Whether this step completes its run (the run is installed).
    installs_run: bool

    @property
    def num_entries(self) -> int:
        """Entries moved by the step."""
        return self.stop - self.start

    @property
    def pages(self) -> int:
        """Total pages moved by the step."""
        return self.read_pages + self.write_pages


class MigrationPlan:
    """A resumable, step-bounded rebuild of ``source`` under ``target``'s tuning.

    Parameters
    ----------
    source:
        The live tree being migrated away from.  It is *frozen* for writes
        once the plan exists (the controller routes them to the target) but
        keeps serving reads of not-yet-shadowed keys.
    target:
        A freshly constructed, empty tree under the new tuning, sharing the
        source's virtual disk so every step's I/O lands on the measured
        stream.
    checkpoint_keys:
        The consolidated live keys of the source at planning time (sorted,
        unique, tombstones resolved).
    max_step_pages:
        Upper bound on the pages written per step; ``None`` migrates one
        whole run per step (a level-by-level migration in the classic sense).
    """

    def __init__(
        self,
        source: LSMTree,
        target: LSMTree,
        checkpoint_keys: np.ndarray,
        max_step_pages: int | None = None,
    ) -> None:
        if source.disk is not target.disk:
            raise ValueError("source and target must share one virtual disk")
        if max_step_pages is not None and max_step_pages <= 0:
            raise ValueError("max_step_pages must be positive")
        self.source = source
        self.target = target
        self.checkpoint_keys = np.asarray(checkpoint_keys, dtype=np.int64)
        bulk_plan = target.plan_bulk_load(self.checkpoint_keys)
        self._placements = bulk_plan.placements
        self._leftover = bulk_plan.leftover
        target._ensure_level(bulk_plan.deepest)
        self.steps = self._cut_steps(bulk_plan, max_step_pages)
        self._cursor = 0
        self._installed_runs = 0
        #: Keys written/deleted through the mixed state; a leftover checkpoint
        #: key that was overwritten mid-migration must not be replayed over
        #: the newer version at finalisation.
        self._dirty_keys: set[int] = set()
        source.preserve_tombstones = True
        target.preserve_tombstones = True

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def _cut_steps(self, bulk_plan, max_step_pages) -> tuple[MigrationStep, ...]:
        """Cut the bulk-load placements into page-bounded migration steps.

        Write pages are allocated by cumulative page boundaries within each
        run and read pages by cumulative share of the source's resident
        pages, so the step columns sum exactly to the full migration's
        totals — incremental migration moves the same I/O, just spread out.
        """
        entries_per_page = self.target.entries_per_page
        total_entries = bulk_plan.num_entries
        total_read = self.source.resident_pages
        steps: list[MigrationStep] = []
        moved = 0

        def read_share(upto: int) -> int:
            if total_entries == 0:
                return 0
            return int(round(total_read * (upto / total_entries)))

        for level, piece in bulk_plan.placements:
            step_entries = (
                piece.size
                if max_step_pages is None
                else max(1, max_step_pages * entries_per_page)
            )
            start = 0
            while True:
                stop = min(start + step_entries, int(piece.size))
                write_pages = int(
                    np.ceil(stop / entries_per_page) - np.ceil(start / entries_per_page)
                )
                moved_after = moved + (stop - start)
                steps.append(
                    MigrationStep(
                        index=len(steps),
                        level=level,
                        start=start,
                        stop=stop,
                        read_pages=read_share(moved_after) - read_share(moved),
                        write_pages=write_pages,
                        installs_run=stop >= piece.size,
                    )
                )
                moved = moved_after
                start = stop
                if start >= piece.size:
                    break
        if total_entries == 0 and total_read > 0 and steps:
            # A checkpoint with no placeable entries still reads the source.
            last = steps[-1]
            steps[-1] = MigrationStep(
                index=last.index,
                level=last.level,
                start=last.start,
                stop=last.stop,
                read_pages=total_read,
                write_pages=last.write_pages,
                installs_run=last.installs_run,
            )
        if not steps:
            # An empty checkpoint (every key deleted) still needs one step:
            # it charges the read of the source's resident (tombstone) pages
            # and, crucially, drives the plan through finalisation — which
            # releases the tombstone hold and checks the invariant.
            steps.append(
                MigrationStep(
                    index=0,
                    level=1,
                    start=0,
                    stop=0,
                    read_pages=total_read,
                    write_pages=0,
                    installs_run=False,
                )
            )
        return tuple(steps)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_steps(self) -> int:
        """Number of steps the plan executes in total."""
        return len(self.steps)

    @property
    def steps_completed(self) -> int:
        """Number of steps executed so far."""
        return self._cursor

    @property
    def completed(self) -> bool:
        """Whether every step has been executed."""
        return self._cursor >= len(self.steps)

    @property
    def total_read_pages(self) -> int:
        """Source pages the whole plan reads (equals the full migration's)."""
        return sum(step.read_pages for step in self.steps)

    @property
    def total_write_pages(self) -> int:
        """Target pages the whole plan writes (equals the full migration's)."""
        return sum(step.write_pages for step in self.steps)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_next_step(self) -> MigrationStep | None:
        """Execute the next step, charging its I/O; ``None`` when done.

        The final step verifies the checkpoint-equality invariant and
        releases the target's tombstone hold.
        """
        if self.completed:
            return None
        step = self.steps[self._cursor]
        disk = self.target.disk
        if step.read_pages:
            disk.read_pages(step.read_pages, compaction=True)
        if step.write_pages:
            disk.write_pages(step.write_pages, compaction=True)
        if step.installs_run:
            level, piece = self._placements[self._installed_runs]
            self.target.install_bulk_run(self._without_dirty(piece), level)
            self._installed_runs += 1
        self._cursor += 1
        if self.completed:
            self._finalise()
        return step

    def run_to_completion(self) -> int:
        """Execute every remaining step; returns how many were run."""
        executed = 0
        while self.run_next_step() is not None:
            executed += 1
        return executed

    def _without_dirty(self, piece: np.ndarray) -> np.ndarray:
        """Drop checkpoint keys the mixed state has since overwritten.

        A key written (or deleted) during the migration has its newest
        version somewhere in the target already — possibly *deeper* than
        this placement's level, if the target's own compactions cascaded it
        down.  Installing the stale checkpoint copy above that version would
        shadow it (``lookup_entry`` stops at the shallowest hit), serving
        stale reads or resurrecting deleted keys; the obsolete copy is
        dropped instead, exactly as the next compaction would have.
        """
        if not self._dirty_keys:
            return piece
        dirty = np.fromiter(
            self._dirty_keys, dtype=np.int64, count=len(self._dirty_keys)
        )
        return piece[~np.isin(piece, dirty)]

    def _finalise(self) -> None:
        """Verify the checkpoint invariant and re-home the leftover keys."""
        migrated = [piece for _, piece in self._placements]
        migrated.append(self._leftover)
        reassembled = (
            np.sort(np.concatenate(migrated))
            if migrated
            else np.empty(0, dtype=np.int64)
        )
        if not np.array_equal(reassembled, self.checkpoint_keys):
            raise MigrationInvariantError(
                f"migrated placements hold {reassembled.size} keys but the "
                f"checkpoint snapshot holds {self.checkpoint_keys.size}; "
                "the plan would lose or duplicate data"
            )
        # Leftover checkpoint keys live in the memtable, exactly as a bulk
        # load homes them — unless the mixed state already wrote a newer
        # version (the checkpoint copy is obsolete then).
        for key in self._leftover:
            if int(key) not in self._dirty_keys:
                self.target.memtable.put(int(key))
        self.target.preserve_tombstones = False
        self.source.preserve_tombstones = False

    # ------------------------------------------------------------------
    # Mixed-state serving
    # ------------------------------------------------------------------
    def apply(self, operation: Operation) -> None:
        """Execute one trace operation against the mixed old/new state.

        Routed through the same dispatch the live tree uses, so the mixed
        state handles exactly the operation kinds the plain path handles.
        """
        execute_operation(self, operation)

    def put(self, key: int) -> None:
        """Insert or update ``key``; lands in the surviving (target) tree."""
        self._dirty_keys.add(int(key))
        self.target.put(key)

    def delete(self, key: int) -> None:
        """Delete ``key``; the target's tombstone shadows the source copy."""
        self._dirty_keys.add(int(key))
        self.target.delete(key)

    def get(self, key: int) -> bool:
        """Point lookup across the mixed state.

        The target holds everything written since the plan started plus the
        already-migrated placements, so its verdict (live *or* deleted) is
        authoritative; only a key the target has never seen falls back to the
        frozen source snapshot.
        """
        found, tombstone = self.target.lookup_entry(key)
        if found:
            return not tombstone
        return self.source.get(key)

    def get_many(self, keys: np.ndarray) -> np.ndarray:
        """Batched point lookups across the mixed state; per-key live masks.

        The vectorised twin of :meth:`get`: the whole batch probes the target
        first, and only the keys the target has never seen (no live version,
        no tombstone) fall through to the frozen source snapshot — each side
        charging exactly the pages the per-key scalar path would have.
        """
        keys = np.asarray(keys, dtype=np.int64)
        found, tombstone = self.target.lookup_entries(keys)
        live = found & ~tombstone
        unresolved = ~found
        if unresolved.any():
            live[unresolved] = self.source.get_many(keys[unresolved])
        return live

    def range_query(self, start_key: int, end_key: int) -> int:
        """Range lookup across the mixed state; counts live keys once.

        Both sides are scanned (each charging its own pages); any version the
        target holds — live or tombstone — shadows the source's copy of that
        key.
        """
        target_keys, target_tombstones = self.target.scan_versions(
            start_key, end_key
        )
        source_keys, source_tombstones = self.source.scan_versions(
            start_key, end_key
        )
        target_live = target_keys[~target_tombstones]
        source_live = source_keys[~source_tombstones]
        unshadowed = source_live[~np.isin(source_live, target_keys)]
        return int(np.union1d(target_live, unshadowed).size)
