"""Online adaptive tuning: drift detection and live re-tuning of a running tree.

The paper tunes an LSM tree *once* against an uncertainty region around an
expected workload; this subsystem closes the loop at run time:

* :class:`~repro.online.observed.ObservedWorkload` folds the live operation
  stream into a sliding-window empirical workload with exponential decay,
* :class:`~repro.online.drift.DriftDetector` tracks the KL divergence of that
  estimate from the workload the deployed tuning was computed for and fires
  once the stream escapes the tuned-for KL ball,
* :class:`~repro.online.retuner.AdaptiveTuner` re-runs the nominal or robust
  tuner on the observed workload and prices the migration against the
  predicted cost gain,
* :class:`~repro.online.controller.OnlineLSMController` applies an accepted
  re-tuning to the live :class:`~repro.storage.lsm_tree.LSMTree`, charging
  the migration's I/O to the same virtual disk the measurements read.
"""

from .admission import ADMISSION_MODES, StepAdmission
from .controller import (
    MIGRATION_MODES,
    OnlineConfig,
    OnlineLSMController,
    RetuningEvent,
)
from .drift import DriftCheck, DriftDetector
from .migration import MigrationInvariantError, MigrationPlan, MigrationStep
from .observed import ObservedWorkload
from .retuner import AdaptiveTuner, RetuningDecision

__all__ = [
    "ADMISSION_MODES",
    "AdaptiveTuner",
    "DriftCheck",
    "DriftDetector",
    "MIGRATION_MODES",
    "MigrationInvariantError",
    "MigrationPlan",
    "MigrationStep",
    "ObservedWorkload",
    "OnlineConfig",
    "OnlineLSMController",
    "RetuningDecision",
    "RetuningEvent",
    "StepAdmission",
]
