"""Re-tuning policy: solve for a new tuning and price the migration.

When the drift detector fires, the scheduler re-runs the offline machinery —
the nominal or robust tuner, whose candidate sweep runs on the vectorised
:meth:`~repro.lsm.cost_model.LSMCostModel.cost_matrix` pass — on the
*observed* workload, and then decides whether deploying the winner is worth
it.  The decision is an amortisation argument: migrating rewrites the whole
tree (every resident page is read once and written once), so the predicted
per-query saving of the new tuning must recoup that I/O within a bounded
horizon of future operations.  The current tuning is always part of the
comparison ("seeded at the current tuning"): its integer size ratio lies on
the sweep's candidate grid, and the decision explicitly prices staying put,
so a re-tuning that cannot beat the deployed configuration never migrates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.nominal import NominalTuner
from ..core.robust import RobustTuner
from ..lsm.cost_model import LSMCostModel
from ..lsm.policy import CLASSIC_POLICIES, Policy, PolicySpec
from ..lsm.system import SystemConfig
from ..lsm.tuning import LSMTuning
from ..workloads.workload import Workload

#: Re-tuning modes: re-run the nominal tuner on the observed workload, or the
#: robust tuner with the configured radius around it.
RETUNING_MODES: tuple[str, ...] = ("nominal", "robust")


@dataclass(frozen=True)
class RetuningDecision:
    """A proposed re-tuning together with its predicted economics."""

    current: LSMTuning
    proposed: LSMTuning
    #: Model-predicted I/Os per query of the *current* tuning on the observed
    #: workload.
    current_cost: float
    #: Model-predicted I/Os per query of the *proposed* tuning on the same
    #: observed workload.
    proposed_cost: float
    #: Predicted I/O cost of migrating (reading and rewriting every resident
    #: page of the tree).
    migration_ios: float
    #: Number of future operations over which the migration is amortised.
    horizon_ops: int
    #: Multiplier on the migration cost the predicted savings must clear.
    safety_factor: float = 1.0
    #: Uncertainty radius the proposal was solved for: the configured ρ, or
    #: the volatility-widened radius when drift-aware re-tuning is enabled
    #: (0 for nominal re-tunings of a non-adaptive tuner).
    rho: float = 0.0

    @property
    def predicted_gain(self) -> float:
        """Predicted per-query I/O saving of the proposed tuning."""
        return self.current_cost - self.proposed_cost

    @property
    def predicted_savings(self) -> float:
        """Predicted total I/O saving over the amortisation horizon."""
        return self.predicted_gain * self.horizon_ops

    @property
    def justified(self) -> bool:
        """Whether the predicted savings pay for the migration."""
        return (
            self.predicted_gain > 0.0
            and self.predicted_savings >= self.safety_factor * self.migration_ios
        )

    def to_dict(self) -> dict[str, object]:
        """Serialise to plain JSON-compatible data."""
        return {
            "current": self.current.to_dict(),
            "proposed": self.proposed.to_dict(),
            "current_cost": self.current_cost,
            "proposed_cost": self.proposed_cost,
            "migration_ios": self.migration_ios,
            "horizon_ops": self.horizon_ops,
            "safety_factor": self.safety_factor,
            "rho": self.rho,
            "predicted_gain": self.predicted_gain,
            "justified": self.justified,
        }


class AdaptiveTuner:
    """Re-runs the offline tuner on the observed workload and prices migration.

    Parameters
    ----------
    system:
        System configuration of the running tree.
    mode:
        ``"nominal"`` re-tunes for the observed workload point estimate;
        ``"robust"`` re-tunes robustly with radius ``rho`` around it (the
        stream that drifted once will drift again).
    rho:
        Uncertainty radius of robust re-tunings (ignored in nominal mode).
    policies:
        Compaction policies the re-tuner may deploy.  Entries may be enum
        members, strings, or explicit :class:`~repro.lsm.policy.PolicySpec`
        instances — including specs pinning a per-level ``k_bounds`` vector.
    k_vector_search:
        Whether fluid re-tunings search per-level ``K_i`` bound vectors
        (structured families + coordinate descent + continuous-bound
        polish), exactly like the offline tuners' flag.  A vector proposal
        flows through the migration machinery unchanged: the decision
        serialises the vector, and the rebuilt (or incrementally migrated)
        tree deploys it.
    horizon_ops:
        Amortisation horizon of migrations, in operations.
    safety_factor:
        Multiplier on the migration cost the predicted savings must clear
        before a migration is accepted.
    polish:
        Whether the re-tuner runs the SLSQP polish; the candidate sweep alone
        is usually enough online, and much faster.
    seed:
        Seed of the tuner's polish starting points.
    rho_adaptive:
        Whether the robust radius is widened with the drift detector's
        observed volatility (see :meth:`effective_rho`).  A cyclic workload
        keeps re-escaping any tuning computed for either of its phases; the
        widened ball covers the whole cycle, so the stream is re-tuned once
        for the cycle instead of migrating back and forth every phase.
        Requires ``mode="robust"`` — a nominal re-tuning has no radius to
        widen, and silently widening only the *detector* would leave it
        watching a ball the deployed tuning does not cover.
    volatility_gain:
        Multiplier on the KL-trajectory volatility added to ``rho``.
    rho_cap:
        Upper bound of the widened radius (the paper's ρ grid tops out at 4,
        where robust tunings are essentially workload-agnostic).
    """

    def __init__(
        self,
        system: SystemConfig,
        mode: str = "robust",
        rho: float = 0.25,
        policies: Sequence[Policy | str | PolicySpec] = CLASSIC_POLICIES,
        horizon_ops: int = 20_000,
        safety_factor: float = 1.0,
        polish: bool = False,
        seed: int = 0,
        rho_adaptive: bool = False,
        volatility_gain: float = 2.0,
        rho_cap: float = 4.0,
        k_vector_search: bool = False,
    ) -> None:
        if mode not in RETUNING_MODES:
            raise ValueError(f"mode must be one of {RETUNING_MODES}, got {mode!r}")
        if rho < 0:
            raise ValueError("rho must be non-negative")
        if horizon_ops <= 0:
            raise ValueError("horizon_ops must be positive")
        if safety_factor <= 0:
            raise ValueError("safety_factor must be positive")
        if volatility_gain < 0:
            raise ValueError("volatility_gain must be non-negative")
        if rho_adaptive and mode != "robust":
            raise ValueError(
                "rho_adaptive requires mode='robust': nominal re-tunings have "
                "no radius to widen"
            )
        self.system = system
        self.mode = mode
        self.rho = float(rho)
        self.horizon_ops = int(horizon_ops)
        self.safety_factor = float(safety_factor)
        self.rho_adaptive = bool(rho_adaptive)
        self.volatility_gain = float(volatility_gain)
        # Widening can never cut below the configured radius, so a cap under
        # rho is simply inert — raised rather than rejected (a large
        # --retune-rho must not crash a non-adaptive run).
        self.rho_cap = max(float(rho_cap), self.rho)
        self._policies = tuple(policies)
        self._polish = bool(polish)
        self._seed = int(seed)
        self.k_vector_search = bool(k_vector_search)
        self.cost_model = LSMCostModel(system)
        if mode == "robust":
            self.tuner: NominalTuner | RobustTuner = RobustTuner(
                rho=self.rho,
                system=system,
                policies=policies,
                polish=polish,
                seed=seed,
                k_vector_search=self.k_vector_search,
            )
        else:
            self.tuner = NominalTuner(
                system=system,
                policies=policies,
                polish=polish,
                seed=seed,
                k_vector_search=self.k_vector_search,
            )

    # ------------------------------------------------------------------
    # Re-tuning
    # ------------------------------------------------------------------
    def migration_ios(self, resident_pages: int) -> float:
        """Predicted I/O cost of rebuilding a tree of ``resident_pages`` pages.

        Every resident page is read once and every page of the rebuilt tree
        is written once; the rebuilt tree occupies (approximately) the same
        number of pages, so the estimate is two passes over the data.
        """
        if resident_pages < 0:
            raise ValueError("resident_pages must be non-negative")
        return 2.0 * resident_pages

    def effective_rho(self, volatility: float = 0.0) -> float:
        """The uncertainty radius a re-tuning solves for, given ``volatility``.

        With drift-aware widening enabled, the configured ρ grows by
        ``volatility_gain`` times the detector's KL-trajectory dispersion
        (capped at ``rho_cap``): the more the stream has been swinging around
        its nominal centre, the larger the ball the replacement tuning must
        cover.  On a cyclic workload the widened ball spans both phases, so
        one migration serves the whole cycle.
        """
        if not self.rho_adaptive or volatility <= 0.0:
            return self.rho
        return min(self.rho + self.volatility_gain * float(volatility), self.rho_cap)

    def _tuner_for(self, rho: float) -> NominalTuner | RobustTuner:
        """The tuner solving a re-tuning of radius ``rho``."""
        if self.mode != "robust" or rho == self.rho:
            return self.tuner
        return RobustTuner(
            rho=rho,
            system=self.system,
            policies=self._policies,
            polish=self._polish,
            seed=self._seed,
            k_vector_search=self.k_vector_search,
        )

    def retune(
        self,
        observed: Workload,
        current: LSMTuning,
        resident_pages: int,
        volatility: float = 0.0,
    ) -> RetuningDecision:
        """Solve for the best tuning of ``observed`` and price the switch.

        The proposed tuning is deployable (integer size ratio); both it and
        the incumbent are evaluated by the analytical cost model on the same
        observed workload, so the decision compares like with like.
        ``volatility`` is the drift detector's KL-trajectory dispersion; it
        widens the robust radius when drift-aware re-tuning is enabled.
        """
        rho = self.effective_rho(volatility)
        result = self._tuner_for(rho).tune(observed)
        proposed = result.tuning.rounded()
        return RetuningDecision(
            current=current,
            proposed=proposed,
            current_cost=self.cost_model.workload_cost(observed, current),
            proposed_cost=self.cost_model.workload_cost(observed, proposed),
            migration_ios=self.migration_ios(resident_pages),
            horizon_ops=self.horizon_ops,
            safety_factor=self.safety_factor,
            rho=rho if self.mode == "robust" else 0.0,
        )
