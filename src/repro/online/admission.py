"""Admission control for incremental migration steps.

An incremental :class:`~repro.online.migration.MigrationPlan` spreads a
migration's page traffic over the operation stream.  *When* each step is
admitted is a serving-layer policy:

``"fixed"``
    The classic cadence — one step every ``migration_step_ops`` operations
    past the plan's start, regardless of load.  Reorganisation I/O lands
    inside whatever the shard happens to be serving.

``"queue-depth"``
    Backpressure-aware pacing.  A step is admitted only once the shard's
    observed backlog (operations still queued in the chunk being served) has
    drained to ``max_backlog``, so a loaded shard defers reorganisation I/O
    out of its busy window; a starvation bound forces a step every
    ``starvation_ops`` operations so an always-busy shard still completes its
    plan, and an idle shard drains up to ``idle_step_burst`` steps per idle
    notification.

:class:`StepAdmission` is deliberately stateless: callers pass the stream
position, the plan's start position, the position of the last admitted step,
and the current backlog.  That keeps the scalar per-operation check and the
batched span-bounding math (:meth:`ops_until_step`) provably consistent —
both read the same inputs, and within a span the backlog decreases by exactly
one per operation, so the first admitting position can be computed in closed
form.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Admission policies for incremental migration steps.
ADMISSION_MODES: tuple[str, ...] = ("fixed", "queue-depth")


@dataclass(frozen=True)
class StepAdmission:
    """Decides at which stream positions migration steps are admitted."""

    #: One of :data:`ADMISSION_MODES`.
    mode: str = "fixed"
    #: Base cadence in operations (the ``migration_step_ops`` knob).
    step_ops: int = 256
    #: Backlog (queued operations) at or below which a due step is admitted
    #: under ``"queue-depth"``.
    max_backlog: int = 256
    #: Hard bound on operations between steps under ``"queue-depth"``: a step
    #: is forced once this many operations passed since the last one, however
    #: deep the backlog.
    starvation_ops: int = 4_096
    #: Steps drained per :meth:`~repro.online.controller.OnlineLSMController.
    #: note_idle` call under ``"queue-depth"`` (0 under ``"fixed"``).
    idle_step_burst: int = 8

    def __post_init__(self) -> None:
        if self.mode not in ADMISSION_MODES:
            raise ValueError(
                f"admission mode must be one of {ADMISSION_MODES}, got {self.mode!r}"
            )
        if self.step_ops <= 0:
            raise ValueError("step_ops must be positive")
        if self.max_backlog < 0:
            raise ValueError("max_backlog must be non-negative")
        if self.mode != "fixed" and self.starvation_ops < self.step_ops:
            raise ValueError(
                "starvation_ops must be at least step_ops: the starvation "
                "bound can only defer steps, not speed them up"
            )
        if self.idle_step_burst < 0:
            raise ValueError("idle_step_burst must be non-negative")

    @property
    def idle_steps(self) -> int:
        """Steps to drain on an idle notification (0 under ``"fixed"``)."""
        return 0 if self.mode == "fixed" else self.idle_step_burst

    def should_step(
        self, position: int, plan_started: int, last_step: int, backlog: int
    ) -> bool:
        """Whether a step is admitted at ``position`` (checked after each op).

        ``"fixed"`` reproduces the historical cadence bit-for-bit:
        ``(position - plan_started) % step_ops == 0``.  ``"queue-depth"``
        admits once ``step_ops`` operations passed since the last step *and*
        the backlog drained to ``max_backlog``, or unconditionally at the
        ``starvation_ops`` bound.
        """
        if self.mode == "fixed":
            return (position - plan_started) % self.step_ops == 0
        since = position - last_step
        if since >= self.starvation_ops:
            return True
        return since >= self.step_ops and backlog <= self.max_backlog

    def ops_until_step(
        self, position: int, plan_started: int, last_step: int, backlog: int
    ) -> int:
        """Operations until :meth:`should_step` next admits (at least 1).

        Exact under the serving loop's invariant that the backlog decreases
        by one per executed operation: after ``k`` more operations the elapsed
        count grows by ``k`` and the backlog shrinks by ``k``, so the first
        admitting ``k`` solves in closed form.  Batched execution bounds GET
        spans by this, guaranteeing a span never skips over an admission the
        scalar loop would have taken.
        """
        if self.mode == "fixed":
            return self.step_ops - (position - plan_started) % self.step_ops
        since = position - last_step
        until_starved = self.starvation_ops - since
        until_due = max(self.step_ops - since, backlog - self.max_backlog)
        return max(1, min(until_starved, until_due))
