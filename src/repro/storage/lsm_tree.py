"""A pure-Python LSM-tree storage engine with I/O accounting.

This is the reproduction's stand-in for RocksDB in the paper's system-based
evaluation (§8).  It implements the structure the analytical model assumes:

* an in-memory write buffer (memtable) holding ``m_buf / E`` entries,
* exponentially growing disk levels with size ratio ``T``,
* classic *leveling* and *tiering* compaction plus the *lazy leveling*,
  *1-leveling* and *fluid* hybrids — the latter with either the scalar
  ``K``/``Z`` run bounds or a full per-level ``K_i`` bound vector — all
  driven by the shared :class:`~repro.lsm.policy.CompactionPolicy` strategy
  objects (the same definitions the analytical cost model uses): the
  compaction triggers (``max_resident_runs``), the in-place-merge decision
  (``compacts_within_level``) and the bulk-load run splitting all consult
  the strategy *per level*, so each level obeys its own bound; fluid
  levels that hit their run bound below capacity compact in place, and
  spill down once the level's entry capacity is exhausted,
* one Bloom filter per run with Monkey-style per-level allocation,
* fence pointers (one per page) so point lookups read at most one page per
  probed run,
* a :class:`~repro.storage.disk.VirtualDisk` that records every page read
  and written, split into query/flush/compaction traffic.

Values are not materialised — every entry has the fixed size configured in
the :class:`~repro.lsm.system.SystemConfig` — because the experiments only
measure I/O counts and their derived latency, never value contents.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..lsm.bloom import monkey_bits_per_level
from ..lsm.system import SystemConfig
from ..lsm.tuning import LSMTuning
from ..workloads.traces import Operation, OperationType
from .disk import VirtualDisk
from .memtable import Memtable
from .run import SortedRun


@dataclass(frozen=True)
class TreeStats:
    """A snapshot of the tree's shape."""

    num_entries: int
    num_levels: int
    runs_per_level: tuple[int, ...]
    entries_per_level: tuple[int, ...]
    memtable_entries: int
    filter_memory_bits: int


def execute_operation(engine, operation: Operation) -> None:
    """Dispatch one trace operation to an engine's ``put``/``get``/``range_query``.

    The single place :class:`~repro.workloads.traces.Operation` kinds map to
    engine calls.  ``engine`` is anything exposing the three methods — the
    live :class:`LSMTree` and the online subsystem's mixed migration state
    both route through here, so a new operation kind handled in one
    measurement path can never be silently mis-routed in the other.
    """
    if operation.kind is OperationType.PUT:
        engine.put(operation.key)
    elif operation.kind is OperationType.RANGE:
        engine.range_query(operation.key, operation.key + operation.scan_length)
    else:
        engine.get(operation.key)


#: Operation kinds a batched GET span may absorb (both point-read flavours).
POINT_READ_KINDS = frozenset((OperationType.GET, OperationType.EMPTY_GET))

#: GET spans shorter than this run through the scalar path: per-batch array
#: overhead beats per-key dict/filter probes only once a span has some width,
#: and the two paths are bit-identical either way.
SCALAR_SPAN_CUTOFF = 8


def drain_get_span(engine, span_keys: list[int]) -> None:
    """Execute one write-free GET span and empty it.

    Spans below :data:`SCALAR_SPAN_CUTOFF` replay through the engine's scalar
    ``get`` (cheaper than spinning up array ops for a handful of keys);
    longer spans go through the vectorised ``get_many``.  Both produce
    identical disk counters, so the cutoff is purely a wall-clock knob.
    """
    if len(span_keys) < SCALAR_SPAN_CUTOFF:
        for key in span_keys:
            engine.get(key)
    else:
        engine.get_many(np.asarray(span_keys, dtype=np.int64))
    span_keys.clear()


def execute_operations_batched(engine, operations, max_batch_ops: int = 4_096) -> None:
    """Execute a span of trace operations, batching write-free GET runs.

    The batched companion of :func:`execute_operation`: maximal spans of
    consecutive point reads (capped at ``max_batch_ops``) are routed through
    the engine's vectorised ``get_many``; a PUT or RANGE flushes the pending
    span first and then runs through the scalar dispatch, since writes mutate
    the tree structure (flushes, compactions) that subsequent reads must
    observe.  ``engine`` is anything exposing ``get_many`` alongside the
    scalar trio — the live :class:`LSMTree` and the online subsystem's mixed
    migration state both qualify — and the disk counters, tree state and
    query answers are bit-identical to replaying the span scalar.
    """
    if max_batch_ops <= 0:
        raise ValueError("max_batch_ops must be positive")
    # Identity checks against hoisted members: this loop runs once per trace
    # operation, so even the frozenset's enum hashing shows up at 1M ops.
    get_kind, empty_get_kind = OperationType.GET, OperationType.EMPTY_GET
    pending: list[int] = []
    append = pending.append
    for operation in operations:
        kind = operation.kind
        if kind is get_kind or kind is empty_get_kind:
            append(operation.key)
            if len(pending) >= max_batch_ops:
                drain_get_span(engine, pending)
        else:
            if pending:
                drain_get_span(engine, pending)
            execute_operation(engine, operation)
    if pending:
        drain_get_span(engine, pending)


@dataclass(frozen=True)
class BulkLoadPlan:
    """The placements a bulk load would install, computed without applying them.

    ``placements`` lists ``(level, run_keys)`` pairs in install order (deepest
    level first, runs of a level in their natural order); ``leftover`` holds
    keys that fit no level and go to the memtable; ``deepest`` is the number
    of disk levels the loaded tree exposes.  Produced by
    :meth:`LSMTree.plan_bulk_load` and consumed both by
    :meth:`LSMTree.bulk_load` and by the online subsystem's incremental
    migration plan — the two therefore place keys *identically*.
    """

    placements: tuple[tuple[int, np.ndarray], ...]
    leftover: np.ndarray
    deepest: int

    @property
    def num_entries(self) -> int:
        """Entries placed into disk runs (leftover excluded)."""
        return sum(piece.size for _, piece in self.placements)


class LSMTree:
    """Simulated LSM tree configured by a tuning and a system description.

    Class attributes
    ----------------
    BULK_LOAD_FILL_FRACTION:
        Fraction of each level's capacity used when bulk loading; the
        remaining headroom prevents the very first post-load flush from
        cascading into a rewrite of the largest level.

    Parameters
    ----------
    tuning:
        The LSM tuning ``Φ = (T, h, π)`` to deploy.  Fractional size ratios
        are rounded up exactly as the paper does when deploying on RocksDB.
    system:
        System parameters (entry size, page size, memory budget, …).  Use
        :func:`repro.lsm.system.simulator_system` for laptop-scale instances.
    disk:
        Optional pre-existing virtual disk (e.g. shared across measurements).
    seed:
        Seed for the per-run Bloom-filter hashes.
    """

    #: Fraction of a level's capacity that bulk loading fills (see class docs).
    BULK_LOAD_FILL_FRACTION = 0.85

    def __init__(
        self,
        tuning: LSMTuning,
        system: SystemConfig,
        disk: VirtualDisk | None = None,
        seed: int = 1,
    ) -> None:
        self.system = system
        self.tuning = tuning.clamped(system).rounded()
        self.policy = self.tuning.policy
        self.strategy = self.tuning.strategy
        self.size_ratio = int(self.tuning.size_ratio)
        self.disk = disk if disk is not None else VirtualDisk()
        self._seed = seed
        self._run_counter = 0
        #: While true, merges never drop tombstones — set by an in-flight
        #: incremental migration, whose deeper (not yet installed) runs may
        #: still hold live versions a premature drop would resurrect.
        self.preserve_tombstones = False

        self.entries_per_page = system.entries_per_page
        buffer_entries = int(system.buffer_entries(self.tuning.bits_per_entry))
        self.buffer_entries = max(self.entries_per_page, buffer_entries)
        self.memtable = Memtable(self.buffer_entries)
        #: Disk levels; ``levels[i]`` holds the runs of disk level ``i + 1``,
        #: ordered from most to least recent.
        self.levels: list[list[SortedRun]] = []

        self._estimated_levels = system.num_levels(
            self.tuning.size_ratio, self.tuning.bits_per_entry
        )
        level_entries = [
            self.level_capacity_entries(i) for i in range(1, self._estimated_levels + 1)
        ]
        self._bits_per_level = monkey_bits_per_level(
            self.tuning.size_ratio,
            self.tuning.bits_per_entry,
            self._estimated_levels,
            level_entries,
        )

    # ------------------------------------------------------------------
    # Structure helpers
    # ------------------------------------------------------------------
    def level_capacity_entries(self, level: int) -> int:
        """Capacity of disk level ``level`` in entries: ``(T-1) T^(i-1) · buf``."""
        if level < 1:
            raise ValueError("disk levels are numbered from 1")
        return int(
            (self.size_ratio - 1)
            * self.size_ratio ** (level - 1)
            * self.buffer_entries
        )

    def _bits_for_level(self, level: int) -> float:
        """Monkey bits-per-entry for the filters of disk level ``level``."""
        index = min(level, self._estimated_levels) - 1
        if index < 0 or self._bits_per_level.size == 0:
            return 0.0
        return float(self._bits_per_level[index])

    def _new_run(self, keys: np.ndarray, tombstones: np.ndarray, level: int) -> SortedRun:
        self._run_counter += 1
        return SortedRun(
            keys=keys,
            entries_per_page=self.entries_per_page,
            bits_per_entry=self._bits_for_level(level),
            tombstones=tombstones,
            seed=self._seed + self._run_counter,
        )

    def _ensure_level(self, level: int) -> None:
        while len(self.levels) < level:
            self.levels.append([])

    def _merges_on_arrival(self, level: int) -> bool:
        """Whether ``level`` currently keeps a single run (leveled behaviour).

        Delegates to the compaction-policy strategy with the tree's current
        deepest level, so lazy leveling's single-run largest level tracks the
        tree as it grows.
        """
        return self.strategy.merges_on_arrival(level, max(len(self.levels), 1))

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def put(self, key: int) -> None:
        """Insert or update a key; may trigger a flush and compactions."""
        self.memtable.put(key)
        if self.memtable.is_full:
            self.flush()

    def delete(self, key: int) -> None:
        """Delete a key by writing a tombstone."""
        self.memtable.delete(key)
        if self.memtable.is_full:
            self.flush()

    def flush(self) -> None:
        """Flush the memtable into disk level 1."""
        if self.memtable.is_empty:
            return
        keys, tombstones = self.memtable.sorted_items()
        self.memtable.clear()
        run = self._new_run(keys, tombstones, level=1)
        self.disk.write_pages(run.num_pages, flush=True)
        self._install_run(run, level=1)

    def _install_run(self, run: SortedRun, level: int) -> None:
        """Add ``run`` to ``level`` and restore the tree's size invariants."""
        self._ensure_level(level)
        runs = self.levels[level - 1]
        if self._merges_on_arrival(level):
            if runs:
                merged = self._merge_runs([run] + runs, level)
                self.levels[level - 1] = [merged]
            else:
                self.levels[level - 1] = [run]
            self._maybe_spill_merging(level)
        else:
            runs.insert(0, run)
            self._maybe_compact_stacked(level)

    def _merge_runs(self, runs: list[SortedRun], target_level: int) -> SortedRun:
        """Sort-merge runs, charging compaction I/O to the virtual disk."""
        input_pages = sum(r.num_pages for r in runs)
        self.disk.read_pages(input_pages, compaction=True)
        is_last_level = target_level >= len(self.levels) or not any(
            self.levels[target_level:]
        )
        # Bump-then-use, exactly like _new_run: reading the counter before
        # incrementing would reuse the Bloom hash seed of the most recently
        # created run, correlating the two filters' false positives.
        self._run_counter += 1
        merged = self._merged_run(
            runs,
            target_level,
            drop_tombstones=is_last_level and not self.preserve_tombstones,
        )
        self.disk.write_pages(merged.num_pages, compaction=True)
        return merged

    def _merged_run(
        self, runs: list[SortedRun], target_level: int, drop_tombstones: bool
    ) -> SortedRun:
        """Materialise the consolidated run of a compaction.

        The backend-specific half of :meth:`_merge_runs` (which owns the I/O
        accounting and the tombstone-drop decision): the simulated tree
        sort-merges the in-memory arrays, the persistent backend overrides
        this to read the input SSTables from disk and write a new one.
        """
        return SortedRun.merge(
            runs,
            entries_per_page=self.entries_per_page,
            bits_per_entry=self._bits_for_level(target_level),
            drop_tombstones=drop_tombstones,
            seed=self._seed + self._run_counter,
        )

    def _maybe_spill_merging(self, level: int) -> None:
        """Cascade over-full single-run (leveled) levels into deeper levels."""
        current = level
        while True:
            self._ensure_level(current)
            runs = self.levels[current - 1]
            if not runs:
                return
            run = runs[0]
            if run.num_entries <= self.level_capacity_entries(current):
                return
            # Move the over-full run one level down, merging if necessary.
            self.levels[current - 1] = []
            target = current + 1
            self._ensure_level(target)
            below = self.levels[target - 1]
            if self._merges_on_arrival(target):
                if below:
                    merged = self._merge_runs([run] + below, target)
                else:
                    # Trivial move: nothing to merge with, so the run is
                    # adopted by the level below without any I/O (RocksDB
                    # does the same when the target level is empty).
                    merged = run
                self.levels[target - 1] = [merged]
                current = target
            else:
                # Spilling into a run-stacking level (possible when the tree
                # outgrows a hybrid policy's largest level): stack the run
                # and let the count-based trigger take over.
                self.levels[target - 1].insert(0, run)
                self._maybe_compact_stacked(target)
                return

    def _maybe_compact_stacked(self, level: int) -> None:
        """Merge a run-stacking level once its run count exceeds the trigger.

        Classic tiering merges the accumulated runs into a new run one level
        down.  When the destination is a single-run level (lazy leveling's
        largest level), the resident run joins the same merge so the compact
        happens in one pass, exactly as the analytical model amortises it.

        The run-count trigger is per level: fluid policies bound upper levels
        by ``K`` and the largest by ``Z``.  A fluid level that hits its bound
        while still below its entry capacity compacts *within* the level
        (Dostoevsky's fluid LSM restores the bound in place); only a level at
        capacity spills into the next one.
        """
        current = level
        while True:
            self._ensure_level(current)
            runs = self.levels[current - 1]
            last_level = max(len(self.levels), 1)
            trigger = self.strategy.max_resident_runs(
                self.size_ratio, current, last_level
            )
            if self._merges_on_arrival(current) or len(runs) <= trigger:
                return
            if self.strategy.compacts_within_level(current, last_level):
                total_entries = sum(run.num_entries for run in runs)
                if total_entries < self.level_capacity_entries(current):
                    merged = self._merge_runs(runs, current)
                    self.levels[current - 1] = [merged]
                    return
            target = current + 1
            self._ensure_level(target)
            sources = list(runs)
            if self._merges_on_arrival(target):
                sources += self.levels[target - 1]
                merged = self._merge_runs(sources, target)
                self.levels[current - 1] = []
                self.levels[target - 1] = [merged]
                self._maybe_spill_merging(target)
                return
            merged = self._merge_runs(sources, target)
            self.levels[current - 1] = []
            self.levels[target - 1].insert(0, merged)
            current = target

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get(self, key: int) -> bool:
        """Point lookup; returns whether the key is live in the tree.

        Probes the memtable first (no I/O), then every run from the smallest
        to the largest level, newest run first within a level, charging one
        page read for every run whose Bloom filter and fence pointers fail to
        rule it out.
        """
        found, tombstone = self.lookup_entry(key)
        return found and not tombstone

    def lookup_entry(self, key: int) -> tuple[bool, bool]:
        """Newest version of ``key``: ``(found, is_tombstone)``, charging I/O.

        The three-state answer (missing / live / deleted) lets a caller
        layering two trees — the online subsystem's mixed migration state —
        distinguish "this tree never heard of the key" (fall through to the
        older tree) from "this tree deleted it" (the deletion shadows any
        older version).
        """
        present, tombstone = self.memtable.get(key)
        if present:
            return True, tombstone
        for runs in self.levels:
            for run in runs:
                found, tombstone, pages = run.lookup(key)
                if pages:
                    self.disk.read_pages(pages)
                if found:
                    return True, tombstone
        return False, False

    def get_many(self, keys: np.ndarray) -> np.ndarray:
        """Batched point lookups; returns a per-key liveness mask.

        The vectorised twin of :meth:`get`: the whole batch walks the levels
        *once*, so a span of reads pays one Python-level pass over the runs
        instead of one per key, while the disk sees exactly the page counts
        the scalar loop would have charged.
        """
        found, tombstone = self.lookup_entries(keys)
        return found & ~tombstone

    def lookup_entries(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`lookup_entry`: per-key ``(found, is_tombstone)`` masks.

        Probes the memtable first (no I/O), then every run from the smallest
        to the largest level, newest run first within a level, carrying an
        *unresolved* mask: a key stops probing deeper runs the moment a run
        answers it — the scalar early-exit, applied per key.  Each probed run
        charges the disk one ``read_pages`` call with the batch's total
        candidate pages, which sums to exactly what per-key scalar probes
        would have charged (page counts are per probe, not per unique page).
        """
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0:
            return np.zeros(0, dtype=bool), np.zeros(0, dtype=bool)
        found, tombstone = self.memtable.lookup_many(keys)
        # Indices of keys no probe has answered yet; shrinks as runs hit.
        pending = np.flatnonzero(~found)
        for runs in self.levels:
            for run in runs:
                if pending.size == 0:
                    return found, tombstone
                run_found, run_tombstone, pages = run.lookup_many(keys[pending])
                if pages:
                    self.disk.read_pages(pages)
                if run_found.any():
                    hits = pending[run_found]
                    found[hits] = True
                    tombstone[hits] = run_tombstone[run_found]
                    pending = pending[~run_found]
        return found, tombstone

    def range_query(self, start_key: int, end_key: int) -> int:
        """Range lookup; returns the number of live keys in the interval.

        Every overlapping run pays at least one page read (the seek) plus the
        sequential pages covered by the interval; versions from all runs are
        consolidated newest-first, so an obsolete version — or a live version
        shadowed by a more recent tombstone — is never counted.
        """
        keys, tombstones = self.scan_versions(start_key, end_key)
        return int(np.count_nonzero(~tombstones))

    def scan_versions(
        self, start_key: int, end_key: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Newest surviving version of every key in ``[start_key, end_key]``.

        Returns ``(keys, tombstones)`` sorted by key, charging the same page
        reads as :meth:`range_query`.  Keys whose newest version is a
        tombstone are *returned* (flagged), not dropped: a caller overlaying
        this tree on an older snapshot needs the deletions to shadow it.
        """
        if end_key < start_key:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=bool)
        key_parts: list[np.ndarray] = []
        tombstone_parts: list[np.ndarray] = []
        buffered_keys, buffered_tombstones = self.memtable.scan_items(
            start_key, end_key
        )
        if buffered_keys.size:
            key_parts.append(buffered_keys)
            tombstone_parts.append(buffered_tombstones)
        for runs in self.levels:
            for run in runs:
                keys, tombstones, pages = run.scan_entries(start_key, end_key)
                if pages:
                    self.disk.read_pages(pages)
                if keys.size:
                    key_parts.append(keys)
                    tombstone_parts.append(tombstones)
        if not key_parts:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=bool)
        all_keys = np.concatenate(key_parts)
        all_tombstones = np.concatenate(tombstone_parts)
        # Parts were collected newest-first; keep the most recent version.
        recency = np.concatenate(
            [np.full(part.size, rank) for rank, part in enumerate(key_parts)]
        )
        order = np.lexsort((recency, all_keys))
        sorted_keys = all_keys[order]
        sorted_tombstones = all_tombstones[order]
        keep = np.ones(sorted_keys.size, dtype=bool)
        keep[1:] = sorted_keys[1:] != sorted_keys[:-1]
        return sorted_keys[keep], sorted_tombstones[keep]

    # ------------------------------------------------------------------
    # Trace operations
    # ------------------------------------------------------------------
    def apply(self, operation: Operation) -> None:
        """Execute one concrete trace operation against the tree.

        Dispatches through :func:`execute_operation` — the single place the
        :class:`~repro.workloads.traces.Operation` kinds map to engine calls
        — so the plain executor replay, the online controller, and the
        mixed migration state cannot drift apart.
        """
        execute_operation(self, operation)

    # ------------------------------------------------------------------
    # Bulk loading
    # ------------------------------------------------------------------
    def bulk_load(self, keys: np.ndarray) -> None:
        """Populate the tree with sorted unique keys without charging I/O.

        Mirrors the paper's experimental setup: every database instance is
        bulk-loaded with the same data before measurements start, and that
        loading cost is not part of any reported metric.  Keys are placed
        bottom-up so the tree starts in a steady-state shape (deep levels
        nearly full, shallower levels holding the remainder).  Single-run
        levels are filled only to :data:`BULK_LOAD_FILL_FRACTION` of their
        capacity so the first trickle of writes does not immediately trigger
        a full rewrite of the largest level.
        """
        plan = self.plan_bulk_load(keys)
        self._ensure_level(plan.deepest)
        for lvl, piece in plan.placements:
            self.install_bulk_run(piece, lvl)
        # Anything that still did not fit goes to the memtable (rare).
        for key in plan.leftover:
            self.memtable.put(int(key))

    def plan_bulk_load(self, keys: np.ndarray) -> BulkLoadPlan:
        """Compute the run placements of a bulk load without applying them.

        The returned plan is exactly what :meth:`bulk_load` installs; the
        online subsystem's incremental migration replays the same placements
        one bounded step at a time, so the migrated tree is byte-identical to
        a freshly loaded one.
        """
        keys = np.unique(np.asarray(keys, dtype=np.int64))
        remaining = keys
        level_chunks: list[tuple[int, np.ndarray]] = []
        # Levels that merge on arrival trigger compaction on *size*, so bulk
        # loading leaves them headroom below capacity; run-stacking levels
        # trigger on the *run count* and can be loaded to full capacity.  The
        # per-level split is the policy strategy's call (lazy leveling mixes
        # both kinds in one tree).
        total = keys.size
        deepest = 1
        while self._bulk_load_capacity(deepest) < total and deepest < 64:
            deepest += 1
        # Fill from the deepest level upwards so lower levels are the fullest.
        for lvl in range(deepest, 0, -1):
            if remaining.size == 0:
                break
            capacity = self._bulk_load_level_capacity(lvl, deepest)
            take = min(capacity, remaining.size)
            level_chunks.append((lvl, remaining[remaining.size - take :]))
            remaining = remaining[: remaining.size - take]
        placements = tuple(
            (lvl, piece)
            for lvl, chunk in level_chunks
            for piece in self._bulk_load_runs(chunk, lvl, deepest)
        )
        return BulkLoadPlan(placements=placements, leftover=remaining, deepest=deepest)

    def install_bulk_run(self, keys: np.ndarray, level: int) -> None:
        """Install one bulk-planned run at ``level``, charging no I/O.

        The caller is responsible for pricing the install (bulk loading is
        free by experimental convention; a migration charges the pages to the
        virtual disk as compaction traffic before installing).
        """
        self._ensure_level(level)
        run = self._new_run(keys, np.zeros(keys.size, dtype=bool), level)
        self.levels[level - 1].append(run)

    def _bulk_load_level_capacity(self, level: int, deepest: int) -> int:
        """Entries bulk loading may place at ``level`` in a ``deepest``-level tree."""
        fraction = self.strategy.bulk_load_fill_fraction(
            level, deepest, self.BULK_LOAD_FILL_FRACTION
        )
        return int(fraction * self.level_capacity_entries(level))

    def _bulk_load_capacity(self, deepest: int) -> int:
        """Total entries a bulk-loaded tree of ``deepest`` levels can hold."""
        return sum(
            self._bulk_load_level_capacity(lvl, deepest)
            for lvl in range(1, deepest + 1)
        )

    def _bulk_load_runs(
        self, chunk: np.ndarray, level: int, deepest: int
    ) -> list[np.ndarray]:
        """Split a bulk-loaded level into runs matching the policy's steady state.

        Levels that merge on arrival keep a single run.  Run-stacking levels
        accumulate up to ``T - 1`` runs, each the size of a compaction
        arriving from the level above, so a bulk-loaded tree must expose the
        same number of runs a naturally filled one would — otherwise measured
        read costs would be unrealistically low.
        """
        if chunk.size == 0 or self.strategy.merges_on_arrival(level, deepest):
            return [chunk]
        natural_run_entries = max(
            self.buffer_entries,
            self.level_capacity_entries(level) // max(self.size_ratio - 1, 1),
        )
        num_runs = int(np.clip(
            np.ceil(chunk.size / natural_run_entries),
            1,
            self.strategy.max_resident_runs(self.size_ratio, level, deepest),
        ))
        # Interleave keys across runs so every run spans the whole key domain,
        # as overlapping tiered runs do in practice.
        return [chunk[offset::num_runs] for offset in range(num_runs)]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def successor(self, tuning: LSMTuning, seed: int) -> "LSMTree":
        """An empty tree of the same backend, sharing this tree's disk.

        The online controller rebuilds through this factory when it migrates
        to a new tuning, so a persistent tree is replaced by another
        persistent tree (in a fresh sibling directory) rather than silently
        falling back to the simulated substrate.
        """
        return LSMTree(tuning=tuning, system=self.system, disk=self.disk, seed=seed)

    def close(self) -> None:
        """Release backend resources.

        The simulated tree holds none (everything lives in memory), but the
        executor closes every tree it builds through this method so the
        persistent backend's file handles are released uniformly.
        """

    def dispose(self) -> None:
        """Release the tree at end-of-life, deleting owned backend storage.

        For the simulated tree this is :meth:`close`; the persistent tree
        also removes its data directory.  Called on trees a migration has
        fully superseded — every live entry was copied into the replacement,
        so the storage is garbage.
        """
        self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_entries(self) -> int:
        """Total number of entries resident in the tree (including buffer)."""
        return len(self.memtable) + sum(
            run.num_entries for runs in self.levels for run in runs
        )

    @property
    def resident_pages(self) -> int:
        """Disk pages currently occupied by the tree's runs."""
        return sum(run.num_pages for runs in self.levels for run in runs)

    def stats(self) -> TreeStats:
        """Snapshot of the tree's current shape and memory usage."""
        runs_per_level = tuple(len(runs) for runs in self.levels)
        entries_per_level = tuple(
            sum(run.num_entries for run in runs) for runs in self.levels
        )
        filter_bits = sum(
            run.filter_size_bits for runs in self.levels for run in runs
        )
        return TreeStats(
            num_entries=self.num_entries,
            num_levels=len(self.levels),
            runs_per_level=runs_per_level,
            entries_per_level=entries_per_level,
            memtable_entries=len(self.memtable),
            filter_memory_bits=filter_bits,
        )
