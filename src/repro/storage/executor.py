"""Execute workload sessions against the simulated LSM tree.

This is the system-based measurement harness (§8.1–8.2): it bulk-loads a
database instance per tuning, replays session sequences of concrete queries,
and reports the same quantities the paper reads out of RocksDB's statistics
module — average I/Os per query (with compaction traffic amortised over the
writes of the session) and a simulated per-query latency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..lsm.system import SystemConfig
from ..lsm.tuning import LSMTuning
from ..workloads.sessions import Session, SessionSequence
from ..workloads.traces import KeySpace, Operation, OperationType, TraceGenerator
from ..workloads.workload import Workload
from .disk import VirtualDisk
from .lsm_tree import LSMTree


@dataclass(frozen=True)
class SessionMeasurement:
    """Measured behaviour of one session under one tuning."""

    label: str
    workload: Workload
    num_queries: int
    query_reads: int
    query_writes: int
    flush_writes: int
    compaction_reads: int
    compaction_writes: int
    latency_us_per_query: float

    @property
    def ios_per_query(self) -> float:
        """Average I/Os per query, compactions amortised over the session.

        Mirrors §8.1: logical block accesses of reads, plus bytes flushed and
        compaction traffic redistributed across the session's queries.
        """
        total = (
            self.query_reads
            + self.query_writes
            + self.flush_writes
            + self.compaction_reads
            + self.compaction_writes
        )
        return total / max(1, self.num_queries)

    @property
    def read_ios_per_query(self) -> float:
        """Average read I/Os per query caused directly by queries."""
        return self.query_reads / max(1, self.num_queries)


@dataclass(frozen=True)
class SequenceMeasurement:
    """Measurements of a whole session sequence under one tuning."""

    tuning: LSMTuning
    sessions: tuple[SessionMeasurement, ...]

    @property
    def average_ios_per_query(self) -> float:
        """I/Os per query averaged over all sessions of the sequence."""
        return float(np.mean([s.ios_per_query for s in self.sessions]))

    @property
    def average_latency_us(self) -> float:
        """Simulated latency per query averaged over all sessions."""
        return float(np.mean([s.latency_us_per_query for s in self.sessions]))

    def session_series(self) -> list[dict[str, float | str]]:
        """Per-session rows suitable for tabular reporting."""
        return [
            {
                "session": s.label,
                "workload": s.workload.describe(),
                "ios_per_query": s.ios_per_query,
                "latency_us_per_query": s.latency_us_per_query,
            }
            for s in self.sessions
        ]


@dataclass
class ExecutorConfig:
    """Knobs of the system-measurement harness."""

    #: Number of concrete queries executed per workload of a session.
    queries_per_workload: int = 2_000
    #: Number of keys touched by one short range query.
    range_scan_keys: int = 16
    #: Simulated page read latency in microseconds.
    read_latency_us: float = 100.0
    #: Simulated page write latency in microseconds.
    write_latency_us: float = 100.0
    #: Seed controlling trace generation.
    seed: int = 97


class WorkloadExecutor:
    """Runs session sequences against freshly built LSM-tree instances."""

    def __init__(
        self, system: SystemConfig, config: ExecutorConfig | None = None
    ) -> None:
        self.system = system
        self.config = config if config is not None else ExecutorConfig()
        self.key_space = KeySpace.build(system.num_entries, seed=self.config.seed)

    # ------------------------------------------------------------------
    # Database construction
    # ------------------------------------------------------------------
    def build_tree(self, tuning: LSMTuning) -> LSMTree:
        """Instantiate and bulk-load a tree for one tuning.

        Every tuning gets the exact same initial key set, mirroring the
        paper's identical bulk-loading across database instances.
        """
        disk = VirtualDisk(
            read_latency_us=self.config.read_latency_us,
            write_latency_us=self.config.write_latency_us,
        )
        tree = LSMTree(tuning=tuning, system=self.system, disk=disk)
        tree.bulk_load(self.key_space.existing)
        tree.disk.reset()
        return tree

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _execute_operations(
        self, tree: LSMTree, operations: list[Operation]
    ) -> None:
        for op in operations:
            if op.kind is OperationType.PUT:
                tree.put(op.key)
            elif op.kind is OperationType.RANGE:
                tree.range_query(op.key, op.key + op.scan_length)
            else:
                tree.get(op.key)

    def run_session(
        self, tree: LSMTree, session: Session, trace: TraceGenerator
    ) -> SessionMeasurement:
        """Execute one session on an existing tree and measure its I/O."""
        before = tree.disk.snapshot()
        num_queries = 0
        for workload in session.workloads:
            operations = trace.operations(workload, self.config.queries_per_workload)
            num_queries += len(operations)
            self._execute_operations(tree, operations)
        delta = tree.disk.counters.delta(before)
        latency = tree.disk.latency_us(delta) / max(1, num_queries)
        return SessionMeasurement(
            label=session.label,
            workload=session.average,
            num_queries=num_queries,
            query_reads=delta.query_reads,
            query_writes=delta.query_writes,
            flush_writes=delta.flush_writes,
            compaction_reads=delta.compaction_reads,
            compaction_writes=delta.compaction_writes,
            latency_us_per_query=latency,
        )

    def run_sequence(
        self, tuning: LSMTuning, sequence: SessionSequence
    ) -> SequenceMeasurement:
        """Bulk-load a fresh tree for ``tuning`` and execute a full sequence."""
        tree = self.build_tree(tuning)
        trace = TraceGenerator(
            key_space=self.key_space,
            range_scan_keys=self.config.range_scan_keys,
            seed=self.config.seed,
        )
        measurements = tuple(
            self.run_session(tree, session, trace) for session in sequence
        )
        return SequenceMeasurement(tuning=tree.tuning, sessions=measurements)

    def compare(
        self,
        tunings: dict[str, LSMTuning],
        sequence: SessionSequence,
    ) -> dict[str, SequenceMeasurement]:
        """Run the same sequence under several tunings (nominal vs robust)."""
        return {
            name: self.run_sequence(tuning, sequence)
            for name, tuning in tunings.items()
        }
