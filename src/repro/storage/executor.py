"""Execute workload sessions against the simulated LSM tree.

This is the system-based measurement harness (§8.1–8.2): it bulk-loads a
database instance per tuning, replays session sequences of concrete queries,
and reports the same quantities the paper reads out of RocksDB's statistics
module — average I/Os per query (with compaction traffic amortised over the
writes of the session) and a simulated per-query latency.
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import tempfile
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..lsm.policy import CLASSIC_POLICIES, Policy
from ..lsm.system import SystemConfig
from ..lsm.tuning import LSMTuning
from ..workloads.sessions import Session, SessionSequence
from ..workloads.traces import KeySpace, Operation, TraceGenerator
from ..workloads.workload import Workload
from .disk import VirtualDisk
from .lsm_tree import LSMTree, execute_operations_batched


@dataclass(frozen=True)
class SessionMeasurement:
    """Measured behaviour of one session under one tuning."""

    label: str
    workload: Workload
    num_queries: int
    query_reads: int
    query_writes: int
    flush_writes: int
    compaction_reads: int
    compaction_writes: int
    latency_us_per_query: float

    @property
    def ios_per_query(self) -> float:
        """Average I/Os per query, compactions amortised over the session.

        Mirrors §8.1: logical block accesses of reads, plus bytes flushed and
        compaction traffic redistributed across the session's queries.  A
        session that executed no queries reports 0.0 — there is nothing to
        amortise over, and dividing by a phantom query would attribute the
        session's background traffic to an operation that never ran.
        """
        if self.num_queries == 0:
            return 0.0
        total = (
            self.query_reads
            + self.query_writes
            + self.flush_writes
            + self.compaction_reads
            + self.compaction_writes
        )
        return total / self.num_queries

    @property
    def read_ios_per_query(self) -> float:
        """Average read I/Os per query caused directly by queries.

        0.0 for a session that executed no queries (see :meth:`ios_per_query`).
        """
        if self.num_queries == 0:
            return 0.0
        return self.query_reads / self.num_queries


@dataclass(frozen=True)
class SequenceMeasurement:
    """Measurements of a whole session sequence under one tuning."""

    tuning: LSMTuning
    sessions: tuple[SessionMeasurement, ...]

    @property
    def average_ios_per_query(self) -> float:
        """I/Os per query averaged over the sequence's non-empty sessions.

        Sessions are weighted equally (the paper averages per-session costs,
        not per-query costs, so a light session counts as much as a heavy
        one); sessions that executed no queries are excluded — they measured
        nothing, and averaging their 0.0 in would understate the cost.
        """
        per_session = [s.ios_per_query for s in self.sessions if s.num_queries > 0]
        if not per_session:
            return 0.0
        return float(np.mean(per_session))

    @property
    def average_latency_us(self) -> float:
        """Simulated latency per query averaged over non-empty sessions."""
        per_session = [
            s.latency_us_per_query for s in self.sessions if s.num_queries > 0
        ]
        if not per_session:
            return 0.0
        return float(np.mean(per_session))

    def session_series(self) -> list[dict[str, float | str]]:
        """Per-session rows suitable for tabular reporting."""
        return [
            {
                "session": s.label,
                "workload": s.workload.describe(),
                "ios_per_query": s.ios_per_query,
                "latency_us_per_query": s.latency_us_per_query,
            }
            for s in self.sessions
        ]


@dataclass(frozen=True)
class AdaptiveSequenceMeasurement(SequenceMeasurement):
    """A sequence measurement taken with online adaptive re-tuning enabled.

    The inherited per-session measurements include every page the adaptive
    controller's migrations moved (charged as compaction traffic on the
    shared virtual disk), so ``ios_per_query`` honestly prices adaptivity.
    ``events`` records each drift firing
    (:class:`~repro.online.controller.RetuningEvent`), whether or not it led
    to a migration.
    """

    final_tuning: LSMTuning
    events: tuple

    @property
    def initial_tuning(self) -> LSMTuning:
        """The tuning the sequence started under (alias of ``tuning``)."""
        return self.tuning

    @property
    def num_migrations(self) -> int:
        """Number of migrations the controller applied during the sequence."""
        return sum(1 for event in self.events if event.migrated)

    @property
    def migration_pages(self) -> int:
        """Total pages read + written by migrations during the sequence."""
        return sum(event.migration_pages for event in self.events)


@dataclass
class ExecutorConfig:
    """Knobs of the system-measurement harness."""

    #: Number of concrete queries executed per workload of a session.
    queries_per_workload: int = 2_000
    #: Number of keys touched by one short range query.
    range_scan_keys: int = 16
    #: Number of keys touched by one long range query (issued for the
    #: ``long_range_fraction`` share of a workload's range lookups).
    long_scan_keys: int = 512
    #: Fraction of the writes that update an existing key (creating obsolete
    #: versions the next compaction must consolidate) instead of inserting a
    #: fresh one.
    update_fraction: float = 0.0
    #: Zipf exponent concentrating those updates on a hot key subset (0 =
    #: uniform over the resident keys).
    update_skew: float = 0.0
    #: Simulated page read latency in microseconds.
    read_latency_us: float = 100.0
    #: Simulated page write latency in microseconds.
    write_latency_us: float = 100.0
    #: Seed controlling trace generation.
    seed: int = 97
    #: Whether trace replay routes write-free GET spans through the batched
    #: ``get_many`` read path (bit-identical I/O accounting; disable to fall
    #: back to the per-operation scalar loop, e.g. for a parity check).
    batch_execution: bool = True
    #: Upper bound on the keys of one batched GET span.
    max_batch_ops: int = 4_096
    #: Storage backend the trees run on: ``"simulated"`` keeps runs in memory
    #: (the default virtual-disk engine), ``"persistent"`` builds
    #: :class:`~repro.storage.persistent.PersistentLSMTree` instances on real
    #: SSTable files.  Both charge identical virtual-disk counters; the
    #: persistent backend additionally pays real file I/O, so its wall-clock
    #: time is meaningful.
    backend: str = "simulated"
    #: Parent directory for the persistent backend's per-tree data
    #: directories.  ``None`` uses the system temp dir and removes each
    #: tree's files when it is disposed; a given directory keeps them on
    #: disk for inspection.
    data_dir: str | None = None
    #: Whether the persistent backend's write-ahead log ``fsync``s every
    #: append (durability against OS crashes, at a steep wall-clock cost).
    sync_writes: bool = False
    #: Number of hash-partitioned shards the serving layer
    #: (:class:`~repro.serving.ShardedExecutor`) spreads the key space over.
    #: The classic single-tree :class:`WorkloadExecutor` ignores it; 1 is the
    #: unsharded deployment either way.
    num_shards: int = 1
    #: Default admission policy of incremental migration steps in adaptive
    #: runs: ``"fixed"`` paces one step every ``migration_step_ops``
    #: operations, ``"queue-depth"`` defers steps while the serving backlog
    #: is deep and drains them during idle gaps (see
    #: :mod:`repro.online.admission`).  An explicit ``OnlineConfig`` passed
    #: to the adaptive entry points overrides this.
    admission: str = "fixed"

    def __post_init__(self) -> None:
        if self.max_batch_ops <= 0:
            raise ValueError("max_batch_ops must be positive")
        if self.backend not in ("simulated", "persistent"):
            raise ValueError(
                f"backend must be 'simulated' or 'persistent', got {self.backend!r}"
            )
        if self.num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        # Imported lazily: the online package builds on storage, so a
        # module-level import would be circular.
        from ..online.admission import ADMISSION_MODES

        if self.admission not in ADMISSION_MODES:
            raise ValueError(
                f"admission must be one of {ADMISSION_MODES}, got {self.admission!r}"
            )


class WorkloadExecutor:
    """Runs session sequences against freshly built LSM-tree instances."""

    def __init__(
        self, system: SystemConfig, config: ExecutorConfig | None = None
    ) -> None:
        self.system = system
        self.config = config if config is not None else ExecutorConfig()
        self.key_space = KeySpace.build(system.num_entries, seed=self.config.seed)

    # ------------------------------------------------------------------
    # Database construction
    # ------------------------------------------------------------------
    def build_tree(
        self, tuning: LSMTuning, keys: np.ndarray | None = None
    ) -> LSMTree:
        """Instantiate and bulk-load a tree for one tuning.

        Every tuning gets the exact same initial key set, mirroring the
        paper's identical bulk-loading across database instances; ``keys``
        substitutes a subset (the serving layer loads each shard with its
        hash partition of the key space).  The configured backend decides the
        substrate: the simulated tree lives in memory, the persistent one
        materialises its runs as SSTable files in a fresh per-tree directory.
        Dispose of the tree through :meth:`dispose_tree` so backend resources
        are released either way.  A failure while constructing or loading a
        persistent tree removes its half-built directory before re-raising —
        a crashed build must not leak ``tree-*`` dirs into the temp dir (or a
        shared user ``data_dir``).
        """
        disk = VirtualDisk(
            read_latency_us=self.config.read_latency_us,
            write_latency_us=self.config.write_latency_us,
        )
        if keys is None:
            keys = self.key_space.existing
        if self.config.backend == "persistent":
            # Imported lazily: the simulated path stays importable even if
            # the persistent package grows platform-specific dependencies.
            from .persistent import PersistentLSMTree

            if self.config.data_dir is not None:
                os.makedirs(self.config.data_dir, exist_ok=True)
            data_dir = tempfile.mkdtemp(prefix="tree-", dir=self.config.data_dir)
            try:
                tree = PersistentLSMTree(
                    tuning=tuning,
                    system=self.system,
                    data_dir=data_dir,
                    disk=disk,
                    sync_writes=self.config.sync_writes,
                )
                tree.bulk_load(keys)
            except BaseException:
                shutil.rmtree(data_dir, ignore_errors=True)
                raise
        else:
            tree = LSMTree(tuning=tuning, system=self.system, disk=disk)
            tree.bulk_load(keys)
        tree.disk.reset()
        return tree

    def dispose_tree(self, tree: LSMTree) -> None:
        """Release a tree built by :meth:`build_tree`.

        Persistent trees built into the system temp dir (no configured
        ``data_dir``) also delete their files; trees under a user-chosen
        ``data_dir`` are closed but left on disk for inspection.
        """
        if self.config.backend == "persistent" and self.config.data_dir is None:
            destroy = getattr(tree, "destroy", None)
            if destroy is not None:
                destroy()
                return
        tree.close()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _execute_operations(
        self, tree: LSMTree, operations: list[Operation]
    ) -> None:
        if self.config.batch_execution:
            execute_operations_batched(
                tree, operations, max_batch_ops=self.config.max_batch_ops
            )
        else:
            for op in operations:
                tree.apply(op)

    def _measure_session(
        self,
        disk: VirtualDisk,
        execute: Callable[[list[Operation]], None],
        session: Session,
        trace: TraceGenerator,
    ) -> SessionMeasurement:
        """Generate one session's traces, run them through ``execute``, and
        measure the I/O delta on ``disk``.

        ``execute`` is whatever consumes the operations — a plain tree replay
        or the adaptive controller's loop; everything that hits ``disk``
        between the snapshots (queries, flushes, compactions, migrations) is
        attributed to the session.
        """
        before = disk.snapshot()
        num_queries = 0
        for workload in session.workloads:
            operations = trace.operations(workload, self.config.queries_per_workload)
            num_queries += len(operations)
            execute(operations)
        delta = disk.counters.delta(before)
        latency = disk.latency_us(delta) / num_queries if num_queries else 0.0
        return SessionMeasurement(
            label=session.label,
            workload=session.average,
            num_queries=num_queries,
            query_reads=delta.query_reads,
            query_writes=delta.query_writes,
            flush_writes=delta.flush_writes,
            compaction_reads=delta.compaction_reads,
            compaction_writes=delta.compaction_writes,
            latency_us_per_query=latency,
        )

    def run_session(
        self, tree: LSMTree, session: Session, trace: TraceGenerator
    ) -> SessionMeasurement:
        """Execute one session on an existing tree and measure its I/O."""
        return self._measure_session(
            tree.disk,
            lambda operations: self._execute_operations(tree, operations),
            session,
            trace,
        )

    def trace_generator(self) -> TraceGenerator:
        """A fresh, deterministically seeded trace generator.

        Every measurement path builds its own from the executor's config, so
        sequential, parallel and adaptive runs replay bit-identical traces.
        """
        return TraceGenerator(
            key_space=self.key_space,
            range_scan_keys=self.config.range_scan_keys,
            long_scan_keys=self.config.long_scan_keys,
            update_fraction=self.config.update_fraction,
            update_skew=self.config.update_skew,
            seed=self.config.seed,
        )

    def run_sequence(
        self, tuning: LSMTuning, sequence: SessionSequence
    ) -> SequenceMeasurement:
        """Bulk-load a fresh tree for ``tuning`` and execute a full sequence."""
        tree = self.build_tree(tuning)
        try:
            trace = self.trace_generator()
            measurements = tuple(
                self.run_session(tree, session, trace) for session in sequence
            )
            return SequenceMeasurement(tuning=tree.tuning, sessions=measurements)
        finally:
            self.dispose_tree(tree)

    def compare(
        self,
        tunings: dict[str, LSMTuning],
        sequence: SessionSequence,
        parallel: bool = False,
        processes: int | None = None,
    ) -> dict[str, SequenceMeasurement]:
        """Run the same sequence under several tunings (nominal vs robust).

        The per-tuning simulations are independent, so with ``parallel=True``
        they run on a multiprocessing pool (one worker per tuning, capped at
        ``processes`` or the CPU count).  Each worker rebuilds the executor
        from the same ``(system, config)`` pair, which reproduces the key
        space and traces exactly: the parallel path returns measurements
        identical to the sequential one.
        """
        if not parallel or len(tunings) <= 1:
            return {
                name: self.run_sequence(tuning, sequence)
                for name, tuning in tunings.items()
            }
        names = list(tunings)
        worker_count = min(len(names), processes or os.cpu_count() or 1)
        task = _SequenceTask(system=self.system, config=self.config, sequence=sequence)
        ctx = multiprocessing.get_context()
        with ctx.Pool(processes=worker_count) as pool:
            measurements = pool.map(task, [tunings[name] for name in names])
        return dict(zip(names, measurements))

    # ------------------------------------------------------------------
    # Adaptive execution (online re-tuning)
    # ------------------------------------------------------------------
    def run_sequence_adaptive(
        self,
        initial_tuning: LSMTuning,
        sequence: SessionSequence,
        online=None,
        policies: Sequence[Policy] = CLASSIC_POLICIES,
    ) -> AdaptiveSequenceMeasurement:
        """Execute a sequence with the online adaptive-tuning loop enabled.

        The tree starts under ``initial_tuning`` exactly like
        :meth:`run_sequence`, but operations flow through an
        :class:`~repro.online.controller.OnlineLSMController`: the controller
        watches the stream, re-tunes on drift, and migrates the live tree
        when the predicted gain pays for the move.  Migration I/O lands on
        the same virtual disk the session deltas are read from, so the
        returned measurements charge adaptivity at full price.

        ``online`` is an :class:`~repro.online.controller.OnlineConfig`
        (defaults apply, with the executor's ``admission`` policy, when
        omitted); ``policies`` bounds what re-tunings may deploy.
        """
        # Imported here so the storage layer stays loadable without the
        # online subsystem (which itself builds on storage).
        from ..online.controller import OnlineConfig, OnlineLSMController

        tree = self.build_tree(initial_tuning)
        controller = None
        try:
            controller = OnlineLSMController(
                tree=tree,
                expected=sequence.expected,
                config=(
                    online
                    if online is not None
                    else OnlineConfig(admission=self.config.admission)
                ),
                policies=policies,
            )
            if self.config.batch_execution:
                def execute(operations):
                    controller.execute_batched(
                        operations, max_batch_ops=self.config.max_batch_ops
                    )
            else:
                execute = controller.execute
            trace = self.trace_generator()
            measurements = []
            for session in sequence:
                measurements.append(
                    self._measure_session(controller.disk, execute, session, trace)
                )
                # The gap between sessions is a serving lull: under
                # queue-depth admission the controller drains deferred
                # migration steps here, outside any session's measurement
                # window (a no-op under the default fixed cadence).
                controller.note_idle()
            # A migration plan still in flight at stream end is drained now,
            # as an operator would during quiescence: the trailing steps land
            # on the shared disk (after the last session's window —
            # per-session metrics keep their in-stream shape) so the events'
            # page totals are fully charged, ``final_tuning`` reports the
            # tuning actually reached, and the target's tombstone hold is
            # released.
            controller.finish_migration()
            return AdaptiveSequenceMeasurement(
                tuning=tree.tuning,
                sessions=tuple(measurements),
                final_tuning=controller.tuning,
                events=tuple(controller.events),
            )
        finally:
            # Migrations may have swapped the live tree; dispose the one the
            # controller currently owns — and, when an exception left an
            # incremental plan in flight, the plan's half-built target tree
            # as well (otherwise its backend directory leaks).
            if controller is not None:
                plan = controller.migration_plan
                if plan is not None:
                    self.dispose_tree(plan.target)
                self.dispose_tree(controller.tree)
            else:
                self.dispose_tree(tree)

    def compare_adaptive(
        self,
        tunings: dict[str, LSMTuning],
        sequence: SessionSequence,
        adaptive_from: str = "nominal",
        online=None,
        policies: Sequence[Policy] = CLASSIC_POLICIES,
        parallel: bool = False,
    ) -> dict[str, SequenceMeasurement]:
        """Static tunings vs the adaptive executor over one sequence.

        Runs :meth:`compare` for the static ``tunings`` (optionally in
        parallel) and adds an ``"adaptive"`` entry: the same sequence
        replayed with re-tuning enabled, starting from
        ``tunings[adaptive_from]``.
        """
        if adaptive_from not in tunings:
            raise KeyError(f"adaptive_from={adaptive_from!r} is not among the tunings")
        if "adaptive" in tunings:
            raise ValueError(
                '"adaptive" is the reserved name of the adaptive run; '
                "rename that static tuning"
            )
        results: dict[str, SequenceMeasurement] = dict(
            self.compare(tunings, sequence, parallel=parallel)
        )
        results["adaptive"] = self.run_sequence_adaptive(
            tunings[adaptive_from], sequence, online=online, policies=policies
        )
        return results


@dataclass(frozen=True)
class _SequenceTask:
    """Picklable worker of the parallel :meth:`WorkloadExecutor.compare` path.

    Rebuilding the executor inside the worker (instead of shipping the parent
    instance) keeps the task lightweight and deterministic: the key space and
    trace generator are reconstructed from the same seeds, so workers produce
    bit-identical measurements to the sequential path.

    Persistent-backend hygiene across processes: each worker's tree gets its
    own ``mkdtemp``-fresh ``tree-*`` directory (collision-free even when a
    user-chosen ``data_dir`` is shared by every worker), ``run_sequence``
    disposes it in ``try/finally``, and ``build_tree`` removes a half-built
    directory if construction or bulk-loading raises — a failing worker
    reports its exception without orphaning directories.
    """

    system: SystemConfig
    config: ExecutorConfig
    sequence: SessionSequence

    def __call__(self, tuning: LSMTuning) -> SequenceMeasurement:
        executor = WorkloadExecutor(self.system, self.config)
        return executor.run_sequence(tuning, self.sequence)
