"""Virtual block device with I/O accounting.

The simulator's analogue of enabling direct I/O and reading RocksDB's
statistics module (§8.1): every page read and page write performed by the
tree is recorded here, together with whether it was caused by a query or by a
compaction, so experiments can report *I/Os per query* and amortise
compaction work over writes exactly as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class IOCounters:
    """Raw page-level counters."""

    query_reads: int = 0
    query_writes: int = 0
    compaction_reads: int = 0
    compaction_writes: int = 0
    flush_writes: int = 0

    @property
    def total_reads(self) -> int:
        """All page reads (query + compaction)."""
        return self.query_reads + self.compaction_reads

    @property
    def total_writes(self) -> int:
        """All page writes (query + flush + compaction)."""
        return self.query_writes + self.flush_writes + self.compaction_writes

    @property
    def total(self) -> int:
        """All page I/Os."""
        return self.total_reads + self.total_writes

    def snapshot(self) -> "IOCounters":
        """Copy of the current counters (for before/after deltas)."""
        return IOCounters(
            query_reads=self.query_reads,
            query_writes=self.query_writes,
            compaction_reads=self.compaction_reads,
            compaction_writes=self.compaction_writes,
            flush_writes=self.flush_writes,
        )

    def delta(self, earlier: "IOCounters") -> "IOCounters":
        """Counters accumulated since an earlier snapshot."""
        return IOCounters(
            query_reads=self.query_reads - earlier.query_reads,
            query_writes=self.query_writes - earlier.query_writes,
            compaction_reads=self.compaction_reads - earlier.compaction_reads,
            compaction_writes=self.compaction_writes - earlier.compaction_writes,
            flush_writes=self.flush_writes - earlier.flush_writes,
        )


@dataclass
class VirtualDisk:
    """Counts page I/Os and converts them into simulated latency.

    Parameters
    ----------
    read_latency_us:
        Simulated cost of reading one page, in microseconds.
    write_latency_us:
        Simulated cost of writing one page, in microseconds.  The ratio of the
        two plays the role of the paper's read/write asymmetry ``A_rw``.
    """

    read_latency_us: float = 100.0
    write_latency_us: float = 100.0
    counters: IOCounters = field(default_factory=IOCounters)

    def __post_init__(self) -> None:
        if self.read_latency_us < 0 or self.write_latency_us < 0:
            raise ValueError("latencies must be non-negative")

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def read_pages(self, count: int, compaction: bool = False) -> None:
        """Record ``count`` page reads."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if compaction:
            self.counters.compaction_reads += count
        else:
            self.counters.query_reads += count

    def write_pages(
        self, count: int, compaction: bool = False, flush: bool = False
    ) -> None:
        """Record ``count`` page writes (query, flush or compaction)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if compaction:
            self.counters.compaction_writes += count
        elif flush:
            self.counters.flush_writes += count
        else:
            self.counters.query_writes += count

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def snapshot(self) -> IOCounters:
        """Snapshot of the counters for later delta computation."""
        return self.counters.snapshot()

    def latency_us(self, counters: IOCounters | None = None) -> float:
        """Simulated latency implied by a set of counters (default: totals)."""
        c = counters if counters is not None else self.counters
        return (
            c.total_reads * self.read_latency_us
            + c.total_writes * self.write_latency_us
        )

    def reset(self) -> None:
        """Zero all counters."""
        self.counters = IOCounters()
