"""Pure-Python LSM-tree storage engine with I/O accounting (RocksDB substitute)."""

from .bloom_filter import BloomFilter
from .disk import IOCounters, VirtualDisk
from .executor import (
    AdaptiveSequenceMeasurement,
    ExecutorConfig,
    SequenceMeasurement,
    SessionMeasurement,
    WorkloadExecutor,
)
from .lsm_tree import LSMTree, TreeStats
from .memtable import Memtable
from .persistent import PersistentLSMTree, SSTable, WriteAheadLog
from .run import PageSpan, SortedRun

__all__ = [
    "AdaptiveSequenceMeasurement",
    "BloomFilter",
    "ExecutorConfig",
    "IOCounters",
    "LSMTree",
    "Memtable",
    "PageSpan",
    "PersistentLSMTree",
    "SSTable",
    "SequenceMeasurement",
    "SessionMeasurement",
    "SortedRun",
    "TreeStats",
    "VirtualDisk",
    "WorkloadExecutor",
    "WriteAheadLog",
]
