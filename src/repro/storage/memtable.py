"""The in-memory write buffer (Level 0) of the simulated LSM tree."""

from __future__ import annotations

import numpy as np


class Memtable:
    """Mutable, in-memory buffer that absorbs writes until it fills up.

    Keys are 64-bit integers; the simulator does not materialise values (all
    entries have the configured fixed size), so the memtable only tracks keys
    and tombstone flags.  Lookups in the memtable cost no I/O, matching a real
    engine where Level 0 lives in RAM.
    """

    def __init__(self, capacity_entries: int) -> None:
        if capacity_entries <= 0:
            raise ValueError("capacity_entries must be positive")
        self.capacity_entries = capacity_entries
        self._entries: dict[int, bool] = {}

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def put(self, key: int) -> None:
        """Insert or update ``key``."""
        self._entries[int(key)] = False

    def delete(self, key: int) -> None:
        """Record a tombstone for ``key``."""
        self._entries[int(key)] = True

    def clear(self) -> None:
        """Empty the buffer (after a flush)."""
        self._entries.clear()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def get(self, key: int) -> tuple[bool, bool]:
        """Return ``(present, is_tombstone)`` for ``key``."""
        key = int(key)
        if key in self._entries:
            return True, self._entries[key]
        return False, False

    def lookup_many(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`get`: ``(present, is_tombstone)`` masks for ``keys``.

        A plain dict probe per key: the buffer is a hash map, so a Python
        loop beats sort-based vectorisation at the batch sizes the executor
        produces, and memtable lookups charge no I/O either way.
        """
        found = np.zeros(keys.size, dtype=bool)
        tombstone = np.zeros(keys.size, dtype=bool)
        entries = self._entries
        if entries:
            probe = entries.get
            for index, key in enumerate(keys.tolist()):
                state = probe(key)
                if state is not None:
                    found[index] = True
                    if state:
                        tombstone[index] = True
        return found, tombstone

    def scan(self, start_key: int, end_key: int) -> np.ndarray:
        """Live keys in ``[start_key, end_key]`` currently buffered."""
        keys, tombstones = self.scan_items(start_key, end_key)
        return keys[~tombstones]

    def scan_items(self, start_key: int, end_key: int) -> tuple[np.ndarray, np.ndarray]:
        """Buffered versions in ``[start_key, end_key]``: ``(keys, tombstones)``.

        Tombstones are returned (flagged) rather than dropped so a buffered
        deletion can shadow older live versions residing in disk runs.
        """
        items = sorted(
            (key, tombstone)
            for key, tombstone in self._entries.items()
            if start_key <= key <= end_key
        )
        keys = np.array([key for key, _ in items], dtype=np.int64)
        tombstones = np.array([tombstone for _, tombstone in items], dtype=bool)
        return keys, tombstones

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        """Whether the buffer has reached its capacity and must be flushed."""
        return len(self._entries) >= self.capacity_entries

    @property
    def is_empty(self) -> bool:
        """Whether the buffer currently holds no entries."""
        return not self._entries

    def sorted_items(self) -> tuple[np.ndarray, np.ndarray]:
        """Contents sorted by key: ``(keys, tombstone_mask)``."""
        if not self._entries:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=bool)
        keys = np.fromiter(self._entries.keys(), dtype=np.int64, count=len(self._entries))
        order = np.argsort(keys)
        keys = keys[order]
        tombstones = np.fromiter(
            self._entries.values(), dtype=bool, count=len(self._entries)
        )[order]
        return keys, tombstones
