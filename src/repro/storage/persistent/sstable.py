"""On-disk SSTables with the exact read interface of an in-memory sorted run.

An :class:`SSTable` is the persistent backend's replacement for
:class:`~repro.storage.run.SortedRun`: the entries live in a data file
(9-byte packed records: little-endian ``int64`` key + tombstone byte, laid
out in pages of ``entries_per_page`` records), and only the acceleration
structures a real LSM engine also pins in memory — the sparse index (fence
pointers plus per-page max keys) and the run's Bloom filter — are held
resident, persisted next to the data file as ``.npz`` sidecars.

Reads answer from the file: a point lookup that survives the Bloom filter
and the fence bounds ``pread``s exactly one page; a range scan ``pread``s
the contiguous page span.  The *accounting* (pages charged per probe, span
arithmetic including the one-page seek of an empty interval) mirrors
``SortedRun`` operation for operation, so a persistent tree reports disk
counters byte-identical to the simulated one while its wall-clock time
reflects real I/O.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from ..bloom_filter import BloomFilter
from ..run import PageSpan

#: One on-disk record: little-endian int64 key + tombstone flag byte.
RECORD_DTYPE = np.dtype([("key", "<i8"), ("tombstone", "u1")])


def index_sidecar_path(data_path: Path) -> Path:
    """Location of an SSTable's sparse-index sidecar."""
    return data_path.with_suffix(".index.npz")


def filter_sidecar_path(data_path: Path) -> Path:
    """Location of an SSTable's Bloom-filter sidecar."""
    return data_path.with_suffix(".filter.npz")


class SSTable:
    """One immutable on-disk sorted run.

    Not constructed directly: use :meth:`create` to materialise sorted
    entries as a new table, or :meth:`open` to attach to files written by a
    previous process (recovery).
    """

    def __init__(
        self,
        path: Path,
        entries_per_page: int,
        fences: np.ndarray,
        page_max: np.ndarray,
        num_entries: int,
        bloom: BloomFilter,
    ) -> None:
        self.path = Path(path)
        self.entries_per_page = int(entries_per_page)
        self._fences = fences
        self._page_max = page_max
        self._num_entries = int(num_entries)
        self._filter = bloom
        self._page_bytes = self.entries_per_page * RECORD_DTYPE.itemsize
        if num_entries:
            self._min_key = int(fences[0])
            self._max_key = int(page_max[-1])
        else:
            self._min_key = self._max_key = 0
        self._fd: int | None = os.open(self.path, os.O_RDONLY)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        path: str | os.PathLike[str],
        keys: np.ndarray,
        tombstones: np.ndarray,
        entries_per_page: int,
        bits_per_entry: float = 0.0,
        seed: int = 0,
    ) -> "SSTable":
        """Write sorted unique keys (+ tombstone mask) as a new table.

        The Bloom filter is built with the same parameters and insertion
        order ``SortedRun`` uses, so its probe answers — and therefore the
        false positives the disk counters record — are bit-identical to the
        simulated run's.
        """
        path = Path(path)
        keys = np.asarray(keys, dtype=np.int64)
        if keys.ndim != 1:
            raise ValueError("keys must be a one-dimensional array")
        if keys.size > 1 and np.any(np.diff(keys) <= 0):
            raise ValueError("keys must be strictly increasing")
        if entries_per_page <= 0:
            raise ValueError("entries_per_page must be positive")
        tombstones = np.asarray(tombstones, dtype=bool)
        if tombstones.shape != keys.shape:
            raise ValueError("tombstones mask must match keys")

        records = np.empty(keys.size, dtype=RECORD_DTYPE)
        records["key"] = keys
        records["tombstone"] = tombstones
        records.tofile(path)

        if keys.size:
            fences = keys[::entries_per_page].copy()
            # Largest key of each page: the sparse index needs both page
            # bounds to reproduce SortedRun's span arithmetic exactly.
            last = np.minimum(
                np.arange(fences.size, dtype=np.int64) * entries_per_page
                + (entries_per_page - 1),
                keys.size - 1,
            )
            page_max = keys[last].copy()
        else:
            fences = np.empty(0, dtype=np.int64)
            page_max = np.empty(0, dtype=np.int64)

        bloom = BloomFilter(
            expected_entries=int(keys.size), bits_per_entry=bits_per_entry, seed=seed
        )
        if keys.size:
            bloom.add_many(keys.astype(np.uint64))

        np.savez(
            index_sidecar_path(path),
            fences=fences,
            page_max=page_max,
            meta=np.array([keys.size, entries_per_page], dtype=np.int64),
        )
        np.savez(filter_sidecar_path(path), **bloom.to_state())
        return cls(
            path=path,
            entries_per_page=entries_per_page,
            fences=fences,
            page_max=page_max,
            num_entries=int(keys.size),
            bloom=bloom,
        )

    @classmethod
    def open(cls, path: str | os.PathLike[str]) -> "SSTable":
        """Attach to a table written earlier, rebuilding its resident state
        (sparse index + Bloom filter) from the sidecars."""
        path = Path(path)
        with np.load(index_sidecar_path(path)) as index:
            fences = index["fences"]
            page_max = index["page_max"]
            num_entries, entries_per_page = (int(v) for v in index["meta"])
        with np.load(filter_sidecar_path(path)) as state:
            bloom = BloomFilter.from_state(dict(state))
        expected_bytes = num_entries * RECORD_DTYPE.itemsize
        if path.stat().st_size != expected_bytes:
            raise ValueError(
                f"data file {path} holds {path.stat().st_size} bytes but the "
                f"index sidecar says {expected_bytes}"
            )
        return cls(
            path=path,
            entries_per_page=entries_per_page,
            fences=fences,
            page_max=page_max,
            num_entries=num_entries,
            bloom=bloom,
        )

    # ------------------------------------------------------------------
    # File access
    # ------------------------------------------------------------------
    def _read_pages(self, first_page: int, last_page: int) -> tuple[np.ndarray, np.ndarray]:
        """``pread`` the contiguous page range and unpack it to arrays."""
        if self._fd is None:
            raise ValueError(f"SSTable {self.path} is closed")
        offset = first_page * self._page_bytes
        length = (last_page - first_page + 1) * self._page_bytes
        data = os.pread(self._fd, length, offset)
        records = np.frombuffer(data, dtype=RECORD_DTYPE)
        return (
            records["key"].astype(np.int64, copy=False),
            records["tombstone"].astype(bool),
        )

    def entries(self) -> tuple[np.ndarray, np.ndarray]:
        """The table's full contents as ``(keys, tombstones)``, charging no I/O.

        Reads the whole data file; callers that model the cost (compaction,
        migration checkpoints) charge the pages separately — exactly the
        contract of ``SortedRun.entries``.
        """
        if self._num_entries == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=bool)
        return self._read_pages(0, self.num_pages - 1)

    # ------------------------------------------------------------------
    # Size / structure
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._num_entries

    @property
    def num_entries(self) -> int:
        """Number of entries stored in the table."""
        return self._num_entries

    @property
    def num_pages(self) -> int:
        """Number of disk pages the table occupies."""
        if self._num_entries == 0:
            return 0
        return -(-self._num_entries // self.entries_per_page)

    @property
    def min_key(self) -> int:
        """Smallest key in the table (undefined for an empty table)."""
        if self._num_entries == 0:
            raise ValueError("empty run has no minimum key")
        return self._min_key

    @property
    def max_key(self) -> int:
        """Largest key in the table (undefined for an empty table)."""
        if self._num_entries == 0:
            raise ValueError("empty run has no maximum key")
        return self._max_key

    @property
    def keys(self) -> np.ndarray:
        """The table's keys, read from disk (read-only, no I/O charged)."""
        keys, _ = self.entries()
        keys.flags.writeable = False
        return keys

    @property
    def tombstones(self) -> np.ndarray:
        """Tombstone mask, read from disk (read-only, no I/O charged)."""
        _, tombstones = self.entries()
        tombstones.flags.writeable = False
        return tombstones

    @property
    def bloom_filter(self) -> BloomFilter:
        """The table's resident Bloom filter."""
        return self._filter

    @property
    def filter_size_bits(self) -> int:
        """Memory used by the table's Bloom filter, in bits."""
        return self._filter.size_bits

    @property
    def bits_per_entry(self) -> float:
        """Bloom budget the table was built with."""
        return self._filter.bits_per_entry

    # ------------------------------------------------------------------
    # Point lookups
    # ------------------------------------------------------------------
    def may_contain(self, key: int) -> bool:
        """Filter + fence-bound pre-check, costing no I/O."""
        if self._num_entries == 0:
            return False
        if key < self._min_key or key > self._max_key:
            return False
        return self._filter.might_contain(int(key))

    def page_of(self, key: int) -> int:
        """Index of the page that would hold ``key`` (via fence pointers)."""
        if self._num_entries == 0:
            raise ValueError("empty run has no pages")
        page = int(np.searchsorted(self._fences, key, side="right")) - 1
        return max(0, page)

    def lookup(self, key: int) -> tuple[bool, bool, int]:
        """Probe the table for ``key``: ``(found, is_tombstone, pages_read)``.

        A probe the Bloom filter and fences fail to rule out reads its single
        candidate page from the data file — the same one page ``SortedRun``
        charges.
        """
        if not self.may_contain(key):
            return False, False, 0
        page = self.page_of(key)
        page_keys, page_tombstones = self._read_pages(page, page)
        index = int(np.searchsorted(page_keys, key))
        if index < page_keys.size and page_keys[index] == key:
            return True, bool(page_tombstones[index]), 1
        return False, False, 1

    def lookup_many(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray, int]:
        """Probe the table for a batch of keys: ``(found, tombstone, pages)``.

        Accounting matches ``SortedRun.lookup_many``: the charge is one page
        per surviving probe, not per unique page, so the counters equal the
        scalar path's.  The *physical* reads are deduplicated — each distinct
        candidate page is ``pread`` once for the whole batch.
        """
        keys = np.asarray(keys, dtype=np.int64)
        found = np.zeros(keys.size, dtype=bool)
        tombstone = np.zeros(keys.size, dtype=bool)
        if keys.size == 0 or self._num_entries == 0:
            return found, tombstone, 0
        in_bounds = np.flatnonzero((keys >= self._min_key) & (keys <= self._max_key))
        if in_bounds.size == 0:
            return found, tombstone, 0
        bounded = keys[in_bounds]
        probe_idx = in_bounds[self._filter.might_contain_many(bounded.astype(np.uint64))]
        pages_read = int(probe_idx.size)
        if pages_read:
            probed = keys[probe_idx]
            pages = np.maximum(
                np.searchsorted(self._fences, probed, side="right") - 1, 0
            )
            for page in np.unique(pages):
                page_keys, page_tombstones = self._read_pages(int(page), int(page))
                on_page = np.flatnonzero(pages == page)
                indices = np.searchsorted(page_keys, probed[on_page])
                in_range = indices < page_keys.size
                hit = np.zeros(on_page.size, dtype=bool)
                hit[in_range] = page_keys[indices[in_range]] == probed[on_page][in_range]
                hits = probe_idx[on_page[hit]]
                found[hits] = True
                tombstone[hits] = page_tombstones[indices[hit]]
        return found, tombstone, pages_read

    # ------------------------------------------------------------------
    # Range scans
    # ------------------------------------------------------------------
    def range_span(self, start_key: int, end_key: int) -> PageSpan:
        """Pages overlapping ``[start_key, end_key]``, from the sparse index.

        Reproduces ``SortedRun.range_span`` exactly without the full key
        array: the first overlapping page is the first whose max key reaches
        ``start_key``, the last is the last whose fence stays at or below
        ``end_key``; an interval that falls in a gap between keys still
        charges the one seek page holding its predecessor.
        """
        if self._num_entries == 0 or end_key < start_key:
            return PageSpan(0, -1)
        if end_key < self._min_key or start_key > self._max_key:
            return PageSpan(0, -1)
        first = int(np.searchsorted(self._page_max, start_key, side="left"))
        last = int(np.searchsorted(self._fences, end_key, side="right")) - 1
        if last < first:
            # No key inside the interval: the seek still reads the page with
            # the largest key below ``start_key`` (the interval is past that
            # page's max but before the next page's fence).
            page = int(np.searchsorted(self._fences, start_key, side="left")) - 1
            return PageSpan(page, page)
        return PageSpan(first, last)

    def scan(self, start_key: int, end_key: int) -> tuple[np.ndarray, int]:
        """Live keys in ``[start_key, end_key]`` and pages read."""
        keys, tombstones, pages = self.scan_entries(start_key, end_key)
        return keys[~tombstones], pages

    def scan_entries(
        self, start_key: int, end_key: int
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """All versions in ``[start_key, end_key]``: ``(keys, tombstones, pages)``.

        Reads the span's pages from the data file in one ``pread`` and trims
        to the interval; tombstoned entries are returned flagged, as callers
        merging runs need deletions to shadow older versions.
        """
        span = self.range_span(start_key, end_key)
        if span.num_pages == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=bool), 0
        page_keys, page_tombstones = self._read_pages(span.first_page, span.last_page)
        lo = int(np.searchsorted(page_keys, start_key, side="left"))
        hi = int(np.searchsorted(page_keys, end_key, side="right"))
        return page_keys[lo:hi].copy(), page_tombstones[lo:hi].copy(), span.num_pages

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the data-file descriptor (files are left on disk)."""
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def delete_files(self) -> None:
        """Close the table and remove its data file and sidecars."""
        self.close()
        for stale in (
            self.path,
            index_sidecar_path(self.path),
            filter_sidecar_path(self.path),
        ):
            stale.unlink(missing_ok=True)
