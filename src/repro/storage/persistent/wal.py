"""Write-ahead log of the persistent LSM-tree backend.

Every ``put``/``delete`` is appended here *before* it touches the memtable,
so a crash loses nothing that was acknowledged: on reopen the log is
replayed into a fresh memtable.  The log only ever holds the writes since
the last successful flush — the flush that persists those entries as an
SSTable truncates it.

The record format is deliberately minimal (the reproduction's trees store
keys and tombstone flags, never values): 9 bytes per record, a little-endian
``int64`` key followed by one tombstone byte.  A torn trailing record —  the
classic crash-mid-append artefact — is detected by length and dropped during
replay.
"""

from __future__ import annotations

import os
import struct
from pathlib import Path
from typing import Iterable

#: One log record: little-endian int64 key + tombstone flag byte.
_RECORD = struct.Struct("<qB")


class WriteAheadLog:
    """Append-only durability log for memtable writes.

    Parameters
    ----------
    path:
        Location of the log file; created empty if missing.
    sync:
        Whether to ``fsync`` after every append.  Off by default (the
        benchmark measures both regimes); even without it, records are
        flushed to the OS on every append, so only an OS crash — not a
        process crash — can lose them.
    """

    def __init__(self, path: str | os.PathLike[str], sync: bool = False) -> None:
        self.path = Path(path)
        self.sync = sync
        self._file = open(self.path, "ab")
        # A torn trailing record (crash mid-append or mid-group) is dead on
        # arrival — replay drops it — but leaving its bytes in place would
        # misalign every record appended after reopen.  Truncate it away.
        torn = self._file.tell() % _RECORD.size
        if torn:
            self._file.truncate(self._file.tell() - torn)
            self._file.seek(0, os.SEEK_END)
            self._file.flush()
            if self.sync:
                os.fsync(self._file.fileno())

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append(self, key: int, tombstone: bool = False) -> None:
        """Durably record one write before it is applied to the memtable."""
        self._file.write(_RECORD.pack(int(key), int(bool(tombstone))))
        self._file.flush()
        if self.sync:
            os.fsync(self._file.fileno())

    def append_many(self, records: Iterable[tuple[int, bool]]) -> None:
        """Group-commit a batch of writes: one buffer, one flush, one fsync.

        Semantically identical to calling :meth:`append` per record — the
        records land in the log in order, and :meth:`replay` cannot tell the
        difference — but the whole batch is packed into a single buffer and
        pays a single ``flush()`` (plus at most one ``fsync``) instead of one
        per record.  Crash semantics carry over unchanged: the packed buffer
        is a plain concatenation of fixed-size records, so a crash mid-group
        tears at most the last record on a page boundary and replay's
        length-prefix truncation drops exactly the torn tail, keeping every
        complete record that preceded it.
        """
        payload = b"".join(
            _RECORD.pack(int(key), int(bool(tombstone)))
            for key, tombstone in records
        )
        if not payload:
            return
        self._file.write(payload)
        self._file.flush()
        if self.sync:
            os.fsync(self._file.fileno())

    def reset(self) -> None:
        """Truncate the log (after its entries were flushed to an SSTable)."""
        self._file.truncate(0)
        self._file.seek(0)
        self._file.flush()
        if self.sync:
            os.fsync(self._file.fileno())

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def replay(self) -> list[tuple[int, bool]]:
        """All records currently in the log, oldest first.

        A trailing partial record (crash mid-append) is silently dropped —
        the write it belonged to was never acknowledged.
        """
        data = self.path.read_bytes()
        complete = len(data) - len(data) % _RECORD.size
        return [
            (key, bool(tombstone))
            for key, tombstone in _RECORD.iter_unpack(data[:complete])
        ]

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    @property
    def num_records(self) -> int:
        """Number of complete records currently in the log."""
        return self.path.stat().st_size // _RECORD.size

    def close(self) -> None:
        """Release the file handle (log contents are left on disk)."""
        if not self._file.closed:
            self._file.close()
