"""A persistent LSM tree: the simulated engine's structure, on real files.

:class:`PersistentLSMTree` subclasses :class:`~repro.storage.lsm_tree.LSMTree`
and swaps only the storage substrate: runs become on-disk
:class:`~repro.storage.persistent.sstable.SSTable` files, writes are logged
to a :class:`~repro.storage.persistent.wal.WriteAheadLog` before touching the
memtable, and a JSON manifest records the installed runs so the tree survives
process restarts (and crashes — see :meth:`simulate_crash`).

Everything *above* the substrate — flush triggers, per-level run bounds,
compaction cascades, Monkey filter allocation, Bloom seeds, page accounting —
is inherited unchanged, which is the point: for any operation trace the
persistent tree holds the same runs with the same contents and charges the
same virtual-disk counters as the simulated tree, while its wall-clock time
now reflects real file I/O.  The benchmark harness leans on exactly this
pairing to check that the cost model's ranking of tunings matches measured
time.

Crash consistency follows the classic recipe.  A write is acknowledged only
after its WAL append.  A flush first materialises the new SSTables (the
flushed run plus any compaction outputs), then atomically replaces the
manifest, then truncates the WAL, then deletes the files the new manifest no
longer references.  A crash anywhere in that sequence recovers to a
consistent state: before the manifest swap the old manifest plus the intact
WAL reproduce the pre-flush tree (freshly written files are swept as
orphans); after it, the new manifest is authoritative and the WAL records it
obsoletes are redundant re-applications at worst — they were flushed, so
replaying them into the memtable is avoided by the truncation that follows,
and if the crash lands between swap and truncation the replayed entries are
duplicates of what the flushed run already holds, which newest-wins reads
absorb.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from pathlib import Path

import numpy as np

from ...lsm.system import SystemConfig
from ...lsm.tuning import LSMTuning
from ..disk import VirtualDisk
from ..lsm_tree import LSMTree
from ..run import consolidate_versions
from .sstable import SSTable
from .wal import WriteAheadLog

#: Manifest schema version, bumped on incompatible layout changes.
MANIFEST_VERSION = 1


class PersistentLSMTree(LSMTree):
    """LSM tree whose runs are SSTable files under ``data_dir``.

    Parameters
    ----------
    tuning, system, disk, seed:
        As for :class:`~repro.storage.lsm_tree.LSMTree`; the virtual disk
        keeps recording page counts so model-vs-measurement comparisons stay
        byte-aligned with the simulated backend.
    data_dir:
        Directory holding the tree's files (created if missing).  If it
        already contains a manifest, the tree *recovers*: installed runs are
        reopened from their SSTables and un-flushed writes are replayed from
        the write-ahead log.
    sync_writes:
        Whether the WAL ``fsync``s every append (durability against OS
        crashes, at a steep wall-clock cost; the benchmark measures both).
    """

    MANIFEST_NAME = "MANIFEST.json"
    WAL_NAME = "wal.log"

    def __init__(
        self,
        tuning: LSMTuning,
        system: SystemConfig,
        data_dir: str | os.PathLike[str],
        disk: VirtualDisk | None = None,
        seed: int = 1,
        sync_writes: bool = False,
    ) -> None:
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        #: Benchmark knob: when False, arriving runs stack without merging —
        #: the classic "compaction off" regime of engine benchmarks.  Reads
        #: stay correct (newest-wins consolidation is unconditional), only
        #: the structure degrades.  Leave True for backend-parity runs.
        self.compaction_enabled = True
        super().__init__(tuning=tuning, system=system, disk=disk, seed=seed)
        self._manifest_path = self.data_dir / self.MANIFEST_NAME
        self._wal = WriteAheadLog(self.data_dir / self.WAL_NAME, sync=sync_writes)
        if self._manifest_path.exists():
            self._recover()
        else:
            self._sync_manifest()

    # ------------------------------------------------------------------
    # Storage substrate overrides
    # ------------------------------------------------------------------
    def _sst_path(self, run_id: int) -> Path:
        return self.data_dir / f"run-{run_id:08d}.sst"

    def _new_run(self, keys: np.ndarray, tombstones: np.ndarray, level: int) -> SSTable:
        self._run_counter += 1
        return SSTable.create(
            self._sst_path(self._run_counter),
            keys=keys,
            tombstones=tombstones,
            entries_per_page=self.entries_per_page,
            bits_per_entry=self._bits_for_level(level),
            seed=self._seed + self._run_counter,
        )

    def _merged_run(
        self, runs: list[SSTable], target_level: int, drop_tombstones: bool
    ) -> SSTable:
        """Compact by reading the input SSTables and writing a new one.

        ``_merge_runs`` already bumped the run counter and owns the I/O
        accounting; the input files become garbage once the caller installs
        the output, and are swept at the next manifest sync.
        """
        key_parts: list[np.ndarray] = []
        tombstone_parts: list[np.ndarray] = []
        for run in runs:
            run_keys, run_tombstones = run.entries()
            key_parts.append(run_keys)
            tombstone_parts.append(run_tombstones)
        keys, tombstones = consolidate_versions(
            key_parts, tombstone_parts, drop_tombstones=drop_tombstones
        )
        return SSTable.create(
            self._sst_path(self._run_counter),
            keys=keys,
            tombstones=tombstones,
            entries_per_page=self.entries_per_page,
            bits_per_entry=self._bits_for_level(target_level),
            seed=self._seed + self._run_counter,
        )

    def _install_run(self, run, level: int) -> None:
        if self.compaction_enabled:
            super()._install_run(run, level)
            return
        self._ensure_level(level)
        self.levels[level - 1].insert(0, run)

    # ------------------------------------------------------------------
    # Durability hooks
    # ------------------------------------------------------------------
    def put(self, key: int) -> None:
        """Insert or update a key, logging it before it is applied."""
        self._wal.append(key, tombstone=False)
        super().put(key)

    def delete(self, key: int) -> None:
        """Delete a key, logging the tombstone before it is applied."""
        self._wal.append(key, tombstone=True)
        super().delete(key)

    def flush(self) -> None:
        """Flush the memtable to an SSTable and persist the new structure."""
        if self.memtable.is_empty:
            return
        super().flush()
        self._sync_manifest()
        self._wal.reset()
        self._collect_garbage()

    def bulk_load(self, keys: np.ndarray) -> None:
        """Bulk load and persist; leftover memtable keys are re-logged."""
        super().bulk_load(keys)
        self._sync_manifest()
        # The base loader puts leftovers straight into the memtable; rebuild
        # the log from the memtable so those writes survive a crash too.
        self._wal.reset()
        buffered_keys, buffered_tombstones = self.memtable.sorted_items()
        self._wal.append_many(
            zip(buffered_keys.tolist(), buffered_tombstones.tolist())
        )
        self._collect_garbage()

    def install_bulk_run(self, keys: np.ndarray, level: int) -> None:
        """Install one bulk-planned run and persist it (migration step)."""
        super().install_bulk_run(keys, level)
        self._sync_manifest()
        self._collect_garbage()

    # ------------------------------------------------------------------
    # Manifest + recovery
    # ------------------------------------------------------------------
    def _sync_manifest(self) -> None:
        """Atomically replace the manifest with the current structure."""
        manifest = {
            "version": MANIFEST_VERSION,
            "run_counter": self._run_counter,
            "levels": [
                [run.path.name for run in runs] for runs in self.levels
            ],
        }
        tmp_path = self._manifest_path.with_suffix(".tmp")
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self._manifest_path)

    def _recover(self) -> None:
        """Rebuild the tree from the manifest and the write-ahead log."""
        with open(self._manifest_path, encoding="utf-8") as handle:
            manifest = json.load(handle)
        if manifest.get("version") != MANIFEST_VERSION:
            raise ValueError(
                f"manifest {self._manifest_path} has version "
                f"{manifest.get('version')!r}, expected {MANIFEST_VERSION}"
            )
        self._run_counter = int(manifest["run_counter"])
        self.levels = [
            [SSTable.open(self.data_dir / name) for name in level]
            for level in manifest["levels"]
        ]
        # Un-flushed (acknowledged but not yet persisted) writes live in the
        # log; replaying them rebuilds the memtable the crash wiped out.
        for key, tombstone in self._wal.replay():
            if tombstone:
                self.memtable.delete(key)
            else:
                self.memtable.put(key)
        # Files a crash stranded between SSTable creation and manifest swap.
        self._collect_garbage()

    def _collect_garbage(self) -> None:
        """Delete SSTable files the manifest no longer references."""
        live = {run.path.name for runs in self.levels for run in runs}
        for data_path in self.data_dir.glob("run-*.sst"):
            if data_path.name not in live:
                for stale in (
                    data_path,
                    data_path.with_suffix(".index.npz"),
                    data_path.with_suffix(".filter.npz"),
                ):
                    stale.unlink(missing_ok=True)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def successor(self, tuning: LSMTuning, seed: int) -> "PersistentLSMTree":
        """An empty persistent tree in a fresh sibling directory.

        Shares this tree's virtual disk (migration I/O lands on the stream's
        counters) and inherits the WAL sync setting.  The directory name is
        uniquified so repeated migrations never collide.
        """
        data_dir = Path(
            tempfile.mkdtemp(prefix=f"{self.data_dir.name}-gen", dir=self.data_dir.parent)
        )
        return PersistentLSMTree(
            tuning=tuning,
            system=self.system,
            data_dir=data_dir,
            disk=self.disk,
            seed=seed,
            sync_writes=self._wal.sync,
        )

    def dispose(self) -> None:
        """Close the superseded tree and delete its data directory."""
        self.destroy()

    def close(self) -> None:
        """Persist the current structure and release every file handle.

        The memtable is *not* flushed: its contents are covered by the WAL,
        so a reopened tree recovers them without perturbing the structure
        (and the disk counters) the trace produced.
        """
        self._sync_manifest()
        self._wal.close()
        for runs in self.levels:
            for run in runs:
                run.close()

    def simulate_crash(self) -> None:
        """Drop every handle *without* syncing anything — a process kill.

        For recovery tests: unlike :meth:`close` the manifest is left as the
        last flush wrote it, so reopening the directory exercises the real
        recovery path (manifest + WAL replay + orphan sweep).
        """
        self._wal.close()
        for runs in self.levels:
            for run in runs:
                run.close()

    def destroy(self) -> None:
        """Close the tree and delete its entire data directory."""
        self.close()
        shutil.rmtree(self.data_dir, ignore_errors=True)
