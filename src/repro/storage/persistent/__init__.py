"""Persistent storage backend: real SSTable files behind the LSMTree interface.

The simulated :class:`~repro.storage.lsm_tree.LSMTree` keeps its runs in
memory and models I/O as virtual-disk page counts.  This package provides the
same tree on real storage — a write-ahead log for durability, on-disk SSTable
files with sparse-index and Bloom-filter sidecars, real compaction I/O — with
byte-identical structure decisions and disk counters, so measured wall-clock
time can be compared against the analytical cost model's predictions.
"""

from .sstable import SSTable
from .tree import PersistentLSMTree
from .wal import WriteAheadLog

__all__ = ["PersistentLSMTree", "SSTable", "WriteAheadLog"]
