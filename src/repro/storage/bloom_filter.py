"""A concrete Bloom filter used by the LSM-tree simulator.

The analytical model only needs false-positive *rates*; the simulator needs a
real membership structure so that empty point lookups genuinely pay I/O only
when the filter errs — exactly the mechanism the paper's system experiments
measure.  The implementation is a classic partitioned Bloom filter over a
NumPy bit array with double hashing.
"""

from __future__ import annotations

import math

import numpy as np

from ..lsm.bloom import optimal_hash_count

#: Two large odd multipliers for the double-hashing scheme.
_HASH_MULT_1 = 0x9E3779B97F4A7C15
_HASH_MULT_2 = 0xC2B2AE3D27D4EB4F
_HASH_MASK = (1 << 64) - 1


def _hash_pair(keys: np.ndarray, seed: int) -> tuple[np.ndarray, np.ndarray]:
    """Two 64-bit hash streams for each key (vectorised double hashing)."""
    keys = keys.astype(np.uint64, copy=False)
    mixed = (keys + np.uint64(seed)) & np.uint64(_HASH_MASK)
    h1 = (mixed * np.uint64(_HASH_MULT_1)) & np.uint64(_HASH_MASK)
    h1 ^= h1 >> np.uint64(29)
    h2 = (mixed * np.uint64(_HASH_MULT_2)) & np.uint64(_HASH_MASK)
    h2 ^= h2 >> np.uint64(31)
    # Force h2 odd so the double-hash probes cover the whole table.
    h2 |= np.uint64(1)
    return h1, h2


class BloomFilter:
    """Bloom filter over 64-bit integer keys.

    Parameters
    ----------
    expected_entries:
        Number of keys the filter is sized for.
    bits_per_entry:
        Memory budget; zero (or fewer than one total bit) produces a
        degenerate filter that always answers "maybe", i.e. never saves I/O.
    seed:
        Hash seed, so different runs use independent filters.
    """

    def __init__(
        self, expected_entries: int, bits_per_entry: float, seed: int = 0
    ) -> None:
        if expected_entries < 0:
            raise ValueError("expected_entries must be non-negative")
        if bits_per_entry < 0:
            raise ValueError("bits_per_entry must be non-negative")
        self.expected_entries = expected_entries
        self.bits_per_entry = float(bits_per_entry)
        self.seed = seed
        total_bits = int(math.ceil(bits_per_entry * max(expected_entries, 1)))
        self._degenerate = total_bits < 8 or expected_entries == 0
        self.num_bits = max(total_bits, 8)
        self.num_hashes = optimal_hash_count(bits_per_entry)
        self._bits = np.zeros((self.num_bits + 7) // 8, dtype=np.uint8)
        self._count = 0
        # Probe-offset column vector and modulus, precomputed so the batched
        # membership test runs a fixed number of array ops per call instead
        # of a Python loop over hash functions.
        self._probe_offsets = np.arange(self.num_hashes, dtype=np.uint64).reshape(-1, 1)
        self._num_bits_u64 = np.uint64(self.num_bits)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_many(self, keys: np.ndarray) -> None:
        """Insert a batch of integer keys."""
        keys = np.asarray(keys)
        if keys.size == 0:
            return
        self._count += int(keys.size)
        if self._degenerate:
            return
        h1, h2 = _hash_pair(keys, self.seed)
        for i in range(self.num_hashes):
            positions = (h1 + np.uint64(i) * h2) % np.uint64(self.num_bits)
            bytes_idx = (positions // np.uint64(8)).astype(np.int64)
            bit_idx = (positions % np.uint64(8)).astype(np.uint8)
            np.bitwise_or.at(self._bits, bytes_idx, np.left_shift(1, bit_idx).astype(np.uint8))

    def add(self, key: int) -> None:
        """Insert a single key."""
        self.add_many(np.array([key], dtype=np.uint64))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def might_contain(self, key: int) -> bool:
        """Whether the filter may contain ``key`` (false positives possible)."""
        if self._degenerate:
            return True
        h1, h2 = _hash_pair(np.array([key], dtype=np.uint64), self.seed)
        first, second = int(h1[0]), int(h2[0])
        for i in range(self.num_hashes):
            position = ((first + i * second) & _HASH_MASK) % self.num_bits
            byte = self._bits[position // 8]
            if not (byte >> (position % 8)) & 1:
                return False
        return True

    def might_contain_many(self, keys: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`might_contain` over a key array.

        One hash pass over the whole batch per hash function; the probe
        positions are exactly the scalar path's (64-bit wrap-around included),
        so each answer is bit-identical to ``might_contain`` on that key.
        """
        keys = np.asarray(keys)
        if keys.size == 0:
            return np.empty(0, dtype=bool)
        if self._degenerate:
            return np.ones(keys.size, dtype=bool)
        h1, h2 = _hash_pair(keys, self.seed)
        # One (num_hashes, n) pass: uint64 arithmetic wraps mod 2^64 exactly
        # like the scalar path's explicit mask, so every probe position is
        # the one might_contain would compute.
        positions = (h1 + self._probe_offsets * h2) % self._num_bits_u64
        bytes_idx = (positions >> np.uint64(3)).astype(np.int64)
        bit_idx = (positions & np.uint64(7)).astype(np.uint8)
        probed = (self._bits[bytes_idx] >> bit_idx) & np.uint8(1)
        return probed.all(axis=0)

    def __contains__(self, key: int) -> bool:
        return self.might_contain(int(key))

    # ------------------------------------------------------------------
    # Serialisation (persistent-backend sidecars)
    # ------------------------------------------------------------------
    def to_state(self) -> dict[str, np.ndarray]:
        """The filter's full state as plain arrays (for an on-disk sidecar).

        Everything a filter answers with is captured — parameters, insert
        count and the bit table — so :meth:`from_state` reproduces a filter
        whose probe answers are bit-identical to this one's.
        """
        params = np.array(
            [self.expected_entries, self.seed, self._count], dtype=np.int64
        )
        return {
            "params": params,
            "bits_per_entry": np.array([self.bits_per_entry], dtype=np.float64),
            "bits": self._bits,
        }

    @classmethod
    def from_state(cls, state: dict[str, np.ndarray]) -> "BloomFilter":
        """Rebuild a filter from :meth:`to_state` arrays (e.g. a sidecar)."""
        expected_entries, seed, count = (int(v) for v in state["params"])
        filt = cls(
            expected_entries=expected_entries,
            bits_per_entry=float(state["bits_per_entry"][0]),
            seed=seed,
        )
        bits = np.asarray(state["bits"], dtype=np.uint8)
        if bits.shape != filt._bits.shape:
            raise ValueError(
                f"sidecar bit table has {bits.size} bytes but the filter "
                f"parameters imply {filt._bits.size}"
            )
        filt._bits = bits.copy()
        filt._count = count
        return filt

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def size_bits(self) -> int:
        """Allocated size of the filter in bits."""
        return 0 if self._degenerate else self.num_bits

    @property
    def count(self) -> int:
        """Number of keys inserted so far."""
        return self._count

    def expected_false_positive_rate(self) -> float:
        """Theoretical false-positive rate at the current fill level."""
        if self._degenerate:
            return 1.0
        if self._count == 0:
            return 0.0
        fill = 1.0 - math.exp(-self.num_hashes * self._count / self.num_bits)
        return fill**self.num_hashes
