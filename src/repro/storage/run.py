"""Immutable sorted runs with fence pointers and per-run Bloom filters.

A sorted run is the on-disk unit of an LSM tree: a key-ordered sequence of
entries laid out in fixed-size pages.  The simulator keeps, in memory, the
run's Bloom filter and its fence pointers (smallest key per page), exactly
the acceleration structures the paper describes; the entries themselves are
"on disk", i.e. every page touched is charged to the virtual disk by the
caller.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .bloom_filter import BloomFilter


def consolidate_versions(
    key_parts: list[np.ndarray],
    tombstone_parts: list[np.ndarray],
    drop_tombstones: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Newest-wins consolidation of several sorted-run contents.

    ``key_parts`` are ordered newest first; duplicate keys keep the version
    from the earliest part, matching compaction semantics.  Returns the
    consolidated ``(keys, tombstones)`` sorted by key.  This is the array
    core of :meth:`SortedRun.merge`, shared with the persistent backend's
    on-disk compaction so both consolidate byte-identically.
    """
    all_keys = np.concatenate(key_parts)
    all_tombstones = np.concatenate(tombstone_parts)
    # Recency rank: entries from key_parts[0] are newest and must win.
    recency = np.concatenate(
        [np.full(part.size, rank) for rank, part in enumerate(key_parts)]
    )
    order = np.lexsort((recency, all_keys))
    sorted_keys = all_keys[order]
    sorted_tombstones = all_tombstones[order]
    if sorted_keys.size:
        keep = np.ones(sorted_keys.size, dtype=bool)
        keep[1:] = sorted_keys[1:] != sorted_keys[:-1]
        sorted_keys = sorted_keys[keep]
        sorted_tombstones = sorted_tombstones[keep]
    if drop_tombstones:
        live = ~sorted_tombstones
        sorted_keys = sorted_keys[live]
        sorted_tombstones = sorted_tombstones[live]
    return sorted_keys, sorted_tombstones


@dataclass(frozen=True)
class PageSpan:
    """A contiguous range of pages within one run."""

    first_page: int
    last_page: int

    @property
    def num_pages(self) -> int:
        """Number of pages in the span (0 if empty)."""
        if self.last_page < self.first_page:
            return 0
        return self.last_page - self.first_page + 1


class SortedRun:
    """One immutable sorted run of an LSM tree level.

    Parameters
    ----------
    keys:
        Sorted, unique integer keys of the run.
    entries_per_page:
        How many entries fit in one disk page (``B``).
    bits_per_entry:
        Bloom-filter budget for this run; 0 disables the filter.
    tombstones:
        Optional boolean mask marking deleted keys.
    seed:
        Hash seed for the run's Bloom filter.
    """

    def __init__(
        self,
        keys: np.ndarray,
        entries_per_page: int,
        bits_per_entry: float = 0.0,
        tombstones: np.ndarray | None = None,
        seed: int = 0,
    ) -> None:
        keys = np.asarray(keys, dtype=np.int64)
        if keys.ndim != 1:
            raise ValueError("keys must be a one-dimensional array")
        if keys.size > 1 and np.any(np.diff(keys) <= 0):
            raise ValueError("keys must be strictly increasing")
        if entries_per_page <= 0:
            raise ValueError("entries_per_page must be positive")
        self._keys = keys
        self.entries_per_page = entries_per_page
        self.bits_per_entry = float(bits_per_entry)
        if tombstones is None:
            self._tombstones = np.zeros(keys.size, dtype=bool)
        else:
            tombstones = np.asarray(tombstones, dtype=bool)
            if tombstones.shape != keys.shape:
                raise ValueError("tombstones mask must match keys")
            self._tombstones = tombstones

        self._filter = BloomFilter(
            expected_entries=int(keys.size), bits_per_entry=bits_per_entry, seed=seed
        )
        if keys.size:
            self._filter.add_many(keys.astype(np.uint64))
        # Fence pointers: smallest key of each page, kept in memory.
        if keys.size:
            self._fences = keys[:: entries_per_page].copy()
            # Key bounds cached as plain ints: the lookup hot path compares
            # against them on every probe.
            self._min_key = int(keys[0])
            self._max_key = int(keys[-1])
        else:
            self._fences = np.empty(0, dtype=np.int64)
            self._min_key = self._max_key = 0

    # ------------------------------------------------------------------
    # Size / structure
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self._keys.size)

    @property
    def num_entries(self) -> int:
        """Number of entries stored in the run."""
        return int(self._keys.size)

    @property
    def num_pages(self) -> int:
        """Number of disk pages the run occupies."""
        if self._keys.size == 0:
            return 0
        return int(np.ceil(self._keys.size / self.entries_per_page))

    @property
    def min_key(self) -> int:
        """Smallest key in the run (undefined for an empty run)."""
        if self._keys.size == 0:
            raise ValueError("empty run has no minimum key")
        return self._min_key

    @property
    def max_key(self) -> int:
        """Largest key in the run (undefined for an empty run)."""
        if self._keys.size == 0:
            raise ValueError("empty run has no maximum key")
        return self._max_key

    @property
    def keys(self) -> np.ndarray:
        """The run's keys (read-only view)."""
        view = self._keys.view()
        view.flags.writeable = False
        return view

    @property
    def tombstones(self) -> np.ndarray:
        """Boolean mask of deleted keys (read-only view)."""
        view = self._tombstones.view()
        view.flags.writeable = False
        return view

    @property
    def bloom_filter(self) -> BloomFilter:
        """The run's Bloom filter."""
        return self._filter

    def entries(self) -> tuple[np.ndarray, np.ndarray]:
        """The run's full contents as ``(keys, tombstones)``, charging no I/O.

        The backend-agnostic accessor consolidation and migration planning
        use: the simulated run hands out its in-memory arrays, the persistent
        backend's SSTable reads its data file.  Callers that model the read
        cost (a compaction, a migration checkpoint) charge it separately.
        """
        return self._keys, self._tombstones

    @property
    def filter_size_bits(self) -> int:
        """Memory used by the run's Bloom filter, in bits."""
        return self._filter.size_bits

    # ------------------------------------------------------------------
    # Point lookups
    # ------------------------------------------------------------------
    def may_contain(self, key: int) -> bool:
        """Filter + fence-pointer pre-check, costing no I/O."""
        if self._keys.size == 0:
            return False
        if key < self._min_key or key > self._max_key:
            return False
        return self._filter.might_contain(int(key))

    def page_of(self, key: int) -> int:
        """Index of the page that would hold ``key`` (via fence pointers)."""
        if self._keys.size == 0:
            raise ValueError("empty run has no pages")
        page = int(np.searchsorted(self._fences, key, side="right")) - 1
        return max(0, page)

    def lookup(self, key: int) -> tuple[bool, bool, int]:
        """Probe the run for ``key``.

        Returns ``(found, is_tombstone, pages_read)`` where ``pages_read`` is
        the number of disk pages the lookup had to touch: 0 when the Bloom
        filter or the fence pointers rule the run out, 1 otherwise (fence
        pointers identify the single candidate page).
        """
        if not self.may_contain(key):
            return False, False, 0
        index = int(np.searchsorted(self._keys, key))
        pages_read = 1
        if index < self._keys.size and self._keys[index] == key:
            return True, bool(self._tombstones[index]), pages_read
        return False, False, pages_read

    def lookup_many(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray, int]:
        """Probe the run for a batch of keys in one vectorised pass.

        Returns ``(found, is_tombstone, pages_read)`` where the two masks are
        aligned with ``keys`` and ``pages_read`` is the *total* disk pages the
        batch had to touch.  Page counts are per probe, not per unique page —
        two lookups landing on the same candidate page still charge two
        reads, exactly as issuing the scalar :meth:`lookup` per key would —
        so the caller's I/O accounting is bit-identical to the scalar path.
        """
        keys = np.asarray(keys, dtype=np.int64)
        found = np.zeros(keys.size, dtype=bool)
        tombstone = np.zeros(keys.size, dtype=bool)
        if keys.size == 0 or self._keys.size == 0:
            return found, tombstone, 0
        # Fence-bound + Bloom pre-check, both as array ops (no I/O charged).
        in_bounds = np.flatnonzero((keys >= self._min_key) & (keys <= self._max_key))
        if in_bounds.size == 0:
            return found, tombstone, 0
        bounded = keys[in_bounds]
        probe_idx = in_bounds[self._filter.might_contain_many(bounded.astype(np.uint64))]
        pages_read = probe_idx.size
        if pages_read:
            probed = keys[probe_idx]
            # One searchsorted over the run's keys resolves every candidate;
            # the bound check above guarantees the indices are in range.
            indices = np.searchsorted(self._keys, probed)
            hit = self._keys[indices] == probed
            hits = probe_idx[hit]
            found[hits] = True
            tombstone[hits] = self._tombstones[indices[hit]]
        return found, tombstone, pages_read

    # ------------------------------------------------------------------
    # Range scans
    # ------------------------------------------------------------------
    def range_span(self, start_key: int, end_key: int) -> PageSpan:
        """Pages overlapping the key interval ``[start_key, end_key]``."""
        if self._keys.size == 0 or end_key < start_key:
            return PageSpan(0, -1)
        if end_key < self.min_key or start_key > self.max_key:
            return PageSpan(0, -1)
        lo = int(np.searchsorted(self._keys, start_key, side="left"))
        hi = int(np.searchsorted(self._keys, end_key, side="right")) - 1
        if hi < lo:
            # No key inside the interval, but the seek still reads one page:
            # the one holding the largest key below ``start_key`` (``lo`` is
            # at least 1 here — an interval entirely below the run was ruled
            # out above — so the page falls out of the searchsorted already
            # done, without a second pass over the fence pointers).
            page = (lo - 1) // self.entries_per_page
            return PageSpan(page, page)
        return PageSpan(lo // self.entries_per_page, hi // self.entries_per_page)

    def scan(self, start_key: int, end_key: int) -> tuple[np.ndarray, int]:
        """Return the live keys in ``[start_key, end_key]`` and pages read."""
        keys, tombstones, pages = self.scan_entries(start_key, end_key)
        return keys[~tombstones], pages

    def scan_entries(
        self, start_key: int, end_key: int
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """All versions in ``[start_key, end_key]``: ``(keys, tombstones, pages)``.

        Unlike :meth:`scan`, tombstoned entries are returned (flagged in the
        boolean mask) rather than dropped — callers that merge several runs
        need a run's deletions to shadow older live versions below it.
        """
        span = self.range_span(start_key, end_key)
        if span.num_pages == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=bool), 0
        lo = int(np.searchsorted(self._keys, start_key, side="left"))
        hi = int(np.searchsorted(self._keys, end_key, side="right"))
        return (
            self._keys[lo:hi].copy(),
            self._tombstones[lo:hi].copy(),
            span.num_pages,
        )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_sorted_keys(
        cls,
        keys: np.ndarray,
        entries_per_page: int,
        bits_per_entry: float = 0.0,
        seed: int = 0,
    ) -> "SortedRun":
        """Build a run from already sorted, unique keys."""
        return cls(
            keys=np.asarray(keys, dtype=np.int64),
            entries_per_page=entries_per_page,
            bits_per_entry=bits_per_entry,
            seed=seed,
        )

    @staticmethod
    def merge(
        runs: list["SortedRun"],
        entries_per_page: int,
        bits_per_entry: float = 0.0,
        drop_tombstones: bool = False,
        seed: int = 0,
    ) -> "SortedRun":
        """Sort-merge several runs into one, newest run first.

        Duplicate keys are consolidated keeping the version from the most
        recent run (lowest index in ``runs``), matching compaction semantics.
        """
        if not runs:
            return SortedRun(
                np.empty(0, dtype=np.int64), entries_per_page, bits_per_entry, seed=seed
            )
        sorted_keys, sorted_tombstones = consolidate_versions(
            [run._keys for run in runs],
            [run._tombstones for run in runs],
            drop_tombstones=drop_tombstones,
        )
        return SortedRun(
            keys=sorted_keys,
            entries_per_page=entries_per_page,
            bits_per_entry=bits_per_entry,
            tombstones=sorted_tombstones,
            seed=seed,
        )
