"""Shard-per-worker execution of session sequences with merged measurements.

:class:`ShardedExecutor` reproduces a hash-partitioned serving fleet on the
measurement harness: one LSM tree (or one adaptive
:class:`~repro.online.controller.OnlineLSMController`) per shard, each shard
bulk-loaded with its partition of the key space and replaying exactly the
sub-stream it would be routed in production — point operations by key
ownership, range scans fanned out to every shard.  Persistent shards build
into per-shard data directories (``shard-NN/`` under a configured
``data_dir``, or independent temp dirs).

Shards are independent, so the harness replays them one after another and
reports two wall-clock views: ``total_cpu_s`` (the sum — what this
single-process harness actually spent) and ``critical_path_s`` (the slowest
shard — what a one-worker-per-shard fleet would take, since the workers
share nothing).  An optional process pool (``parallel=True``) runs shards in
separate workers with bit-identical results.

Measurements merge the per-shard :class:`~repro.storage.disk.VirtualDisk`
deltas into global :class:`~repro.storage.executor.SessionMeasurement` rows
(counter sums over the fleet, amortised over the global query count) and
into fleet-style percentiles (p50/p95/worst shard) via
:func:`fleet_percentiles`.  With ``num_shards=1`` the merged sessions are
bit-identical to :class:`~repro.storage.executor.WorkloadExecutor` — same
counters, same latency floats, same final tree state.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import time
from dataclasses import dataclass, replace
from typing import Mapping, Sequence

import numpy as np

from ..lsm.policy import CLASSIC_POLICIES, Policy
from ..lsm.system import SystemConfig
from ..lsm.tuning import LSMTuning
from ..storage.executor import (
    AdaptiveSequenceMeasurement,
    ExecutorConfig,
    SequenceMeasurement,
    SessionMeasurement,
    WorkloadExecutor,
)
from ..storage.lsm_tree import LSMTree, TreeStats
from ..workloads.sessions import SessionSequence
from ..workloads.workload import Workload
from .replay import execute_serving_batched
from .sharding import partition_keys, shard_operations


def tree_fingerprint(tree: LSMTree) -> str:
    """Deterministic digest of a tree's logical state (runs + memtable).

    Backend-agnostic — run contents are read through ``entries()`` — so a
    simulated and a persistent tree holding the same data fingerprint alike.
    Used to pin that two execution paths left a tree in identical state.
    """
    digest = hashlib.sha256()
    for level_index, runs in enumerate(tree.levels):
        for run in runs:
            keys, tombstones = run.entries()
            digest.update(f"L{level_index}:{keys.size};".encode())
            digest.update(np.ascontiguousarray(keys, dtype=np.int64).tobytes())
            digest.update(np.ascontiguousarray(tombstones, dtype=bool).tobytes())
    buffered_keys, buffered_tombstones = tree.memtable.sorted_items()
    digest.update(f"M:{buffered_keys.size};".encode())
    digest.update(np.ascontiguousarray(buffered_keys, dtype=np.int64).tobytes())
    digest.update(np.ascontiguousarray(buffered_tombstones, dtype=bool).tobytes())
    return digest.hexdigest()


def fleet_percentiles(values: Sequence[float]) -> dict[str, float]:
    """p50/p95/worst of a per-shard metric, fleet-style."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        return {"p50": 0.0, "p95": 0.0, "worst": 0.0}
    return {
        "p50": float(np.percentile(data, 50)),
        "p95": float(np.percentile(data, 95)),
        "worst": float(data.max()),
    }


@dataclass(frozen=True)
class ShardRun:
    """One shard's complete replay of a session sequence."""

    shard: int
    #: Per-shard sessions: counters of this shard's disk, query counts of the
    #: sub-stream it served.  An :class:`~repro.storage.executor.
    #: AdaptiveSequenceMeasurement` when the run was adaptive.
    measurement: SequenceMeasurement
    #: Structure of the shard's tree after the run.
    stats: TreeStats
    #: Digest of the shard tree's final logical state.
    fingerprint: str
    #: Seconds this shard spent executing operations (trace generation and
    #: routing excluded — those costs are the harness's, identical in shape
    #: across shard counts, and not part of a worker's serving path).
    elapsed_s: float


@dataclass(frozen=True)
class ShardedSequenceMeasurement(SequenceMeasurement):
    """A sequence measured across a shard fleet.

    The inherited ``sessions`` hold the *merged* fleet view: counter sums
    over every shard, query counts of the global stream, latency recomputed
    from the summed counters.  The inherited averages therefore read exactly
    like the unsharded executor's.  ``shards`` keeps each shard's own run for
    percentile and imbalance analysis.
    """

    num_shards: int = 1
    shards: tuple[ShardRun, ...] = ()

    @property
    def critical_path_s(self) -> float:
        """Wall clock of the slowest shard — a one-worker-per-shard fleet's
        makespan (shards share nothing)."""
        return max((run.elapsed_s for run in self.shards), default=0.0)

    @property
    def total_cpu_s(self) -> float:
        """Summed per-shard execution seconds (what this harness spent)."""
        return sum(run.elapsed_s for run in self.shards)

    def shard_ios_percentiles(self) -> dict[str, float]:
        """Fleet percentiles of per-shard average I/Os per query."""
        return fleet_percentiles(
            [run.measurement.average_ios_per_query for run in self.shards]
        )

    def worst_shard_session_ios(self) -> float:
        """The worst per-session I/O cost any shard saw (tail sessions)."""
        worst = 0.0
        for run in self.shards:
            for session in run.measurement.sessions:
                if session.num_queries > 0:
                    worst = max(worst, session.ios_per_query)
        return worst


@dataclass(frozen=True)
class ShardedComparison:
    """Sharded measurements of several tunings over one sequence."""

    expected: Workload
    rho: float
    num_shards: int
    tunings: Mapping[str, LSMTuning]
    measurements: Mapping[str, ShardedSequenceMeasurement]

    def summary(self) -> dict[str, float]:
        """Mean merged I/Os per query, per tuning."""
        return {
            name: measurement.average_ios_per_query
            for name, measurement in self.measurements.items()
        }

    def to_dict(self) -> dict[str, object]:
        """Serialise to plain JSON-compatible data."""
        return {
            "expected": self.expected.as_dict(),
            "rho": self.rho,
            "num_shards": self.num_shards,
            "results": {
                name: {
                    "mean_ios_per_query": m.average_ios_per_query,
                    "mean_latency_us": m.average_latency_us,
                    "shard_percentiles": m.shard_ios_percentiles(),
                    "critical_path_s": m.critical_path_s,
                    "total_cpu_s": m.total_cpu_s,
                    "sessions": m.session_series(),
                    "shard_ios": [
                        run.measurement.average_ios_per_query for run in m.shards
                    ],
                }
                for name, m in self.measurements.items()
            },
        }


def _shard_config(config: ExecutorConfig, shard: int) -> ExecutorConfig:
    """The executor config one shard runs under (its own data dir)."""
    if config.data_dir is None:
        return config
    return replace(
        config, data_dir=os.path.join(config.data_dir, f"shard-{shard:02d}")
    )


def _measure_shard_sessions(
    executor: WorkloadExecutor,
    execute,
    disk,
    sequence: SessionSequence,
    shard: int,
    num_shards: int,
    note_idle=None,
) -> tuple[tuple[SessionMeasurement, ...], float]:
    """Replay a shard's sub-stream of every session, timing execution only.

    The full global trace is regenerated deterministically and filtered down
    to this shard's sub-stream, so every shard observes the operations at
    their global stream positions.  Returns the per-shard session
    measurements and the summed execution seconds.
    """
    config = executor.config
    trace = executor.trace_generator()
    measurements = []
    elapsed = 0.0
    for session in sequence:
        before = disk.snapshot()
        num_queries = 0
        for workload in session.workloads:
            operations = trace.operations(workload, config.queries_per_workload)
            mine = shard_operations(operations, shard, num_shards)
            num_queries += len(mine)
            start = time.perf_counter()
            execute(mine)
            elapsed += time.perf_counter() - start
        delta = disk.counters.delta(before)
        latency = disk.latency_us(delta) / num_queries if num_queries else 0.0
        measurements.append(
            SessionMeasurement(
                label=session.label,
                workload=session.average,
                num_queries=num_queries,
                query_reads=delta.query_reads,
                query_writes=delta.query_writes,
                flush_writes=delta.flush_writes,
                compaction_reads=delta.compaction_reads,
                compaction_writes=delta.compaction_writes,
                latency_us_per_query=latency,
            )
        )
        if note_idle is not None:
            # The inter-session gap is the shard's serving lull: deferred
            # migration steps drain here, outside the measurement window.
            note_idle()
    return tuple(measurements), elapsed


def _run_shard(
    system: SystemConfig,
    config: ExecutorConfig,
    sequence: SessionSequence,
    tuning: LSMTuning,
    shard: int,
    adaptive: bool,
    online,
    policies: Sequence[Policy],
) -> ShardRun:
    """Build, replay and dispose one shard; the unit of the process pool."""
    num_shards = config.num_shards
    executor = WorkloadExecutor(system, _shard_config(config, shard))
    shard_keys = partition_keys(executor.key_space.existing, num_shards)[shard]
    tree = executor.build_tree(tuning, keys=shard_keys)
    initial_tuning = tree.tuning
    controller = None
    try:
        if adaptive:
            from ..online.controller import OnlineConfig, OnlineLSMController

            controller = OnlineLSMController(
                tree=tree,
                expected=sequence.expected,
                config=(
                    online
                    if online is not None
                    else OnlineConfig(admission=config.admission)
                ),
                policies=policies,
            )
            if config.batch_execution:
                def execute(operations):
                    controller.execute_batched(
                        operations, max_batch_ops=config.max_batch_ops
                    )
            else:
                execute = controller.execute
            sessions, elapsed = _measure_shard_sessions(
                executor, execute, controller.disk, sequence, shard, num_shards,
                note_idle=controller.note_idle,
            )
            controller.finish_migration()
            final_tree = controller.tree
            measurement: SequenceMeasurement = AdaptiveSequenceMeasurement(
                tuning=initial_tuning,
                sessions=sessions,
                final_tuning=controller.tuning,
                events=tuple(controller.events),
            )
        else:
            if config.batch_execution:
                def execute(operations):
                    execute_serving_batched(
                        tree, operations, max_batch_ops=config.max_batch_ops
                    )
            else:
                def execute(operations):
                    for op in operations:
                        tree.apply(op)
            sessions, elapsed = _measure_shard_sessions(
                executor, execute, tree.disk, sequence, shard, num_shards
            )
            final_tree = tree
            measurement = SequenceMeasurement(
                tuning=initial_tuning, sessions=sessions
            )
        return ShardRun(
            shard=shard,
            measurement=measurement,
            stats=final_tree.stats(),
            fingerprint=tree_fingerprint(final_tree),
            elapsed_s=elapsed,
        )
    finally:
        if controller is not None:
            plan = controller.migration_plan
            if plan is not None:
                executor.dispose_tree(plan.target)
            executor.dispose_tree(controller.tree)
        else:
            executor.dispose_tree(tree)


@dataclass(frozen=True)
class _ShardTask:
    """Picklable per-shard work item of the parallel serving path.

    Like the executor's ``_SequenceTask``, the worker rebuilds everything
    from ``(system, config)`` seeds, so pooled shards replay bit-identical
    sub-streams to the sequential loop.
    """

    system: SystemConfig
    config: ExecutorConfig
    sequence: SessionSequence
    tuning: LSMTuning
    shard: int
    adaptive: bool = False
    online: object = None
    policies: tuple = tuple(CLASSIC_POLICIES)

    def __call__(self) -> ShardRun:
        return _run_shard(
            self.system, self.config, self.sequence, self.tuning, self.shard,
            self.adaptive, self.online, self.policies,
        )


def _call_shard_task(task: _ShardTask) -> ShardRun:
    return task()


class ShardedExecutor:
    """Runs session sequences on a hash-partitioned shard fleet."""

    def __init__(
        self, system: SystemConfig, config: ExecutorConfig | None = None
    ) -> None:
        self.system = system
        self.config = config if config is not None else ExecutorConfig()

    @property
    def num_shards(self) -> int:
        return self.config.num_shards

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _run_tasks(
        self, tasks: list[_ShardTask], parallel: bool, processes: int | None
    ) -> list[ShardRun]:
        if not parallel or len(tasks) <= 1:
            return [task() for task in tasks]
        worker_count = min(len(tasks), processes or os.cpu_count() or 1)
        ctx = multiprocessing.get_context()
        with ctx.Pool(processes=worker_count) as pool:
            return pool.map(_call_shard_task, tasks)

    def _merge_sessions(
        self, sequence: SessionSequence, runs: list[ShardRun]
    ) -> tuple[SessionMeasurement, ...]:
        """Fleet view: counter sums, global query counts, recomputed latency.

        ``num_queries`` counts the *global* stream (range scans once, not
        once per shard they fanned out to), so the merged amortisation
        matches the unsharded executor's definition exactly.
        """
        config = self.config
        merged = []
        for index, session in enumerate(sequence):
            parts = [run.measurement.sessions[index] for run in runs]
            num_queries = config.queries_per_workload * len(session.workloads)
            query_reads = sum(p.query_reads for p in parts)
            query_writes = sum(p.query_writes for p in parts)
            flush_writes = sum(p.flush_writes for p in parts)
            compaction_reads = sum(p.compaction_reads for p in parts)
            compaction_writes = sum(p.compaction_writes for p in parts)
            total_reads = query_reads + compaction_reads
            total_writes = query_writes + flush_writes + compaction_writes
            latency = (
                (
                    total_reads * config.read_latency_us
                    + total_writes * config.write_latency_us
                )
                / num_queries
                if num_queries
                else 0.0
            )
            merged.append(
                SessionMeasurement(
                    label=session.label,
                    workload=session.average,
                    num_queries=num_queries,
                    query_reads=query_reads,
                    query_writes=query_writes,
                    flush_writes=flush_writes,
                    compaction_reads=compaction_reads,
                    compaction_writes=compaction_writes,
                    latency_us_per_query=latency,
                )
            )
        return tuple(merged)

    def _measure(
        self,
        tuning: LSMTuning,
        sequence: SessionSequence,
        runs: list[ShardRun],
    ) -> ShardedSequenceMeasurement:
        return ShardedSequenceMeasurement(
            tuning=tuning,
            sessions=self._merge_sessions(sequence, runs),
            num_shards=self.config.num_shards,
            shards=tuple(runs),
        )

    def run_sequence(
        self,
        tuning: LSMTuning,
        sequence: SessionSequence,
        parallel: bool = False,
        processes: int | None = None,
    ) -> ShardedSequenceMeasurement:
        """Replay a sequence over the shard fleet under one static tuning."""
        tasks = [
            _ShardTask(
                system=self.system,
                config=self.config,
                sequence=sequence,
                tuning=tuning,
                shard=shard,
            )
            for shard in range(self.config.num_shards)
        ]
        runs = self._run_tasks(tasks, parallel, processes)
        return self._measure(tuning, sequence, runs)

    def run_sequence_adaptive(
        self,
        initial_tuning: LSMTuning,
        sequence: SessionSequence,
        online=None,
        policies: Sequence[Policy] = CLASSIC_POLICIES,
        parallel: bool = False,
        processes: int | None = None,
    ) -> ShardedSequenceMeasurement:
        """Replay a sequence with one adaptive controller per shard.

        Each shard detects drift and migrates independently — exactly the
        fleet deployment, where a shard's reorganisation is paced by *its*
        load.  ``online`` defaults to an
        :class:`~repro.online.controller.OnlineConfig` carrying the
        executor's ``admission`` policy.
        """
        tasks = [
            _ShardTask(
                system=self.system,
                config=self.config,
                sequence=sequence,
                tuning=initial_tuning,
                shard=shard,
                adaptive=True,
                online=online,
                policies=tuple(policies),
            )
            for shard in range(self.config.num_shards)
        ]
        runs = self._run_tasks(tasks, parallel, processes)
        return self._measure(initial_tuning, sequence, runs)

    def compare(
        self,
        tunings: dict[str, LSMTuning],
        sequence: SessionSequence,
        parallel: bool = False,
        processes: int | None = None,
    ) -> dict[str, ShardedSequenceMeasurement]:
        """Run the same sequence under several tunings, fleet-style."""
        return {
            name: self.run_sequence(
                tuning, sequence, parallel=parallel, processes=processes
            )
            for name, tuning in tunings.items()
        }
