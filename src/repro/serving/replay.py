"""The per-shard serving loop: GET-span coalescing across range scans.

The core batched replay (:func:`~repro.storage.lsm_tree.
execute_operations_batched`) breaks a vectorised GET span at *every*
non-point operation.  That is the right conservatism for a generic engine,
but for serving replay it is stricter than necessary: point reads and range
scans both leave the tree untouched, so reads commute — only a write
(``PUT``) actually fences the stream.  After sharding this matters a lot:
range scans fan out to every shard, so a shard's sub-stream sees *more*
range operations per point read than the global stream, and the core loop
would fragment its GET spans into slivers.

:func:`execute_serving_batched` therefore carries the pending GET span
*across* range scans (serving each scan scalar, in stream position) and
flushes only at writes, at the span-size cap, and at stream end.  Counter
totals and final tree state are bit-identical to the scalar replay: every
operation still executes, against identical tree state (reads don't change
it), with the same per-probe I/O charging ``get_many`` documents.  Only the
interleaving *order* of read I/O inside a write-free window shifts, which
no measurement observes — sessions measure counter deltas, not orderings.
"""

from __future__ import annotations

import numpy as np

from ..storage.lsm_tree import (
    POINT_READ_KINDS,
    SCALAR_SPAN_CUTOFF,
    LSMTree,
)
from ..workloads.traces import Operation, OperationType


def execute_serving_batched(
    tree: LSMTree, operations: list[Operation], max_batch_ops: int = 4_096
) -> None:
    """Replay one shard's sub-stream, coalescing GET spans across scans."""
    if max_batch_ops <= 0:
        raise ValueError("max_batch_ops must be positive")
    pending: list[int] = []

    def flush() -> None:
        if not pending:
            return
        if len(pending) < SCALAR_SPAN_CUTOFF:
            for key in pending:
                tree.get(key)
        else:
            tree.get_many(np.asarray(pending, dtype=np.int64))
        pending.clear()

    for op in operations:
        if op.kind in POINT_READ_KINDS:
            pending.append(op.key)
            if len(pending) >= max_batch_ops:
                flush()
        elif op.kind is OperationType.RANGE:
            # Reads commute: the scan runs now (stream order), the pending
            # GET span keeps growing past it.
            tree.apply(op)
        else:
            flush()
            tree.apply(op)
    flush()
