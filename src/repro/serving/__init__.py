"""Shard-per-worker serving layer over the LSM measurement harness.

Production Endure serves live traffic from many shards while each shard's
tuner adapts independently; this package reproduces that deployment shape on
top of the existing single-tree executor:

* :mod:`~repro.serving.sharding` hash-partitions the int64 key space with a
  splitmix64-style mixer and routes operation streams: point operations go
  to their key's owner shard, range scans fan out to every shard (a hash
  partition scatters key intervals).
* :mod:`~repro.serving.replay` is the per-shard serving loop — it coalesces
  GET spans across interleaved range scans (reads commute: only writes are
  reordering barriers), so a shard replays its stream through fewer, longer
  ``get_many`` batches with bit-identical I/O accounting.
* :class:`~repro.serving.executor.ShardedExecutor` builds one tree (or one
  :class:`~repro.online.controller.OnlineLSMController`) per shard — each
  persistent shard in its own data dir — replays the sequence per shard,
  and merges per-shard :class:`~repro.storage.disk.VirtualDisk` counters
  into global session measurements plus fleet-style percentiles
  (p50/p95/worst shard).

With ``num_shards=1`` every measurement is bit-identical to the classic
:class:`~repro.storage.executor.WorkloadExecutor` — pinned by test.
"""

from .executor import (
    ShardedComparison,
    ShardedExecutor,
    ShardedSequenceMeasurement,
    ShardRun,
    fleet_percentiles,
)
from .replay import execute_serving_batched
from .report import format_sharded_comparison
from .sharding import partition_keys, shard_ids, shard_operations

__all__ = [
    "ShardRun",
    "ShardedComparison",
    "ShardedExecutor",
    "ShardedSequenceMeasurement",
    "execute_serving_batched",
    "fleet_percentiles",
    "format_sharded_comparison",
    "partition_keys",
    "shard_ids",
    "shard_operations",
]
