"""Text rendering of sharded serving results (the CLI's table)."""

from __future__ import annotations

from .executor import ShardedComparison


def format_sharded_comparison(comparison: ShardedComparison) -> str:
    """Render a :class:`~repro.serving.executor.ShardedComparison` table.

    Mirrors the unsharded ``format_comparison`` layout: one row per session
    with the merged fleet I/Os and latency per tuning, then a fleet footer
    per tuning — per-shard I/O percentiles and the two wall-clock views
    (critical path = slowest shard, harness total = summed shard seconds).
    """
    names = list(comparison.measurements)
    lines = [
        f"expected workload: {comparison.expected.describe()}"
        f"  rho={comparison.rho:g}  shards={comparison.num_shards}"
    ]
    for name in names:
        lines.append(f"  {name + ':':<9}{comparison.tunings[name].describe()}")
    header = f"  {'session':<16}"
    for name in names:
        header += f"{'io ' + name[:5]:>10}"
    for name in names:
        header += f"{'lat ' + name[:5] + '(us)':>15}"
    lines.append(header)
    first = comparison.measurements[names[0]]
    for index in range(len(first.sessions)):
        row = f"  {first.sessions[index].label:<16}"
        for name in names:
            session = comparison.measurements[name].sessions[index]
            row += f"{session.ios_per_query:>10.2f}"
        for name in names:
            session = comparison.measurements[name].sessions[index]
            row += f"{session.latency_us_per_query:>15.1f}"
        lines.append(row)
    for name in names:
        measurement = comparison.measurements[name]
        pct = measurement.shard_ios_percentiles()
        lines.append(
            f"  {name}: fleet io/q p50={pct['p50']:.2f} p95={pct['p95']:.2f}"
            f" worst={pct['worst']:.2f}  mean={measurement.average_ios_per_query:.2f}"
        )
        lines.append(
            f"  {name}: wall-clock critical-path={measurement.critical_path_s:.3f}s"
            f" harness-total={measurement.total_cpu_s:.3f}s"
        )
    return "\n".join(lines)
