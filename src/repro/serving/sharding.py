"""Hash partitioning of keys and operation streams across serving shards.

Keys are spread with the splitmix64 finaliser — a full-avalanche 64-bit
mixer — reduced modulo the shard count.  The reproduction's key spaces are
structured (a permutation of ``0..2N``), so a plain ``key % num_shards``
would alias badly with the generators' stride patterns; the mixer decouples
shard placement from key structure, giving every shard an ~equal slice of
both the resident keys and the operation stream.

Routing rules mirror a real hash-partitioned deployment:

* ``GET`` / ``EMPTY_GET`` / ``PUT`` touch exactly one key and go to its
  owner shard;
* ``RANGE`` scans a contiguous *key interval*, which a hash partition
  scatters across every shard — range operations fan out to all shards, and
  each shard serves the fragment of the interval it owns (charging only the
  pages of its own runs, so the fleet-wide I/O sum matches the unsharded
  scan's structure shard by shard).
"""

from __future__ import annotations

import numpy as np

from ..workloads.traces import Operation, OperationType

_SPLITMIX_INC = np.uint64(0x9E3779B97F4A7C15)
_SPLITMIX_M1 = np.uint64(0xBF58476D1CE4E5B9)
_SPLITMIX_M2 = np.uint64(0x94D049BB133111EB)


def shard_ids(keys: np.ndarray, num_shards: int) -> np.ndarray:
    """Owner shard of each key (vectorised splitmix64 mix, mod shards)."""
    if num_shards < 1:
        raise ValueError("num_shards must be at least 1")
    x = np.asarray(keys, dtype=np.int64).astype(np.uint64) + _SPLITMIX_INC
    x ^= x >> np.uint64(30)
    x *= _SPLITMIX_M1
    x ^= x >> np.uint64(27)
    x *= _SPLITMIX_M2
    x ^= x >> np.uint64(31)
    return (x % np.uint64(num_shards)).astype(np.int64)


def shard_of_key(key: int, num_shards: int) -> int:
    """Owner shard of one key."""
    return int(shard_ids(np.asarray([key], dtype=np.int64), num_shards)[0])


def partition_keys(keys: np.ndarray, num_shards: int) -> list[np.ndarray]:
    """Split a key array into its per-shard partitions (order preserved)."""
    keys = np.asarray(keys, dtype=np.int64)
    if num_shards == 1:
        return [keys]
    sids = shard_ids(keys, num_shards)
    return [keys[sids == shard] for shard in range(num_shards)]


def shard_operations(
    operations: list[Operation], shard: int, num_shards: int
) -> list[Operation]:
    """The sub-stream one shard serves, in original stream order.

    Point operations are kept when the shard owns their key; range scans are
    kept on every shard (see the module docstring).  Returns the full stream
    unfiltered for a single-shard deployment.
    """
    if not 0 <= shard < num_shards:
        raise ValueError(f"shard must be in [0, {num_shards}), got {shard}")
    if num_shards == 1:
        return list(operations)
    keys = np.fromiter(
        (op.key for op in operations), dtype=np.int64, count=len(operations)
    )
    mine = shard_ids(keys, num_shards) == shard
    for index, op in enumerate(operations):
        if op.kind is OperationType.RANGE:
            mine[index] = True
    return [op for op, keep in zip(operations, mine.tolist()) if keep]
