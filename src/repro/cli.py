"""Small command-line front end for the Endure reproduction.

Examples
--------
Recommend a tuning for an expected workload::

    repro-endure tune --workload 0.33 0.33 0.33 0.01 --rho 1.0

Restrict (or widen) the compaction-policy search space — ``fluid`` makes
the tuner optimise Dostoevsky's per-level run bounds (K, Z) alongside
(T, h)::

    repro-endure tune --workload 0.25 0.25 0.25 0.25 --policy fluid

Mixed short/long range workloads (30% of range lookups are long scans)::

    repro-endure tune --workload 0.1 0.2 0.3 0.4 --long-range-fraction 0.3

Full Dostoevsky generality — search per-level ``K_i`` bound vectors, or pin
an explicit front-loaded ladder (shallowest level first)::

    repro-endure tune --workload 0.1 0.2 0.1 0.6 --policy fluid --k-vector-search
    repro-endure tune --workload 0.1 0.2 0.1 0.6 --policy fluid --k-bounds 4,2,1

Compare nominal and robust tunings on the simulator::

    repro-endure compare --expected-index 11 --rho 0.25 --json

Print the Table 2 expected workloads::

    repro-endure workloads
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from typing import Sequence

from .analysis.model_eval import TuningCatalog, tuning_table
from .analysis.online_eval import AdaptiveExperiment, format_adaptive_comparison
from .analysis.system_eval import SystemExperiment, format_comparison
from .core.nominal import NominalTuner
from .core.robust import RobustTuner
from .lsm.policy import ALL_POLICIES, CLASSIC_POLICIES, Policy, PolicySpec
from .lsm.system import SystemConfig, simulator_system
from .online.admission import ADMISSION_MODES
from .online.controller import MIGRATION_MODES, OnlineConfig
from .online.retuner import RETUNING_MODES
from .serving import format_sharded_comparison
from .storage.executor import ExecutorConfig
from .workloads.benchmark import expected_workloads
from .workloads.sessions import SessionType
from .workloads.workload import Workload

#: ``--policy`` choices: each concrete policy plus the exhaustive sweeps.
_POLICY_CHOICES = tuple(p.value for p in ALL_POLICIES) + ("classic", "all")


def _validated_number(cast, accepts, description):
    """Argparse type factory: cast ``text`` and bound-check it.

    Rejecting bad values at the parser gives the operator a clear usage
    error instead of a downstream traceback (a zero window, for instance,
    used to surface as a ``ValueError`` deep inside the estimator).
    """

    def parse(text: str):
        try:
            value = cast(text)
        except ValueError:
            noun = "an integer" if cast is int else "a number"
            raise argparse.ArgumentTypeError(f"expected {noun}, got {text!r}")
        if not accepts(value):
            raise argparse.ArgumentTypeError(f"must be {description}, got {value}")
        return value

    return parse


_positive_int = _validated_number(int, lambda v: v > 0, "a positive integer")
_non_negative_int = _validated_number(int, lambda v: v >= 0, "a non-negative integer")
_non_negative_float = _validated_number(float, lambda v: v >= 0, "non-negative")
_run_bound = _validated_number(float, lambda v: v >= 1, "at least 1")
_fraction = _validated_number(float, lambda v: 0 <= v <= 1, "a fraction in [0, 1]")
_positive_fraction = _validated_number(
    float, lambda v: 0 < v <= 1, "a fraction in (0, 1]"
)


def _k_bounds_arg(text: str) -> tuple[float, ...]:
    """Argparse type of ``--k-bounds``: a comma-separated per-level vector.

    Every malformation dies at the parser with a usage error (matching the
    validated-knob convention of the online flags): an empty value, an empty
    entry (``"4,,1"``), a non-numeric entry, or a bound below the deployable
    minimum of 1.
    """
    if not text.strip():
        raise argparse.ArgumentTypeError(
            "expected a comma-separated list of per-level run bounds "
            "(e.g. 4,2,1), got an empty value"
        )
    bounds: list[float] = []
    for entry in text.split(","):
        entry = entry.strip()
        if not entry:
            raise argparse.ArgumentTypeError(
                f"empty entry in k-bounds list {text!r}"
            )
        try:
            value = float(entry)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"expected a number, got {entry!r} in k-bounds list {text!r}"
            )
        if value < 1.0:
            raise argparse.ArgumentTypeError(
                f"per-level run bounds must be at least 1, got {value:g}"
            )
        bounds.append(value)
    return tuple(bounds)


def _workload_from_args(values: Sequence[float]) -> Workload:
    return Workload.from_array([float(v) for v in values])


def _policies_from_arg(value: str) -> tuple[Policy, ...]:
    """Resolve a ``--policy`` flag value to the tuner's policy search space."""
    if value == "all":
        return ALL_POLICIES
    if value == "classic":
        return CLASSIC_POLICIES
    return (Policy.from_value(value),)


def _cmd_tune(args: argparse.Namespace) -> int:
    workload = _workload_from_args(args.workload)
    if args.long_range_fraction > 0:
        workload = workload.with_long_range_fraction(args.long_range_fraction)
    system = SystemConfig()
    if args.num_entries is not None:
        system = system.scaled(args.num_entries)
    if args.long_range_selectivity is not None:
        system = replace(system, long_range_selectivity=args.long_range_selectivity)
    policies: tuple[Policy | PolicySpec, ...] = _policies_from_arg(args.policy)
    if args.k_bounds is not None:
        if args.policy != Policy.FLUID.value:
            args.subparser.error(
                "--k-bounds requires --policy fluid (per-level run bounds "
                "are only meaningful for the fluid policy)"
            )
        if args.k_vector_search:
            args.subparser.error(
                "--k-bounds pins an explicit vector; --k-vector-search asks "
                "the tuner to move it — pass one or the other"
            )
        # Pin the search to the explicit per-level vector: the tuners still
        # optimise (T, h) but deploy exactly these bounds.
        policies = (
            PolicySpec(Policy.FLUID, k_bounds=args.k_bounds, z_bound=args.z_bound),
        )
    elif args.z_bound is not None:
        args.subparser.error("--z-bound is only meaningful alongside --k-bounds")
    seed = args.seed if args.seed is not None else 0
    tuner_kwargs = dict(
        system=system,
        policies=policies,
        seed=seed,
        k_vector_search=args.k_vector_search,
    )
    def check_k_bounds_length(tuning, label: str) -> None:
        """Reject a pinned vector whose length does not match the solve."""
        if args.k_bounds is None:
            return
        solved_levels = tuning.num_levels(system)
        if len(args.k_bounds) != max(solved_levels - 1, 0):
            args.subparser.error(
                f"--k-bounds holds {len(args.k_bounds)} per-level bounds but "
                f"the solved {label} tuning has {solved_levels} levels "
                f"({max(solved_levels - 1, 0)} upper levels; the largest "
                "level is bounded by --z-bound)"
            )

    nominal = NominalTuner(**tuner_kwargs).tune(workload)
    check_k_bounds_length(nominal.tuning, "nominal")
    output = {
        "workload": workload.as_dict(),
        "policies": list(
            dict.fromkeys(PolicySpec.of(p).policy.value for p in policies)
        ),
        "num_entries": system.num_entries,
        "nominal": nominal.tuning.to_dict(),
    }
    if args.rho > 0:
        robust = RobustTuner(rho=args.rho, **tuner_kwargs).tune(workload)
        # The robust solve may land on a different (T, h) — and hence a
        # different level count — than the nominal one; a pinned vector must
        # match both deployments it is reported for.
        check_k_bounds_length(robust.tuning, "robust")
        output["robust"] = robust.tuning.to_dict()
        output["rho"] = args.rho
    print(json.dumps(output, indent=2))
    return 0


def _cmd_workloads(_: argparse.Namespace) -> int:
    for expected in expected_workloads():
        print(expected.describe())
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    catalog = TuningCatalog()
    for row in tuning_table(catalog, rho=args.rho):
        print(
            f"{row['workload']:<4} {row['composition']:<26} "
            f"nominal[{row['nominal']}]  robust[{row['robust']}]"
        )
    return 0


def _executor_config(args: argparse.Namespace, **overrides) -> ExecutorConfig:
    """Executor knobs from CLI flags; ``--seed`` makes runs reproducible."""
    config = ExecutorConfig(**overrides)
    if getattr(args, "seed", None) is not None:
        config.seed = args.seed
    if getattr(args, "batch_execution", None) is not None:
        config.batch_execution = args.batch_execution
    if getattr(args, "max_batch_ops", None) is not None:
        config.max_batch_ops = args.max_batch_ops
    if getattr(args, "update_fraction", None) is not None:
        config.update_fraction = args.update_fraction
    if getattr(args, "update_skew", None) is not None:
        config.update_skew = args.update_skew
    if getattr(args, "backend", None) is not None:
        config.backend = args.backend
    if getattr(args, "data_dir", None) is not None:
        config.data_dir = args.data_dir
    if getattr(args, "sync_writes", False):
        config.sync_writes = True
    if getattr(args, "num_shards", None) is not None:
        config.num_shards = args.num_shards
    if getattr(args, "admission", None) is not None:
        config.admission = args.admission
    return config


def _add_update_flags(subparser: argparse.ArgumentParser) -> None:
    """Write-mix knobs shared by the simulator subcommands."""
    subparser.add_argument(
        "--update-fraction",
        type=_fraction,
        default=None,
        help="fraction of the trace's writes that update an existing key "
        "(creating obsolete versions compactions must consolidate) instead "
        "of inserting a fresh one",
    )
    subparser.add_argument(
        "--update-skew",
        type=_non_negative_float,
        default=None,
        help="Zipf exponent concentrating updates on a hot key subset "
        "(0 = uniform over the resident keys)",
    )


def _add_batch_flags(subparser: argparse.ArgumentParser) -> None:
    """Vectorised-execution knobs shared by the simulator subcommands."""
    subparser.add_argument(
        "--no-batch-execution",
        dest="batch_execution",
        action="store_false",
        default=True,
        help="replay traces one operation at a time instead of batching "
        "write-free GET spans through the vectorised read path "
        "(same measured I/O, much slower; for parity checks)",
    )
    subparser.add_argument(
        "--max-batch-ops",
        type=_positive_int,
        default=4_096,
        help="largest GET batch handed to the vectorised read path",
    )


def _cmd_compare(args: argparse.Namespace) -> int:
    expected = expected_workloads()[args.expected_index].workload
    if args.long_range_fraction > 0:
        expected = expected.with_long_range_fraction(args.long_range_fraction)
    experiment = SystemExperiment(
        system=simulator_system(num_entries=args.num_entries),
        executor_config=_executor_config(args, long_scan_keys=args.long_scan_keys),
        policies=_policies_from_arg(args.policy),
        **({"seed": args.seed} if args.seed is not None else {}),
    )
    if args.num_shards > 1:
        comparison = experiment.run_sharded(expected, rho=args.rho)
        if args.json:
            print(json.dumps(comparison.to_dict(), indent=2))
        else:
            print(format_sharded_comparison(comparison))
        return 0
    comparison = experiment.run(expected, rho=args.rho)
    if args.json:
        print(json.dumps(comparison.to_dict(), indent=2))
    else:
        print(format_comparison(comparison))
    return 0


def _cmd_online(args: argparse.Namespace) -> int:
    if args.rho_adaptive and args.mode != "robust":
        raise SystemExit(
            "repro-endure online: error: --rho-adaptive requires --mode robust "
            "(nominal re-tunings have no radius to widen)"
        )
    expected = expected_workloads()[args.expected_index].workload
    online = OnlineConfig(
        window=args.window,
        check_interval=args.check_interval,
        min_observations=args.min_observations,
        cooldown=args.cooldown,
        confirm_checks=args.confirm_checks,
        threshold=args.threshold,
        mode=args.mode,
        rho=args.retune_rho,
        horizon_ops=args.horizon,
        migration=args.migration,
        migration_step_ops=args.migration_step_ops,
        migration_step_pages=args.migration_step_pages,
        admission=args.admission,
        admission_max_backlog=args.admission_max_backlog,
        admission_starvation_ops=args.admission_starvation_ops,
        admission_idle_steps=args.admission_idle_steps,
        rho_adaptive=args.rho_adaptive,
        volatility_gain=args.volatility_gain,
        k_vector_search=args.k_vector_search,
    )
    experiment = AdaptiveExperiment(
        system=simulator_system(num_entries=args.num_entries),
        executor_config=_executor_config(
            args, queries_per_workload=args.queries_per_workload
        ),
        online=online,
        policies=_policies_from_arg(args.policy),
        parallel=args.parallel,
        **({"seed": args.seed} if args.seed is not None else {}),
    )
    comparison = experiment.run(
        expected,
        rho=args.rho,
        phases=args.phases,
        sessions_per_phase=args.sessions_per_phase,
    )
    if args.json:
        print(json.dumps(comparison.to_dict(), indent=2))
    else:
        print(format_adaptive_comparison(comparison))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-endure",
        description="Robust LSM-tree tuning under workload uncertainty (Endure reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    tune = subparsers.add_parser("tune", help="recommend a tuning for a workload")
    tune.add_argument(
        "--workload",
        nargs=4,
        type=float,
        required=True,
        metavar=("Z0", "Z1", "Q", "W"),
        help="workload proportions (empty reads, non-empty reads, ranges, writes)",
    )
    tune.add_argument("--rho", type=float, default=1.0, help="uncertainty radius")
    tune.add_argument(
        "--policy",
        choices=_POLICY_CHOICES,
        default="classic",
        help="compaction policies the tuner may choose from "
        "('classic' = the paper's leveling+tiering pair, 'all' additionally "
        "allows lazy-leveling)",
    )
    tune.add_argument(
        "--num-entries",
        type=int,
        default=None,
        help="scale the system to this many entries (memory budget scales along)",
    )
    tune.add_argument(
        "--long-range-fraction",
        type=_fraction,
        default=0.0,
        help="fraction of the range lookups that are long (scan-dominated); "
        "0 reproduces the paper's short-range-only model",
    )
    tune.add_argument(
        "--long-range-selectivity",
        type=_positive_fraction,
        default=None,
        help="selectivity of long range queries (fraction of all entries; "
        "default: the system's built-in 0.001)",
    )
    tune.add_argument(
        "--k-bounds",
        type=_k_bounds_arg,
        default=None,
        metavar="K1,K2,...",
        help="pin a per-level fluid run-bound vector (shallowest level "
        "first, e.g. 4,2,1); requires --policy fluid, and the length must "
        "match the solved tuning's upper-level count",
    )
    tune.add_argument(
        "--z-bound",
        type=_run_bound,
        default=None,
        help="run bound of the largest level for a pinned --k-bounds vector "
        "(default 1: a single leveled run)",
    )
    tune.add_argument(
        "--k-vector-search",
        action="store_true",
        help="let the fluid sweep search per-level K_i bound vectors "
        "(structured ladder/perturbation families, coordinate descent and "
        "a continuous-bound polish) instead of only uniform (K, Z) pairs",
    )
    tune.add_argument(
        "--seed",
        type=int,
        default=None,
        help="seed of the tuners' polish starting points "
        "(same seed -> byte-identical output)",
    )
    tune.set_defaults(func=_cmd_tune, subparser=tune)

    workloads = subparsers.add_parser("workloads", help="print Table 2 workloads")
    workloads.set_defaults(func=_cmd_workloads)

    table = subparsers.add_parser("table", help="nominal vs robust tunings (all workloads)")
    table.add_argument("--rho", type=float, default=1.0)
    table.set_defaults(func=_cmd_table)

    compare = subparsers.add_parser(
        "compare", help="run the simulator comparison for one expected workload"
    )
    compare.add_argument("--expected-index", type=int, default=11)
    compare.add_argument("--rho", type=float, default=0.25)
    compare.add_argument("--num-entries", type=int, default=30_000)
    compare.add_argument(
        "--policy",
        choices=_POLICY_CHOICES,
        default="classic",
        help="compaction policies the tuners may deploy on the simulator",
    )
    compare.add_argument(
        "--long-range-fraction",
        type=_fraction,
        default=0.0,
        help="fraction of range lookups issued (and modelled) as long scans",
    )
    compare.add_argument(
        "--long-scan-keys",
        type=_positive_int,
        default=512,
        help="keys covered by one long range scan on the simulator",
    )
    compare.add_argument(
        "--backend",
        choices=("simulated", "persistent"),
        default="simulated",
        help="storage backend the compared trees run on: 'simulated' keeps "
        "runs in memory, 'persistent' builds real SSTable files (identical "
        "I/O counters; wall-clock time becomes meaningful)",
    )
    compare.add_argument(
        "--data-dir",
        default=None,
        help="parent directory for the persistent backend's per-tree files "
        "(default: a temp dir, removed after the run; a given directory is "
        "kept for inspection)",
    )
    compare.add_argument(
        "--sync-writes",
        action="store_true",
        help="fsync the persistent backend's write-ahead log on every write",
    )
    compare.add_argument(
        "--num-shards",
        type=_positive_int,
        default=1,
        help="serve the comparison from a hash-partitioned shard fleet "
        "(one tree per shard, range scans fanned out; merged fleet "
        "measurements plus p50/p95/worst-shard percentiles)",
    )
    _add_update_flags(compare)
    compare.add_argument(
        "--seed",
        type=int,
        default=None,
        help="seed of the key space, traces and session sampling "
        "(same seed -> identical simulation, end to end)",
    )
    compare.add_argument(
        "--json",
        action="store_true",
        help="emit the comparison as machine-readable JSON instead of a table",
    )
    _add_batch_flags(compare)
    compare.set_defaults(func=_cmd_compare)

    online = subparsers.add_parser(
        "online",
        help="replay a drifting session sequence with online adaptive re-tuning",
    )
    online.add_argument(
        "--expected-index",
        type=int,
        default=11,
        help="Table 2 index of the workload the static tunings expect",
    )
    online.add_argument(
        "--rho", type=float, default=0.5, help="radius of the static robust tuning"
    )
    online.add_argument("--num-entries", type=_positive_int, default=10_000)
    online.add_argument(
        "--queries-per-workload", type=_positive_int, default=1_000
    )
    online.add_argument(
        "--phases",
        nargs="+",
        default=["read", "write"],
        choices=[t.value for t in SessionType],
        help="session types of the drift phases, in stream order",
    )
    online.add_argument("--sessions-per-phase", type=_positive_int, default=3)
    online.add_argument(
        "--window",
        type=_positive_int,
        default=400,
        help="effective window (operations) of the rolling workload estimator",
    )
    online.add_argument(
        "--check-interval",
        type=_positive_int,
        default=64,
        help="operations between drift checks",
    )
    online.add_argument(
        "--min-observations",
        type=_non_negative_int,
        default=256,
        help="estimator warm-up before drift may fire",
    )
    online.add_argument(
        "--cooldown",
        type=_non_negative_int,
        default=2_048,
        help="operations after a firing during which drift is suppressed",
    )
    online.add_argument(
        "--confirm-checks",
        type=_positive_int,
        default=5,
        help="consecutive out-of-region checks required before drift fires",
    )
    online.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="KL drift threshold (default: the re-tuning radius)",
    )
    online.add_argument(
        "--mode",
        choices=RETUNING_MODES,
        default="nominal",
        help="re-tuner run on drift",
    )
    online.add_argument(
        "--retune-rho",
        type=float,
        default=1.0,
        help="uncertainty radius of robust re-tunings (and the default "
        "drift threshold)",
    )
    online.add_argument(
        "--horizon",
        type=_positive_int,
        default=12_000,
        help="operations over which a migration's cost must be recouped",
    )
    online.add_argument(
        "--migration",
        choices=MIGRATION_MODES,
        default="full",
        help="migration execution: 'full' rebuilds the tree at the firing, "
        "'incremental' spreads a level-by-level plan over the stream while "
        "a mixed old/new state serves queries",
    )
    online.add_argument(
        "--migration-step-ops",
        type=_positive_int,
        default=256,
        help="operations between incremental migration steps",
    )
    online.add_argument(
        "--migration-step-pages",
        type=_positive_int,
        default=None,
        help="page cap per incremental migration step "
        "(default: one run per step)",
    )
    online.add_argument(
        "--admission",
        choices=ADMISSION_MODES,
        default="fixed",
        help="incremental migration-step admission: 'fixed' paces one step "
        "every --migration-step-ops operations, 'queue-depth' defers steps "
        "while the serving backlog is deep and drains them in idle gaps",
    )
    online.add_argument(
        "--admission-max-backlog",
        type=_non_negative_int,
        default=256,
        help="backlog (queued operations) at or below which a due step is "
        "admitted under queue-depth admission",
    )
    online.add_argument(
        "--admission-starvation-ops",
        type=_positive_int,
        default=4_096,
        help="operations after which a migration step is forced regardless "
        "of backlog (queue-depth admission starvation bound)",
    )
    online.add_argument(
        "--admission-idle-steps",
        type=_non_negative_int,
        default=8,
        help="migration steps drained per inter-session idle gap under "
        "queue-depth admission",
    )
    online.add_argument(
        "--rho-adaptive",
        action="store_true",
        help="widen the robust re-tuning radius with the observed "
        "KL-trajectory volatility (cyclic workloads get tuned once for the "
        "whole cycle); requires --mode robust",
    )
    online.add_argument(
        "--volatility-gain",
        type=_non_negative_float,
        default=2.0,
        help="multiplier on the KL-trajectory volatility added to rho",
    )
    online.add_argument(
        "--policy",
        choices=_POLICY_CHOICES,
        default="classic",
        help="compaction policies the tuners (static and online) may deploy",
    )
    online.add_argument(
        "--k-vector-search",
        action="store_true",
        help="let fluid re-tunings search per-level K_i bound vectors "
        "(vector proposals migrate like any other tuning)",
    )
    _add_update_flags(online)
    online.add_argument(
        "--parallel",
        action="store_true",
        help="measure the static tunings on a multiprocessing pool",
    )
    online.add_argument(
        "--seed",
        type=int,
        default=None,
        help="seed of the key space, traces and session sampling "
        "(same seed -> identical simulation, end to end)",
    )
    online.add_argument(
        "--json",
        action="store_true",
        help="emit the comparison as machine-readable JSON instead of a table",
    )
    _add_batch_flags(online)
    online.set_defaults(func=_cmd_online)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
