"""Small command-line front end for the Endure reproduction.

Examples
--------
Recommend a tuning for an expected workload::

    repro-endure tune --workload 0.33 0.33 0.33 0.01 --rho 1.0

Restrict (or widen) the compaction-policy search space::

    repro-endure tune --workload 0.25 0.25 0.25 0.25 --policy lazy-leveling

Compare nominal and robust tunings on the simulator::

    repro-endure compare --expected-index 11 --rho 0.25 --json

Print the Table 2 expected workloads::

    repro-endure workloads
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from .analysis.model_eval import TuningCatalog, tuning_table
from .analysis.system_eval import SystemExperiment, format_comparison
from .core.nominal import NominalTuner
from .core.robust import RobustTuner
from .lsm.policy import ALL_POLICIES, CLASSIC_POLICIES, Policy
from .lsm.system import SystemConfig, simulator_system
from .workloads.benchmark import expected_workloads
from .workloads.workload import Workload

#: ``--policy`` choices: each concrete policy plus the exhaustive sweeps.
_POLICY_CHOICES = tuple(p.value for p in ALL_POLICIES) + ("classic", "all")


def _workload_from_args(values: Sequence[float]) -> Workload:
    return Workload.from_array([float(v) for v in values])


def _policies_from_arg(value: str) -> tuple[Policy, ...]:
    """Resolve a ``--policy`` flag value to the tuner's policy search space."""
    if value == "all":
        return ALL_POLICIES
    if value == "classic":
        return CLASSIC_POLICIES
    return (Policy.from_value(value),)


def _cmd_tune(args: argparse.Namespace) -> int:
    workload = _workload_from_args(args.workload)
    system = SystemConfig()
    if args.num_entries is not None:
        system = system.scaled(args.num_entries)
    policies = _policies_from_arg(args.policy)
    nominal = NominalTuner(system=system, policies=policies).tune(workload)
    output = {
        "workload": workload.as_dict(),
        "policies": [p.value for p in policies],
        "num_entries": system.num_entries,
        "nominal": nominal.tuning.to_dict(),
    }
    if args.rho > 0:
        robust = RobustTuner(rho=args.rho, system=system, policies=policies).tune(
            workload
        )
        output["robust"] = robust.tuning.to_dict()
        output["rho"] = args.rho
    print(json.dumps(output, indent=2))
    return 0


def _cmd_workloads(_: argparse.Namespace) -> int:
    for expected in expected_workloads():
        print(expected.describe())
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    catalog = TuningCatalog()
    for row in tuning_table(catalog, rho=args.rho):
        print(
            f"{row['workload']:<4} {row['composition']:<26} "
            f"nominal[{row['nominal']}]  robust[{row['robust']}]"
        )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    expected = expected_workloads()[args.expected_index].workload
    experiment = SystemExperiment(
        system=simulator_system(num_entries=args.num_entries),
        policies=_policies_from_arg(args.policy),
    )
    comparison = experiment.run(expected, rho=args.rho)
    if args.json:
        print(json.dumps(comparison.to_dict(), indent=2))
    else:
        print(format_comparison(comparison))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-endure",
        description="Robust LSM-tree tuning under workload uncertainty (Endure reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    tune = subparsers.add_parser("tune", help="recommend a tuning for a workload")
    tune.add_argument(
        "--workload",
        nargs=4,
        type=float,
        required=True,
        metavar=("Z0", "Z1", "Q", "W"),
        help="workload proportions (empty reads, non-empty reads, ranges, writes)",
    )
    tune.add_argument("--rho", type=float, default=1.0, help="uncertainty radius")
    tune.add_argument(
        "--policy",
        choices=_POLICY_CHOICES,
        default="classic",
        help="compaction policies the tuner may choose from "
        "('classic' = the paper's leveling+tiering pair, 'all' additionally "
        "allows lazy-leveling)",
    )
    tune.add_argument(
        "--num-entries",
        type=int,
        default=None,
        help="scale the system to this many entries (memory budget scales along)",
    )
    tune.set_defaults(func=_cmd_tune)

    workloads = subparsers.add_parser("workloads", help="print Table 2 workloads")
    workloads.set_defaults(func=_cmd_workloads)

    table = subparsers.add_parser("table", help="nominal vs robust tunings (all workloads)")
    table.add_argument("--rho", type=float, default=1.0)
    table.set_defaults(func=_cmd_table)

    compare = subparsers.add_parser(
        "compare", help="run the simulator comparison for one expected workload"
    )
    compare.add_argument("--expected-index", type=int, default=11)
    compare.add_argument("--rho", type=float, default=0.25)
    compare.add_argument("--num-entries", type=int, default=30_000)
    compare.add_argument(
        "--policy",
        choices=_POLICY_CHOICES,
        default="classic",
        help="compaction policies the tuners may deploy on the simulator",
    )
    compare.add_argument(
        "--json",
        action="store_true",
        help="emit the comparison as machine-readable JSON instead of a table",
    )
    compare.set_defaults(func=_cmd_compare)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
