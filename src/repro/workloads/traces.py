"""Concrete query traces for the LSM-tree simulator.

The analytical evaluation only needs workload *proportions*; the system-based
evaluation executes actual queries against a storage engine.  This module
turns a :class:`~repro.workloads.workload.Workload` into a sequence of
concrete operations (get/range/put) against a key domain, mirroring §8.2:

* non-empty point reads query keys that exist in the database,
* empty point reads query keys drawn from the same domain that are guaranteed
  not to exist,
* range queries are short scans with minimal selectivity; a workload with a
  non-zero ``long_range_fraction`` issues that share of its range queries as
  *long* scans covering ``long_scan_keys`` consecutive keys,
* writes insert fresh, previously unused keys — unless ``update_fraction``
  directs a share of them at keys that already exist.  Updates create
  *obsolete versions*: until a compaction consolidates them, every run on a
  key's path keeps its own stale copy, and long range scans pay to read them
  all.  The ``update_skew`` knob concentrates updates on a Zipf-hot subset
  of the keys, deepening the duplication exactly where scans will find it —
  the worst-case amplification the long-range cost model charges per run.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from .workload import Workload


class OperationType(enum.Enum):
    """The concrete operations the simulator understands."""

    EMPTY_GET = "empty_get"
    GET = "get"
    RANGE = "range"
    PUT = "put"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Operation:
    """One concrete query against the store."""

    kind: OperationType
    key: int
    #: Number of consecutive keys scanned; only meaningful for range queries.
    scan_length: int = 0
    #: Value payload; only meaningful for puts.
    value: bytes = b""


@dataclass(frozen=True)
class KeySpace:
    """Partition of the integer key domain used to generate traces.

    ``existing`` keys are bulk-loaded into the store, ``missing`` keys belong
    to the same domain but are never inserted (used for empty point reads),
    and ``fresh`` keys are reserved for writes so that every write is unique.
    """

    existing: np.ndarray
    missing: np.ndarray
    fresh_start: int

    @classmethod
    def build(cls, num_entries: int, seed: int = 13) -> "KeySpace":
        """Create a key space with ``num_entries`` resident keys."""
        if num_entries <= 0:
            raise ValueError("num_entries must be positive")
        rng = np.random.default_rng(seed)
        domain = rng.permutation(2 * num_entries)
        existing = np.sort(domain[:num_entries])
        missing = np.sort(domain[num_entries:])
        return cls(existing=existing, missing=missing, fresh_start=2 * num_entries)

    @property
    def num_entries(self) -> int:
        """Number of resident (bulk-loaded) keys."""
        return int(self.existing.size)


class TraceGenerator:
    """Generates operation traces for a workload over a fixed key space."""

    def __init__(
        self,
        key_space: KeySpace,
        value_size_bytes: int = 8,
        range_scan_keys: int = 16,
        long_scan_keys: int = 512,
        seed: int = 23,
        update_fraction: float = 0.0,
        update_skew: float = 0.0,
    ) -> None:
        if value_size_bytes <= 0:
            raise ValueError("value_size_bytes must be positive")
        if range_scan_keys <= 0:
            raise ValueError("range_scan_keys must be positive")
        if long_scan_keys < range_scan_keys:
            raise ValueError("long_scan_keys must be at least range_scan_keys")
        if not 0.0 <= update_fraction <= 1.0:
            raise ValueError("update_fraction must lie in [0, 1]")
        if update_skew < 0.0:
            raise ValueError("update_skew must be non-negative")
        self.key_space = key_space
        self.value_size_bytes = value_size_bytes
        self.range_scan_keys = range_scan_keys
        self.long_scan_keys = long_scan_keys
        #: Fraction of the writes that *update* an existing key (duplicate
        #: versions) instead of inserting a fresh one.
        self.update_fraction = float(update_fraction)
        #: Zipf exponent concentrating updates on a hot subset of the keys;
        #: 0 spreads updates uniformly over the resident key set.
        self.update_skew = float(update_skew)
        self._rng = np.random.default_rng(seed)
        # Updates draw from a dedicated stream so enabling them leaves every
        # other operation of a seeded trace bit-identical.
        self._update_rng = np.random.default_rng(seed + 104_729)
        self._hot_order: np.ndarray | None = None
        self._hot_probabilities: np.ndarray | None = None
        self._next_fresh_key = key_space.fresh_start

    # ------------------------------------------------------------------
    # Trace generation
    # ------------------------------------------------------------------
    def operations(self, workload: Workload, num_operations: int) -> list[Operation]:
        """Materialise ``num_operations`` queries following ``workload``.

        The number of operations per type is the multinomial expectation of
        the workload proportions; operation order is shuffled so query types
        interleave like a live workload.
        """
        if num_operations <= 0:
            raise ValueError("num_operations must be positive")
        counts = self._rng.multinomial(num_operations, workload.as_array())
        ops: list[Operation] = []
        ops.extend(self._empty_gets(int(counts[0])))
        ops.extend(self._gets(int(counts[1])))
        ops.extend(
            self._ranges(int(counts[2]), workload.long_range_fraction)
        )
        ops.extend(self._puts(int(counts[3])))
        self._rng.shuffle(ops)
        return ops

    def __call__(self, workload: Workload, num_operations: int) -> list[Operation]:
        return self.operations(workload, num_operations)

    # ------------------------------------------------------------------
    # Per-type generators
    # ------------------------------------------------------------------
    def _empty_gets(self, count: int) -> Iterator[Operation]:
        if count == 0:
            return iter(())
        keys = self._rng.choice(self.key_space.missing, size=count, replace=True)
        return (Operation(OperationType.EMPTY_GET, int(k)) for k in keys)

    def _gets(self, count: int) -> Iterator[Operation]:
        if count == 0:
            return iter(())
        keys = self._rng.choice(self.key_space.existing, size=count, replace=True)
        return (Operation(OperationType.GET, int(k)) for k in keys)

    def _ranges(self, count: int, long_fraction: float = 0.0) -> Iterator[Operation]:
        if count == 0:
            return iter(())
        starts = self._rng.choice(self.key_space.existing, size=count, replace=True)
        # Deterministic split (the operation list is shuffled afterwards, so
        # which draws become long scans carries no ordering information).
        num_long = int(round(count * long_fraction))
        return (
            Operation(
                OperationType.RANGE,
                int(k),
                scan_length=(
                    self.long_scan_keys if i < num_long else self.range_scan_keys
                ),
            )
            for i, k in enumerate(starts)
        )

    def _puts(self, count: int) -> list[Operation]:
        ops = []
        payload = bytes(self.value_size_bytes)
        num_updates = (
            int(round(count * self.update_fraction)) if self.update_fraction else 0
        )
        for key in self._update_keys(num_updates):
            ops.append(Operation(OperationType.PUT, int(key), value=payload))
        for _ in range(count - num_updates):
            ops.append(Operation(OperationType.PUT, self._next_fresh_key, value=payload))
            self._next_fresh_key += 1
        return ops

    def _update_keys(self, count: int) -> np.ndarray:
        """Existing keys to overwrite, drawn uniformly or Zipf-skewed."""
        if count == 0:
            return np.empty(0, dtype=np.int64)
        existing = self.key_space.existing
        if self.update_skew <= 0.0:
            return self._update_rng.choice(existing, size=count, replace=True)
        if self._hot_order is None:
            # Heat is assigned to a random permutation of the resident keys so
            # the hot set is spread across the key domain (and across runs).
            self._hot_order = self._update_rng.permutation(existing)
            ranks = np.arange(1, existing.size + 1, dtype=float)
            weights = ranks ** -self.update_skew
            self._hot_probabilities = weights / weights.sum()
        return self._update_rng.choice(
            self._hot_order, size=count, replace=True, p=self._hot_probabilities
        )

    # ------------------------------------------------------------------
    # Bulk loading
    # ------------------------------------------------------------------
    def bulk_load_items(self) -> list[tuple[int, bytes]]:
        """Key/value pairs to bulk-load before running any trace."""
        payload = bytes(self.value_size_bytes)
        return [(int(key), payload) for key in self.key_space.existing]


def operation_mix(operations: Sequence[Operation]) -> Workload:
    """Recover the workload proportions realised by a concrete trace."""
    if not operations:
        raise ValueError("cannot compute the mix of an empty trace")
    counts = {kind: 0 for kind in OperationType}
    for op in operations:
        counts[op.kind] += 1
    return Workload.from_counts(
        [
            counts[OperationType.EMPTY_GET],
            counts[OperationType.GET],
            counts[OperationType.RANGE],
            counts[OperationType.PUT],
        ]
    )
