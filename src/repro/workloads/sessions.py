"""Workload sessions for the system-based evaluation (Section 8.2).

The paper executes *sequences* of workloads drawn from the benchmark set B,
each catalogued into a session type according to its dominant query type:

* ``expected`` — workloads whose KL divergence from the expected workload is
  below 0.2,
* ``empty_read`` / ``non_empty_read`` / ``read`` / ``range`` / ``write`` —
  the dominant query type covers 80% of the queries, with the remaining 20%
  spread over the other types.

This module reproduces that construction so the simulator experiments
(Figures 8–18) can replay the same kind of query sequences RocksDB saw.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .benchmark import UncertaintyBenchmark
from .workload import Workload, average_workload


class SessionType(enum.Enum):
    """The session categories used in the paper's system experiments."""

    EXPECTED = "expected"
    EMPTY_READ = "empty_read"
    NON_EMPTY_READ = "non_empty_read"
    READ = "read"
    RANGE = "range"
    WRITE = "write"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Dominant-query weight of a non-expected session (80% in the paper).
DOMINANT_FRACTION = 0.8

#: KL-divergence threshold below which a workload counts as "expected".
EXPECTED_DIVERGENCE_THRESHOLD = 0.2


@dataclass(frozen=True)
class Session:
    """One session of a query sequence: a label plus its workloads."""

    session_type: SessionType
    label: str
    workloads: tuple[Workload, ...]

    @property
    def average(self) -> Workload:
        """Average workload of the session (reported atop the paper's plots)."""
        return average_workload(self.workloads)

    def with_long_range_fraction(self, fraction: float) -> "Session":
        """Copy of the session with every workload's ``ν`` replaced.

        Used when an experiment's expected workload carries a long-range
        fraction: the benchmark set is sampled over the four query types
        only, so the range-regime split is applied uniformly afterwards.
        """
        return Session(
            session_type=self.session_type,
            label=self.label,
            workloads=tuple(
                wl.with_long_range_fraction(fraction) for wl in self.workloads
            ),
        )

    def __len__(self) -> int:
        return len(self.workloads)


@dataclass(frozen=True)
class SessionSequence:
    """An ordered sequence of sessions executed against one database."""

    expected: Workload
    sessions: tuple[Session, ...]

    def __iter__(self):
        return iter(self.sessions)

    def __len__(self) -> int:
        return len(self.sessions)

    @property
    def observed_average(self) -> Workload:
        """Average workload observed over the whole sequence."""
        return average_workload(
            wl for session in self.sessions for wl in session.workloads
        )

    def observed_divergence(self) -> float:
        """KL divergence of the observed average from the expected workload."""
        return self.observed_average.distance_to(self.expected)

    def with_long_range_fraction(self, fraction: float) -> "SessionSequence":
        """Copy of the sequence with ``ν`` applied to every session workload."""
        return SessionSequence(
            expected=self.expected.with_long_range_fraction(fraction),
            sessions=tuple(
                session.with_long_range_fraction(fraction) for session in self.sessions
            ),
        )


class SessionGenerator:
    """Builds paper-style session sequences from the uncertainty benchmark."""

    def __init__(
        self,
        benchmark: UncertaintyBenchmark | None = None,
        seed: int = 7,
    ) -> None:
        self.benchmark = benchmark if benchmark is not None else UncertaintyBenchmark()
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # Individual sessions
    # ------------------------------------------------------------------
    def session(
        self,
        session_type: SessionType | str,
        expected: Workload,
        workloads_per_session: int = 3,
    ) -> Session:
        """Generate one session of the requested type.

        Expected sessions are sampled from benchmark workloads close (in KL
        divergence) to ``expected``; dominant-query sessions rescale benchmark
        samples so the dominant type holds :data:`DOMINANT_FRACTION` of the
        queries, mirroring §8.2.
        """
        if isinstance(session_type, str):
            session_type = SessionType(session_type.lower())
        if workloads_per_session <= 0:
            raise ValueError("workloads_per_session must be positive")

        if session_type is SessionType.EXPECTED:
            workloads = self._expected_session(expected, workloads_per_session)
        else:
            workloads = self._dominant_session(session_type, workloads_per_session)
        label = session_type.value.replace("_", " ")
        return Session(session_type=session_type, label=label, workloads=workloads)

    def _expected_session(
        self, expected: Workload, count: int
    ) -> tuple[Workload, ...]:
        near = self.benchmark.within_divergence(
            expected, EXPECTED_DIVERGENCE_THRESHOLD
        )
        if near:
            indices = self._rng.integers(0, len(near), size=count)
            return tuple(near[i] for i in indices)
        # If the benchmark has no sufficiently close workload (possible for
        # extreme unimodal expected workloads), perturb the expected workload
        # slightly instead so the session still exists.
        perturbed = []
        for _ in range(count):
            noise = self._rng.dirichlet(np.ones(4)) * 0.05
            blended = 0.95 * expected.as_array() + noise
            perturbed.append(Workload.from_array(blended / blended.sum()))
        return tuple(perturbed)

    def _dominant_session(
        self, session_type: SessionType, count: int
    ) -> tuple[Workload, ...]:
        dominant_indices = {
            SessionType.EMPTY_READ: (0,),
            SessionType.NON_EMPTY_READ: (1,),
            SessionType.READ: (0, 1),
            SessionType.RANGE: (2,),
            SessionType.WRITE: (3,),
        }[session_type]

        workloads = []
        samples = self.benchmark.sample(count, seed=int(self._rng.integers(0, 2**31)))
        for sample in samples:
            arr = sample.as_array()
            dominant = np.zeros(4)
            dominant_weights = arr[list(dominant_indices)]
            if dominant_weights.sum() == 0:
                dominant_weights = np.ones(len(dominant_indices))
            dominant[list(dominant_indices)] = (
                dominant_weights / dominant_weights.sum()
            )
            rest = arr.copy()
            rest[list(dominant_indices)] = 0.0
            if rest.sum() == 0:
                rest = np.ones(4)
                rest[list(dominant_indices)] = 0.0
            rest = rest / rest.sum()
            blended = DOMINANT_FRACTION * dominant + (1 - DOMINANT_FRACTION) * rest
            workloads.append(Workload.from_array(blended / blended.sum()))
        return tuple(workloads)

    # ------------------------------------------------------------------
    # Full sequences
    # ------------------------------------------------------------------
    def paper_sequence(
        self,
        expected: Workload,
        include_writes: bool = True,
        workloads_per_session: int = 3,
    ) -> SessionSequence:
        """The six-session sequence used by Figures 8–18.

        Read-only sequences (Figures 8–9) replace the write session with an
        additional read session and end with two read sessions; write
        sequences (Figures 10–18) end with a write session followed by an
        expected session.
        """
        if include_writes:
            order: Sequence[SessionType] = (
                SessionType.READ,
                SessionType.RANGE,
                SessionType.EMPTY_READ,
                SessionType.NON_EMPTY_READ,
                SessionType.WRITE,
                SessionType.EXPECTED,
            )
        else:
            order = (
                SessionType.READ,
                SessionType.RANGE,
                SessionType.EMPTY_READ,
                SessionType.NON_EMPTY_READ,
                SessionType.READ,
                SessionType.READ,
            )
        sessions = tuple(
            self.session(session_type, expected, workloads_per_session)
            for session_type in order
        )
        return SessionSequence(expected=expected, sessions=sessions)

    def motivation_sequence(
        self,
        expected: Workload,
        shifted: Workload,
        workloads_per_session: int = 3,
    ) -> SessionSequence:
        """The three-session sequence of Figure 1 (expected, shifted, expected)."""
        def repeat(workload: Workload, session_type: SessionType, label: str) -> Session:
            return Session(
                session_type=session_type,
                label=label,
                workloads=tuple([workload] * workloads_per_session),
            )

        sessions = (
            repeat(expected, SessionType.EXPECTED, "expected workload"),
            repeat(shifted, SessionType.RANGE, "uncertain workload"),
            repeat(expected, SessionType.EXPECTED, "expected workload"),
        )
        return SessionSequence(expected=expected, sessions=sessions)
