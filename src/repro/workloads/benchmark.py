"""The uncertainty benchmark of Section 6.

Two components:

* the 15 *expected* workloads of Table 2 — uniform, unimodal, bimodal and
  trimodal mixes of the four query types, each with at least 1% of every
  query type so KL divergences stay finite; and
* the *benchmark set* ``B`` of (by default) 10,000 workloads sampled by
  drawing four independent uniform query counts in ``(0, 10000)`` and
  normalising.

Both are regenerated from the published procedure with a seeded NumPy
generator, so every experiment in the repository is deterministic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from .workload import Workload, kl_divergence


class WorkloadCategory(enum.Enum):
    """Category of an expected workload, by number of dominant query types."""

    UNIFORM = "uniform"
    UNIMODAL = "unimodal"
    BIMODAL = "bimodal"
    TRIMODAL = "trimodal"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class ExpectedWorkload:
    """One row of Table 2: an indexed, categorised expected workload."""

    index: int
    workload: Workload
    category: WorkloadCategory

    @property
    def name(self) -> str:
        """Short identifier used in figures and logs (``w0`` … ``w14``)."""
        return f"w{self.index}"

    def describe(self) -> str:
        """Human-readable description mirroring Table 2."""
        return f"{self.name} {self.workload.describe()} [{self.category.value}]"


#: Raw composition of Table 2 as (z0, z1, q, w) percentages.
_TABLE2_ROWS: tuple[tuple[float, float, float, float, WorkloadCategory], ...] = (
    (0.25, 0.25, 0.25, 0.25, WorkloadCategory.UNIFORM),
    (0.97, 0.01, 0.01, 0.01, WorkloadCategory.UNIMODAL),
    (0.01, 0.97, 0.01, 0.01, WorkloadCategory.UNIMODAL),
    (0.01, 0.01, 0.97, 0.01, WorkloadCategory.UNIMODAL),
    (0.01, 0.01, 0.01, 0.97, WorkloadCategory.UNIMODAL),
    (0.49, 0.49, 0.01, 0.01, WorkloadCategory.BIMODAL),
    (0.49, 0.01, 0.49, 0.01, WorkloadCategory.BIMODAL),
    (0.49, 0.01, 0.01, 0.49, WorkloadCategory.BIMODAL),
    (0.01, 0.49, 0.49, 0.01, WorkloadCategory.BIMODAL),
    (0.01, 0.49, 0.01, 0.49, WorkloadCategory.BIMODAL),
    (0.01, 0.01, 0.49, 0.49, WorkloadCategory.BIMODAL),
    (0.33, 0.33, 0.33, 0.01, WorkloadCategory.TRIMODAL),
    (0.33, 0.33, 0.01, 0.33, WorkloadCategory.TRIMODAL),
    (0.33, 0.01, 0.33, 0.33, WorkloadCategory.TRIMODAL),
    (0.01, 0.33, 0.33, 0.33, WorkloadCategory.TRIMODAL),
)


def expected_workloads() -> tuple[ExpectedWorkload, ...]:
    """The 15 expected workloads of Table 2, in paper order (w0 … w14)."""
    rows = []
    for index, (z0, z1, q, w, category) in enumerate(_TABLE2_ROWS):
        rows.append(
            ExpectedWorkload(
                index=index,
                workload=Workload(z0=z0, z1=z1, q=q, w=w),
                category=category,
            )
        )
    return tuple(rows)


def expected_workload(index: int) -> ExpectedWorkload:
    """Return the expected workload ``w{index}`` from Table 2."""
    table = expected_workloads()
    if not 0 <= index < len(table):
        raise IndexError(f"expected workload index must be in [0, {len(table) - 1}]")
    return table[index]


def workloads_by_category(
    category: WorkloadCategory | str,
) -> tuple[ExpectedWorkload, ...]:
    """All Table 2 workloads belonging to one category."""
    if isinstance(category, str):
        category = WorkloadCategory(category.lower())
    return tuple(w for w in expected_workloads() if w.category is category)


class UncertaintyBenchmark:
    """The benchmark set ``B`` of sampled workloads (Section 6).

    Parameters
    ----------
    size:
        Number of sampled workloads (the paper uses 10,000).
    max_queries:
        Upper bound of the uniform query-count range per query type.
    seed:
        Seed of the NumPy generator, for reproducibility.
    """

    def __init__(
        self, size: int = 10_000, max_queries: int = 10_000, seed: int = 42
    ) -> None:
        if size <= 0:
            raise ValueError("size must be positive")
        if max_queries <= 1:
            raise ValueError("max_queries must be greater than 1")
        self.size = size
        self.max_queries = max_queries
        self.seed = seed
        self._counts, self._workloads = self._sample()

    def _sample(self) -> tuple[np.ndarray, list[Workload]]:
        rng = np.random.default_rng(self.seed)
        # Draw counts in (0, max_queries): uniform integers in [1, max_queries).
        counts = rng.integers(1, self.max_queries, size=(self.size, 4)).astype(float)
        workloads = [Workload.from_counts(row) for row in counts]
        return counts, workloads

    # ------------------------------------------------------------------
    # Collection protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.size

    def __iter__(self) -> Iterator[Workload]:
        return iter(self._workloads)

    def __getitem__(self, index: int) -> Workload:
        return self._workloads[index]

    @property
    def workloads(self) -> Sequence[Workload]:
        """The sampled workloads, in sampling order."""
        return tuple(self._workloads)

    @property
    def query_counts(self) -> np.ndarray:
        """Raw query counts (size × 4) used to derive the workloads.

        The system experiments execute these counts as concrete queries.
        """
        return self._counts.copy()

    def as_matrix(self) -> np.ndarray:
        """All sampled workloads stacked into a (size × 4) matrix."""
        return np.vstack([wl.as_array() for wl in self._workloads])

    # ------------------------------------------------------------------
    # Divergence utilities
    # ------------------------------------------------------------------
    def kl_divergences(self, reference: Workload) -> np.ndarray:
        """KL divergence of every benchmark workload w.r.t. ``reference``.

        This is the quantity histogrammed in Figure 3.
        """
        reference_arr = reference.as_array()
        matrix = self.as_matrix()
        with np.errstate(divide="ignore", invalid="ignore"):
            ratios = np.where(matrix > 0, matrix / reference_arr, 1.0)
            terms = np.where(matrix > 0, matrix * np.log(ratios), 0.0)
        divergences = terms.sum(axis=1)
        # Positive mass in the sample matched with zero reference mass -> inf.
        infinite = np.any((matrix > 0) & (reference_arr == 0), axis=1)
        divergences[infinite] = np.inf
        return divergences

    def within_divergence(self, reference: Workload, rho: float) -> list[Workload]:
        """Benchmark workloads whose KL divergence from ``reference`` is ≤ ``rho``."""
        if rho < 0:
            raise ValueError("rho must be non-negative")
        divergences = self.kl_divergences(reference)
        return [wl for wl, d in zip(self._workloads, divergences) if d <= rho]

    def mean_divergence(self, reference: Workload) -> float:
        """Mean KL divergence of the benchmark w.r.t. ``reference``.

        The paper recommends this statistic (computed over historical
        workloads) as the value of the uncertainty parameter ``ρ``.
        """
        divergences = self.kl_divergences(reference)
        finite = divergences[np.isfinite(divergences)]
        if finite.size == 0:
            raise ValueError("no finite divergences w.r.t. the reference workload")
        return float(finite.mean())

    def sample(self, count: int, seed: int | None = None) -> list[Workload]:
        """Draw ``count`` workloads from the benchmark uniformly at random."""
        if count <= 0:
            raise ValueError("count must be positive")
        rng = np.random.default_rng(self.seed if seed is None else seed)
        indices = rng.integers(0, self.size, size=count)
        return [self._workloads[i] for i in indices]


def rho_grid(
    start: float = 0.0, stop: float = 4.0, step: float = 0.25
) -> np.ndarray:
    """The grid of uncertainty parameters used by the model evaluation (§7.2).

    The paper evaluates 15 values of ``ρ`` in ``(0, 4)`` with a 0.25 step;
    we include 0 as well because the ``ρ = 0`` robust tuning is shown in
    Figures 5 and 6.
    """
    if step <= 0:
        raise ValueError("step must be positive")
    if stop < start:
        raise ValueError("stop must be at least start")
    count = int(round((stop - start) / step))
    return np.round(np.linspace(start, start + count * step, count + 1), 10)


__all__ = [
    "ExpectedWorkload",
    "UncertaintyBenchmark",
    "WorkloadCategory",
    "expected_workload",
    "expected_workloads",
    "kl_divergence",
    "rho_grid",
    "workloads_by_category",
]
