"""Workload representation used throughout Endure.

A workload is a probability vector ``w = (z0, z1, q, w)`` over the four basic
operations of an LSM tree: empty point lookups, non-empty point lookups,
range lookups and writes (Table 1 of the paper).  The components are
non-negative and sum to one.

Following Dostoevsky's split of the range regime, a workload additionally
carries ``long_range_fraction`` — the fraction ``ν`` of its range lookups
that are *long* (scan-dominated) rather than *short* (seek-dominated).  The
split is a property of the range queries themselves, not a fifth query type:
the probability vector stays four-dimensional (so the KL-divergence
uncertainty machinery of the paper is untouched) and ``ν`` modulates the
range component of the cost vector instead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

#: Order of the workload components, matching the cost-vector order.
QUERY_TYPES: tuple[str, ...] = ("z0", "z1", "q", "w")

#: Human-readable names for the query types, in the same order.
QUERY_NAMES: tuple[str, ...] = (
    "empty point lookup",
    "non-empty point lookup",
    "range lookup",
    "write",
)


@dataclass(frozen=True)
class Workload:
    """An LSM workload expressed as proportions of the four query types.

    Parameters
    ----------
    z0:
        Fraction of point lookups that return no result.
    z1:
        Fraction of point lookups that find their key.
    q:
        Fraction of range lookups.
    w:
        Fraction of writes (inserts/updates/deletes).
    long_range_fraction:
        Fraction ``ν`` of the range lookups that are long (scan-dominated);
        ``0`` (the default, matching the paper's short-range setup) leaves
        every cost identical to the pre-split model.
    """

    z0: float
    z1: float
    q: float
    w: float
    long_range_fraction: float = 0.0

    #: Tolerance used when validating that the proportions sum to one.
    _SUM_TOLERANCE = 1e-6

    def __post_init__(self) -> None:
        values = (self.z0, self.z1, self.q, self.w)
        if any(v < 0 for v in values):
            raise ValueError(f"workload proportions must be non-negative: {values}")
        total = sum(values)
        if not math.isclose(total, 1.0, abs_tol=self._SUM_TOLERANCE):
            raise ValueError(
                f"workload proportions must sum to 1, got {total!r} for {values}"
            )
        if not 0.0 <= self.long_range_fraction <= 1.0:
            raise ValueError(
                f"long_range_fraction must lie in [0, 1], "
                f"got {self.long_range_fraction}"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_array(
        cls,
        values: Sequence[float] | np.ndarray,
        long_range_fraction: float = 0.0,
    ) -> "Workload":
        """Build a workload from a length-4 sequence ``(z0, z1, q, w)``."""
        arr = np.asarray(values, dtype=float)
        if arr.shape != (4,):
            raise ValueError(f"expected 4 workload components, got shape {arr.shape}")
        return cls(
            z0=float(arr[0]),
            z1=float(arr[1]),
            q=float(arr[2]),
            w=float(arr[3]),
            long_range_fraction=long_range_fraction,
        )

    @classmethod
    def from_counts(cls, counts: Sequence[float] | np.ndarray) -> "Workload":
        """Build a workload from raw (unnormalised) query counts."""
        arr = np.asarray(counts, dtype=float)
        if arr.shape != (4,):
            raise ValueError(f"expected 4 query counts, got shape {arr.shape}")
        if np.any(arr < 0):
            raise ValueError("query counts must be non-negative")
        total = float(arr.sum())
        if total <= 0:
            raise ValueError("at least one query count must be positive")
        return cls.from_array(arr / total)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Workload":
        """Build a workload from a mapping with keys ``z0, z1, q, w``."""
        return cls(
            z0=float(data["z0"]),
            z1=float(data["z1"]),
            q=float(data["q"]),
            w=float(data["w"]),
            long_range_fraction=float(data.get("long_range_fraction", 0.0)),
        )

    @classmethod
    def uniform(cls) -> "Workload":
        """The uniform workload (25% of each query type)."""
        return cls(0.25, 0.25, 0.25, 0.25)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def as_array(self) -> np.ndarray:
        """Return ``(z0, z1, q, w)`` as a NumPy array."""
        return np.array([self.z0, self.z1, self.q, self.w], dtype=float)

    def as_tuple(self) -> tuple[float, float, float, float]:
        """Return ``(z0, z1, q, w)`` as a plain tuple."""
        return (self.z0, self.z1, self.q, self.w)

    def as_dict(self) -> dict[str, float]:
        """Return the workload keyed by component name.

        ``long_range_fraction`` is included only when non-zero, keeping the
        serialisation of classical short-range workloads unchanged.
        """
        data = dict(zip(QUERY_TYPES, self.as_tuple()))
        if self.long_range_fraction > 0.0:
            data["long_range_fraction"] = self.long_range_fraction
        return data

    @property
    def read_fraction(self) -> float:
        """Total fraction of read operations (point + range lookups)."""
        return self.z0 + self.z1 + self.q

    @property
    def write_fraction(self) -> float:
        """Fraction of write operations (alias of ``w``)."""
        return self.w

    @property
    def dominant_query(self) -> str:
        """Name (``z0``/``z1``/``q``/``w``) of the most frequent query type."""
        values = self.as_tuple()
        return QUERY_TYPES[int(np.argmax(values))]

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def with_long_range_fraction(self, fraction: float) -> "Workload":
        """Return a copy with a different long-range fraction ``ν``."""
        return replace(self, long_range_fraction=fraction)

    def mix(self, other: "Workload", weight: float) -> "Workload":
        """Convex combination ``(1 - weight) * self + weight * other``.

        The long-range fraction blends weighted by each side's range mass —
        it is a conditional property of the range queries, so mixing a
        range-free workload into a range-heavy one leaves ``ν`` untouched.
        """
        if not 0.0 <= weight <= 1.0:
            raise ValueError("weight must lie in [0, 1]")
        blended = (1.0 - weight) * self.as_array() + weight * other.as_array()
        range_mass = (1.0 - weight) * self.q + weight * other.q
        if range_mass > 0.0:
            fraction = (
                (1.0 - weight) * self.q * self.long_range_fraction
                + weight * other.q * other.long_range_fraction
            ) / range_mass
        else:
            fraction = 0.0
        return Workload.from_array(blended, long_range_fraction=fraction)

    def smoothed(self, floor: float = 0.01) -> "Workload":
        """Return a copy where every component is at least ``floor``.

        The uncertainty benchmark guarantees at least 1% of every query type
        so that KL divergences stay finite; this mirrors that procedure.
        """
        if not 0.0 <= floor < 0.25:
            raise ValueError("floor must lie in [0, 0.25)")
        arr = np.maximum(self.as_array(), floor)
        return Workload.from_array(
            arr / arr.sum(), long_range_fraction=self.long_range_fraction
        )

    def distance_to(self, other: "Workload") -> float:
        """KL divergence ``I_KL(self, other)`` from this workload to ``other``."""
        return kl_divergence(self.as_array(), other.as_array())

    def describe(self) -> str:
        """Compact percentage rendering, e.g. ``(25%, 25%, 25%, 25%)``."""
        base = "(" + ", ".join(f"{100 * v:.0f}%" for v in self.as_tuple()) + ")"
        if self.long_range_fraction > 0.0:
            base += f" [long-range {100 * self.long_range_fraction:.0f}%]"
        return base


def kl_divergence(p: Sequence[float] | np.ndarray, q: Sequence[float] | np.ndarray) -> float:
    """Kullback–Leibler divergence ``I_KL(p, q) = Σ p_i log(p_i / q_i)``.

    Components of ``p`` that are exactly zero contribute nothing; a positive
    component of ``p`` matched with a zero component of ``q`` yields infinity.
    """
    p_arr = np.asarray(p, dtype=float)
    q_arr = np.asarray(q, dtype=float)
    if p_arr.shape != q_arr.shape:
        raise ValueError("p and q must have the same shape")
    if np.any(p_arr < 0) or np.any(q_arr < 0):
        raise ValueError("probability vectors must be non-negative")
    mask = p_arr > 0
    if np.any(q_arr[mask] == 0):
        return float("inf")
    return float(np.sum(p_arr[mask] * np.log(p_arr[mask] / q_arr[mask])))


def average_workload(workloads: Iterable[Workload]) -> Workload:
    """Component-wise mean of a collection of workloads (renormalised).

    The long-range fraction is averaged weighted by each workload's range
    mass (it is a conditional property of the range queries).
    """
    collected = list(workloads)
    arrays = [wl.as_array() for wl in collected]
    if not arrays:
        raise ValueError("cannot average an empty collection of workloads")
    mean = np.mean(arrays, axis=0)
    range_mass = sum(wl.q for wl in collected)
    if range_mass > 0.0:
        fraction = (
            sum(wl.q * wl.long_range_fraction for wl in collected) / range_mass
        )
    else:
        fraction = 0.0
    return Workload.from_array(mean / mean.sum(), long_range_fraction=fraction)
