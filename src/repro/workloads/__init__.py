"""Workload algebra, the uncertainty benchmark, sessions and query traces."""

from .benchmark import (
    ExpectedWorkload,
    UncertaintyBenchmark,
    WorkloadCategory,
    expected_workload,
    expected_workloads,
    rho_grid,
    workloads_by_category,
)
from .sessions import (
    DOMINANT_FRACTION,
    EXPECTED_DIVERGENCE_THRESHOLD,
    Session,
    SessionGenerator,
    SessionSequence,
    SessionType,
)
from .traces import KeySpace, Operation, OperationType, TraceGenerator, operation_mix
from .workload import (
    QUERY_NAMES,
    QUERY_TYPES,
    Workload,
    average_workload,
    kl_divergence,
)

__all__ = [
    "DOMINANT_FRACTION",
    "EXPECTED_DIVERGENCE_THRESHOLD",
    "ExpectedWorkload",
    "KeySpace",
    "Operation",
    "OperationType",
    "QUERY_NAMES",
    "QUERY_TYPES",
    "Session",
    "SessionGenerator",
    "SessionSequence",
    "SessionType",
    "TraceGenerator",
    "UncertaintyBenchmark",
    "Workload",
    "WorkloadCategory",
    "average_workload",
    "expected_workload",
    "expected_workloads",
    "kl_divergence",
    "operation_mix",
    "rho_grid",
    "workloads_by_category",
]
