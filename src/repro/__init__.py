"""Reproduction of Endure: robust LSM-tree tuning under workload uncertainty.

The package is organised as:

* :mod:`repro.lsm` — analytical LSM-tree cost model (Monkey-style Bloom
  allocation, the four query-cost equations of the paper).
* :mod:`repro.core` — the nominal and robust tuners (the paper's
  contribution), plus a grid-search baseline.
* :mod:`repro.workloads` — workload algebra, the uncertainty benchmark,
  session sequences and concrete query traces.
* :mod:`repro.storage` — a pure-Python LSM-tree storage engine with I/O
  accounting, standing in for RocksDB in the system-based evaluation.
* :mod:`repro.online` — the online adaptive-tuning subsystem: workload-drift
  detection over the live operation stream and in-place re-tuning of a
  running tree.
* :mod:`repro.analysis` — evaluation metrics and the experiment drivers that
  regenerate every figure and table of the paper, plus the static-vs-adaptive
  drift experiments.
"""

from .core import GridTuner, NominalTuner, RobustTuner, TuningResult, UncertaintyRegion
from .lsm import (
    ALL_POLICIES,
    CLASSIC_POLICIES,
    DEFAULT_SYSTEM,
    CompactionPolicy,
    CostBreakdown,
    LSMCostModel,
    LSMTuning,
    Policy,
    SystemConfig,
    simulator_system,
)
from .workloads import (
    UncertaintyBenchmark,
    Workload,
    expected_workload,
    expected_workloads,
    kl_divergence,
    rho_grid,
)

__version__ = "1.0.0"

__all__ = [
    "ALL_POLICIES",
    "CLASSIC_POLICIES",
    "CompactionPolicy",
    "CostBreakdown",
    "DEFAULT_SYSTEM",
    "GridTuner",
    "LSMCostModel",
    "LSMTuning",
    "NominalTuner",
    "Policy",
    "RobustTuner",
    "SystemConfig",
    "TuningResult",
    "UncertaintyBenchmark",
    "UncertaintyRegion",
    "Workload",
    "__version__",
    "expected_workload",
    "expected_workloads",
    "kl_divergence",
    "rho_grid",
    "simulator_system",
]
