"""The sharded serving layer: bit-identity, merging, pooling, disposal."""

from __future__ import annotations

import tempfile

import pytest

from repro.lsm import LSMTuning, Policy, simulator_system
from repro.online import OnlineConfig
from repro.serving import (
    ShardedComparison,
    ShardedExecutor,
    fleet_percentiles,
    format_sharded_comparison,
)
from repro.serving.executor import tree_fingerprint
from repro.serving.sharding import partition_keys
from repro.storage import ExecutorConfig, WorkloadExecutor
from repro.workloads import SessionGenerator, UncertaintyBenchmark, Workload

_SYSTEM = simulator_system(num_entries=4_000)
_TUNING = LSMTuning(size_ratio=5.0, bits_per_entry=5.0, policy=Policy.LEVELING)
_EXPECTED = Workload(z0=0.25, z1=0.55, q=0.05, w=0.15)


@pytest.fixture(scope="module")
def sequence():
    generator = SessionGenerator(UncertaintyBenchmark(size=200, seed=13), seed=13)
    return generator.paper_sequence(_EXPECTED, workloads_per_session=1)


def _config(**kwargs) -> ExecutorConfig:
    base = dict(queries_per_workload=250, seed=17)
    base.update(kwargs)
    return ExecutorConfig(**base)


class TestSingleShardBitIdentity:
    """num_shards=1 must reproduce the classic executor byte for byte."""

    def test_static_sessions_match_unsharded(self, sequence):
        base = WorkloadExecutor(_SYSTEM, _config()).run_sequence(_TUNING, sequence)
        one = ShardedExecutor(_SYSTEM, _config()).run_sequence(_TUNING, sequence)
        assert one.num_shards == 1
        assert one.sessions == base.sessions
        assert one.average_ios_per_query == base.average_ios_per_query
        assert one.average_latency_us == base.average_latency_us

    def test_static_final_state_matches_scalar_replay(self, sequence):
        one = ShardedExecutor(_SYSTEM, _config()).run_sequence(_TUNING, sequence)
        executor = WorkloadExecutor(_SYSTEM, _config())
        tree = executor.build_tree(_TUNING)
        trace = executor.trace_generator()
        for session in sequence:
            for workload in session.workloads:
                for op in trace.operations(workload, 250):
                    tree.apply(op)
        assert one.shards[0].fingerprint == tree_fingerprint(tree)
        assert one.shards[0].stats == tree.stats()

    @pytest.mark.parametrize("admission", ["fixed", "queue-depth"])
    def test_adaptive_run_matches_unsharded(self, sequence, admission):
        online = OnlineConfig(
            window=400, check_interval=64, min_observations=128, cooldown=512,
            confirm_checks=2, mode="nominal", horizon_ops=12_000,
            migration="incremental", migration_step_ops=32,
            migration_step_pages=8, admission=admission,
        )
        base = WorkloadExecutor(_SYSTEM, _config()).run_sequence_adaptive(
            _TUNING, sequence, online=online
        )
        one = ShardedExecutor(_SYSTEM, _config()).run_sequence_adaptive(
            _TUNING, sequence, online=online
        )
        shard = one.shards[0].measurement
        assert shard.sessions == base.sessions
        assert shard.events == base.events
        assert shard.final_tuning == base.final_tuning
        assert one.sessions == base.sessions


class TestShardedRuns:
    def test_shard_trees_load_the_hash_partition(self, sequence):
        runs = ShardedExecutor(_SYSTEM, _config(num_shards=3)).run_sequence(
            _TUNING, sequence
        ).shards
        parts = partition_keys(
            WorkloadExecutor(_SYSTEM, _config()).key_space.existing, 3
        )
        assert len(runs) == 3
        # Entry counts reflect the partition plus this shard's writes.
        for run, part in zip(runs, parts):
            assert run.stats.num_entries >= part.size

    def test_merged_sessions_sum_shard_counters(self, sequence):
        measurement = ShardedExecutor(_SYSTEM, _config(num_shards=4)).run_sequence(
            _TUNING, sequence
        )
        for index, merged in enumerate(measurement.sessions):
            parts = [run.measurement.sessions[index] for run in measurement.shards]
            for field in (
                "query_reads", "query_writes", "flush_writes",
                "compaction_reads", "compaction_writes",
            ):
                assert getattr(merged, field) == sum(
                    getattr(p, field) for p in parts
                )
            # The merged query count is the *global* stream's (ranges counted
            # once), so it is bounded by the per-shard sum that double-counts
            # fanned-out scans.
            assert merged.num_queries == 250
            assert sum(p.num_queries for p in parts) >= merged.num_queries

    def test_batched_and_scalar_shard_replay_agree(self, sequence):
        """Coalescing GET spans across range scans is bit-identical."""
        batched = ShardedExecutor(
            _SYSTEM, _config(num_shards=2, batch_execution=True)
        ).run_sequence(_TUNING, sequence)
        scalar = ShardedExecutor(
            _SYSTEM, _config(num_shards=2, batch_execution=False)
        ).run_sequence(_TUNING, sequence)
        assert batched.sessions == scalar.sessions
        for fast, slow in zip(batched.shards, scalar.shards):
            assert fast.measurement.sessions == slow.measurement.sessions
            assert fast.fingerprint == slow.fingerprint

    def test_parallel_pool_matches_sequential(self, sequence):
        config = _config(num_shards=2)
        sequential = ShardedExecutor(_SYSTEM, config).run_sequence(
            _TUNING, sequence
        )
        pooled = ShardedExecutor(_SYSTEM, config).run_sequence(
            _TUNING, sequence, parallel=True, processes=2
        )
        assert pooled.sessions == sequential.sessions
        for a, b in zip(pooled.shards, sequential.shards):
            assert a.measurement == b.measurement
            assert a.fingerprint == b.fingerprint

    def test_wall_clock_views(self, sequence):
        measurement = ShardedExecutor(_SYSTEM, _config(num_shards=2)).run_sequence(
            _TUNING, sequence
        )
        per_shard = [run.elapsed_s for run in measurement.shards]
        assert measurement.critical_path_s == max(per_shard)
        assert measurement.total_cpu_s == pytest.approx(sum(per_shard))


class TestPersistentSharding:
    def test_each_shard_gets_its_own_data_dir(self, sequence, tmp_path):
        config = _config(
            num_shards=2, backend="persistent", data_dir=str(tmp_path / "fleet")
        )
        ShardedExecutor(_SYSTEM, config).run_sequence(_TUNING, sequence)
        shard_dirs = sorted(p.name for p in (tmp_path / "fleet").iterdir())
        assert shard_dirs == ["shard-00", "shard-01"]
        for name in shard_dirs:
            kept = list((tmp_path / "fleet" / name).glob("tree-*"))
            assert len(kept) == 1  # user-chosen dirs keep trees for inspection

    def test_temp_dir_shards_are_disposed(self, sequence, tmp_path, monkeypatch):
        monkeypatch.setenv("TMPDIR", str(tmp_path))
        monkeypatch.setattr(tempfile, "tempdir", None)
        config = _config(num_shards=2, backend="persistent")
        measurement = ShardedExecutor(_SYSTEM, config).run_sequence(
            _TUNING, sequence
        )
        assert measurement.num_shards == 2
        assert list(tmp_path.iterdir()) == []

    def test_persistent_matches_simulated_counters(self, sequence):
        simulated = ShardedExecutor(_SYSTEM, _config(num_shards=2)).run_sequence(
            _TUNING, sequence
        )
        persistent = ShardedExecutor(
            _SYSTEM, _config(num_shards=2, backend="persistent")
        ).run_sequence(_TUNING, sequence)
        assert simulated.sessions == persistent.sessions
        for a, b in zip(simulated.shards, persistent.shards):
            assert a.measurement == b.measurement
            assert a.fingerprint == b.fingerprint


class TestFleetViews:
    def test_fleet_percentiles(self):
        pct = fleet_percentiles([1.0, 2.0, 3.0, 10.0])
        assert pct["p50"] == pytest.approx(2.5)
        assert pct["worst"] == 10.0
        assert pct["p95"] <= pct["worst"]
        assert fleet_percentiles([]) == {"p50": 0.0, "p95": 0.0, "worst": 0.0}

    def test_comparison_summary_format_and_json(self, sequence):
        executor = ShardedExecutor(_SYSTEM, _config(num_shards=2))
        tunings = {
            "nominal": _TUNING,
            "robust": LSMTuning(8.0, 6.0, Policy.TIERING),
        }
        comparison = ShardedComparison(
            expected=_EXPECTED,
            rho=0.25,
            num_shards=2,
            tunings=tunings,
            measurements=executor.compare(tunings, sequence),
        )
        summary = comparison.summary()
        assert set(summary) == {"nominal", "robust"}
        assert all(value > 0 for value in summary.values())
        payload = comparison.to_dict()
        assert payload["num_shards"] == 2
        assert set(payload["results"]) == {"nominal", "robust"}
        assert len(payload["results"]["nominal"]["shard_ios"]) == 2
        text = format_sharded_comparison(comparison)
        assert "shards=2" in text
        assert "fleet io/q" in text
        assert "wall-clock critical-path=" in text

    def test_worst_shard_session_ios(self, sequence):
        measurement = ShardedExecutor(_SYSTEM, _config(num_shards=2)).run_sequence(
            _TUNING, sequence
        )
        worst = measurement.worst_shard_session_ios()
        assert worst >= max(
            run.measurement.average_ios_per_query for run in measurement.shards
        )


class TestConfigValidation:
    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError, match="num_shards"):
            ExecutorConfig(num_shards=0)

    def test_rejects_unknown_admission(self):
        with pytest.raises(ValueError, match="admission"):
            ExecutorConfig(admission="asap")
