"""Unit tests of the hash partitioner and operation router."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving.sharding import (
    partition_keys,
    shard_ids,
    shard_of_key,
    shard_operations,
)
from repro.workloads import KeySpace, Operation, OperationType


class TestShardIds:
    def test_deterministic_and_in_range(self):
        keys = np.arange(-500, 500, dtype=np.int64)
        for n in (1, 2, 3, 4, 7):
            sids = shard_ids(keys, n)
            assert sids.dtype == np.int64
            assert sids.min() >= 0 and sids.max() < n
            assert np.array_equal(sids, shard_ids(keys, n))

    def test_single_shard_owns_everything(self):
        keys = np.arange(100, dtype=np.int64)
        assert np.array_equal(shard_ids(keys, 1), np.zeros(100, dtype=np.int64))

    def test_balance_on_structured_key_space(self):
        """The mixer must not alias with the key space's stride structure."""
        space = KeySpace.build(20_000, seed=29)
        for n in (2, 4, 8):
            counts = np.bincount(shard_ids(space.existing, n), minlength=n)
            expected = space.existing.size / n
            assert counts.min() > 0.9 * expected
            assert counts.max() < 1.1 * expected

    def test_scalar_helper_matches_vector(self):
        keys = np.array([0, 1, -17, 2**40], dtype=np.int64)
        vec = shard_ids(keys, 5)
        assert [shard_of_key(int(k), 5) for k in keys] == vec.tolist()

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError, match="num_shards"):
            shard_ids(np.arange(4, dtype=np.int64), 0)


class TestPartitionKeys:
    def test_partitions_are_a_disjoint_cover(self):
        keys = np.arange(0, 4_000, 2, dtype=np.int64)
        parts = partition_keys(keys, 4)
        assert len(parts) == 4
        merged = np.sort(np.concatenate(parts))
        assert np.array_equal(merged, np.sort(keys))
        sids = shard_ids(keys, 4)
        for shard, part in enumerate(parts):
            assert np.array_equal(part, keys[sids == shard])

    def test_single_shard_is_identity(self):
        keys = np.arange(10, dtype=np.int64)
        (only,) = partition_keys(keys, 1)
        assert np.array_equal(only, keys)


def _ops():
    return [
        Operation(kind=OperationType.GET, key=3),
        Operation(kind=OperationType.RANGE, key=10, scan_length=5),
        Operation(kind=OperationType.PUT, key=11),
        Operation(kind=OperationType.EMPTY_GET, key=90),
        Operation(kind=OperationType.GET, key=7),
        Operation(kind=OperationType.RANGE, key=40, scan_length=3),
    ]


class TestShardOperations:
    def test_points_route_by_owner_ranges_fan_out(self):
        ops = _ops()
        num_shards = 3
        streams = [shard_operations(ops, s, num_shards) for s in range(num_shards)]
        for shard, stream in enumerate(streams):
            for op in stream:
                if op.kind is not OperationType.RANGE:
                    assert shard_of_key(op.key, num_shards) == shard
        # Every range op appears on every shard; every point op on exactly one.
        for op in ops:
            holders = sum(op in stream for stream in streams)
            assert holders == (num_shards if op.kind is OperationType.RANGE else 1)

    def test_stream_order_is_preserved(self):
        ops = _ops()
        for shard in range(3):
            stream = shard_operations(ops, shard, 3)
            indices = [ops.index(op) for op in stream]
            assert indices == sorted(indices)

    def test_single_shard_passthrough(self):
        ops = _ops()
        assert shard_operations(ops, 0, 1) == ops

    def test_rejects_out_of_range_shard(self):
        with pytest.raises(ValueError, match="shard"):
            shard_operations(_ops(), 3, 3)
