"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_tune_command_parses_workload(self):
        args = build_parser().parse_args(
            ["tune", "--workload", "0.25", "0.25", "0.25", "0.25", "--rho", "0.5"]
        )
        assert args.rho == 0.5
        assert args.workload == [0.25, 0.25, 0.25, 0.25]

    def test_compare_command_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.expected_index == 11
        assert args.rho == 0.25


class TestCommands:
    def test_workloads_command_lists_table2(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "w0" in out and "w14" in out
        assert "trimodal" in out

    def test_tune_command_outputs_json(self, capsys):
        code = main(
            ["tune", "--workload", "0.25", "0.25", "0.25", "0.25", "--rho", "0.5"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert "nominal" in payload
        assert "robust" in payload
        assert payload["rho"] == 0.5

    def test_tune_command_without_uncertainty(self, capsys):
        code = main(["tune", "--workload", "0.1", "0.1", "0.1", "0.7", "--rho", "0"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert "nominal" in payload
        assert "robust" not in payload

    def test_compare_command_runs_small_simulation(self, capsys):
        code = main(
            ["compare", "--expected-index", "11", "--rho", "0.5", "--num-entries", "4000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "nominal" in out and "robust" in out
        assert "I/O reduction" in out


class TestFractionValidation:
    """Every [0, 1] fraction knob dies at the parser with a usage error.

    These used to be plain ``type=float``: an out-of-range value sailed
    through argparse and surfaced (if at all) as a downstream traceback or a
    silently nonsensical trace mix.
    """

    _TUNE = ["tune", "--workload", "0.25", "0.25", "0.25", "0.25", "--rho", "0"]

    @pytest.mark.parametrize("value", ["1.5", "-0.1", "two"])
    def test_tune_rejects_bad_long_range_fraction(self, capsys, value):
        with pytest.raises(SystemExit) as excinfo:
            main(self._TUNE + ["--long-range-fraction", value])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--long-range-fraction" in err
        assert "fraction in [0, 1]" in err or "expected a number" in err

    @pytest.mark.parametrize("value", ["0", "1.5", "-0.2"])
    def test_tune_rejects_bad_long_range_selectivity(self, capsys, value):
        """Selectivity is a share of all entries; zero would make long scans
        degenerate, so the accepted interval is half-open."""
        with pytest.raises(SystemExit) as excinfo:
            main(self._TUNE + ["--long-range-selectivity", value])
        assert excinfo.value.code == 2
        assert "fraction in (0, 1]" in capsys.readouterr().err

    @pytest.mark.parametrize("value", ["1.01", "-1"])
    def test_compare_rejects_bad_long_range_fraction(self, capsys, value):
        with pytest.raises(SystemExit) as excinfo:
            main(["compare", "--long-range-fraction", value])
        assert excinfo.value.code == 2
        assert "fraction in [0, 1]" in capsys.readouterr().err

    @pytest.mark.parametrize("command", ["compare", "online"])
    @pytest.mark.parametrize("value", ["2", "-0.5"])
    def test_rejects_bad_update_fraction(self, capsys, command, value):
        with pytest.raises(SystemExit) as excinfo:
            main([command, "--update-fraction", value])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--update-fraction" in err
        assert "fraction in [0, 1]" in err

    @pytest.mark.parametrize("command", ["compare", "online"])
    def test_rejects_negative_update_skew(self, capsys, command):
        with pytest.raises(SystemExit) as excinfo:
            main([command, "--update-skew", "-1.0"])
        assert excinfo.value.code == 2
        assert "non-negative" in capsys.readouterr().err

    def test_boundary_fractions_parse(self):
        args = build_parser().parse_args(
            ["compare", "--long-range-fraction", "1.0", "--update-fraction", "0"]
        )
        assert args.long_range_fraction == 1.0
        assert args.update_fraction == 0.0


class TestBackendFlag:
    def test_compare_backend_defaults_to_simulated(self):
        args = build_parser().parse_args(["compare"])
        assert args.backend == "simulated"
        assert args.data_dir is None

    def test_compare_rejects_unknown_backend(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["compare", "--backend", "rocksdb"])
        assert excinfo.value.code == 2
        assert "--backend" in capsys.readouterr().err

    def test_compare_runs_on_the_persistent_backend(self, capsys, tmp_path):
        """End to end: the comparison measured on real SSTable files reports
        the same table structure as the simulated run (the counters are
        byte-identical across backends by construction)."""
        code = main(
            ["compare", "--expected-index", "2", "--num-entries", "4000",
             "--seed", "7", "--backend", "persistent",
             "--data-dir", str(tmp_path / "trees")]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "I/O reduction" in out
        # The user-chosen data dir keeps the tree files for inspection.
        manifests = list((tmp_path / "trees").glob("tree-*/MANIFEST.json"))
        assert manifests


class TestPolicyFlag:
    def test_tune_accepts_lazy_leveling(self, capsys):
        code = main(
            [
                "tune",
                "--workload", "0.45", "0.05", "0.0", "0.5",
                "--rho", "0",
                "--policy", "lazy-leveling",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["policies"] == ["lazy-leveling"]
        assert payload["nominal"]["policy"] == "lazy-leveling"

    def test_tune_policy_all_searches_every_policy(self, capsys):
        code = main(
            ["tune", "--workload", "0.25", "0.25", "0.25", "0.25", "--rho", "0",
             "--policy", "all"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["policies"] == [
            "leveling", "tiering", "lazy-leveling", "1-leveling", "fluid"
        ]

    def test_tune_policy_classic_matches_the_paper_pair(self, capsys):
        code = main(
            ["tune", "--workload", "0.25", "0.25", "0.25", "0.25", "--rho", "0",
             "--policy", "classic"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["policies"] == ["leveling", "tiering"]

    def test_tune_num_entries_scales_the_system(self, capsys):
        code = main(
            ["tune", "--workload", "0.25", "0.25", "0.25", "0.25", "--rho", "0",
             "--num-entries", "1000000"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["num_entries"] == 1000000

    def test_tune_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["tune", "--workload", "0.25", "0.25", "0.25", "0.25",
                 "--policy", "fifo"]
            )

    def test_tune_defaults_to_the_classic_policy_pair(self, capsys):
        code = main(["tune", "--workload", "0.25", "0.25", "0.25", "0.25", "--rho", "0"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["policies"] == ["leveling", "tiering"]


def _run_main(capsys, argv):
    assert main(argv) == 0
    return capsys.readouterr().out


#: A tune invocation whose solved tuning has 6 levels (5 upper levels), so
#: a pinned 5-element vector is the matching length.
_KBOUNDS_TUNE_ARGS = [
    "tune", "--workload", "0.1", "0.3", "0.1", "0.5",
    "--rho", "0", "--policy", "fluid", "--num-entries", "100000",
]


class TestKBoundsFlag:
    """--k-bounds parsing and validation: every malformation dies at the
    parser with a usage error, matching the validated-knob convention."""

    def test_pinned_vector_round_trips_to_json(self, capsys):
        out = _run_main(
            capsys, _KBOUNDS_TUNE_ARGS + ["--k-bounds", "4,2,1,1,1"]
        )
        payload = json.loads(out)
        assert payload["nominal"]["policy"] == "fluid"
        assert payload["nominal"]["k_bounds"] == [4.0, 2.0, 1.0, 1.0, 1.0]
        assert payload["nominal"]["z_bound"] == 1.0
        assert "k_bound" not in payload["nominal"]

    def test_pinned_vector_with_z_bound(self, capsys):
        # Z = 2 shifts the solved (T, h) to a 7-level tuning, so the pinned
        # vector needs 6 upper-level bounds here.
        out = _run_main(
            capsys,
            _KBOUNDS_TUNE_ARGS + ["--k-bounds", "4,2,1,1,1,1", "--z-bound", "2"],
        )
        assert json.loads(out)["nominal"]["z_bound"] == 2.0

    def test_rejects_empty_value(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(_KBOUNDS_TUNE_ARGS + ["--k-bounds", ""])
        assert excinfo.value.code == 2
        assert "empty value" in capsys.readouterr().err

    def test_rejects_empty_entry(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(_KBOUNDS_TUNE_ARGS + ["--k-bounds", "4,,1"])
        assert excinfo.value.code == 2
        assert "empty entry" in capsys.readouterr().err

    def test_rejects_non_numeric_entries(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(_KBOUNDS_TUNE_ARGS + ["--k-bounds", "4,two,1"])
        assert excinfo.value.code == 2
        assert "expected a number" in capsys.readouterr().err

    def test_rejects_bounds_below_one(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(_KBOUNDS_TUNE_ARGS + ["--k-bounds", "4,0.5,1"])
        assert excinfo.value.code == 2
        assert "at least 1" in capsys.readouterr().err

    def test_rejects_wrong_length_for_the_solved_level_count(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(_KBOUNDS_TUNE_ARGS + ["--k-bounds", "4,2,1"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "3 per-level bounds" in err
        assert "6 levels" in err

    def test_rejects_k_bounds_without_fluid_policy(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["tune", "--workload", "0.25", "0.25", "0.25", "0.25",
                 "--rho", "0", "--k-bounds", "4,2,1"]
            )
        assert excinfo.value.code == 2
        assert "--policy fluid" in capsys.readouterr().err

    def test_rejects_k_bounds_combined_with_k_vector_search(self, capsys):
        """A pinned vector and an automatic vector search contradict each
        other (the search would rewrite the pin); the CLI refuses both."""
        with pytest.raises(SystemExit) as excinfo:
            main(
                _KBOUNDS_TUNE_ARGS
                + ["--k-bounds", "4,2,1,1,1", "--k-vector-search"]
            )
        assert excinfo.value.code == 2
        assert "--k-vector-search" in capsys.readouterr().err

    def test_rejects_wrong_length_for_the_robust_solve(self, capsys):
        """The robust tuner may solve a different level count than the
        nominal one; a pinned vector must match both deployments.  This
        vector matches the 7-level nominal solve but the robust solve lands
        on 6 levels."""
        argv = [
            "tune", "--workload", "0.1", "0.3", "0.1", "0.5",
            "--rho", "0.25", "--policy", "fluid", "--num-entries", "100000",
            "--k-bounds", "4,4,1,1,1,1",
        ]
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        assert "robust tuning" in capsys.readouterr().err

    def test_rejects_z_bound_without_k_bounds(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(_KBOUNDS_TUNE_ARGS + ["--z-bound", "2"])
        assert excinfo.value.code == 2
        assert "--z-bound" in capsys.readouterr().err

    def test_rejects_sub_unit_z_bound(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(
                _KBOUNDS_TUNE_ARGS + ["--k-bounds", "4,2", "--z-bound", "0"]
            )
        assert excinfo.value.code == 2
        assert "at least 1" in capsys.readouterr().err

    def test_k_vector_search_flag_tunes_a_vector(self, capsys):
        out = _run_main(
            capsys,
            ["tune", "--workload", "0.05", "0.25", "0.05", "0.65",
             "--rho", "0", "--policy", "fluid",
             "--long-range-fraction", "0.3", "--k-vector-search",
             "--seed", "7"],
        )
        payload = json.loads(out)
        assert payload["nominal"]["policy"] == "fluid"
        # The vector search surfaced a per-level (non-uniform) ladder here.
        assert "k_bounds" in payload["nominal"]

    def test_k_vector_search_same_seed_is_byte_identical(self, capsys):
        argv = [
            "tune", "--workload", "0.05", "0.25", "0.05", "0.65",
            "--rho", "0.25", "--policy", "fluid",
            "--long-range-fraction", "0.3", "--k-vector-search", "--seed", "7",
        ]
        assert _run_main(capsys, argv) == _run_main(capsys, argv)


#: Tiny, fast settings shared by the online-command tests.
_ONLINE_SMOKE_ARGS = [
    "online",
    "--num-entries", "3000",
    "--queries-per-workload", "150",
    "--sessions-per-phase", "2",
    "--window", "200",
    "--check-interval", "50",
    "--min-observations", "100",
    "--cooldown", "400",
    "--confirm-checks", "2",
    "--seed", "7",
]


class TestOnlineCommand:
    def test_online_defaults_parse(self):
        args = build_parser().parse_args(["online"])
        assert args.expected_index == 11
        assert args.phases == ["read", "write"]
        assert args.mode == "nominal"
        assert args.threshold is None
        assert args.migration == "full"
        assert not args.rho_adaptive

    def test_online_rejects_unknown_phase(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["online", "--phases", "compaction"])

    def test_online_rejects_unknown_migration_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["online", "--migration", "eventually"])

    def test_online_runs_a_tiny_drifting_sequence(self, capsys):
        out = _run_main(capsys, _ONLINE_SMOKE_ARGS)
        assert "nominal" in out and "adaptive" in out
        assert "phase-read" in out and "phase-write" in out
        assert "mean I/Os per query" in out

    def test_online_emits_machine_readable_json(self, capsys):
        payload = json.loads(_run_main(capsys, _ONLINE_SMOKE_ARGS + ["--json"]))
        assert set(payload) == {
            "expected_workload", "rho", "tunings", "final_tuning",
            "sessions", "events", "summary",
        }
        assert {"nominal", "robust", "phase-read", "phase-write"} <= set(
            payload["tunings"]
        )
        for session in payload["sessions"]:
            assert "adaptive" in session["system_ios"]

    def test_online_runs_with_incremental_migration_and_adaptive_rho(self, capsys):
        payload = json.loads(_run_main(
            capsys,
            _ONLINE_SMOKE_ARGS + [
                "--migration", "incremental",
                "--migration-step-ops", "64",
                "--migration-step-pages", "16",
                "--mode", "robust",
                "--rho-adaptive",
                "--json",
            ],
        ))
        for event in payload["events"]:
            if event["migrated"]:
                assert event["migration_steps"] >= 1
            assert "rho" in event["decision"]

    def test_online_rejects_rho_adaptive_without_robust_mode(self):
        """--rho-adaptive would silently widen a ball no nominal tuning
        covers; the CLI refuses the combination outright."""
        with pytest.raises(SystemExit) as excinfo:
            main(["online", "--rho-adaptive", "--mode", "nominal"])
        assert "--rho-adaptive requires --mode robust" in str(excinfo.value)

    def test_online_accepts_large_retune_rho_without_adaptivity(self):
        """A radius above the adaptive cap must not crash a non-adaptive
        run (the cap only bounds the *widening*)."""
        from repro.lsm import simulator_system
        from repro.online import AdaptiveTuner, OnlineConfig

        config = OnlineConfig(rho=5.0, mode="robust")
        tuner = AdaptiveTuner(
            system=simulator_system(1_000), mode=config.mode, rho=config.rho
        )
        assert tuner.effective_rho(10.0) == 5.0  # not adaptive: unwidened

    def test_online_rejects_negative_volatility_gain(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["online", "--volatility-gain", "-1"])
        assert "must be non-negative" in capsys.readouterr().err


class TestOnlineKnobValidation:
    """Bad knob values die at the parser with a clear usage error, not a
    downstream traceback."""

    @pytest.mark.parametrize(
        "flag,value",
        [
            ("--window", "0"),
            ("--window", "-5"),
            ("--confirm-checks", "0"),
            ("--cooldown", "-1"),
            ("--check-interval", "0"),
            ("--migration-step-ops", "0"),
            ("--migration-step-pages", "-3"),
            ("--queries-per-workload", "0"),
            ("--sessions-per-phase", "0"),
            ("--horizon", "0"),
            ("--min-observations", "-1"),
        ],
    )
    def test_rejects_out_of_range_values(self, capsys, flag, value):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["online", flag, value])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert flag in err
        assert "integer" in err

    def test_rejects_non_integer_values(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["online", "--window", "many"])
        assert "expected an integer" in capsys.readouterr().err

    def test_boundary_values_parse(self):
        args = build_parser().parse_args(
            ["online", "--confirm-checks", "1", "--cooldown", "0", "--window", "1"]
        )
        assert args.confirm_checks == 1
        assert args.cooldown == 0
        assert args.window == 1


class TestSeedFlag:
    def test_compare_same_seed_is_reproducible(self, capsys):
        argv = [
            "compare", "--expected-index", "11", "--rho", "0.5",
            "--num-entries", "3000", "--seed", "123", "--json",
        ]
        first = _run_main(capsys, argv)
        second = _run_main(capsys, argv)
        assert first == second

    def test_online_same_seed_is_reproducible(self, capsys):
        first = _run_main(capsys, _ONLINE_SMOKE_ARGS + ["--json"])
        second = _run_main(capsys, _ONLINE_SMOKE_ARGS + ["--json"])
        assert first == second

    @pytest.mark.parametrize("migration", ["full", "incremental"])
    def test_online_seed_is_byte_identical_under_both_migration_modes(
        self, capsys, migration
    ):
        """`online --seed N --json` twice -> byte-identical output whichever
        migration executor runs (the incremental plan included)."""
        argv = _ONLINE_SMOKE_ARGS + [
            "--migration", migration,
            "--migration-step-ops", "64",
            "--json",
        ]
        first = _run_main(capsys, argv)
        second = _run_main(capsys, argv)
        assert first == second

    def test_tune_fluid_same_seed_is_byte_identical(self, capsys):
        """`tune --seed N` twice -> byte-identical JSON, fluid search space
        included (the (K, Z) sweep and the seeded polish are deterministic)."""
        argv = [
            "tune", "--workload", "0.1", "0.3", "0.1", "0.5",
            "--rho", "0.25", "--policy", "fluid",
            "--long-range-fraction", "0.3", "--seed", "7",
        ]
        first = _run_main(capsys, argv)
        second = _run_main(capsys, argv)
        assert first == second
        payload = json.loads(first)
        assert payload["nominal"]["policy"] == "fluid"
        assert {"k_bound", "z_bound"} <= set(payload["nominal"])
        assert {"k_bound", "z_bound"} <= set(payload["robust"])

    def test_compare_fluid_same_seed_is_byte_identical(self, capsys):
        """`compare --seed N` twice -> byte-identical JSON for a fluid tuning
        deployed on the simulator with a mixed short/long range trace."""
        argv = [
            "compare", "--expected-index", "11", "--rho", "0.25",
            "--num-entries", "3000", "--policy", "fluid",
            "--long-range-fraction", "0.4", "--long-scan-keys", "128",
            "--seed", "31", "--json",
        ]
        first = _run_main(capsys, argv)
        second = _run_main(capsys, argv)
        assert first == second
        payload = json.loads(first)
        assert payload["tunings"]["nominal"]["policy"] == "fluid"
        assert payload["expected_workload"]["long_range_fraction"] == 0.4


class TestCompareJson:
    def test_compare_emits_machine_readable_json(self, capsys):
        code = main(
            ["compare", "--expected-index", "11", "--rho", "0.5",
             "--num-entries", "3000", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {
            "expected_workload", "rho", "observed_divergence",
            "tunings", "sessions", "summary",
        }
        assert set(payload["tunings"]) == {"nominal", "robust"}
        assert payload["sessions"], "at least one session measurement"
        for session in payload["sessions"]:
            assert set(session["system_ios"]) == {"nominal", "robust"}


class TestBatchExecutionFlags:
    def test_compare_defaults_to_batched_execution(self):
        args = build_parser().parse_args(["compare"])
        assert args.batch_execution is True
        assert args.max_batch_ops == 4_096

    def test_no_batch_execution_flag(self):
        for command in ("compare", "online"):
            args = build_parser().parse_args([command, "--no-batch-execution"])
            assert args.batch_execution is False

    def test_max_batch_ops_parses(self):
        args = build_parser().parse_args(["online", "--max-batch-ops", "128"])
        assert args.max_batch_ops == 128

    def test_max_batch_ops_rejects_non_positive(self):
        for bad in ("0", "-4", "1.5"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(["compare", "--max-batch-ops", bad])

    def test_compare_scalar_matches_batched_output(self, capsys):
        argv = ["compare", "--num-entries", "4000", "--seed", "3", "--json"]
        assert main(argv) == 0
        batched = json.loads(capsys.readouterr().out)
        assert main(argv + ["--no-batch-execution"]) == 0
        scalar = json.loads(capsys.readouterr().out)
        assert batched == scalar


class TestServingFlags:
    """--num-shards on compare, --admission on online."""

    def test_defaults(self):
        assert build_parser().parse_args(["compare"]).num_shards == 1
        args = build_parser().parse_args(["online"])
        assert args.admission == "fixed"
        assert args.admission_max_backlog == 256
        assert args.admission_starvation_ops == 4096
        assert args.admission_idle_steps == 8

    def test_num_shards_rejects_non_positive(self):
        for bad in ("0", "-2", "1.5"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(["compare", "--num-shards", bad])

    def test_online_rejects_unknown_admission(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["online", "--admission", "eager"])

    def test_compare_with_shards_prints_the_fleet_table(self, capsys):
        out = _run_main(
            capsys,
            ["compare", "--expected-index", "11", "--num-entries", "4000",
             "--seed", "7", "--num-shards", "2"],
        )
        assert "shards=2" in out
        assert "fleet io/q" in out
        assert "wall-clock critical-path=" in out

    def test_compare_with_shards_emits_json(self, capsys):
        payload = json.loads(_run_main(
            capsys,
            ["compare", "--expected-index", "11", "--num-entries", "4000",
             "--seed", "7", "--num-shards", "2", "--json"],
        ))
        assert payload["num_shards"] == 2
        for result in payload["results"].values():
            assert len(result["shard_ios"]) == 2
            assert {"p50", "p95", "worst"} <= set(result["shard_percentiles"])

    def test_online_runs_under_queue_depth_admission(self, capsys):
        payload = json.loads(_run_main(
            capsys,
            _ONLINE_SMOKE_ARGS + [
                "--migration", "incremental",
                "--migration-step-ops", "64",
                "--migration-step-pages", "16",
                "--admission", "queue-depth",
                "--admission-max-backlog", "32",
                "--admission-starvation-ops", "512",
                "--admission-idle-steps", "4",
                "--json",
            ],
        ))
        assert "sessions" in payload and "events" in payload
