"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_tune_command_parses_workload(self):
        args = build_parser().parse_args(
            ["tune", "--workload", "0.25", "0.25", "0.25", "0.25", "--rho", "0.5"]
        )
        assert args.rho == 0.5
        assert args.workload == [0.25, 0.25, 0.25, 0.25]

    def test_compare_command_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.expected_index == 11
        assert args.rho == 0.25


class TestCommands:
    def test_workloads_command_lists_table2(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "w0" in out and "w14" in out
        assert "trimodal" in out

    def test_tune_command_outputs_json(self, capsys):
        code = main(
            ["tune", "--workload", "0.25", "0.25", "0.25", "0.25", "--rho", "0.5"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert "nominal" in payload
        assert "robust" in payload
        assert payload["rho"] == 0.5

    def test_tune_command_without_uncertainty(self, capsys):
        code = main(["tune", "--workload", "0.1", "0.1", "0.1", "0.7", "--rho", "0"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert "nominal" in payload
        assert "robust" not in payload

    def test_compare_command_runs_small_simulation(self, capsys):
        code = main(
            ["compare", "--expected-index", "11", "--rho", "0.5", "--num-entries", "4000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "nominal" in out and "robust" in out
        assert "I/O reduction" in out
