"""Tests for the rolling observed-workload estimator."""

import numpy as np
import pytest

from repro.online import ObservedWorkload
from repro.workloads import KeySpace, Operation, OperationType, TraceGenerator, Workload


def _ops(kind: OperationType, count: int) -> list[Operation]:
    return [Operation(kind, key) for key in range(count)]


class TestConstruction:
    def test_rejects_non_positive_window(self):
        with pytest.raises(ValueError):
            ObservedWorkload(window=0)

    def test_rejects_out_of_range_smoothing(self):
        with pytest.raises(ValueError):
            ObservedWorkload(window=100, smoothing=0.3)

    def test_empty_estimator_has_no_workload(self):
        estimator = ObservedWorkload(window=100)
        assert estimator.workload() is None
        assert estimator.observations == 0
        assert estimator.weight == 0.0


class TestRecording:
    def test_single_type_stream_estimates_a_point_mass(self):
        estimator = ObservedWorkload(window=50)
        estimator.record_batch(_ops(OperationType.PUT, 200))
        estimate = estimator.workload()
        assert estimate.w == pytest.approx(1.0)
        assert estimate.z0 == estimate.z1 == estimate.q == 0.0

    def test_uniform_stream_estimates_uniform(self):
        estimator = ObservedWorkload(window=400)
        for _ in range(100):
            for kind in OperationType:
                estimator.record_kind(kind)
        estimate = estimator.workload().as_array()
        assert np.allclose(estimate, 0.25, atol=0.02)

    def test_weight_converges_to_window(self):
        estimator = ObservedWorkload(window=100)
        estimator.record_batch(_ops(OperationType.GET, 1_000))
        assert estimator.weight == pytest.approx(100.0, rel=0.01)
        assert estimator.observations == 1_000

    def test_matches_trace_generator_mix(self):
        """Folding a real trace recovers its realised workload proportions."""
        workload = Workload(0.2, 0.3, 0.1, 0.4)
        trace = TraceGenerator(KeySpace.build(2_000, seed=3), seed=5)
        operations = trace.operations(workload, 4_000)
        estimator = ObservedWorkload(window=100_000)
        estimator.record_batch(operations)
        estimate = estimator.workload().as_array()
        # A window much larger than the trace reduces to the plain empirical
        # mix (up to the negligible decay within the trace).
        assert np.allclose(estimate, workload.as_array(), atol=0.05)

    def test_reset_forgets_everything(self):
        estimator = ObservedWorkload(window=100)
        estimator.record_batch(_ops(OperationType.RANGE, 50))
        estimator.reset()
        assert estimator.workload() is None
        assert estimator.observations == 0


class TestWindowing:
    def test_short_window_tracks_the_new_mix(self):
        """A window shorter than one session forgets the previous session."""
        estimator = ObservedWorkload(window=50)
        estimator.record_batch(_ops(OperationType.PUT, 1_000))
        estimator.record_batch(_ops(OperationType.GET, 300))
        estimate = estimator.workload()
        # 300 ops = 6 windows: the write phase has decayed to ~e^-6.
        assert estimate.z1 > 0.99
        assert estimate.w < 0.01

    def test_long_window_blends_both_phases(self):
        estimator = ObservedWorkload(window=10_000)
        estimator.record_batch(_ops(OperationType.PUT, 500))
        estimator.record_batch(_ops(OperationType.GET, 500))
        estimate = estimator.workload()
        assert 0.4 < estimate.w < 0.6
        assert 0.4 < estimate.z1 < 0.6


class TestSmoothing:
    def test_smoothing_floors_zero_components(self):
        estimator = ObservedWorkload(window=100, smoothing=0.01)
        estimator.record_batch(_ops(OperationType.PUT, 100))
        estimate = estimator.workload()
        # Flooring renormalises, so each floored component sits just below
        # the floor — but strictly above zero, keeping KL divergences finite.
        assert estimate.z0 == pytest.approx(0.01, rel=0.05)
        assert estimate.z1 == pytest.approx(0.01, rel=0.05)
        assert estimate.q == pytest.approx(0.01, rel=0.05)
        assert estimate.w == pytest.approx(0.97, abs=0.01)
