"""Vector tunings through the online subsystem.

The online stack serialises tunings at two seams — the retuning decision
(JSON events) and the migration target — so per-level ``k_bounds`` vectors
must survive both.  The heavyweight migration invariants for vector targets
live in ``tests/test_migration_properties.py``; here the re-tuner and
config threading are pinned.
"""

from __future__ import annotations

import json

import numpy as np

from repro.lsm import LSMTuning, Policy, PolicySpec, simulator_system
from repro.online import AdaptiveTuner, OnlineConfig, OnlineLSMController
from repro.storage import LSMTree
from repro.workloads import KeySpace, Workload

_SYSTEM = simulator_system(num_entries=3_000)


class TestAdaptiveTunerVectors:
    def test_k_vector_search_threads_to_the_tuners(self):
        tuner = AdaptiveTuner(
            system=_SYSTEM,
            mode="robust",
            policies=(Policy.FLUID,),
            k_vector_search=True,
        )
        assert tuner.tuner.k_vector_search
        # A widened-radius re-tuner keeps the flag too.
        assert tuner._tuner_for(1.5).k_vector_search

    def test_pinned_vector_policy_proposes_a_vector_tuning(self):
        spec = PolicySpec(Policy.FLUID, k_bounds=(4.0, 2.0, 1.0), z_bound=1.0)
        tuner = AdaptiveTuner(
            system=_SYSTEM, mode="nominal", policies=(spec,), polish=False
        )
        observed = Workload(0.05, 0.25, 0.05, 0.65)
        current = LSMTuning(10.0, 8.0, Policy.LEVELING)
        decision = tuner.retune(observed, current, resident_pages=1_000)
        assert decision.proposed.policy is Policy.FLUID
        assert decision.proposed.k_bounds is not None
        # Deployable: rounded() already applied by retune.
        cap = decision.proposed.size_ratio - 1.0
        assert all(1.0 <= b <= max(cap, 1.0) for b in decision.proposed.k_bounds)

    def test_decision_with_vector_proposal_is_json_serialisable(self):
        spec = PolicySpec(Policy.FLUID, k_bounds=(4.0, 2.0, 1.0), z_bound=1.0)
        tuner = AdaptiveTuner(
            system=_SYSTEM, mode="nominal", policies=(spec,), polish=False
        )
        decision = tuner.retune(
            Workload(0.05, 0.25, 0.05, 0.65),
            LSMTuning(10.0, 8.0, Policy.LEVELING),
            resident_pages=1_000,
        )
        payload = json.loads(json.dumps(decision.to_dict()))
        restored = LSMTuning.from_dict(payload["proposed"])
        assert restored == decision.proposed


class TestControllerThreading:
    def test_online_config_threads_the_flag(self):
        tree = LSMTree(LSMTuning(10.0, 8.0, Policy.LEVELING), _SYSTEM, seed=5)
        controller = OnlineLSMController(
            tree=tree,
            expected=Workload(0.25, 0.25, 0.25, 0.25),
            config=OnlineConfig(k_vector_search=True),
            policies=(Policy.FLUID,),
        )
        assert controller.retuner.k_vector_search

    def test_full_migration_deploys_a_vector_tuning(self):
        """An in-place rebuild towards a vector tuning leaves the live tree
        under the vector bounds, still serving reads."""
        keys = KeySpace.build(_SYSTEM.num_entries, seed=11).existing
        tree = LSMTree(LSMTuning(10.0, 8.0, Policy.LEVELING), _SYSTEM, seed=5)
        tree.bulk_load(keys)
        controller = OnlineLSMController(
            tree=tree,
            expected=Workload(0.25, 0.25, 0.25, 0.25),
        )
        target = LSMTuning(
            5.0, 6.0, Policy.FLUID, k_bounds=(4.0, 2.0, 1.0), z_bound=1.0
        )
        read_pages, write_pages = controller._migrate(target)
        assert read_pages > 0 and write_pages > 0
        assert controller.tree.tuning.k_bounds == (4.0, 2.0, 1.0)
        probes = np.random.default_rng(7).choice(keys, size=50, replace=False)
        assert all(controller.tree.get(int(key)) for key in probes)
