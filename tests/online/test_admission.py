"""Migration-step admission control: the policy and its controller wiring."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsm import LSMTuning, Policy, simulator_system
from repro.online import ADMISSION_MODES, OnlineConfig, OnlineLSMController, StepAdmission
from repro.serving.executor import tree_fingerprint
from repro.storage import LSMTree
from repro.workloads import KeySpace, TraceGenerator, Workload

_SYSTEM = simulator_system(num_entries=4_000)
_KEY_SPACE = KeySpace.build(_SYSTEM.num_entries, seed=3)


def _controller(config, expected, tuning=None):
    tuning = tuning if tuning is not None else LSMTuning(20.0, 8.0, Policy.LEVELING)
    tree = LSMTree(tuning, _SYSTEM)
    tree.bulk_load(_KEY_SPACE.existing)
    tree.disk.reset()
    return OnlineLSMController(tree=tree, expected=expected, config=config)


class TestStepAdmissionPolicy:
    def test_fixed_reproduces_the_historical_cadence(self):
        admission = StepAdmission(mode="fixed", step_ops=64)
        for position in range(1, 400):
            assert admission.should_step(position, 7, 0, backlog=10**6) == (
                (position - 7) % 64 == 0
            )

    def test_queue_depth_defers_while_the_backlog_is_deep(self):
        admission = StepAdmission(
            mode="queue-depth", step_ops=10, max_backlog=5, starvation_ops=100
        )
        # Due by cadence but the queue is deep: deferred.
        assert not admission.should_step(50, 0, 30, backlog=500)
        # Queue drained: admitted.
        assert admission.should_step(50, 0, 30, backlog=5)
        # Not yet due by cadence even when idle.
        assert not admission.should_step(35, 0, 30, backlog=0)
        # Starvation bound overrides any backlog.
        assert admission.should_step(130, 0, 30, backlog=10**9)

    def test_idle_steps_only_under_queue_depth(self):
        assert StepAdmission(mode="fixed", idle_step_burst=8).idle_steps == 0
        assert (
            StepAdmission(mode="queue-depth", idle_step_burst=3).idle_steps == 3
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(mode="asap"),
            dict(step_ops=0),
            dict(max_backlog=-1),
            dict(idle_step_burst=-1),
            dict(mode="queue-depth", step_ops=100, starvation_ops=50),
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            StepAdmission(**kwargs)

    def test_fixed_mode_tolerates_small_starvation_bound(self):
        # Pre-existing fixed configs with huge migration_step_ops must not
        # start raising because the (unused) starvation default is smaller.
        StepAdmission(mode="fixed", step_ops=10_000, starvation_ops=4_096)

    @given(
        mode=st.sampled_from(ADMISSION_MODES),
        position=st.integers(min_value=0, max_value=5_000),
        started_ago=st.integers(min_value=0, max_value=5_000),
        stepped_ago=st.integers(min_value=0, max_value=5_000),
        backlog=st.integers(min_value=0, max_value=10_000),
        step_ops=st.integers(min_value=1, max_value=512),
        max_backlog=st.integers(min_value=0, max_value=512),
        slack=st.integers(min_value=0, max_value=4_096),
    )
    @settings(max_examples=200, deadline=None)
    def test_ops_until_step_is_the_first_admitting_position(
        self, mode, position, started_ago, stepped_ago, backlog,
        step_ops, max_backlog, slack,
    ):
        """The closed form agrees with stepping one operation at a time.

        This is the contract batched execution relies on: bounding a span by
        ``ops_until_step`` can never jump over an admission the scalar loop
        would have taken, because within a span the backlog drains by one per
        operation and the elapsed count grows by one.
        """
        admission = StepAdmission(
            mode=mode, step_ops=step_ops, max_backlog=max_backlog,
            starvation_ops=step_ops + slack,
        )
        plan_started = max(0, position - started_ago)
        last_step = max(0, position - stepped_ago)
        k = admission.ops_until_step(position, plan_started, last_step, backlog)
        assert k >= 1
        for j in range(1, k):
            assert not admission.should_step(
                position + j, plan_started, last_step, max(0, backlog - j)
            )
        assert admission.should_step(
            position + k, plan_started, last_step, max(0, backlog - k)
        )


class TestOnlineConfigWiring:
    def test_step_admission_mirrors_the_config(self):
        config = OnlineConfig(
            migration="incremental", migration_step_ops=128,
            admission="queue-depth", admission_max_backlog=32,
            admission_starvation_ops=999, admission_idle_steps=2,
        )
        admission = config.step_admission()
        assert admission == StepAdmission(
            mode="queue-depth", step_ops=128, max_backlog=32,
            starvation_ops=999, idle_step_burst=2,
        )

    def test_default_is_fixed(self):
        assert OnlineConfig().step_admission().mode == "fixed"

    def test_rejects_unknown_admission_at_construction(self):
        with pytest.raises(ValueError):
            OnlineConfig(admission="eager")

    def test_rejects_starving_faster_than_the_cadence(self):
        with pytest.raises(ValueError):
            OnlineConfig(
                admission="queue-depth", migration_step_ops=512,
                admission_starvation_ops=256,
            )


_PLAN_KWARGS = dict(
    window=150,
    check_interval=32,
    min_observations=64,
    cooldown=100_000,
    confirm_checks=1,
    rho=0.25,
    mode="nominal",
    horizon_ops=100_000,
    migration="incremental",
    migration_step_ops=64,
    migration_step_pages=8,
)


def _mid_flight_controller(**admission_kwargs):
    """Drive a controller until an incremental plan is in flight."""
    expected = Workload(0.49, 0.49, 0.01, 0.01)
    config = OnlineConfig(**{**_PLAN_KWARGS, **admission_kwargs})
    controller = _controller(config, expected)
    trace = TraceGenerator(_KEY_SPACE, seed=9)
    for operation in trace.operations(Workload(0.0, 0.0, 1.0, 0.0), 2_000):
        controller.apply(operation)
        if controller.migration_in_progress:
            return controller
    raise AssertionError("no migration started")


class TestControllerAdmission:
    def test_note_idle_is_a_no_op_under_fixed(self):
        controller = _mid_flight_controller(admission="fixed")
        before = controller.migration_plan.steps_completed
        controller.note_idle()
        assert controller.migration_plan.steps_completed == before

    def test_note_idle_drains_steps_under_queue_depth(self):
        controller = _mid_flight_controller(
            admission="queue-depth", admission_idle_steps=2,
        )
        plan = controller.migration_plan
        before = plan.steps_completed
        controller.note_idle()
        drained = (
            plan.num_steps if plan.completed else plan.steps_completed
        ) - before
        assert 0 < drained <= 2

    def test_queue_depth_defers_steps_inside_a_busy_chunk(self):
        """Serving a deep queue, queue-depth admits fewer steps than fixed."""
        results = {}
        for admission in ADMISSION_MODES:
            controller = _mid_flight_controller(
                admission=admission, admission_max_backlog=0,
                admission_starvation_ops=100_000,
            )
            trace = TraceGenerator(_KEY_SPACE, seed=31)
            # One big busy chunk: the backlog stays deep almost throughout.
            controller.execute(
                trace.operations(Workload(0.0, 0.0, 1.0, 0.0), 1_500)
            )
            plan = controller.migration_plan
            results[admission] = (
                plan.num_steps if plan is None or plan.completed
                else plan.steps_completed
            )
        assert results["queue-depth"] < results["fixed"]

    def test_starvation_bound_keeps_the_plan_moving(self):
        controller = _mid_flight_controller(
            admission="queue-depth", admission_max_backlog=0,
            admission_starvation_ops=_PLAN_KWARGS["migration_step_ops"],
        )
        before = controller.migration_plan.steps_completed
        trace = TraceGenerator(_KEY_SPACE, seed=31)
        controller.execute(
            trace.operations(Workload(0.0, 0.0, 1.0, 0.0), 1_500)
        )
        plan = controller.migration_plan
        after = plan.num_steps if plan is None or plan.completed else plan.steps_completed
        assert after > before


class TestBatchedAdmissionParity:
    """Satellite: ``execute_batched`` boundary math under both policies.

    Scalar and batched execution of the same drifting stream must observe
    the same drift, fire the same retunings, advance the same migration
    steps at the same positions, and leave bit-identical trees and disks.
    """

    def _drifting_stream(self, seed, length):
        trace = TraceGenerator(_KEY_SPACE, seed=seed)
        calm = trace.operations(Workload(0.55, 0.25, 0.05, 0.15), length // 2)
        drift = trace.operations(Workload(0.05, 0.05, 0.05, 0.85), length - length // 2)
        return calm + drift

    def _run(self, batched, admission, seed, length, max_batch_ops=4_096):
        expected = Workload(0.55, 0.25, 0.05, 0.15)
        config = OnlineConfig(**{
            **_PLAN_KWARGS,
            "cooldown": 256,
            "confirm_checks": 2,
            "admission": admission,
            "admission_max_backlog": 16,
            "admission_starvation_ops": 512,
            "admission_idle_steps": 4,
        })
        controller = _controller(config, expected)
        operations = self._drifting_stream(seed, length)
        if batched:
            controller.execute_batched(operations, max_batch_ops=max_batch_ops)
        else:
            controller.execute(operations)
        return controller

    @pytest.mark.parametrize("admission", ADMISSION_MODES)
    def test_batched_matches_scalar_through_retune_and_migration(
        self, admission
    ):
        scalar = self._run(False, admission, seed=11, length=6_000)
        batched = self._run(True, admission, seed=11, length=6_000)
        assert scalar.num_migrations >= 1  # the stream does exercise a plan
        assert batched.events == scalar.events
        assert batched.position == scalar.position
        assert batched.disk.counters == scalar.disk.counters
        assert batched.tuning == scalar.tuning
        assert tree_fingerprint(batched.tree) == tree_fingerprint(scalar.tree)

    @given(
        seed=st.integers(min_value=0, max_value=40),
        length=st.integers(min_value=500, max_value=2_500),
        max_batch_ops=st.sampled_from([7, 64, 4_096]),
        admission=st.sampled_from(ADMISSION_MODES),
    )
    @settings(max_examples=12, deadline=None)
    def test_parity_holds_across_random_streams(
        self, seed, length, max_batch_ops, admission
    ):
        scalar = self._run(False, admission, seed, length)
        batched = self._run(
            True, admission, seed, length, max_batch_ops=max_batch_ops
        )
        assert batched.events == scalar.events
        assert batched.disk.counters == scalar.disk.counters
        assert np.array_equal(
            batched.observed_workload().as_array(),
            scalar.observed_workload().as_array(),
        )
        assert tree_fingerprint(batched.tree) == tree_fingerprint(scalar.tree)
