"""Tests for the online controller and the adaptive re-tuner."""

import numpy as np
import pytest

from repro.lsm import LSMTuning, Policy, simulator_system
from repro.online import AdaptiveTuner, OnlineConfig, OnlineLSMController
from repro.storage import LSMTree
from repro.workloads import KeySpace, TraceGenerator, Workload


@pytest.fixture(scope="module")
def tiny_system():
    return simulator_system(num_entries=4_000)


@pytest.fixture(scope="module")
def key_space(tiny_system):
    return KeySpace.build(tiny_system.num_entries, seed=3)


def _controller(tiny_system, key_space, config, expected, tuning=None):
    tuning = tuning if tuning is not None else LSMTuning(20.0, 8.0, Policy.LEVELING)
    tree = LSMTree(tuning, tiny_system)
    tree.bulk_load(key_space.existing)
    tree.disk.reset()
    return OnlineLSMController(tree=tree, expected=expected, config=config)


class TestAdaptiveTuner:
    def test_rejects_unknown_mode(self, tiny_system):
        with pytest.raises(ValueError):
            AdaptiveTuner(system=tiny_system, mode="oracle")

    def test_retune_proposes_a_deployable_tuning(self, tiny_system):
        tuner = AdaptiveTuner(system=tiny_system, mode="nominal")
        current = LSMTuning(30.0, 8.0, Policy.LEVELING)
        decision = tuner.retune(
            Workload(0.05, 0.05, 0.05, 0.85), current, resident_pages=1_000
        )
        assert decision.proposed.size_ratio == int(decision.proposed.size_ratio)
        assert decision.migration_ios == 2_000.0
        # A write-heavy observation must predict a gain over a read-tuned tree.
        assert decision.predicted_gain > 0

    def test_unjustified_when_migration_dwarfs_the_horizon(self, tiny_system):
        tuner = AdaptiveTuner(
            system=tiny_system, mode="nominal", horizon_ops=10
        )
        current = LSMTuning(30.0, 8.0, Policy.LEVELING)
        decision = tuner.retune(
            Workload(0.05, 0.05, 0.05, 0.85), current, resident_pages=10_000
        )
        assert not decision.justified

    def test_robust_mode_uses_the_requested_radius(self, tiny_system):
        tuner = AdaptiveTuner(system=tiny_system, mode="robust", rho=1.0)
        assert tuner.tuner.rho == 1.0


class TestControllerExecution:
    def test_executes_operations_and_observes_them(
        self, tiny_system, key_space
    ):
        config = OnlineConfig(window=200, check_interval=10_000)
        controller = _controller(
            tiny_system, key_space, config, Workload.uniform()
        )
        trace = TraceGenerator(key_space, seed=9)
        operations = trace.operations(Workload.uniform(), 400)
        controller.execute(operations)
        assert controller.position == 400
        estimate = controller.observed_workload().as_array()
        assert np.allclose(estimate, 0.25, atol=0.15)

    def test_quiet_stream_never_retunes(self, tiny_system, key_space):
        expected = Workload.uniform()
        config = OnlineConfig(
            window=200, check_interval=50, min_observations=100, rho=1.0
        )
        controller = _controller(tiny_system, key_space, config, expected)
        trace = TraceGenerator(key_space, seed=9)
        controller.execute(trace.operations(expected, 1_000))
        assert controller.events == []
        assert controller.num_migrations == 0

    def test_drift_triggers_retuning_and_migration(self, tiny_system, key_space):
        expected = Workload(0.32, 0.32, 0.32, 0.04)
        config = OnlineConfig(
            window=150,
            check_interval=32,
            min_observations=64,
            cooldown=256,
            confirm_checks=2,
            rho=0.5,
            mode="nominal",
            horizon_ops=50_000,
        )
        controller = _controller(tiny_system, key_space, config, expected)
        initial_tuning = controller.tuning
        before_entries = controller.tree.num_entries
        trace = TraceGenerator(key_space, seed=9)
        # Write-only stream: far outside the read-heavy expectation.
        controller.execute(trace.operations(Workload(0.0, 0.0, 0.0, 1.0), 1_500))
        assert controller.num_migrations >= 1
        event = next(e for e in controller.events if e.migrated)
        assert event.decision.justified
        assert event.migration_read_pages > 0
        assert event.migration_write_pages > 0
        assert controller.tuning != initial_tuning
        # No entries were lost by the rebuild (writes keep landing after it).
        assert controller.tree.num_entries >= before_entries

    def test_retuning_prices_the_expected_long_range_fraction(
        self, tiny_system, key_space
    ):
        """The stream only reveals the four query-type proportions, so the
        expected workload's short/long range split must be carried onto the
        observed estimate before re-tuning — otherwise the re-tuner would
        price range queries as all-short and could migrate to a design the
        long-range regime penalises."""
        expected = Workload(0.32, 0.32, 0.32, 0.04, long_range_fraction=0.6)
        config = OnlineConfig(
            window=150,
            check_interval=32,
            min_observations=64,
            cooldown=256,
            confirm_checks=2,
            rho=0.5,
            mode="nominal",
            horizon_ops=50_000,
        )
        controller = _controller(tiny_system, key_space, config, expected)
        trace = TraceGenerator(key_space, seed=9)
        controller.execute(trace.operations(Workload(0.0, 0.0, 0.0, 1.0), 1_500))
        assert controller.events, "the drifted stream must fire at least once"
        for event in controller.events:
            assert event.observed.long_range_fraction == pytest.approx(0.6)

    def test_migration_io_is_charged_as_compaction_traffic(
        self, tiny_system, key_space
    ):
        expected = Workload(0.49, 0.49, 0.01, 0.01)
        config = OnlineConfig(
            window=100,
            check_interval=25,
            min_observations=50,
            cooldown=10_000,
            confirm_checks=1,
            rho=0.25,
            mode="nominal",
            horizon_ops=100_000,
        )
        controller = _controller(tiny_system, key_space, config, expected)
        trace = TraceGenerator(key_space, seed=9)
        # A read-only drift (range-heavy): the only compaction traffic the
        # stream can generate is the migration itself.
        controller.execute(trace.operations(Workload(0.0, 0.0, 1.0, 0.0), 600))
        migrated = [e for e in controller.events if e.migrated]
        assert migrated, "the range-only stream should have triggered a migration"
        counters = controller.disk.counters
        assert counters.compaction_reads == sum(
            e.migration_read_pages for e in migrated
        )
        assert counters.compaction_writes == sum(
            e.migration_write_pages for e in migrated
        )

    def test_migration_does_not_resurrect_deleted_keys(
        self, tiny_system, key_space
    ):
        """A tombstone shadowing an older live version (bulk-loaded into a
        deeper run) must survive the migration's recency-aware rebuild."""
        config = OnlineConfig(check_interval=10**9)
        controller = _controller(tiny_system, key_space, config, Workload.uniform())
        victim, neighbour = int(key_space.existing[10]), int(key_space.existing[11])
        assert controller.tree.get(victim)
        controller.tree.delete(victim)
        assert not controller.tree.get(victim)
        controller._migrate(LSMTuning(4.0, 4.0, Policy.TIERING))
        assert not controller.tree.get(victim)
        assert controller.tree.get(neighbour)

    def test_infinite_divergence_serialises_to_valid_json(self, tiny_system):
        import json
        import math

        from repro.online.controller import RetuningEvent
        from repro.online.retuner import AdaptiveTuner

        tuner = AdaptiveTuner(system=tiny_system, mode="nominal")
        current = LSMTuning(30.0, 8.0, Policy.LEVELING)
        decision = tuner.retune(
            Workload(0.0, 0.0, 0.0, 1.0), current, resident_pages=100
        )
        event = RetuningEvent(
            position=10,
            divergence=math.inf,
            observed=Workload(0.0, 0.0, 0.0, 1.0),
            decision=decision,
            migrated=False,
            migration_read_pages=0,
            migration_write_pages=0,
        )
        payload = json.loads(json.dumps(event.to_dict()))
        assert payload["divergence"] is None

    def test_cooldown_spans_migrations(self, tiny_system, key_space):
        """Back-to-back drift episodes within one cooldown yield one migration."""
        expected = Workload(0.32, 0.32, 0.32, 0.04)
        config = OnlineConfig(
            window=100,
            check_interval=25,
            min_observations=50,
            cooldown=100_000,
            confirm_checks=1,
            rho=0.25,
            mode="nominal",
            horizon_ops=100_000,
        )
        controller = _controller(tiny_system, key_space, config, expected)
        trace = TraceGenerator(key_space, seed=9)
        controller.execute(trace.operations(Workload(0.0, 0.0, 0.0, 1.0), 800))
        # Drift back towards something else equally far from the recentre.
        controller.execute(trace.operations(Workload(0.9, 0.05, 0.0, 0.05), 800))
        assert controller.num_migrations <= 1


class TestIncrementalMigration:
    """The level-by-level migration mode of the controller."""

    _CONFIG_KWARGS = dict(
        window=150,
        check_interval=32,
        min_observations=64,
        cooldown=256,
        confirm_checks=2,
        rho=0.5,
        mode="nominal",
        horizon_ops=50_000,
        migration="incremental",
        migration_step_ops=64,
        migration_step_pages=16,
    )

    def test_incremental_migration_completes_and_swaps_the_tree(
        self, tiny_system, key_space
    ):
        expected = Workload(0.32, 0.32, 0.32, 0.04)
        config = OnlineConfig(**self._CONFIG_KWARGS)
        controller = _controller(tiny_system, key_space, config, expected)
        initial_tuning = controller.tuning
        trace = TraceGenerator(key_space, seed=9)
        controller.execute(trace.operations(Workload(0.0, 0.0, 0.0, 1.0), 6_000))
        assert controller.num_migrations >= 1
        event = next(e for e in controller.events if e.migrated)
        assert event.migration_steps > 1
        assert event.migration_read_pages > 0
        assert event.migration_write_pages > 0
        assert not controller.migration_in_progress
        assert controller.tuning != initial_tuning

    def test_plan_advances_with_the_stream_not_at_the_firing(
        self, tiny_system, key_space
    ):
        """Right after the firing only the first step's pages are charged;
        the rest trickle in as the stream advances."""
        expected = Workload(0.49, 0.49, 0.01, 0.01)
        config = OnlineConfig(**{
            **self._CONFIG_KWARGS,
            "cooldown": 100_000,
            "confirm_checks": 1,
            "rho": 0.25,
            "horizon_ops": 100_000,
        })
        controller = _controller(tiny_system, key_space, config, expected)
        trace = TraceGenerator(key_space, seed=9)
        # Range-only drift: the only compaction traffic is the migration.
        operations = trace.operations(Workload(0.0, 0.0, 1.0, 0.0), 600)
        for operation in operations:
            controller.apply(operation)
            if controller.migration_in_progress:
                break
        assert controller.migration_in_progress
        event = controller.events[-1]
        charged = controller.disk.counters.compaction_reads
        assert 0 < charged < event.migration_read_pages
        # Draining the plan charges exactly the planned remainder.
        controller.finish_migration()
        assert not controller.migration_in_progress
        counters = controller.disk.counters
        assert counters.compaction_reads == event.migration_read_pages
        assert counters.compaction_writes == event.migration_write_pages

    def test_drift_checks_are_suspended_while_a_plan_runs(
        self, tiny_system, key_space
    ):
        expected = Workload(0.49, 0.49, 0.01, 0.01)
        config = OnlineConfig(**{
            **self._CONFIG_KWARGS,
            "cooldown": 0,
            "confirm_checks": 1,
            "rho": 0.25,
            "horizon_ops": 100_000,
            "migration_step_ops": 10_000,  # the plan effectively never advances
        })
        controller = _controller(tiny_system, key_space, config, expected)
        trace = TraceGenerator(key_space, seed=9)
        controller.execute(trace.operations(Workload(0.0, 0.0, 1.0, 0.0), 1_000))
        assert controller.migration_in_progress
        # Even with no cooldown, the in-flight plan blocks further firings.
        assert controller.num_migrations == 1

    def test_mixed_state_preserves_entries(self, tiny_system, key_space):
        expected = Workload(0.32, 0.32, 0.32, 0.04)
        config = OnlineConfig(**self._CONFIG_KWARGS)
        controller = _controller(tiny_system, key_space, config, expected)
        before_entries = controller.tree.num_entries
        trace = TraceGenerator(key_space, seed=9)
        controller.execute(trace.operations(Workload(0.0, 0.0, 0.0, 1.0), 6_000))
        assert controller.num_migrations >= 1
        # Writes kept landing throughout: nothing was lost by the migration.
        assert controller.tree.num_entries >= before_entries


class TestAdaptiveRho:
    def test_effective_rho_widens_with_volatility(self, tiny_system):
        tuner = AdaptiveTuner(
            system=tiny_system, mode="robust", rho=0.5,
            rho_adaptive=True, volatility_gain=2.0, rho_cap=4.0,
        )
        assert tuner.effective_rho(0.0) == 0.5
        assert tuner.effective_rho(0.4) == pytest.approx(1.3)
        assert tuner.effective_rho(100.0) == 4.0  # capped

    def test_fixed_rho_ignores_volatility(self, tiny_system):
        tuner = AdaptiveTuner(system=tiny_system, mode="robust", rho=0.5)
        assert tuner.effective_rho(5.0) == 0.5

    def test_decision_records_the_widened_radius(self, tiny_system):
        tuner = AdaptiveTuner(
            system=tiny_system, mode="robust", rho=0.25, rho_adaptive=True,
            volatility_gain=1.0,
        )
        current = LSMTuning(30.0, 8.0, Policy.LEVELING)
        decision = tuner.retune(
            Workload(0.05, 0.05, 0.05, 0.85), current,
            resident_pages=1_000, volatility=0.5,
        )
        assert decision.rho == pytest.approx(0.75)
        assert decision.to_dict()["rho"] == pytest.approx(0.75)

    def test_migration_widens_the_watched_ball(self, tiny_system, key_space):
        """After a drift-aware migration the detector watches the widened
        radius the replacement tuning was solved for."""
        expected = Workload(0.32, 0.32, 0.32, 0.04)
        config = OnlineConfig(
            window=150, check_interval=32, min_observations=64,
            cooldown=256, confirm_checks=2, rho=0.5, mode="robust",
            horizon_ops=50_000, rho_adaptive=True, volatility_gain=2.0,
        )
        controller = _controller(tiny_system, key_space, config, expected)
        assert controller.detector.threshold == pytest.approx(0.5)
        trace = TraceGenerator(key_space, seed=9)
        # A cyclic warm phase *inside* the region: the estimate swings between
        # the two mixes, so the KL trajectory disperses without firing.
        near = Workload(0.30, 0.34, 0.30, 0.06)
        swung = Workload(0.50, 0.30, 0.15, 0.05)
        for burst in range(8):
            mix = near if burst % 2 else swung
            controller.execute(trace.operations(mix, 150))
        assert controller.num_migrations == 0
        assert controller.detector.volatility() > 0.0
        # Now the drift: the widened radius is what the re-tuner solves for
        # and what the detector watches afterwards.
        controller.execute(trace.operations(Workload(0.0, 0.0, 0.0, 1.0), 1_500))
        migrated = [e for e in controller.events if e.migrated]
        assert migrated
        assert migrated[0].decision.rho > 0.5
        assert controller.detector.threshold == pytest.approx(
            migrated[0].decision.rho
        )


class TestOnlineConfig:
    def test_threshold_defaults_to_rho(self):
        config = OnlineConfig(rho=0.75)
        assert config.drift_threshold == 0.75

    def test_explicit_threshold_wins(self):
        config = OnlineConfig(rho=0.75, threshold=2.0)
        assert config.drift_threshold == 2.0

    def test_rejects_bad_check_interval(self):
        with pytest.raises(ValueError):
            OnlineConfig(check_interval=0)

    def test_rejects_unknown_migration_mode(self):
        with pytest.raises(ValueError):
            OnlineConfig(migration="lazy")

    def test_rejects_bad_migration_step_knobs(self):
        with pytest.raises(ValueError):
            OnlineConfig(migration_step_ops=0)
        with pytest.raises(ValueError):
            OnlineConfig(migration_step_pages=0)

    def test_rejects_rho_adaptive_outside_robust_mode(self):
        with pytest.raises(ValueError):
            OnlineConfig(mode="nominal", rho_adaptive=True)
        # The default mode is robust, so adaptivity alone is fine.
        assert OnlineConfig(rho_adaptive=True).rho_adaptive

    def test_large_rho_does_not_trip_the_adaptive_cap(self, tiny_system):
        """A radius above the default cap must not crash (the cap bounds the
        widening, never the configured radius itself)."""
        tuner = AdaptiveTuner(
            system=tiny_system, mode="robust", rho=5.0,
            rho_adaptive=True, volatility_gain=2.0, rho_cap=4.0,
        )
        assert tuner.effective_rho(0.0) == 5.0
        assert tuner.effective_rho(10.0) == 5.0  # cap clamped up to rho
