"""Drift-detector tests, including the ISSUE-2 edge cases.

The edge cases pinned here:

* zero-weight workload components on either side of the divergence (the
  PR 1 underflow class),
* an estimator window shorter than one session,
* drift conditions holding during the post-migration cooldown.
"""

import math

import pytest

from repro.core import UncertaintyRegion
from repro.online import DriftDetector, ObservedWorkload
from repro.workloads import Operation, OperationType, Workload


def _detector(expected: Workload, rho: float = 0.5, **kwargs) -> DriftDetector:
    defaults = {"min_observations": 0, "cooldown": 1_000, "confirm_checks": 1}
    defaults.update(kwargs)
    return DriftDetector(UncertaintyRegion(expected=expected, rho=rho), **defaults)


class TestBasicDetection:
    def test_inside_the_region_stays_quiet(self):
        detector = _detector(Workload.uniform(), rho=0.5)
        check = detector.check(Workload(0.3, 0.3, 0.2, 0.2), position=100)
        assert not check.fired
        assert check.reason == "inside"
        assert check.divergence < 0.5

    def test_escaping_the_region_fires(self):
        detector = _detector(Workload.uniform(), rho=0.1)
        check = detector.check(Workload(0.85, 0.05, 0.05, 0.05), position=100)
        assert check.fired
        assert check.reason == "drift"
        assert check.divergence > 0.1

    def test_warmup_suppresses_firing(self):
        detector = _detector(Workload.uniform(), rho=0.1, min_observations=500)
        drifted = Workload(0.85, 0.05, 0.05, 0.05)
        check = detector.check(drifted, position=100, observations=100)
        assert not check.fired
        assert check.reason == "warmup"
        assert math.isnan(check.divergence)
        assert detector.check(drifted, position=600, observations=600).fired

    def test_no_estimate_reports_warmup(self):
        detector = _detector(Workload.uniform())
        check = detector.check(None, position=0)
        assert not check.fired
        assert check.reason == "warmup"


class TestZeroWeightComponents:
    """The PR 1 underflow class: zero-weight components must be exact."""

    def test_mass_on_a_nominal_zero_component_is_an_escape(self):
        # The nominal workload has no range queries at all; observing them
        # makes the divergence infinite (no tilting can reach the stream).
        nominal = Workload(0.5, 0.5, 0.0, 0.0)
        detector = _detector(nominal, rho=2.0)
        observed = Workload(0.4, 0.4, 0.2, 0.0)
        assert detector.divergence(observed) == math.inf
        check = detector.check(observed, position=10)
        assert check.fired
        assert check.divergence == math.inf

    def test_observed_zero_components_contribute_nothing(self):
        nominal = Workload(0.25, 0.25, 0.25, 0.25)
        detector = _detector(nominal, rho=1.5)
        observed = Workload(1.0, 0.0, 0.0, 0.0)
        divergence = detector.divergence(observed)
        assert divergence == pytest.approx(math.log(4.0))
        assert not detector.check(observed, position=10).fired

    def test_matching_zero_supports_stay_finite(self):
        nominal = Workload(0.5, 0.5, 0.0, 0.0)
        observed = Workload(0.6, 0.4, 0.0, 0.0)
        detector = _detector(nominal, rho=0.5)
        check = detector.check(observed, position=10)
        assert math.isfinite(check.divergence)
        assert not check.fired

    def test_estimator_with_unseen_types_feeds_the_detector(self):
        """End-to-end: a single-type stream (zero-weight estimate components)
        flows through divergence checks without under/overflow."""
        estimator = ObservedWorkload(window=64)
        for key in range(200):
            estimator.record(Operation(OperationType.PUT, key))
        detector = _detector(Workload(0.01, 0.01, 0.01, 0.97), rho=0.5)
        check = detector.check(estimator.workload(), position=200)
        assert math.isfinite(check.divergence)
        assert not check.fired


class TestShortWindow:
    def test_window_shorter_than_a_session_still_detects_drift(self):
        """With a window much shorter than a session the estimate reaches the
        drifted mix mid-session and the detector fires inside it."""
        estimator = ObservedWorkload(window=32)
        detector = _detector(
            Workload(0.45, 0.45, 0.05, 0.05), rho=0.5, min_observations=64
        )
        # First session: matches the expectation; no firing at any check
        # (the first checks sit below the warm-up floor and report so).
        for key in range(512):
            kind = (
                OperationType.EMPTY_GET if key % 2 else OperationType.GET
            )
            estimator.record(Operation(kind, key))
            if key % 64 == 0:
                assert not detector.check(
                    estimator.workload(), position=key, observations=key + 1
                ).fired
        # Second session: write-only; the tiny window converges within ~3
        # windows and the detector fires well before the session ends.
        fired_at = None
        for step in range(256):
            estimator.record(Operation(OperationType.PUT, 10_000 + step))
            check = detector.check(
                estimator.workload(), position=512 + step, observations=513 + step
            )
            if check.fired:
                fired_at = step
                break
        assert fired_at is not None
        assert fired_at < 200


class TestCooldownAndConfirmation:
    def test_drift_during_cooldown_does_not_refire(self):
        """A drift condition that persists through the cooldown is reported as
        suppressed, then fires again once the cooldown has elapsed."""
        detector = _detector(Workload.uniform(), rho=0.1, cooldown=500)
        drifted = Workload(0.85, 0.05, 0.05, 0.05)
        first = detector.check(drifted, position=100)
        assert first.fired
        during = detector.check(drifted, position=300)
        assert not during.fired
        assert during.reason == "cooldown"
        after = detector.check(drifted, position=700)
        assert after.fired

    def test_recenter_mutes_and_moves_the_region(self):
        detector = _detector(Workload.uniform(), rho=0.1, cooldown=500)
        drifted = Workload(0.85, 0.05, 0.05, 0.05)
        assert detector.check(drifted, position=100).fired
        detector.recenter(drifted, position=100)
        # The drifted mix is now nominal: inside, no firing.
        assert detector.check(drifted, position=700).reason == "inside"
        # The old nominal is now the escape, but the cooldown holds first.
        old = Workload.uniform()
        assert detector.check(old, position=300).reason == "cooldown"
        assert detector.check(old, position=700).fired

    def test_confirmation_delays_firing(self):
        detector = _detector(
            Workload.uniform(), rho=0.1, cooldown=0, confirm_checks=3
        )
        drifted = Workload(0.85, 0.05, 0.05, 0.05)
        assert detector.check(drifted, position=1).reason == "confirming"
        assert detector.check(drifted, position=2).reason == "confirming"
        assert detector.check(drifted, position=3).fired

    def test_confirmation_resets_when_back_inside(self):
        detector = _detector(
            Workload.uniform(), rho=0.1, cooldown=0, confirm_checks=2
        )
        drifted = Workload(0.85, 0.05, 0.05, 0.05)
        inside = Workload(0.3, 0.3, 0.2, 0.2)
        assert detector.check(drifted, position=1).reason == "confirming"
        assert detector.check(inside, position=2).reason == "inside"
        assert detector.check(drifted, position=3).reason == "confirming"
        assert detector.check(drifted, position=4).fired


class TestVolatility:
    """The KL-trajectory dispersion that widens the adaptive radius."""

    def test_volatility_is_zero_before_two_checks(self):
        detector = _detector(Workload.uniform(), rho=1.0)
        assert detector.volatility() == 0.0
        detector.check(Workload(0.3, 0.3, 0.2, 0.2), position=1)
        assert detector.volatility() == 0.0

    def test_stationary_stream_has_low_volatility(self):
        detector = _detector(Workload.uniform(), rho=1.0)
        steady = Workload(0.3, 0.3, 0.2, 0.2)
        for position in range(1, 20):
            detector.check(steady, position=position)
        assert detector.volatility() == pytest.approx(0.0, abs=1e-12)

    def test_cyclic_stream_has_high_volatility(self):
        """Alternating phases sweep the trajectory between a near-zero and a
        large divergence: the dispersion dwarfs the stationary case."""
        detector = _detector(Workload.uniform(), rho=10.0)
        phase_a = Workload(0.3, 0.3, 0.2, 0.2)
        phase_b = Workload(0.02, 0.02, 0.02, 0.94)
        for position in range(1, 21):
            detector.check(phase_a if position % 2 else phase_b, position=position)
        assert detector.volatility() > 0.3

    def test_infinite_divergences_do_not_poison_the_trajectory(self):
        nominal = Workload(0.5, 0.5, 0.0, 0.0)
        detector = _detector(nominal, rho=10.0)
        detector.check(Workload(0.6, 0.4, 0.0, 0.0), position=1)
        detector.check(Workload(0.4, 0.4, 0.2, 0.0), position=2)  # inf escape
        detector.check(Workload(0.55, 0.45, 0.0, 0.0), position=3)
        assert math.isfinite(detector.volatility())

    def test_trajectory_window_bounds_the_memory(self):
        detector = _detector(Workload.uniform(), rho=10.0, trajectory_window=4)
        drifted = Workload(0.85, 0.05, 0.05, 0.05)
        steady = Workload(0.3, 0.3, 0.2, 0.2)
        for position in range(1, 10):
            detector.check(drifted, position=position)
        # The old (large) divergences roll out of the window...
        for position in range(10, 20):
            detector.check(steady, position=position)
        assert len(detector.trajectory) == 4
        assert detector.volatility() == pytest.approx(0.0, abs=1e-12)

    def test_recenter_preserves_the_trajectory_and_widens_the_radius(self):
        detector = _detector(Workload.uniform(), rho=0.1, cooldown=0)
        drifted = Workload(0.85, 0.05, 0.05, 0.05)
        detector.check(Workload(0.3, 0.3, 0.2, 0.2), position=1)
        detector.check(drifted, position=2)
        trajectory = detector.trajectory
        detector.recenter(drifted, position=2, rho=1.5)
        assert detector.trajectory == trajectory
        assert detector.threshold == 1.5
        # Without an explicit radius the old one is preserved.
        detector.recenter(drifted, position=3)
        assert detector.threshold == 1.5


class TestValidation:
    def test_rejects_negative_cooldown(self):
        with pytest.raises(ValueError):
            _detector(Workload.uniform(), cooldown=-1)

    def test_rejects_non_positive_confirm_checks(self):
        with pytest.raises(ValueError):
            _detector(Workload.uniform(), confirm_checks=0)

    def test_rejects_degenerate_trajectory_window(self):
        with pytest.raises(ValueError):
            _detector(Workload.uniform(), trajectory_window=1)
