"""Shared fixtures for the Endure reproduction test-suite.

Expensive objects (tuner solutions, the sampled bench_set, bulk-loaded
simulator trees) are session-scoped so the suite stays fast while still
exercising the real solvers and the real storage engine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import NominalTuner, RobustTuner
from repro.lsm import LSMCostModel, LSMTuning, Policy, SystemConfig, simulator_system
from repro.storage import ExecutorConfig, LSMTree, WorkloadExecutor
from repro.workloads import (
    SessionGenerator,
    UncertaintyBenchmark,
    Workload,
    expected_workload,
    expected_workloads,
)


@pytest.fixture(scope="session")
def system() -> SystemConfig:
    """Model-scale system configuration used across the analytical tests."""
    return SystemConfig()


@pytest.fixture(scope="session")
def cost_model(system: SystemConfig) -> LSMCostModel:
    """Cost model bound to the default system."""
    return LSMCostModel(system)


@pytest.fixture(scope="session")
def small_system() -> SystemConfig:
    """Simulator-scale system configuration (small database)."""
    return simulator_system(num_entries=8_000)


@pytest.fixture(scope="session")
def bench_set() -> UncertaintyBenchmark:
    """A reduced bench_set set (500 samples) used by evaluation tests."""
    return UncertaintyBenchmark(size=500, seed=42)


@pytest.fixture(scope="session")
def w0() -> Workload:
    """The uniform expected workload."""
    return expected_workload(0).workload


@pytest.fixture(scope="session")
def w7() -> Workload:
    """The bimodal read/write expected workload."""
    return expected_workload(7).workload


@pytest.fixture(scope="session")
def w11() -> Workload:
    """The trimodal read-heavy expected workload."""
    return expected_workload(11).workload


@pytest.fixture(scope="session")
def nominal_w11(system: SystemConfig, w11: Workload):
    """Nominal tuning for w11 (solved once per test session)."""
    return NominalTuner(system=system, starts_per_policy=3, seed=1).tune(w11)


@pytest.fixture(scope="session")
def robust_w11_rho1(system: SystemConfig, w11: Workload):
    """Robust tuning for w11 with rho = 1 (solved once per test session)."""
    return RobustTuner(rho=1.0, system=system, starts_per_policy=3, seed=1).tune(w11)


@pytest.fixture(scope="session")
def nominal_w7(system: SystemConfig, w7: Workload):
    """Nominal tuning for w7 (solved once per test session)."""
    return NominalTuner(system=system, starts_per_policy=3, seed=1).tune(w7)


@pytest.fixture(scope="session")
def robust_w7_rho1(system: SystemConfig, w7: Workload):
    """Robust tuning for w7 with rho = 1 (solved once per test session)."""
    return RobustTuner(rho=1.0, system=system, starts_per_policy=3, seed=1).tune(w7)


@pytest.fixture()
def leveling_tuning() -> LSMTuning:
    """A representative leveling tuning."""
    return LSMTuning(size_ratio=5.0, bits_per_entry=5.0, policy=Policy.LEVELING)


@pytest.fixture()
def tiering_tuning() -> LSMTuning:
    """A representative tiering tuning."""
    return LSMTuning(size_ratio=5.0, bits_per_entry=5.0, policy=Policy.TIERING)


@pytest.fixture(scope="session")
def loaded_tree(small_system: SystemConfig) -> LSMTree:
    """A bulk-loaded leveling tree shared by read-only storage tests."""
    tree = LSMTree(
        LSMTuning(size_ratio=4.0, bits_per_entry=6.0, policy=Policy.LEVELING),
        small_system,
    )
    tree.bulk_load(np.arange(0, 2 * small_system.num_entries, 2))
    tree.disk.reset()
    return tree


@pytest.fixture(scope="session")
def executor(small_system: SystemConfig) -> WorkloadExecutor:
    """A workload executor over the small simulator system."""
    return WorkloadExecutor(
        small_system, ExecutorConfig(queries_per_workload=300, seed=5)
    )


@pytest.fixture(scope="session")
def session_generator(bench_set: UncertaintyBenchmark) -> SessionGenerator:
    """Session generator over the reduced bench_set."""
    return SessionGenerator(bench_set, seed=3)
