"""Tests for the nominal (classical) tuner."""

import pytest

from repro.core import GridTuner, NominalTuner
from repro.lsm import LSMCostModel, Policy
from repro.workloads import expected_workload


class TestNominalTunerBasics:
    def test_returns_result_with_zero_rho(self, nominal_w11):
        assert nominal_w11.rho == 0.0
        assert nominal_w11.nominal

    def test_tuning_respects_bounds(self, system, nominal_w11):
        tuning = nominal_w11.tuning
        assert 2.0 <= tuning.size_ratio <= system.max_size_ratio
        assert 0.0 <= tuning.bits_per_entry <= system.max_bits_per_entry

    def test_objective_matches_cost_model(self, system, w11, nominal_w11):
        model = LSMCostModel(system)
        assert nominal_w11.objective == pytest.approx(
            model.workload_cost(w11, nominal_w11.tuning), rel=1e-6
        )

    def test_solver_reports_per_policy_objectives(self, nominal_w11):
        per_policy = nominal_w11.solver_info["per_policy_objective"]
        assert set(per_policy) == {"leveling", "tiering"}

    def test_selected_policy_is_the_cheaper_one(self, nominal_w11):
        per_policy = nominal_w11.solver_info["per_policy_objective"]
        best = min(per_policy, key=per_policy.get)
        assert nominal_w11.tuning.policy.value == best

    def test_rejects_zero_starts(self, system):
        with pytest.raises(ValueError):
            NominalTuner(system=system, starts_per_policy=0)

    def test_restricted_policy_is_honoured(self, system, w7):
        result = NominalTuner(
            system=system, policies=(Policy.LEVELING,), starts_per_policy=2
        ).tune(w7)
        assert result.tuning.policy is Policy.LEVELING


class TestNominalTunerQuality:
    def test_matches_grid_search_for_w11(self, system, w11, nominal_w11):
        """SLSQP should match an exhaustive grid search up to discretisation."""
        grid = GridTuner(system=system, bits_grid_points=17).tune(w11)
        assert nominal_w11.objective <= grid.objective * 1.02

    def test_matches_grid_search_for_write_heavy(self, system):
        workload = expected_workload(4).workload  # 97% writes
        solver = NominalTuner(system=system, starts_per_policy=3, seed=2).tune(workload)
        grid = GridTuner(system=system, bits_grid_points=17).tune(workload)
        assert solver.objective <= grid.objective * 1.02

    def test_write_heavy_workload_gets_write_friendly_tuning(self, system):
        workload = expected_workload(4).workload  # 97% writes
        result = NominalTuner(system=system, starts_per_policy=3, seed=2).tune(workload)
        model = LSMCostModel(system)
        # Writes dominate, so the chosen design must keep the write cost low:
        # either tiering, or leveling with a small size ratio.
        is_write_friendly = (
            result.tuning.policy is Policy.TIERING or result.tuning.size_ratio <= 6.0
        )
        assert is_write_friendly

    def test_read_heavy_workload_prefers_leveling(self, system):
        workload = expected_workload(5).workload  # 98% point lookups
        result = NominalTuner(system=system, starts_per_policy=3, seed=2).tune(workload)
        assert result.tuning.policy is Policy.LEVELING

    def test_range_heavy_workload_gets_shallow_tree(self, system):
        workload = expected_workload(3).workload  # 97% range queries
        result = NominalTuner(system=system, starts_per_policy=3, seed=2).tune(workload)
        # Range cost under leveling is the number of levels, so the optimum
        # pushes the size ratio up to flatten the tree.
        assert result.tuning.policy is Policy.LEVELING
        assert result.tuning.size_ratio >= 20.0

    def test_beats_arbitrary_fixed_tunings(self, system, w11, nominal_w11):
        from repro.lsm import LSMTuning

        model = LSMCostModel(system)
        for size_ratio in (2.0, 10.0, 50.0):
            for bits in (1.0, 8.0):
                for policy in (Policy.LEVELING, Policy.TIERING):
                    candidate = LSMTuning(size_ratio, bits, policy)
                    assert nominal_w11.objective <= model.workload_cost(
                        w11, candidate
                    ) + 1e-9

    def test_deterministic_given_seed(self, system, w7):
        first = NominalTuner(system=system, starts_per_policy=2, seed=9).tune(w7)
        second = NominalTuner(system=system, starts_per_policy=2, seed=9).tune(w7)
        assert first.tuning == second.tuning

    def test_uniform_workload_balanced_tuning(self, system, w0):
        result = NominalTuner(system=system, starts_per_policy=3, seed=2).tune(w0)
        # The uniform workload should yield a moderate size ratio (paper: ~5).
        assert 2.0 <= result.tuning.size_ratio <= 12.0
