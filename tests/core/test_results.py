"""Tests for the tuning-result container."""

from repro.core import TuningResult
from repro.lsm import LSMTuning, Policy
from repro.workloads import Workload


def _make_result(rho: float = 0.0) -> TuningResult:
    return TuningResult(
        tuning=LSMTuning(5.0, 4.0, Policy.LEVELING),
        objective=1.5,
        expected_workload=Workload.uniform(),
        rho=rho,
    )


class TestTuningResult:
    def test_nominal_flag(self):
        assert _make_result(rho=0.0).nominal
        assert not _make_result(rho=0.5).nominal

    def test_describe_mentions_kind(self):
        assert "nominal" in _make_result(0.0).describe()
        assert "robust" in _make_result(0.5).describe()

    def test_describe_mentions_objective(self):
        assert "1.5" in _make_result().describe()

    def test_solver_info_defaults_to_empty_dict(self):
        assert _make_result().solver_info == {}

    def test_is_frozen(self):
        result = _make_result()
        try:
            result.objective = 2.0
            mutated = True
        except AttributeError:
            mutated = False
        assert not mutated
