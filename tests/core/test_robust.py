"""Tests for the robust tuner (the paper's contribution)."""

import pytest

from repro.core import GridTuner, RobustTuner, UncertaintyRegion
from repro.core.robust import tune_nominal, tune_robust
from repro.lsm import LSMCostModel
from repro.workloads import expected_workload


class TestRobustTunerBasics:
    def test_rejects_negative_rho(self, system):
        with pytest.raises(ValueError):
            RobustTuner(rho=-0.5, system=system)

    def test_result_records_rho(self, robust_w11_rho1):
        assert robust_w11_rho1.rho == 1.0
        assert not robust_w11_rho1.nominal

    def test_tuning_respects_bounds(self, system, robust_w11_rho1):
        tuning = robust_w11_rho1.tuning
        assert 2.0 <= tuning.size_ratio <= system.max_size_ratio
        assert 0.0 <= tuning.bits_per_entry <= system.max_bits_per_entry

    def test_solver_reports_dual_variables(self, robust_w11_rho1):
        assert "lambda" in robust_w11_rho1.solver_info
        assert "dual_objective" in robust_w11_rho1.solver_info
        assert robust_w11_rho1.solver_info["lambda"] >= 0.0

    def test_objective_is_worst_case_cost(self, system, w11, robust_w11_rho1):
        model = LSMCostModel(system)
        region = UncertaintyRegion(expected=w11, rho=1.0)
        worst = region.worst_case_cost(model.cost_vector(robust_w11_rho1.tuning))
        assert robust_w11_rho1.objective == pytest.approx(worst, rel=1e-6)

    def test_dual_objective_close_to_primal_worst_case(self, robust_w11_rho1):
        """Strong duality at the solution found by SLSQP."""
        dual = robust_w11_rho1.solver_info["dual_objective"]
        assert dual == pytest.approx(robust_w11_rho1.objective, rel=0.05)

    def test_convenience_wrappers(self, system, w7):
        nominal = tune_nominal(w7, system=system, starts_per_policy=2, seed=3)
        robust = tune_robust(w7, rho=0.5, system=system, starts_per_policy=2, seed=3)
        assert nominal.rho == 0.0
        assert robust.rho == 0.5


class TestRobustVersusNominal:
    def test_zero_rho_matches_nominal_cost(self, system, w11, nominal_w11):
        """With no uncertainty, the robust problem reduces to the nominal one."""
        robust = RobustTuner(rho=0.0, system=system, starts_per_policy=3, seed=1).tune(w11)
        model = LSMCostModel(system)
        robust_cost = model.workload_cost(w11, robust.tuning)
        assert robust_cost == pytest.approx(nominal_w11.objective, rel=0.02)

    def test_robust_has_lower_worst_case_than_nominal(
        self, system, w11, nominal_w11, robust_w11_rho1
    ):
        """The whole point of the robust tuning: a better worst case."""
        model = LSMCostModel(system)
        region = UncertaintyRegion(expected=w11, rho=1.0)
        nominal_worst = region.worst_case_cost(model.cost_vector(nominal_w11.tuning))
        robust_worst = region.worst_case_cost(model.cost_vector(robust_w11_rho1.tuning))
        assert robust_worst <= nominal_worst + 1e-9

    def test_robust_pays_little_on_expected_workload(
        self, system, w11, nominal_w11, robust_w11_rho1
    ):
        """On the expected workload itself the robust tuning loses only modestly."""
        model = LSMCostModel(system)
        nominal_cost = model.workload_cost(w11, nominal_w11.tuning)
        robust_cost = model.workload_cost(w11, robust_w11_rho1.tuning)
        assert robust_cost <= 4.0 * nominal_cost

    def test_robust_wins_on_shifted_workload(self, system, w11, nominal_w11, robust_w11_rho1):
        """A write-heavy shift hurts the nominal tuning far more than the robust."""
        model = LSMCostModel(system)
        shifted = expected_workload(12).workload  # adds 33% writes
        nominal_cost = model.workload_cost(shifted, nominal_w11.tuning)
        robust_cost = model.workload_cost(shifted, robust_w11_rho1.tuning)
        assert robust_cost < nominal_cost

    def test_matches_robust_grid_search(self, system, w11, robust_w11_rho1):
        grid = GridTuner(system=system, bits_grid_points=13, rho=1.0).tune(w11)
        assert robust_w11_rho1.objective <= grid.objective * 1.03

    def test_size_ratio_shrinks_with_rho_for_w11(self, system, w11):
        """Figure 5: increasing rho anticipates writes and limits the size ratio."""
        ratios = []
        for rho in (0.0, 1.0, 2.0):
            result = RobustTuner(
                rho=rho, system=system, starts_per_policy=3, seed=1
            ).tune(w11)
            ratios.append(result.tuning.size_ratio)
        assert ratios[1] < ratios[0]
        assert ratios[2] <= ratios[1] + 1.0

    def test_worst_case_objective_monotone_in_rho(self, system, w7):
        values = []
        for rho in (0.0, 0.5, 1.0, 2.0):
            result = RobustTuner(
                rho=rho, system=system, starts_per_policy=3, seed=1
            ).tune(w7)
            values.append(result.objective)
        assert all(b >= a - 1e-6 for a, b in zip(values, values[1:]))

    def test_leveling_chosen_for_w7_under_uncertainty(self, system, w7, robust_w7_rho1):
        """§8.4: leveling is more robust than tiering once uncertainty matters."""
        assert robust_w7_rho1.tuning.policy.value == "leveling"
