"""Tests for the vectorised candidate sweep and the widened policy space.

The vectorised sweep must be a pure optimisation: same selected tunings as
the scalar reference path, just fewer scalar objective evaluations.  These
tests pin that equivalence on representative workloads and exercise lazy
leveling through the full tuner stack.
"""

import pytest

from repro.core import GridTuner, NominalTuner, RobustTuner
from repro.lsm import ALL_POLICIES, LSMCostModel, Policy
from repro.workloads import expected_workload


def _tunings_match(first, second, tolerance: float = 0.05) -> bool:
    return (
        first.policy is second.policy
        and first.size_ratio == pytest.approx(second.size_ratio, abs=tolerance)
        and first.bits_per_entry == pytest.approx(second.bits_per_entry, abs=tolerance)
    )


class TestVectorizedScalarEquivalence:
    @pytest.mark.parametrize("index", [0, 4, 5, 11])
    def test_nominal_selections_agree(self, system, index):
        workload = expected_workload(index).workload
        vectorized = NominalTuner(
            system=system, starts_per_policy=2, seed=1, vectorized=True
        ).tune(workload)
        scalar = NominalTuner(
            system=system, starts_per_policy=2, seed=1, vectorized=False
        ).tune(workload)
        assert _tunings_match(vectorized.tuning, scalar.tuning)
        assert vectorized.objective == pytest.approx(scalar.objective, rel=1e-6)

    @pytest.mark.parametrize("index", [7, 11])
    def test_robust_selections_agree(self, system, index):
        workload = expected_workload(index).workload
        vectorized = RobustTuner(
            rho=1.0, system=system, starts_per_policy=2, seed=1, vectorized=True
        ).tune(workload)
        scalar = RobustTuner(
            rho=1.0, system=system, starts_per_policy=2, seed=1, vectorized=False
        ).tune(workload)
        assert _tunings_match(vectorized.tuning, scalar.tuning)
        assert vectorized.objective == pytest.approx(scalar.objective, rel=1e-5)

    def test_per_policy_objectives_agree(self, system, w11):
        vectorized = NominalTuner(system=system, vectorized=True).tune(w11)
        scalar = NominalTuner(system=system, vectorized=False).tune(w11)
        for policy, value in scalar.solver_info["per_policy_objective"].items():
            assert vectorized.solver_info["per_policy_objective"][
                policy
            ] == pytest.approx(value, rel=1e-3)


class TestLazyLevelingThroughTheTuners:
    def test_restricted_lazy_tuner_returns_lazy_tuning(self, system, w11):
        result = NominalTuner(
            system=system, policies=(Policy.LAZY_LEVELING,), starts_per_policy=2
        ).tune(w11)
        assert result.tuning.policy is Policy.LAZY_LEVELING
        model = LSMCostModel(system)
        assert result.objective == pytest.approx(
            model.workload_cost(w11, result.tuning), rel=1e-6
        )

    def test_all_policy_sweep_reports_every_policy_objective(self, system, w0):
        result = NominalTuner(
            system=system, policies=ALL_POLICIES, starts_per_policy=2
        ).tune(w0)
        per_policy = result.solver_info["per_policy_objective"]
        named = {"leveling", "tiering", "lazy-leveling", "1-leveling"}
        assert named <= set(per_policy)
        fluid_keys = [key for key in per_policy if key.startswith("fluid[")]
        assert fluid_keys, "the fluid (K, Z) grid must be swept"
        # The selected policy is the one whose best spec objective is minimal
        # (modulo the polish, which can only improve on the sweep's winner).
        best_key = min(per_policy, key=per_policy.get)
        best_policy = "fluid" if best_key.startswith("fluid[") else best_key
        assert result.tuning.policy.value == best_policy

    def test_widening_the_policy_space_never_hurts(self, system, w7):
        classic = NominalTuner(system=system, starts_per_policy=2).tune(w7)
        widened = NominalTuner(
            system=system, policies=ALL_POLICIES, starts_per_policy=2
        ).tune(w7)
        assert widened.objective <= classic.objective + 1e-9

    def test_robust_lazy_tuner_solves(self, system, w7):
        result = RobustTuner(
            rho=1.0,
            system=system,
            policies=(Policy.LAZY_LEVELING,),
            starts_per_policy=2,
        ).tune(w7)
        assert result.tuning.policy is Policy.LAZY_LEVELING
        assert result.objective > 0

    def test_lazy_beats_both_classics_when_filter_memory_is_scarce(self):
        """Lazy leveling's raison d'être (Dostoevsky): under a tight memory
        budget, point lookups need the single-run largest level while writes
        need tiering's lazy upper levels — neither classical policy has both.
        """
        from repro.lsm import SystemConfig
        from repro.lsm.system import MIB
        from repro.workloads import Workload

        scarce = SystemConfig(num_entries=10_000_000, total_memory_bytes=3 * MIB)
        workload = Workload(z0=0.45, z1=0.05, q=0.0, w=0.5)
        best = {}
        for policy in ALL_POLICIES:
            result = NominalTuner(
                system=scarce, policies=(policy,), starts_per_policy=2
            ).tune(workload)
            best[policy] = result.objective
        assert best[Policy.LAZY_LEVELING] < 0.99 * best[Policy.LEVELING]
        assert best[Policy.LAZY_LEVELING] < 0.99 * best[Policy.TIERING]
        # Fluid is a superset of lazy leveling (K = T-1, Z = 1 is on its
        # grid), so its tuner-selected optimum can only improve on it.
        assert best[Policy.FLUID] <= best[Policy.LAZY_LEVELING] + 1e-6


class TestGridTunerVectorized:
    def test_grid_matches_solver_with_lazy_policy(self, system, w11):
        solver = NominalTuner(
            system=system, policies=(Policy.LAZY_LEVELING,), starts_per_policy=2
        ).tune(w11)
        grid = GridTuner(
            system=system, bits_grid_points=17, policies=(Policy.LAZY_LEVELING,)
        ).tune(w11)
        assert solver.objective <= grid.objective * 1.02

    def test_grid_counts_every_cell(self, system, w0):
        tuner = GridTuner(system=system, bits_grid_points=5)
        result = tuner.tune(w0)
        expected = len(tuner.policies) * tuner.size_ratios.size * 5
        assert result.solver_info["evaluated_configurations"] == expected
