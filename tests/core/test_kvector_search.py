"""Tests for the per-level K_i vector search of the tuners.

The vector machinery has three stages — structured-family enumeration,
coordinate-descent refinement, and the continuous-bound SLSQP polish with a
rounding feasibility re-check.  These tests pin each stage's contract plus
the end-to-end guarantees: dominance over the uniform sweep, determinism,
and deployable (feasible) results.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import GridTuner, NominalTuner, RobustTuner
from repro.lsm import Policy, PolicySpec, SystemConfig
from repro.workloads import Workload

_SYSTEM = SystemConfig(read_write_asymmetry=2.0)

#: The workload where a front-loaded ladder strictly beats every uniform
#: (K, Z) pair (see benchmarks/test_kvector_frontier.py).
_LADDER_WORKLOAD = Workload(0.05, 0.25, 0.05, 0.65, long_range_fraction=0.3)

_CANDS = np.arange(2.0, 13.0)


def _tuner(**kwargs) -> NominalTuner:
    defaults = dict(
        system=_SYSTEM,
        policies=(Policy.FLUID,),
        ratio_candidates=_CANDS,
        seed=0,
    )
    defaults.update(kwargs)
    return NominalTuner(**defaults)


class TestSweepExpansion:
    def test_flag_off_keeps_the_scalar_sweep(self):
        tuner = _tuner()
        assert all(spec.k_bounds is None for spec in tuner.policy_specs)

    def test_flag_on_adds_vector_families(self):
        tuner = _tuner(k_vector_search=True)
        assert any(spec.k_bounds is not None for spec in tuner.policy_specs)

    def test_rejects_non_positive_vector_levels(self):
        with pytest.raises(ValueError):
            _tuner(k_vector_search=True, k_vector_levels=0)


class TestVectorSearchResults:
    def test_strictly_beats_the_uniform_sweep_on_the_ladder_workload(self):
        uniform = _tuner().tune(_LADDER_WORKLOAD)
        vector = _tuner(k_vector_search=True).tune(_LADDER_WORKLOAD)
        assert vector.objective < uniform.objective
        assert vector.tuning.k_bounds is not None
        deployed = vector.tuning.rounded()
        assert len(set(deployed.k_bounds)) > 1, "a genuinely non-uniform ladder"

    def test_solver_info_records_the_vector_winner(self):
        result = _tuner(k_vector_search=True, polish=False).tune(_LADDER_WORKLOAD)
        assert "k_vector_search" in result.solver_info

    def test_same_seed_is_deterministic(self):
        first = _tuner(k_vector_search=True).tune(_LADDER_WORKLOAD)
        second = _tuner(k_vector_search=True).tune(_LADDER_WORKLOAD)
        assert first.tuning == second.tuning
        assert first.objective == second.objective

    def test_polished_bounds_are_feasible_after_rounding(self):
        result = _tuner(k_vector_search=True).tune(_LADDER_WORKLOAD)
        deployed = result.tuning.rounded()
        cap = deployed.size_ratio - 1.0
        assert all(1.0 <= bound <= max(cap, 1.0) for bound in deployed.k_bounds)
        assert 1.0 <= deployed.z_bound <= max(cap, 1.0)

    def test_vector_result_round_trips_through_serialisation(self):
        from repro.lsm import LSMTuning

        result = _tuner(k_vector_search=True).tune(_LADDER_WORKLOAD)
        assert LSMTuning.from_dict(result.tuning.to_dict()) == result.tuning

    def test_uniform_optimum_stays_uniform(self):
        """Where one shared bound is optimal (read-heavy), the vector search
        must not report spurious non-uniform structure."""
        workload = Workload(0.30, 0.45, 0.15, 0.10, long_range_fraction=0.1)
        result = _tuner(k_vector_search=True).tune(workload)
        deployed = result.tuning.rounded()
        if deployed.k_bounds is not None:
            assert len(set(deployed.k_bounds)) == 1


class TestCoordinateDescent:
    def test_descent_never_worsens_the_sweep_value(self):
        tuner = _tuner(k_vector_search=True, polish=False)
        sweep_only = _tuner(polish=False).tune(_LADDER_WORKLOAD)
        descended = tuner.tune(_LADDER_WORKLOAD)
        assert descended.objective <= sweep_only.objective + 1e-12

    def test_descent_refines_a_pinned_suboptimal_vector(self):
        """Seeded with only a deliberately bad vector spec, the descent must
        walk it to something better at the swept (T, h).  Size ratios start
        at 6 so the bad bounds cannot be clamped into accidental optimality
        (at T = 2 every bound collapses to 1)."""
        bad = PolicySpec(Policy.FLUID, k_bounds=(1.0, 64.0, 1.0), z_bound=4.0)
        cands = np.arange(6.0, 13.0)
        pinned = _tuner(
            policies=(bad,), polish=False, ratio_candidates=cands
        ).tune(_LADDER_WORKLOAD)
        refined = _tuner(
            policies=(bad,),
            polish=False,
            k_vector_search=True,
            ratio_candidates=cands,
        ).tune(_LADDER_WORKLOAD)
        assert refined.objective < pinned.objective


class TestGridTunerVectors:
    def test_grid_tuner_accepts_explicit_vector_specs(self):
        spec = PolicySpec(Policy.FLUID, k_bounds=(4.0, 2.0, 1.0), z_bound=1.0)
        tuner = GridTuner(
            system=_SYSTEM,
            size_ratios=np.arange(2.0, 9.0),
            bits_grid_points=5,
            policies=(spec,),
        )
        result = tuner.tune(_LADDER_WORKLOAD)
        assert result.tuning.k_bounds == (4.0, 2.0, 1.0)
        assert np.isfinite(result.objective)

    def test_grid_tuner_vector_flag_expands_families(self):
        tuner = GridTuner(
            system=_SYSTEM,
            size_ratios=np.arange(2.0, 5.0),
            bits_grid_points=3,
            policies=(Policy.FLUID,),
            k_vector_search=True,
        )
        assert any(spec.k_bounds is not None for spec in tuner.policy_specs)


class TestRobustVectorSearch:
    def test_robust_vector_search_dominates_the_uniform_sweep(self):
        uniform = RobustTuner(
            rho=0.5,
            system=_SYSTEM,
            policies=(Policy.FLUID,),
            ratio_candidates=_CANDS,
            seed=0,
        ).tune(_LADDER_WORKLOAD)
        vector = RobustTuner(
            rho=0.5,
            system=_SYSTEM,
            policies=(Policy.FLUID,),
            ratio_candidates=_CANDS,
            seed=0,
            k_vector_search=True,
        ).tune(_LADDER_WORKLOAD)
        assert np.isfinite(vector.objective)
        assert vector.objective <= uniform.objective + 1e-9

    def test_rho_zero_matches_the_nominal_vector_search(self):
        nominal = _tuner(k_vector_search=True, polish=False).tune(_LADDER_WORKLOAD)
        robust = RobustTuner(
            rho=0.0,
            system=_SYSTEM,
            policies=(Policy.FLUID,),
            ratio_candidates=_CANDS,
            seed=0,
            polish=False,
            k_vector_search=True,
        ).tune(_LADDER_WORKLOAD)
        assert robust.objective == pytest.approx(nominal.objective, rel=1e-9)
