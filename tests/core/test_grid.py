"""Tests for the exhaustive grid-search baseline tuner."""

import numpy as np
import pytest

from repro.core import GridTuner
from repro.lsm import LSMCostModel, Policy, SystemConfig
from repro.workloads import Workload


@pytest.fixture(scope="module")
def coarse_grid(request) -> GridTuner:
    system = SystemConfig()
    return GridTuner(
        system=system,
        size_ratios=np.array([2.0, 5.0, 10.0, 20.0, 50.0]),
        bits_grid_points=9,
    )


class TestGridTuner:
    def test_rejects_negative_rho(self):
        with pytest.raises(ValueError):
            GridTuner(rho=-1.0)

    def test_rejects_degenerate_bits_grid(self):
        with pytest.raises(ValueError):
            GridTuner(bits_grid_points=1)

    def test_reports_evaluation_count(self, coarse_grid, w0):
        result = coarse_grid.tune(w0)
        expected_count = 2 * 5 * 9  # policies x ratios x bits points
        assert result.solver_info["evaluated_configurations"] == expected_count

    def test_objective_matches_cost_model(self, coarse_grid, w0):
        result = coarse_grid.tune(w0)
        model = LSMCostModel(coarse_grid.system)
        assert result.objective == pytest.approx(
            model.workload_cost(w0, result.tuning)
        )

    def test_best_of_grid_is_minimal(self, coarse_grid, w11):
        result = coarse_grid.tune(w11)
        model = LSMCostModel(coarse_grid.system)
        for size_ratio in coarse_grid.size_ratios:
            for bits in coarse_grid.bits_grid:
                for policy in (Policy.LEVELING, Policy.TIERING):
                    from repro.lsm import LSMTuning

                    candidate = LSMTuning(float(size_ratio), float(bits), policy)
                    assert result.objective <= model.workload_cost(w11, candidate) + 1e-12

    def test_write_heavy_prefers_write_friendly_design(self, coarse_grid):
        write_heavy = Workload(0.01, 0.01, 0.01, 0.97)
        result = coarse_grid.tune(write_heavy)
        assert (
            result.tuning.policy is Policy.TIERING or result.tuning.size_ratio <= 5.0
        )

    def test_robust_grid_objective_exceeds_nominal(self, w11):
        system = SystemConfig()
        ratios = np.array([2.0, 5.0, 10.0, 20.0])
        nominal = GridTuner(system=system, size_ratios=ratios, bits_grid_points=7).tune(w11)
        robust = GridTuner(
            system=system, size_ratios=ratios, bits_grid_points=7, rho=1.0
        ).tune(w11)
        assert robust.objective >= nominal.objective
