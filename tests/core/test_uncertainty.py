"""Tests for the KL uncertainty region and the robust-dual machinery."""

import numpy as np
import pytest

from repro.core import UncertaintyRegion, dual_objective, kl_conjugate, minimize_dual_for_cost
from repro.core.uncertainty import kl_divergence
from repro.workloads import Workload, expected_workload


@pytest.fixture()
def uniform() -> Workload:
    return Workload.uniform()


@pytest.fixture()
def cost_vector() -> np.ndarray:
    # A representative cost vector: ranges expensive, writes cheap.
    return np.array([2.0, 1.5, 6.0, 0.5])


class TestKLConjugate:
    def test_zero_at_origin(self):
        assert kl_conjugate(0.0) == pytest.approx(0.0)

    def test_matches_exponential_form(self):
        s = np.array([-1.0, 0.0, 2.0])
        assert np.allclose(kl_conjugate(s), np.exp(s) - 1.0)

    def test_is_convex_on_samples(self):
        xs = np.linspace(-3, 3, 41)
        values = kl_conjugate(xs)
        midpoints = kl_conjugate((xs[:-1] + xs[1:]) / 2)
        assert np.all(midpoints <= (values[:-1] + values[1:]) / 2 + 1e-12)


class TestUncertaintyRegion:
    def test_rejects_negative_rho(self, uniform):
        with pytest.raises(ValueError):
            UncertaintyRegion(expected=uniform, rho=-0.1)

    def test_expected_workload_always_contained(self, uniform):
        region = UncertaintyRegion(expected=uniform, rho=0.0)
        assert region.contains(uniform)

    def test_far_workload_not_contained_for_small_rho(self, uniform):
        region = UncertaintyRegion(expected=uniform, rho=0.05)
        skewed = Workload(0.9, 0.04, 0.03, 0.03)
        assert not region.contains(skewed)

    def test_far_workload_contained_for_large_rho(self, uniform):
        region = UncertaintyRegion(expected=uniform, rho=4.0)
        skewed = Workload(0.9, 0.04, 0.03, 0.03)
        assert region.contains(skewed)

    def test_divergence_matches_free_function(self, uniform):
        region = UncertaintyRegion(expected=uniform, rho=1.0)
        other = Workload(0.4, 0.3, 0.2, 0.1)
        assert region.divergence(other) == pytest.approx(
            kl_divergence(other.as_array(), uniform.as_array())
        )


class TestWorstCaseWorkload:
    def test_zero_rho_returns_expected(self, uniform, cost_vector):
        region = UncertaintyRegion(expected=uniform, rho=0.0)
        assert region.worst_case_workload(cost_vector) == uniform

    def test_constant_costs_return_expected(self, uniform):
        region = UncertaintyRegion(expected=uniform, rho=1.0)
        worst = region.worst_case_workload(np.full(4, 3.0))
        assert np.allclose(worst.as_array(), uniform.as_array())

    def test_worst_case_lies_inside_region(self, uniform, cost_vector):
        region = UncertaintyRegion(expected=uniform, rho=0.5)
        worst = region.worst_case_workload(cost_vector)
        assert region.contains(worst, tolerance=1e-6)

    def test_worst_case_constraint_is_tight(self, uniform, cost_vector):
        region = UncertaintyRegion(expected=uniform, rho=0.5)
        worst = region.worst_case_workload(cost_vector)
        assert region.divergence(worst) == pytest.approx(0.5, abs=1e-4)

    def test_worst_case_shifts_mass_to_expensive_queries(self, uniform, cost_vector):
        region = UncertaintyRegion(expected=uniform, rho=0.5)
        worst = region.worst_case_workload(cost_vector)
        # Ranges are the most expensive component, writes the cheapest.
        assert worst.q > uniform.q
        assert worst.w < uniform.w

    def test_worst_case_cost_at_least_nominal(self, uniform, cost_vector):
        region = UncertaintyRegion(expected=uniform, rho=0.5)
        nominal_cost = float(np.dot(uniform.as_array(), cost_vector))
        assert region.worst_case_cost(cost_vector) >= nominal_cost

    def test_worst_case_cost_monotone_in_rho(self, uniform, cost_vector):
        costs = [
            UncertaintyRegion(expected=uniform, rho=rho).worst_case_cost(cost_vector)
            for rho in (0.0, 0.25, 1.0, 2.0)
        ]
        assert costs == sorted(costs)

    def test_worst_case_cost_bounded_by_max_component(self, uniform, cost_vector):
        region = UncertaintyRegion(expected=uniform, rho=10.0)
        assert region.worst_case_cost(cost_vector) <= float(cost_vector.max()) + 1e-6

    def test_skewed_expected_workload(self, cost_vector):
        expected = expected_workload(1).workload  # 97% empty reads
        region = UncertaintyRegion(expected=expected, rho=1.0)
        worst = region.worst_case_workload(cost_vector)
        assert region.contains(worst, tolerance=1e-6)
        assert worst.q > expected.q

    def test_rejects_wrong_cost_dimension(self, uniform):
        region = UncertaintyRegion(expected=uniform, rho=1.0)
        with pytest.raises(ValueError):
            region.worst_case_workload(np.array([1.0, 2.0]))


class TestDualObjective:
    def test_strong_duality(self, uniform, cost_vector):
        """The dual optimum equals the exact worst-case (primal) cost."""
        rho = 0.5
        region = UncertaintyRegion(expected=uniform, rho=rho)
        primal = region.worst_case_cost(cost_vector)
        dual_value, lam, _ = minimize_dual_for_cost(cost_vector, uniform, rho)
        assert dual_value == pytest.approx(primal, rel=1e-3)
        assert lam >= 0.0

    def test_strong_duality_skewed_expected(self, cost_vector):
        expected = expected_workload(7).workload
        rho = 1.0
        region = UncertaintyRegion(expected=expected, rho=rho)
        primal = region.worst_case_cost(cost_vector)
        dual_value, _, _ = minimize_dual_for_cost(cost_vector, expected, rho)
        assert dual_value == pytest.approx(primal, rel=1e-3)

    def test_dual_upper_bounds_primal_everywhere(self, uniform, cost_vector):
        """Weak duality: any feasible (λ, η) upper-bounds the worst-case cost."""
        rho = 0.75
        region = UncertaintyRegion(expected=uniform, rho=rho)
        primal = region.worst_case_cost(cost_vector)
        rng = np.random.default_rng(0)
        for _ in range(25):
            lam = float(rng.uniform(0.05, 10.0))
            eta = float(rng.uniform(-2.0, 8.0))
            assert dual_objective(cost_vector, uniform, rho, lam, eta) >= primal - 1e-8

    def test_rejects_negative_lambda(self, uniform, cost_vector):
        with pytest.raises(ValueError):
            dual_objective(cost_vector, uniform, 0.5, -1.0, 0.0)

    def test_lambda_zero_limit(self, uniform, cost_vector):
        # With λ = 0 the dual reduces to η when η dominates every cost.
        value = dual_objective(cost_vector, uniform, 0.5, 0.0, 10.0)
        assert value == pytest.approx(10.0)
        assert dual_objective(cost_vector, uniform, 0.5, 0.0, 0.0) == np.inf


class TestZeroWeightComponents:
    """Workloads with empty components (e.g. no range queries at all) must
    not break the worst-case machinery — regression for a 0/0 underflow in
    the exponential tilting."""

    def test_worst_case_stays_on_the_support(self):
        expected = Workload(z0=0.45, z1=0.05, q=0.0, w=0.5)
        region = UncertaintyRegion(expected=expected, rho=0.5)
        cost = np.array([1.0, 2.0, 50.0, 3.0])  # costliest component has no mass
        worst = region.worst_case_workload(cost)
        assert worst.q == 0.0
        assert region.contains(worst, tolerance=1e-5)
        assert np.isfinite(region.worst_case_cost(cost))
        assert region.worst_case_cost(cost) >= float(
            np.dot(expected.as_array(), cost)
        ) - 1e-9

    def test_robust_tuner_handles_zero_weight_workloads(self, system):
        from repro.core import RobustTuner

        expected = Workload(z0=0.5, z1=0.0, q=0.0, w=0.5)
        result = RobustTuner(rho=0.5, system=system, starts_per_policy=2).tune(expected)
        assert np.isfinite(result.objective)
        assert result.objective > 0
