"""End-to-end integration tests: tuner -> cost model -> simulator.

These tests exercise the full pipeline the paper describes: compute nominal
and robust tunings for an expected workload, evaluate them analytically over
the uncertainty bench_set, then deploy them on the simulated storage engine
and confirm that the analytical predictions carry over to measured I/O.
"""

import numpy as np
import pytest

from repro.analysis import SystemExperiment, delta_throughput, win_rate
from repro.core import NominalTuner, RobustTuner, UncertaintyRegion
from repro.lsm import LSMCostModel, LSMTuning, Policy, simulator_system
from repro.storage import ExecutorConfig, WorkloadExecutor
from repro.workloads import UncertaintyBenchmark, Workload, expected_workload
from repro.workloads.sessions import Session, SessionSequence, SessionType


class TestModelPipeline:
    """Endure's model-based claims on a reduced bench_set."""

    def test_robust_beats_nominal_on_most_noisy_workloads(
        self, system, w11, nominal_w11, robust_w11_rho1, bench_set
    ):
        """Headline claim (§7.3): for a skewed expected workload the robust
        tuning outperforms the nominal one on the bulk of the bench_set."""
        model = LSMCostModel(system)
        rate = win_rate(
            model, list(bench_set), nominal_w11.tuning, robust_w11_rho1.tuning
        )
        assert rate > 0.6

    def test_average_delta_throughput_is_large_for_w11(
        self, system, nominal_w11, robust_w11_rho1, bench_set
    ):
        """§7.3 reports >95% average improvement for skewed workloads with
        rho >= 0.5; require a substantial improvement on the reduced set."""
        model = LSMCostModel(system)
        deltas = [
            delta_throughput(model, w, nominal_w11.tuning, robust_w11_rho1.tuning)
            for w in bench_set
        ]
        assert float(np.mean(deltas)) > 0.3

    def test_nominal_slightly_better_when_workload_matches(
        self, system, w11, nominal_w11, robust_w11_rho1
    ):
        """On the exact expected workload the nominal tuning must win (it is
        the optimum there) but the robust loss stays bounded."""
        model = LSMCostModel(system)
        delta = delta_throughput(model, w11, nominal_w11.tuning, robust_w11_rho1.tuning)
        assert delta <= 0.0
        assert delta > -0.9

    def test_worst_case_ordering_holds_for_all_expected_workloads(self, system):
        """For every Table 2 workload, the robust tuning's worst case is no
        worse than the nominal tuning's worst case (the defining property)."""
        model = LSMCostModel(system)
        for index in (1, 4, 7, 11):
            expected = expected_workload(index).workload
            nominal = NominalTuner(system=system, starts_per_policy=2, seed=4).tune(expected)
            robust = RobustTuner(rho=1.0, system=system, starts_per_policy=2, seed=4).tune(expected)
            region = UncertaintyRegion(expected=expected, rho=1.0)
            nominal_worst = region.worst_case_cost(model.cost_vector(nominal.tuning))
            robust_worst = region.worst_case_cost(model.cost_vector(robust.tuning))
            assert robust_worst <= nominal_worst + 1e-6


class TestModelSimulatorAgreement:
    """Measured I/Os per operation vs the analytical prediction, per policy.

    One fixed trace per query type is replayed under every registered policy
    (including a fluid tuning with interior run bounds) and the measured
    I/Os per operation are compared against the corresponding component of
    ``LSMCostModel``'s prediction.  The model is a *steady-state worst case*
    — runs per level at their bound, every qualifying run seeked — while the
    simulator is an average case with fence pointers and partially filled
    levels, so the tolerance is per query type:

    * non-empty reads are tightly predicted (every lookup really pays its
      residence-level page),
    * writes agree within the compaction-amortisation noise of a short
      session,
    * empty reads and range seeks are upper-bounded by the model (Bloom
      filters and fence pointers only ever remove I/Os) but must stay within
      a constant factor, or the model would be useless for tuning.
    """

    #: Policies deployed on the simulator, exercising every runtime hook.
    POLICY_TUNINGS = [
        LSMTuning(6.0, 6.0, Policy.LEVELING),
        LSMTuning(6.0, 6.0, Policy.TIERING),
        LSMTuning(6.0, 6.0, Policy.LAZY_LEVELING),
        LSMTuning(6.0, 6.0, Policy.ONE_LEVELING),
        LSMTuning(6.0, 6.0, Policy.FLUID, k_bound=3, z_bound=1),
        LSMTuning(6.0, 6.0, Policy.FLUID, k_bound=2, z_bound=2),
    ]

    #: (measured / predicted) bands per query-type session.
    TOLERANCES = {
        "z1": (0.75, 1.25),
        "w": (0.4, 1.3),
        "z0": (0.25, 1.25),
        "q": (0.1, 1.1),
    }

    SESSION_WORKLOADS = {
        "z0": Workload(0.98, 0.01, 0.0, 0.01),
        "z1": Workload(0.01, 0.98, 0.0, 0.01),
        "q": Workload(0.01, 0.01, 0.97, 0.01),
        "w": Workload(0.01, 0.01, 0.0, 0.98),
    }

    @pytest.fixture(scope="class")
    def harness(self):
        system = simulator_system(num_entries=6_000)
        executor = WorkloadExecutor(
            system, ExecutorConfig(queries_per_workload=800, seed=17)
        )
        return system, executor, LSMCostModel(system)

    @pytest.mark.parametrize(
        "tuning", POLICY_TUNINGS, ids=lambda t: t.describe().replace(" ", "")
    )
    def test_measured_ios_track_model_predictions(self, harness, tuning):
        _, executor, model = harness
        for name, workload in self.SESSION_WORKLOADS.items():
            session = Session(SessionType.EXPECTED, name, (workload,))
            sequence = SessionSequence(expected=workload, sessions=(session,))
            measured = executor.run_sequence(tuning, sequence).sessions[0].ios_per_query
            predicted = model.workload_cost(workload, tuning)
            ratio = measured / predicted
            lo, hi = self.TOLERANCES[name]
            assert lo <= ratio <= hi, (
                f"{tuning.describe()} {name}: measured {measured:.3f} vs "
                f"predicted {predicted:.3f} (ratio {ratio:.2f} outside [{lo}, {hi}])"
            )

    def test_fluid_write_cost_interpolates_on_the_simulator(self, harness):
        """Measured write I/O of fluid (K = 3) lies between its leveling and
        tiering corners — the runtime really executes the bounded-K merge
        schedule the analytics amortise."""
        _, executor, _ = harness
        workload = self.SESSION_WORKLOADS["w"]
        session = Session(SessionType.EXPECTED, "w", (workload,))
        sequence = SessionSequence(expected=workload, sessions=(session,))

        def measured(tuning):
            return executor.run_sequence(tuning, sequence).sessions[0].ios_per_query

        leveled = measured(LSMTuning(6.0, 6.0, Policy.FLUID, k_bound=1, z_bound=1))
        interior = measured(LSMTuning(6.0, 6.0, Policy.FLUID, k_bound=3, z_bound=1))
        tiered = measured(LSMTuning(6.0, 6.0, Policy.FLUID, k_bound=5, z_bound=5))
        assert tiered < interior < leveled


class TestLongRangeAgreementUnderChurn:
    """Long-range simulator-vs-model agreement under obsolete versions.

    The long-range cost model charges *every resident run* of a level with
    the scan selectivity's share of the level's capacity — a worst case
    driven by obsolete versions: after heavy updates, each run on a key's
    path holds its own stale copy and a long scan pays to read them all.
    Fresh-key traces cannot exhibit that (every key exists exactly once, so
    all policies measure alike and the model's per-policy spread looks like
    pure pessimism); the update-heavy trace generator closes the gap.

    Pinned here, per compaction policy:

    * churn strictly amplifies the measured long-scan cost,
    * the churned measurements *rank* the policies exactly as the model's
      long-range term does (tiering worst, leveling best, the hybrids in
      between) — the ordering a tuner needs,
    * measured/predicted stays within a constant-factor band (the model is
      a steady-state worst case; the simulator is an average case).
    """

    POLICY_TUNINGS = [
        LSMTuning(6.0, 6.0, Policy.TIERING),
        LSMTuning(6.0, 6.0, Policy.LEVELING),
        LSMTuning(6.0, 6.0, Policy.LAZY_LEVELING),
        LSMTuning(6.0, 6.0, Policy.FLUID, k_bound=3, z_bound=1),
    ]

    #: (measured / predicted) band for churned long scans, per policy family:
    #: worst-case run counts are rarely all resident at once, so the model
    #: upper-bounds the simulator — but within a useful constant factor.
    AGREEMENT_BAND = (0.10, 1.1)

    @pytest.fixture(scope="class")
    def harness(self):
        system = simulator_system(num_entries=6_000)
        long_keys = max(
            16, int(system.long_range_selectivity * system.num_entries)
        )
        churn = Workload(0.0, 0.0, 0.0, 1.0)
        scan = Workload(0.0, 0.0, 1.0, 0.0, long_range_fraction=1.0)
        sequence = SessionSequence(
            expected=scan,
            sessions=(
                Session(SessionType.WRITE, "churn", (churn,)),
                Session(SessionType.RANGE, "scan", (scan,)),
            ),
        )

        def measure(tuning: LSMTuning, update_fraction: float) -> float:
            executor = WorkloadExecutor(
                system,
                ExecutorConfig(
                    queries_per_workload=600,
                    seed=17,
                    update_fraction=update_fraction,
                    update_skew=0.8,
                    long_scan_keys=long_keys,
                ),
            )
            return executor.run_sequence(tuning, sequence).sessions[1].read_ios_per_query

        return LSMCostModel(system), measure

    def test_churn_amplifies_and_model_band_holds(self, harness):
        model, measure = harness
        lo, hi = self.AGREEMENT_BAND
        for tuning in self.POLICY_TUNINGS:
            fresh = measure(tuning, update_fraction=0.0)
            churned = measure(tuning, update_fraction=0.9)
            assert churned > fresh, (
                f"{tuning.describe()}: update churn must amplify long scans "
                f"(fresh {fresh:.2f}, churned {churned:.2f})"
            )
            predicted = model.long_range_cost(tuning)
            ratio = churned / predicted
            assert lo <= ratio <= hi, (
                f"{tuning.describe()}: churned long scans measured "
                f"{churned:.2f} vs predicted {predicted:.2f} "
                f"(ratio {ratio:.2f} outside [{lo}, {hi}])"
            )

    def test_churned_measurements_rank_policies_like_the_model(self, harness):
        model, measure = harness
        predicted = [model.long_range_cost(t) for t in self.POLICY_TUNINGS]
        churned = [measure(t, update_fraction=0.9) for t in self.POLICY_TUNINGS]
        model_order = sorted(range(len(predicted)), key=predicted.__getitem__)
        measured_order = sorted(range(len(churned)), key=churned.__getitem__)
        assert measured_order == model_order, (
            "obsolete-version amplification must rank the policies exactly "
            f"as the long-range model does (model {model_order}, "
            f"measured {measured_order})"
        )


class TestSystemPipeline:
    """Model predictions versus simulator measurements."""

    @pytest.fixture(scope="class")
    def experiment(self):
        return SystemExperiment(
            system=simulator_system(num_entries=6_000),
            executor_config=ExecutorConfig(queries_per_workload=400, seed=19),
            benchmark=UncertaintyBenchmark(size=300, seed=19),
            starts_per_policy=2,
            seed=19,
        )

    @pytest.fixture(scope="class")
    def comparison(self, experiment):
        return experiment.run(
            expected_workload(11).workload, rho=1.0, include_writes=True,
            workloads_per_session=1,
        )

    def test_model_and_system_agree_on_who_wins_overall(self, comparison):
        """§8.3: the cost model accurately captures the *relative* performance
        of tunings — the tuning the model prefers over the whole sequence is
        also the one the simulator measures as cheaper."""
        model_nominal = sum(s.model_ios["nominal"] for s in comparison.sessions)
        model_robust = sum(s.model_ios["robust"] for s in comparison.sessions)
        system_nominal = sum(s.system_ios["nominal"] for s in comparison.sessions)
        system_robust = sum(s.system_ios["robust"] for s in comparison.sessions)
        assert (model_robust < model_nominal) == (system_robust < system_nominal)

    def test_robust_reduces_io_and_latency_for_w11(self, comparison):
        summary = comparison.summary()
        assert summary["io_reduction"] > 0.0
        assert summary["latency_reduction"] > 0.0

    def test_latency_tracks_io(self, comparison):
        """The simulated latency is derived from page I/O, so the two metrics
        must order the tunings identically within every session."""
        for session in comparison.sessions:
            io_order = session.system_ios["robust"] <= session.system_ios["nominal"]
            latency_order = session.latency_us["robust"] <= session.latency_us["nominal"]
            assert io_order == latency_order
