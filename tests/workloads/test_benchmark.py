"""Tests for Table 2 expected workloads and the uncertainty bench_set."""

import numpy as np
import pytest

from repro.workloads import (
    UncertaintyBenchmark,
    WorkloadCategory,
    expected_workload,
    expected_workloads,
    rho_grid,
    workloads_by_category,
)


class TestExpectedWorkloads:
    def test_there_are_fifteen(self):
        assert len(expected_workloads()) == 15

    def test_indices_are_sequential(self):
        assert [w.index for w in expected_workloads()] == list(range(15))

    def test_names_follow_paper_convention(self):
        assert expected_workload(0).name == "w0"
        assert expected_workload(14).name == "w14"

    def test_all_sum_to_one(self):
        for expected in expected_workloads():
            assert sum(expected.workload.as_tuple()) == pytest.approx(1.0)

    def test_every_query_type_has_at_least_one_percent(self):
        for expected in expected_workloads():
            assert min(expected.workload.as_tuple()) >= 0.01 - 1e-12

    def test_category_counts_match_table2(self):
        assert len(workloads_by_category(WorkloadCategory.UNIFORM)) == 1
        assert len(workloads_by_category(WorkloadCategory.UNIMODAL)) == 4
        assert len(workloads_by_category(WorkloadCategory.BIMODAL)) == 6
        assert len(workloads_by_category(WorkloadCategory.TRIMODAL)) == 4

    def test_category_accepts_strings(self):
        assert len(workloads_by_category("bimodal")) == 6

    def test_specific_rows_match_table2(self):
        assert expected_workload(0).workload.as_tuple() == (0.25, 0.25, 0.25, 0.25)
        assert expected_workload(1).workload.as_tuple() == (0.97, 0.01, 0.01, 0.01)
        assert expected_workload(7).workload.as_tuple() == (0.49, 0.01, 0.01, 0.49)
        assert expected_workload(11).workload.as_tuple() == (0.33, 0.33, 0.33, 0.01)

    def test_out_of_range_index_rejected(self):
        with pytest.raises(IndexError):
            expected_workload(15)

    def test_describe_contains_name_and_category(self):
        text = expected_workload(11).describe()
        assert "w11" in text
        assert "trimodal" in text


class TestUncertaintyBenchmark:
    def test_size_and_iteration(self, bench_set):
        assert len(bench_set) == 500
        assert len(list(bench_set)) == 500

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            UncertaintyBenchmark(size=0)
        with pytest.raises(ValueError):
            UncertaintyBenchmark(max_queries=1)

    def test_workloads_are_valid_distributions(self, bench_set):
        matrix = bench_set.as_matrix()
        assert np.allclose(matrix.sum(axis=1), 1.0)
        assert np.all(matrix >= 0.0)

    def test_reproducible_with_same_seed(self):
        a = UncertaintyBenchmark(size=50, seed=7)
        b = UncertaintyBenchmark(size=50, seed=7)
        assert np.allclose(a.as_matrix(), b.as_matrix())

    def test_different_seeds_differ(self):
        a = UncertaintyBenchmark(size=50, seed=7)
        b = UncertaintyBenchmark(size=50, seed=8)
        assert not np.allclose(a.as_matrix(), b.as_matrix())

    def test_query_counts_within_range(self, bench_set):
        counts = bench_set.query_counts
        assert counts.shape == (500, 4)
        assert counts.min() >= 1
        assert counts.max() < bench_set.max_queries

    def test_counts_normalise_to_workloads(self, bench_set):
        counts = bench_set.query_counts
        normalised = counts / counts.sum(axis=1, keepdims=True)
        assert np.allclose(normalised, bench_set.as_matrix())

    def test_getitem(self, bench_set):
        assert bench_set[0] == list(bench_set)[0]

    def test_sample_returns_requested_count(self, bench_set):
        assert len(bench_set.sample(10, seed=1)) == 10

    def test_sample_rejects_non_positive(self, bench_set):
        with pytest.raises(ValueError):
            bench_set.sample(0)


class TestBenchmarkDivergences:
    def test_divergences_non_negative(self, bench_set, w0):
        divergences = bench_set.kl_divergences(w0)
        assert np.all(divergences >= -1e-12)

    def test_uniform_reference_has_small_divergences(self, bench_set, w0, w7):
        """Figure 3: divergences w.r.t. the uniform workload are much smaller
        than w.r.t. a highly skewed workload."""
        uniform_divs = bench_set.kl_divergences(w0)
        skewed_divs = bench_set.kl_divergences(expected_workload(1).workload)
        assert uniform_divs.mean() < skewed_divs.mean()

    def test_uniform_divergences_mostly_below_half(self, bench_set, w0):
        divergences = bench_set.kl_divergences(w0)
        assert np.quantile(divergences, 0.9) < 0.5

    def test_within_divergence_filters(self, bench_set, w0):
        subset = bench_set.within_divergence(w0, 0.1)
        assert 0 < len(subset) < len(bench_set)
        for workload in subset:
            assert workload.distance_to(w0) <= 0.1 + 1e-9

    def test_within_divergence_rejects_negative_rho(self, bench_set, w0):
        with pytest.raises(ValueError):
            bench_set.within_divergence(w0, -0.1)

    def test_mean_divergence_is_reasonable_rho(self, bench_set, w11):
        mean = bench_set.mean_divergence(w11)
        assert 0.0 < mean < 4.0

    def test_zippydb_like_workload_is_in_benchmark_spirit(self, bench_set):
        """§6: a 78% get / 19% write / 3% range workload has a close neighbour."""
        from repro.workloads import Workload

        zippydb = Workload(0.39, 0.39, 0.03, 0.19)
        divergences = bench_set.kl_divergences(zippydb)
        assert divergences.min() < 0.2


class TestRhoGrid:
    def test_default_grid_matches_paper(self):
        grid = rho_grid()
        assert grid[0] == 0.0
        assert grid[-1] == 4.0
        assert len(grid) == 17
        assert np.allclose(np.diff(grid), 0.25)

    def test_custom_grid(self):
        grid = rho_grid(0.5, 2.0, 0.5)
        assert np.allclose(grid, [0.5, 1.0, 1.5, 2.0])

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            rho_grid(step=0.0)
        with pytest.raises(ValueError):
            rho_grid(2.0, 1.0)
