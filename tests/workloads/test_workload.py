"""Tests for the workload representation and KL divergence."""

import math

import numpy as np
import pytest

from repro.workloads import QUERY_TYPES, Workload, average_workload, kl_divergence


class TestConstruction:
    def test_basic_construction(self):
        w = Workload(0.1, 0.2, 0.3, 0.4)
        assert w.as_tuple() == (0.1, 0.2, 0.3, 0.4)

    def test_rejects_negative_components(self):
        with pytest.raises(ValueError):
            Workload(-0.1, 0.4, 0.4, 0.3)

    def test_rejects_wrong_sum(self):
        with pytest.raises(ValueError):
            Workload(0.3, 0.3, 0.3, 0.3)

    def test_allows_tiny_rounding_error(self):
        w = Workload(0.1, 0.2, 0.3, 0.4 + 1e-9)
        assert w.w == pytest.approx(0.4)

    def test_from_array_round_trip(self):
        arr = np.array([0.25, 0.25, 0.3, 0.2])
        assert np.allclose(Workload.from_array(arr).as_array(), arr)

    def test_from_array_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            Workload.from_array([0.5, 0.5])

    def test_from_counts_normalises(self):
        w = Workload.from_counts([10, 30, 40, 20])
        assert w.as_tuple() == (0.1, 0.3, 0.4, 0.2)

    def test_from_counts_rejects_all_zero(self):
        with pytest.raises(ValueError):
            Workload.from_counts([0, 0, 0, 0])

    def test_from_counts_rejects_negative(self):
        with pytest.raises(ValueError):
            Workload.from_counts([-1, 2, 3, 4])

    def test_from_dict_round_trip(self):
        w = Workload(0.1, 0.2, 0.3, 0.4)
        assert Workload.from_dict(w.as_dict()) == w

    def test_uniform_constructor(self):
        assert Workload.uniform().as_tuple() == (0.25, 0.25, 0.25, 0.25)


class TestViews:
    def test_query_type_order(self):
        assert QUERY_TYPES == ("z0", "z1", "q", "w")

    def test_read_write_fractions(self):
        w = Workload(0.1, 0.2, 0.3, 0.4)
        assert w.read_fraction == pytest.approx(0.6)
        assert w.write_fraction == pytest.approx(0.4)

    def test_dominant_query(self):
        assert Workload(0.7, 0.1, 0.1, 0.1).dominant_query == "z0"
        assert Workload(0.1, 0.1, 0.1, 0.7).dominant_query == "w"

    def test_describe_shows_percentages(self):
        assert Workload(0.25, 0.25, 0.25, 0.25).describe() == "(25%, 25%, 25%, 25%)"


class TestAlgebra:
    def test_mix_endpoints(self):
        a = Workload(0.7, 0.1, 0.1, 0.1)
        b = Workload(0.1, 0.1, 0.1, 0.7)
        assert a.mix(b, 0.0) == a
        assert a.mix(b, 1.0) == b

    def test_mix_midpoint(self):
        a = Workload(0.6, 0.2, 0.1, 0.1)
        b = Workload(0.2, 0.2, 0.3, 0.3)
        mid = a.mix(b, 0.5)
        assert np.allclose(mid.as_array(), (a.as_array() + b.as_array()) / 2)

    def test_mix_rejects_out_of_range_weight(self):
        with pytest.raises(ValueError):
            Workload.uniform().mix(Workload.uniform(), 1.5)

    def test_smoothed_enforces_floor(self):
        w = Workload(0.98, 0.02, 0.0, 0.0).smoothed(floor=0.01)
        assert min(w.as_tuple()) >= 0.009  # floor minus renormalisation slack

    def test_smoothed_still_sums_to_one(self):
        w = Workload(1.0, 0.0, 0.0, 0.0).smoothed(floor=0.01)
        assert sum(w.as_tuple()) == pytest.approx(1.0)

    def test_smoothed_rejects_large_floor(self):
        with pytest.raises(ValueError):
            Workload.uniform().smoothed(floor=0.3)

    def test_average_workload(self):
        a = Workload(0.6, 0.2, 0.1, 0.1)
        b = Workload(0.2, 0.2, 0.3, 0.3)
        avg = average_workload([a, b])
        assert np.allclose(avg.as_array(), (a.as_array() + b.as_array()) / 2)

    def test_average_workload_rejects_empty(self):
        with pytest.raises(ValueError):
            average_workload([])


class TestKLDivergence:
    def test_zero_for_identical_distributions(self):
        w = Workload(0.1, 0.2, 0.3, 0.4)
        assert kl_divergence(w.as_array(), w.as_array()) == pytest.approx(0.0)

    def test_always_non_negative(self):
        rng = np.random.default_rng(3)
        for _ in range(50):
            p = rng.dirichlet(np.ones(4))
            q = rng.dirichlet(np.ones(4))
            assert kl_divergence(p, q) >= -1e-12

    def test_asymmetric(self):
        p = np.array([0.7, 0.1, 0.1, 0.1])
        q = np.array([0.25, 0.25, 0.25, 0.25])
        assert kl_divergence(p, q) != pytest.approx(kl_divergence(q, p))

    def test_matches_manual_computation(self):
        p = np.array([0.5, 0.25, 0.15, 0.10])
        q = np.array([0.25, 0.25, 0.25, 0.25])
        manual = sum(pi * math.log(pi / qi) for pi, qi in zip(p, q))
        assert kl_divergence(p, q) == pytest.approx(manual)

    def test_zero_component_in_p_is_ignored(self):
        p = np.array([0.0, 0.5, 0.25, 0.25])
        q = np.array([0.25, 0.25, 0.25, 0.25])
        assert np.isfinite(kl_divergence(p, q))

    def test_zero_component_in_q_gives_infinity(self):
        p = np.array([0.25, 0.25, 0.25, 0.25])
        q = np.array([0.0, 0.4, 0.3, 0.3])
        assert kl_divergence(p, q) == float("inf")

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            kl_divergence([0.5, 0.5], [0.3, 0.3, 0.4])

    def test_rejects_negative_entries(self):
        with pytest.raises(ValueError):
            kl_divergence([-0.1, 0.6, 0.3, 0.2], [0.25, 0.25, 0.25, 0.25])

    def test_distance_to_method_agrees(self):
        a = Workload(0.6, 0.2, 0.1, 0.1)
        b = Workload.uniform()
        assert a.distance_to(b) == pytest.approx(
            kl_divergence(a.as_array(), b.as_array())
        )


class TestLongRangeFraction:
    def test_defaults_to_zero(self):
        assert Workload(0.25, 0.25, 0.25, 0.25).long_range_fraction == 0.0

    def test_validated_to_the_unit_interval(self):
        with pytest.raises(ValueError):
            Workload(0.25, 0.25, 0.25, 0.25, long_range_fraction=1.5)
        with pytest.raises(ValueError):
            Workload(0.25, 0.25, 0.25, 0.25, long_range_fraction=-0.1)

    def test_with_long_range_fraction_copies(self):
        base = Workload(0.25, 0.25, 0.25, 0.25)
        shifted = base.with_long_range_fraction(0.4)
        assert shifted.long_range_fraction == 0.4
        assert shifted.as_tuple() == base.as_tuple()

    def test_round_trips_through_dicts(self):
        w = Workload(0.1, 0.2, 0.3, 0.4, long_range_fraction=0.5)
        assert Workload.from_dict(w.as_dict()) == w
        assert w.as_dict()["long_range_fraction"] == 0.5
        # Zero fractions stay out of the serialisation (old format preserved).
        assert "long_range_fraction" not in Workload(0.1, 0.2, 0.3, 0.4).as_dict()

    def test_mix_blends_by_range_mass(self):
        heavy = Workload(0.1, 0.1, 0.6, 0.2, long_range_fraction=1.0)
        light = Workload(0.3, 0.3, 0.2, 0.2, long_range_fraction=0.0)
        mixed = heavy.mix(light, 0.5)
        # 0.3 of the mixed range mass (0.4) comes from `heavy`'s long ranges.
        assert mixed.long_range_fraction == pytest.approx(0.75)

    def test_mix_of_rangeless_workloads_has_no_long_fraction(self):
        a = Workload(0.5, 0.3, 0.0, 0.2, long_range_fraction=0.9)
        b = Workload(0.2, 0.4, 0.0, 0.4)
        assert a.mix(b, 0.5).long_range_fraction == 0.0

    def test_average_workload_weights_by_range_mass(self):
        heavy = Workload(0.1, 0.1, 0.6, 0.2, long_range_fraction=0.5)
        light = Workload(0.3, 0.3, 0.2, 0.2, long_range_fraction=0.0)
        averaged = average_workload([heavy, light])
        assert averaged.long_range_fraction == pytest.approx(0.5 * 0.6 / 0.8)

    def test_smoothed_preserves_the_fraction(self):
        w = Workload(0.0, 0.2, 0.4, 0.4, long_range_fraction=0.3).smoothed(0.01)
        assert w.long_range_fraction == 0.3

    def test_describe_mentions_long_ranges_only_when_present(self):
        assert "long-range" not in Workload(0.25, 0.25, 0.25, 0.25).describe()
        assert "long-range 40%" in (
            Workload(0.25, 0.25, 0.25, 0.25, long_range_fraction=0.4).describe()
        )

    def test_kl_divergence_ignores_the_fraction(self):
        a = Workload(0.25, 0.25, 0.25, 0.25, long_range_fraction=0.9)
        b = Workload(0.25, 0.25, 0.25, 0.25)
        assert a.distance_to(b) == pytest.approx(0.0, abs=1e-12)
