"""Tests for concrete query-trace generation."""

import numpy as np
import pytest

from repro.workloads import (
    KeySpace,
    OperationType,
    TraceGenerator,
    Workload,
    operation_mix,
)


@pytest.fixture(scope="module")
def key_space() -> KeySpace:
    return KeySpace.build(num_entries=2_000, seed=3)


@pytest.fixture()
def generator(key_space) -> TraceGenerator:
    return TraceGenerator(key_space, seed=11)


class TestKeySpace:
    def test_partitions_are_disjoint(self, key_space):
        assert not set(key_space.existing.tolist()) & set(key_space.missing.tolist())

    def test_sizes(self, key_space):
        assert key_space.num_entries == 2_000
        assert key_space.missing.size == 2_000

    def test_fresh_keys_beyond_domain(self, key_space):
        domain_max = max(key_space.existing.max(), key_space.missing.max())
        assert key_space.fresh_start > domain_max

    def test_keys_are_sorted(self, key_space):
        assert np.all(np.diff(key_space.existing) > 0)
        assert np.all(np.diff(key_space.missing) > 0)

    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            KeySpace.build(0)


class TestTraceGeneration:
    def test_produces_requested_number_of_operations(self, generator):
        ops = generator.operations(Workload.uniform(), 400)
        assert len(ops) == 400

    def test_rejects_non_positive_count(self, generator):
        with pytest.raises(ValueError):
            generator.operations(Workload.uniform(), 0)

    def test_empty_gets_use_missing_keys(self, generator, key_space):
        ops = generator.operations(Workload(1.0, 0.0, 0.0, 0.0), 200)
        missing = set(key_space.missing.tolist())
        assert all(op.kind is OperationType.EMPTY_GET for op in ops)
        assert all(op.key in missing for op in ops)

    def test_gets_use_existing_keys(self, generator, key_space):
        ops = generator.operations(Workload(0.0, 1.0, 0.0, 0.0), 200)
        existing = set(key_space.existing.tolist())
        assert all(op.kind is OperationType.GET for op in ops)
        assert all(op.key in existing for op in ops)

    def test_puts_use_fresh_unique_keys(self, generator, key_space):
        ops = generator.operations(Workload(0.0, 0.0, 0.0, 1.0), 200)
        keys = [op.key for op in ops]
        assert len(set(keys)) == len(keys)
        assert min(keys) >= key_space.fresh_start

    def test_fresh_keys_do_not_repeat_across_calls(self, generator):
        first = generator.operations(Workload(0.0, 0.0, 0.0, 1.0), 50)
        second = generator.operations(Workload(0.0, 0.0, 0.0, 1.0), 50)
        assert not {op.key for op in first} & {op.key for op in second}

    def test_range_operations_carry_scan_length(self, key_space):
        generator = TraceGenerator(key_space, range_scan_keys=32, seed=1)
        ops = generator.operations(Workload(0.0, 0.0, 1.0, 0.0), 50)
        assert all(op.kind is OperationType.RANGE for op in ops)
        assert all(op.scan_length == 32 for op in ops)

    def test_realised_mix_tracks_requested_workload(self, generator):
        requested = Workload(0.4, 0.3, 0.1, 0.2)
        ops = generator.operations(requested, 5_000)
        realised = operation_mix(ops)
        assert np.allclose(realised.as_array(), requested.as_array(), atol=0.03)

    def test_operation_mix_rejects_empty_trace(self):
        with pytest.raises(ValueError):
            operation_mix([])

    def test_bulk_load_items_cover_existing_keys(self, generator, key_space):
        items = generator.bulk_load_items()
        assert len(items) == key_space.num_entries
        assert {key for key, _ in items} == set(key_space.existing.tolist())

    def test_invalid_configuration_rejected(self, key_space):
        with pytest.raises(ValueError):
            TraceGenerator(key_space, value_size_bytes=0)
        with pytest.raises(ValueError):
            TraceGenerator(key_space, range_scan_keys=0)


class TestUpdateHeavyTraces:
    """The duplicate-key skew knob: writes that overwrite resident keys."""

    def test_update_fraction_splits_puts(self, key_space):
        generator = TraceGenerator(key_space, update_fraction=0.4, seed=5)
        ops = generator.operations(Workload(0.0, 0.0, 0.0, 1.0), 500)
        existing = set(key_space.existing.tolist())
        updates = [op for op in ops if op.key in existing]
        inserts = [op for op in ops if op.key >= key_space.fresh_start]
        assert len(updates) + len(inserts) == len(ops)
        assert len(updates) == 200  # 40% of 500, deterministic rounding

    def test_updates_hit_duplicate_keys(self, key_space):
        """With enough updates over a finite key set, keys repeat — the
        obsolete-version amplification the long-range model charges for."""
        generator = TraceGenerator(key_space, update_fraction=1.0, seed=5)
        ops = generator.operations(Workload(0.0, 0.0, 0.0, 1.0), 3 * key_space.num_entries)
        keys = [op.key for op in ops]
        assert len(set(keys)) < len(keys)

    def test_update_skew_concentrates_on_hot_keys(self, key_space):
        uniform = TraceGenerator(key_space, update_fraction=1.0, update_skew=0.0, seed=5)
        skewed = TraceGenerator(key_space, update_fraction=1.0, update_skew=1.2, seed=5)
        count = 4_000

        def top_share(generator):
            ops = generator.operations(Workload(0.0, 0.0, 0.0, 1.0), count)
            frequencies = {}
            for op in ops:
                frequencies[op.key] = frequencies.get(op.key, 0) + 1
            top = sorted(frequencies.values(), reverse=True)[:10]
            return sum(top) / count

        assert top_share(skewed) > 2 * top_share(uniform)

    def test_zero_update_fraction_leaves_the_trace_bit_identical(self, key_space):
        """Enabling the knob machinery must not perturb the main RNG stream:
        the default trace is unchanged from the pre-knob generator."""
        plain = TraceGenerator(key_space, seed=5)
        explicit = TraceGenerator(key_space, update_fraction=0.0, update_skew=2.0, seed=5)
        workload = Workload(0.2, 0.3, 0.2, 0.3)
        assert plain.operations(workload, 400) == explicit.operations(workload, 400)

    def test_update_knob_preserves_the_non_write_stream(self, key_space):
        """Updates draw from a dedicated RNG stream, so reads and ranges of a
        seeded trace are identical with and without the knob."""
        plain = TraceGenerator(key_space, seed=5)
        updating = TraceGenerator(key_space, update_fraction=0.5, seed=5)
        workload = Workload(0.2, 0.3, 0.2, 0.3)
        plain_ops = plain.operations(workload, 400)
        updating_ops = updating.operations(workload, 400)
        for kind in (OperationType.EMPTY_GET, OperationType.GET, OperationType.RANGE):
            assert [op for op in plain_ops if op.kind is kind] == [
                op for op in updating_ops if op.kind is kind
            ]

    def test_rejects_bad_update_knobs(self, key_space):
        with pytest.raises(ValueError):
            TraceGenerator(key_space, update_fraction=1.5)
        with pytest.raises(ValueError):
            TraceGenerator(key_space, update_fraction=-0.1)
        with pytest.raises(ValueError):
            TraceGenerator(key_space, update_skew=-1.0)
