"""Tests for the session generator used by the system experiments."""

import pytest

from repro.workloads import (
    DOMINANT_FRACTION,
    EXPECTED_DIVERGENCE_THRESHOLD,
    SessionGenerator,
    SessionType,
    UncertaintyBenchmark,
    Workload,
    expected_workload,
)


@pytest.fixture(scope="module")
def generator() -> SessionGenerator:
    return SessionGenerator(UncertaintyBenchmark(size=400, seed=21), seed=5)


class TestSingleSessions:
    def test_expected_session_stays_close(self, generator, w11):
        session = generator.session(SessionType.EXPECTED, w11, workloads_per_session=4)
        assert session.average.distance_to(w11) <= EXPECTED_DIVERGENCE_THRESHOLD + 0.1

    def test_write_session_is_write_dominated(self, generator, w11):
        session = generator.session(SessionType.WRITE, w11, workloads_per_session=4)
        for workload in session.workloads:
            assert workload.w == pytest.approx(DOMINANT_FRACTION, abs=1e-6)

    def test_range_session_is_range_dominated(self, generator, w11):
        session = generator.session(SessionType.RANGE, w11, workloads_per_session=4)
        for workload in session.workloads:
            assert workload.q == pytest.approx(DOMINANT_FRACTION, abs=1e-6)

    def test_empty_read_session_dominated_by_z0(self, generator, w11):
        session = generator.session(SessionType.EMPTY_READ, w11)
        for workload in session.workloads:
            assert workload.z0 == pytest.approx(DOMINANT_FRACTION, abs=1e-6)

    def test_read_session_dominated_by_point_reads(self, generator, w11):
        session = generator.session(SessionType.READ, w11, workloads_per_session=4)
        for workload in session.workloads:
            assert workload.z0 + workload.z1 == pytest.approx(
                DOMINANT_FRACTION, abs=1e-6
            )

    def test_session_accepts_string_type(self, generator, w11):
        session = generator.session("write", w11)
        assert session.session_type is SessionType.WRITE

    def test_rejects_non_positive_length(self, generator, w11):
        with pytest.raises(ValueError):
            generator.session(SessionType.READ, w11, workloads_per_session=0)

    def test_session_length(self, generator, w11):
        assert len(generator.session(SessionType.READ, w11, workloads_per_session=3)) == 3

    def test_expected_session_for_extreme_workload_still_works(self, generator):
        # w1 is 97% empty reads; the benchmark may contain nothing that close,
        # so the generator falls back to perturbing the expected workload.
        extreme = expected_workload(1).workload
        session = generator.session(SessionType.EXPECTED, extreme)
        assert len(session) > 0


class TestSequences:
    def test_paper_sequence_has_six_sessions(self, generator, w11):
        sequence = generator.paper_sequence(w11)
        assert len(sequence) == 6

    def test_write_sequence_session_order(self, generator, w11):
        sequence = generator.paper_sequence(w11, include_writes=True)
        kinds = [s.session_type for s in sequence]
        assert kinds[1] is SessionType.RANGE
        assert kinds[4] is SessionType.WRITE
        assert kinds[5] is SessionType.EXPECTED

    def test_read_only_sequence_has_no_write_session(self, generator, w7):
        sequence = generator.paper_sequence(w7, include_writes=False)
        assert all(s.session_type is not SessionType.WRITE for s in sequence)

    def test_observed_average_is_valid_workload(self, generator, w11):
        sequence = generator.paper_sequence(w11)
        observed = sequence.observed_average
        assert sum(observed.as_tuple()) == pytest.approx(1.0)

    def test_observed_divergence_positive_for_shifted_sessions(self, generator, w11):
        sequence = generator.paper_sequence(w11)
        assert sequence.observed_divergence() > 0.0

    def test_motivation_sequence_structure(self, generator):
        expected = Workload(0.20, 0.20, 0.06, 0.54)
        shifted = Workload(0.02, 0.02, 0.41, 0.55)
        sequence = generator.motivation_sequence(expected, shifted)
        assert len(sequence) == 3
        assert sequence.sessions[0].workloads[0] == expected
        assert sequence.sessions[1].workloads[0] == shifted
        assert sequence.sessions[2].workloads[0] == expected

    def test_sequences_are_reproducible_per_generator_seed(self, w11):
        bench = UncertaintyBenchmark(size=400, seed=21)
        seq_a = SessionGenerator(bench, seed=9).paper_sequence(w11)
        seq_b = SessionGenerator(bench, seed=9).paper_sequence(w11)
        for sa, sb in zip(seq_a, seq_b):
            assert sa.workloads == sb.workloads
