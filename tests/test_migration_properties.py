"""Property tests for the incremental migration plan.

Three invariants pin the tentpole of the online-migration work:

* **I/O parity** — an incremental migration moves exactly the pages a full
  migration moves (reads sum to the source's resident pages, writes to the
  rebuilt tree's pages), for every step bound; incremental migration spreads
  the spike, it does not discount it.
* **Byte identity** — after the final step the migrated tree is
  indistinguishable from a fresh bulk load of the checkpoint under the same
  seed: level structure, per-run keys *and* per-run Bloom filter bits.
* **Interruptibility** — a plan stopped mid-flight (drift firing again, an
  operator pausing it) leaves a queryable mixed state that answers point and
  range lookups correctly — including writes and deletes applied *during*
  the migration — and resumes to the same final state.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsm import LSMTuning, Policy, simulator_system
from repro.online import MigrationInvariantError, MigrationPlan
from repro.storage import LSMTree
from repro.workloads import KeySpace

_SYSTEM = simulator_system(num_entries=3_000)
_KEYS = KeySpace.build(_SYSTEM.num_entries, seed=11).existing

#: (source tuning, target tuning) pairs crossing policies and size ratios.
_TUNING_PAIRS = [
    (LSMTuning(20.0, 8.0, Policy.LEVELING), LSMTuning(4.0, 6.0, Policy.TIERING)),
    (LSMTuning(6.0, 6.0, Policy.TIERING), LSMTuning(10.0, 8.0, Policy.LEVELING)),
    (
        LSMTuning(8.0, 7.0, Policy.LAZY_LEVELING),
        LSMTuning(5.0, 5.0, Policy.FLUID, k_bound=3, z_bound=1),
    ),
    (
        LSMTuning(12.0, 8.0, Policy.LEVELING),
        LSMTuning(6.0, 7.0, Policy.LAZY_LEVELING),
    ),
    # Vector-bound target: migrating onto a per-level K_i ladder must hold
    # the same I/O-parity and byte-identity invariants as any scalar target.
    (
        LSMTuning(10.0, 8.0, Policy.LEVELING),
        LSMTuning(5.0, 6.0, Policy.FLUID, k_bounds=(4.0, 2.0, 1.0), z_bound=1.0),
    ),
]


def _loaded_tree(tuning: LSMTuning, seed: int = 5) -> LSMTree:
    tree = LSMTree(tuning, _SYSTEM, seed=seed)
    tree.bulk_load(_KEYS)
    tree.disk.reset()
    return tree


def _checkpoint(tree: LSMTree) -> np.ndarray:
    return np.sort(
        np.concatenate(
            [run.keys for runs in tree.levels for run in runs]
            + [np.asarray(sorted(k for k in tree.memtable._entries), dtype=np.int64)]
        )
    )


def _plan(source: LSMTree, target_tuning: LSMTuning, max_step_pages, seed=33):
    target = LSMTree(target_tuning, _SYSTEM, disk=source.disk, seed=seed)
    checkpoint = _checkpoint(source)
    return MigrationPlan(source, target, checkpoint, max_step_pages=max_step_pages), checkpoint


class TestIOParity:
    """Summed incremental I/O equals the full migration's, exactly."""

    @pytest.mark.parametrize("source_tuning,target_tuning", _TUNING_PAIRS)
    @pytest.mark.parametrize("max_step_pages", [None, 4, 16, 64])
    def test_step_totals_match_full_migration(
        self, source_tuning, target_tuning, max_step_pages
    ):
        source = _loaded_tree(source_tuning)
        plan, checkpoint = _plan(source, target_tuning, max_step_pages)

        # The full migration reads every resident source page and writes
        # every page of the freshly rebuilt tree.
        fresh = LSMTree(target_tuning, _SYSTEM, seed=33)
        fresh.bulk_load(checkpoint)
        assert plan.total_read_pages == source.resident_pages
        assert plan.total_write_pages == fresh.resident_pages

        # And the per-step charges on the live disk sum to those totals.
        before = source.disk.snapshot()
        plan.run_to_completion()
        delta = source.disk.counters.delta(before)
        assert delta.compaction_reads == plan.total_read_pages
        assert delta.compaction_writes == plan.total_write_pages

    @given(max_step_pages=st.integers(min_value=1, max_value=200))
    @settings(max_examples=20, deadline=None)
    def test_parity_holds_for_any_step_bound(self, max_step_pages):
        source = _loaded_tree(LSMTuning(10.0, 8.0, Policy.LEVELING))
        target_tuning = LSMTuning(4.0, 6.0, Policy.TIERING)
        plan, checkpoint = _plan(source, target_tuning, max_step_pages)
        fresh = LSMTree(target_tuning, _SYSTEM, seed=33)
        fresh.bulk_load(checkpoint)
        assert plan.total_read_pages == source.resident_pages
        assert plan.total_write_pages == fresh.resident_pages
        # Every step respects the page bound on writes (reads are allocated
        # proportionally and may exceed it only by the rounding of one page).
        assert all(
            step.write_pages <= max_step_pages for step in plan.steps
        )


class TestByteIdentity:
    """The finished migration equals a fresh bulk load, run for run."""

    @pytest.mark.parametrize("source_tuning,target_tuning", _TUNING_PAIRS)
    @pytest.mark.parametrize("max_step_pages", [None, 8])
    def test_final_state_matches_fresh_bulk_load(
        self, source_tuning, target_tuning, max_step_pages
    ):
        source = _loaded_tree(source_tuning)
        plan, checkpoint = _plan(source, target_tuning, max_step_pages)
        plan.run_to_completion()

        fresh = LSMTree(target_tuning, _SYSTEM, seed=33)
        fresh.bulk_load(checkpoint)

        migrated = plan.target
        assert len(migrated.levels) == len(fresh.levels)
        for level_index, (got, want) in enumerate(zip(migrated.levels, fresh.levels)):
            assert len(got) == len(want), f"run count differs at level {level_index + 1}"
            for got_run, want_run in zip(got, want):
                assert np.array_equal(got_run.keys, want_run.keys)
                assert got_run.bits_per_entry == want_run.bits_per_entry
                assert np.array_equal(
                    got_run.bloom_filter._bits, want_run.bloom_filter._bits
                ), "Bloom assignments must be byte-identical"
        got_buffer, _ = migrated.memtable.sorted_items()
        want_buffer, _ = fresh.memtable.sorted_items()
        assert np.array_equal(got_buffer, want_buffer)

    def test_checkpoint_invariant_guards_against_lost_keys(self):
        source = _loaded_tree(LSMTuning(10.0, 8.0, Policy.LEVELING))
        plan, _ = _plan(source, LSMTuning(4.0, 6.0, Policy.TIERING), None)
        # Simulate a planning bug: drop one placement's keys.
        level, piece = plan._placements[0]
        plan._placements = ((level, piece[:-1]),) + plan._placements[1:]
        with pytest.raises(MigrationInvariantError):
            plan.run_to_completion()


class TestInterruptibility:
    """A paused plan keeps serving correctly and resumes to the same end."""

    def _reference(self, checkpoint: np.ndarray) -> dict[int, bool]:
        return {int(k): True for k in checkpoint}

    def test_mixed_state_serves_reads_writes_and_deletes(self):
        source = _loaded_tree(LSMTuning(10.0, 8.0, Policy.LEVELING))
        plan, checkpoint = _plan(source, LSMTuning(4.0, 6.0, Policy.TIERING), 8)
        reference = self._reference(checkpoint)

        # Interrupt mid-flight: run only a third of the steps (a drift firing
        # mid-migration leaves the plan exactly like this).
        for _ in range(plan.num_steps // 3):
            plan.run_next_step()
        assert not plan.completed

        rng = np.random.default_rng(7)
        present = checkpoint.copy()
        # Writes and deletes during the pause land in the mixed state.
        for key in rng.choice(present, size=50, replace=False):
            plan.delete(int(key))
            reference[int(key)] = False
        fresh_keys = [int(2 * _SYSTEM.num_entries + i) for i in range(50)]
        for key in fresh_keys:
            plan.put(key)
            reference[key] = True

        probes = list(rng.choice(present, size=100, replace=False)) + fresh_keys[:10]
        for key in probes:
            assert plan.get(int(key)) == reference[int(key)], f"key {key}"

        # Range queries agree with the reference on live-key counts.
        for start in (int(checkpoint[0]), int(checkpoint[checkpoint.size // 2])):
            end = start + 400
            expected = sum(
                1 for key, live in reference.items() if live and start <= key <= end
            )
            assert plan.range_query(start, end) == expected

        # Resume to completion: the surviving tree still answers correctly.
        plan.run_to_completion()
        assert plan.completed
        migrated = plan.target
        for key in probes:
            assert migrated.get(int(key)) == reference[int(key)], f"key {key}"

    def test_interrupted_plan_is_resumable_to_byte_identity(self):
        """Pausing and resuming (without interleaved writes) converges to the
        same final state an uninterrupted plan reaches."""
        source = _loaded_tree(LSMTuning(10.0, 8.0, Policy.LEVELING))
        plan, checkpoint = _plan(source, LSMTuning(4.0, 6.0, Policy.TIERING), 8)
        plan.run_next_step()
        assert not plan.completed
        remaining = plan.run_to_completion()
        assert remaining == plan.num_steps - 1

        fresh = LSMTree(LSMTuning(4.0, 6.0, Policy.TIERING), _SYSTEM, seed=33)
        fresh.bulk_load(checkpoint)
        for got, want in zip(plan.target.levels, fresh.levels):
            assert len(got) == len(want)
            for got_run, want_run in zip(got, want):
                assert np.array_equal(got_run.keys, want_run.keys)

    def test_put_during_migration_wins_over_checkpoint_copy(self):
        """A key overwritten mid-migration must surface the new version even
        after its (older) checkpoint copy is installed by a later step."""
        source = _loaded_tree(LSMTuning(10.0, 8.0, Policy.LEVELING))
        plan, checkpoint = _plan(source, LSMTuning(4.0, 6.0, Policy.TIERING), 8)
        plan.run_next_step()
        victim = int(checkpoint[-1])  # placed by the deepest (first) steps
        survivor = int(checkpoint[0])  # placed by the very last steps
        plan.delete(victim)
        plan.delete(survivor)
        assert not plan.get(victim)
        assert not plan.get(survivor)
        plan.run_to_completion()
        assert not plan.target.get(victim)
        assert not plan.target.get(survivor)

    def test_stale_checkpoint_copy_of_a_dirty_key_is_never_installed(self):
        """A key written mid-migration may have cascaded *below* the level
        its checkpoint copy is planned for; installing the stale copy above
        it would shadow the new version.  The plan drops the obsolete copy
        at install time instead, so it appears in no installed run."""
        source = _loaded_tree(LSMTuning(10.0, 8.0, Policy.LEVELING))
        plan, checkpoint = _plan(source, LSMTuning(4.0, 6.0, Policy.TIERING), 8)
        plan.run_next_step()
        # checkpoint[0] belongs to the shallowest placement — the very last
        # steps — so a write now precedes its install by the whole plan.
        dirty = int(checkpoint[0])
        plan.put(dirty)
        plan.run_to_completion()
        copies_in_runs = sum(
            int(np.count_nonzero(run.keys == dirty))
            for runs in plan.target.levels
            for run in runs
        )
        assert copies_in_runs == 0, "stale checkpoint copy must be dropped"
        assert plan.target.get(dirty)  # the mid-migration write survives

    def test_interrupted_vector_target_plan_serves_and_resumes(self):
        """The mixed state and resumability hold when the *target* carries a
        per-level K_i vector: reads, writes and deletes served mid-flight,
        then byte-identity against a fresh bulk load on completion."""
        target_tuning = LSMTuning(
            5.0, 6.0, Policy.FLUID, k_bounds=(4.0, 2.0, 1.0), z_bound=1.0
        )
        source = _loaded_tree(LSMTuning(10.0, 8.0, Policy.LEVELING))
        plan, checkpoint = _plan(source, target_tuning, 8)
        reference = self._reference(checkpoint)

        for _ in range(plan.num_steps // 2):
            plan.run_next_step()
        assert not plan.completed

        rng = np.random.default_rng(13)
        for key in rng.choice(checkpoint, size=30, replace=False):
            plan.delete(int(key))
            reference[int(key)] = False
        fresh_keys = [int(2 * _SYSTEM.num_entries + i) for i in range(20)]
        for key in fresh_keys:
            plan.put(key)
            reference[key] = True
        probes = list(rng.choice(checkpoint, size=60, replace=False)) + fresh_keys
        for key in probes:
            assert plan.get(int(key)) == reference[int(key)], f"key {key}"

        plan.run_to_completion()
        migrated = plan.target
        for key in probes:
            assert migrated.get(int(key)) == reference[int(key)], f"key {key}"
        # The deployed tuning is the vector tuning, serialisable as such.
        assert migrated.tuning.k_bounds == (4.0, 2.0, 1.0)
        assert LSMTuning.from_dict(migrated.tuning.to_dict()) == migrated.tuning

    def test_empty_checkpoint_plan_still_finalises(self):
        """A tree whose live key set was deleted away migrates through a
        single read-only step: the source's resident (tombstone) pages are
        charged, and finalisation releases the tombstone hold."""
        source = _loaded_tree(LSMTuning(10.0, 8.0, Policy.LEVELING))
        target_tuning = LSMTuning(4.0, 6.0, Policy.TIERING)
        target = LSMTree(target_tuning, _SYSTEM, disk=source.disk, seed=33)
        plan = MigrationPlan(
            source, target, np.empty(0, dtype=np.int64), max_step_pages=8
        )
        assert plan.num_steps == 1
        assert not plan.completed
        assert plan.total_read_pages == source.resident_pages
        assert plan.total_write_pages == 0
        before = source.disk.snapshot()
        plan.run_to_completion()
        assert plan.completed
        delta = source.disk.counters.delta(before)
        assert delta.compaction_reads == source.resident_pages
        assert not target.preserve_tombstones
        assert not source.preserve_tombstones


class TestMixedStateScanEdges:
    """scan_versions edge shapes observed *through* a paused migration: point
    intervals, intervals overlapping no run on either side, and tombstones
    interleaved between the frozen source and the live target."""

    def _paused_plan(self):
        source = _loaded_tree(LSMTuning(10.0, 8.0, Policy.LEVELING))
        plan, checkpoint = _plan(source, LSMTuning(4.0, 6.0, Policy.TIERING), 8)
        for _ in range(plan.num_steps // 3):
            plan.run_next_step()
        assert not plan.completed
        return plan, checkpoint

    def test_point_interval_tracks_mid_plan_writes(self):
        plan, checkpoint = self._paused_plan()
        victim = int(checkpoint[checkpoint.size // 2])
        fresh = int(checkpoint[-1]) + 1_000
        assert plan.range_query(victim, victim) == 1
        assert plan.range_query(fresh, fresh) == 0
        plan.delete(victim)  # target tombstone must shadow the source copy
        plan.put(fresh)
        assert plan.range_query(victim, victim) == 0
        assert plan.range_query(fresh, fresh) == 1

    def test_delete_then_reput_reads_live_through_point_interval(self):
        plan, checkpoint = self._paused_plan()
        victim = int(checkpoint[checkpoint.size // 4])
        plan.delete(victim)
        plan.put(victim)  # newest version wins over its own tombstone
        assert plan.range_query(victim, victim) == 1

    def test_interval_overlapping_neither_tree_is_empty(self):
        plan, checkpoint = self._paused_plan()
        beyond = int(checkpoint[-1]) + 10_000
        plan.source.disk.reset()
        assert plan.range_query(beyond, beyond + 500) == 0
        assert plan.source.disk.counters.total == 0

    def test_interleaved_tombstones_across_source_and_target(self):
        """A window where some keys are live only in the source, some are
        tombstoned in the target, and some were re-put after deletion — the
        count is the newest-wins union, each key counted at most once."""
        plan, checkpoint = self._paused_plan()
        mid = checkpoint.size // 2
        window = checkpoint[mid : mid + 20]
        start, end = int(window[0]), int(window[-1])
        expected = int(
            np.count_nonzero((checkpoint >= start) & (checkpoint <= end))
        )
        deleted = [int(window[1]), int(window[5]), int(window[9])]
        for key in deleted:
            plan.delete(key)
        plan.put(deleted[0])  # resurrect one: delete → re-put ends live
        assert plan.range_query(start, end) == expected - 2
        # And the survivors answer point lookups consistently with the scan.
        assert plan.get(deleted[0])
        assert not plan.get(deleted[1])
        assert not plan.get(deleted[2])
