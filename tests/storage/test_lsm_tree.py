"""Tests for the simulated LSM tree (structure, queries, compaction, I/O)."""

import numpy as np
import pytest

from repro.lsm import LSMTuning, Policy, simulator_system
from repro.storage import LSMTree


def make_tree(policy=Policy.LEVELING, size_ratio=4.0, bits=6.0, num_entries=4_000):
    system = simulator_system(num_entries=num_entries)
    tuning = LSMTuning(size_ratio=size_ratio, bits_per_entry=bits, policy=policy)
    return LSMTree(tuning, system)


class TestConstruction:
    def test_size_ratio_is_rounded_for_deployment(self):
        system = simulator_system(num_entries=2_000)
        tuning = LSMTuning(size_ratio=4.6, bits_per_entry=3.0, policy=Policy.LEVELING)
        tree = LSMTree(tuning, system)
        assert tree.size_ratio == 5

    def test_buffer_holds_at_least_one_page(self):
        tree = make_tree()
        assert tree.buffer_entries >= tree.entries_per_page

    def test_level_capacities_grow_exponentially(self):
        tree = make_tree(size_ratio=4.0)
        assert tree.level_capacity_entries(3) == 4 * tree.level_capacity_entries(2)

    def test_level_capacity_rejects_level_zero(self):
        with pytest.raises(ValueError):
            make_tree().level_capacity_entries(0)


class TestWritesAndCompaction:
    def test_puts_accumulate_in_memtable_until_full(self):
        tree = make_tree()
        for key in range(tree.buffer_entries - 1):
            tree.put(key)
        assert tree.disk.counters.total == 0  # nothing flushed yet
        assert len(tree.memtable) == tree.buffer_entries - 1

    def test_flush_writes_pages_and_empties_memtable(self):
        tree = make_tree()
        for key in range(tree.buffer_entries):
            tree.put(key)
        assert tree.memtable.is_empty
        assert tree.disk.counters.flush_writes > 0

    def test_leveling_keeps_at_most_one_run_per_level(self):
        tree = make_tree(policy=Policy.LEVELING, size_ratio=3.0)
        for key in range(12 * tree.buffer_entries):
            tree.put(key * 7)
        assert all(len(runs) <= 1 for runs in tree.levels)

    def test_tiering_keeps_fewer_than_t_runs_per_level(self):
        tree = make_tree(policy=Policy.TIERING, size_ratio=4.0)
        for key in range(20 * tree.buffer_entries):
            tree.put(key * 3)
        assert all(len(runs) < tree.size_ratio for runs in tree.levels)

    def test_no_entries_lost_through_compactions(self):
        tree = make_tree(policy=Policy.LEVELING, size_ratio=3.0)
        keys = [int(k) for k in np.random.default_rng(1).permutation(3_000)]
        for key in keys:
            tree.put(key)
        assert tree.num_entries == len(set(keys))

    def test_tiering_writes_fewer_compaction_pages_than_leveling(self):
        leveled = make_tree(policy=Policy.LEVELING, size_ratio=4.0)
        tiered = make_tree(policy=Policy.TIERING, size_ratio=4.0)
        for key in range(8_000):
            leveled.put(key)
            tiered.put(key)
        leveled_io = leveled.disk.counters.compaction_writes
        tiered_io = tiered.disk.counters.compaction_writes
        assert tiered_io < leveled_io

    def test_delete_hides_key(self):
        tree = make_tree()
        tree.put(42)
        tree.delete(42)
        assert tree.get(42) is False

    def test_delete_survives_flush(self):
        tree = make_tree()
        tree.bulk_load(np.arange(0, 1_000))
        tree.delete(500)
        tree.flush()
        assert tree.get(500) is False

    def test_explicit_flush_of_empty_memtable_is_noop(self):
        tree = make_tree()
        tree.flush()
        assert tree.disk.counters.total == 0


class TestReads:
    def test_get_finds_bulk_loaded_keys(self):
        tree = make_tree()
        tree.bulk_load(np.arange(0, 2_000, 2))
        assert tree.get(100)
        assert tree.get(1_998)

    def test_get_missing_key_returns_false(self):
        tree = make_tree()
        tree.bulk_load(np.arange(0, 2_000, 2))
        assert not tree.get(101)

    def test_get_reads_at_most_one_page_per_run(self):
        tree = make_tree()
        tree.bulk_load(np.arange(0, 2_000, 2))
        tree.disk.reset()
        tree.get(100)
        total_runs = sum(len(runs) for runs in tree.levels)
        assert tree.disk.counters.query_reads <= total_runs

    def test_memtable_hits_cost_no_io(self):
        tree = make_tree()
        tree.put(7)
        tree.disk.reset()
        assert tree.get(7)
        assert tree.disk.counters.total == 0

    def test_bloom_filters_save_io_on_empty_reads(self):
        with_filters = make_tree(bits=10.0)
        without_filters = make_tree(bits=0.0)
        keys = np.arange(0, 4_000, 2)
        with_filters.bulk_load(keys)
        without_filters.bulk_load(keys)
        with_filters.disk.reset()
        without_filters.disk.reset()
        probes = range(1, 2_001, 2)
        for key in probes:
            with_filters.get(key)
            without_filters.get(key)
        assert (
            with_filters.disk.counters.query_reads
            < without_filters.disk.counters.query_reads
        )

    def test_range_query_returns_live_key_count(self):
        tree = make_tree()
        tree.bulk_load(np.arange(0, 1_000))
        assert tree.range_query(100, 149) == 50

    def test_range_query_counts_recent_writes(self):
        tree = make_tree()
        tree.bulk_load(np.arange(0, 1_000, 2))
        tree.put(501)
        assert tree.range_query(500, 502) == 3

    def test_range_query_charges_io(self):
        tree = make_tree()
        tree.bulk_load(np.arange(0, 2_000))
        tree.disk.reset()
        tree.range_query(0, 400)
        assert tree.disk.counters.query_reads >= 400 // tree.entries_per_page

    def test_inverted_range_is_empty(self):
        tree = make_tree()
        tree.bulk_load(np.arange(0, 100))
        assert tree.range_query(50, 10) == 0

    def test_updated_key_remains_visible_once(self):
        tree = make_tree()
        tree.bulk_load(np.arange(0, 100))
        tree.put(50)  # update existing key
        assert tree.get(50)
        assert tree.range_query(50, 50) == 1

    def test_range_query_does_not_resurrect_deleted_keys(self):
        """A buffered tombstone shadows the bulk-loaded (deeper) live version
        in range results, exactly as it already did for point lookups."""
        tree = make_tree()
        tree.bulk_load(np.arange(0, 1_000))
        tree.delete(100)
        tree.delete(105)
        assert not tree.get(100)
        assert tree.range_query(100, 109) == 8

    def test_scan_versions_flags_tombstones_newest_first(self):
        tree = make_tree()
        tree.bulk_load(np.arange(0, 100, 2))
        tree.delete(10)
        tree.put(11)
        keys, tombstones = tree.scan_versions(10, 12)
        assert keys.tolist() == [10, 11, 12]
        assert tombstones.tolist() == [True, False, False]


class TestScanVersionsEdges:
    """Newest-wins dedup under hostile layouts: versions of one key spread
    across the memtable and several runs with interleaved tombstones, point
    intervals (``start_key == end_key``), and intervals overlapping no run."""

    def _interleaved_tree(self):
        """Four on-disk runs plus a live memtable, with keys 10/11/12 flipping
        between live and tombstoned at different depths:

        * key 10 — live in bulk, tombstoned in run A, re-put in run B → live;
        * key 11 — absent from bulk, put in run A, deleted in the memtable
          → tombstone (the buffered delete shadows the on-disk put);
        * key 12 — live in bulk, tombstoned in run B → tombstone.
        """
        tree = make_tree(policy=Policy.TIERING, size_ratio=4.0)
        tree.bulk_load(np.arange(0, 200, 2))
        tree.delete(10)
        tree.put(11)
        tree.flush()  # run A
        tree.put(10)
        tree.delete(12)
        tree.flush()  # run B, newer than A
        tree.delete(11)  # memtable, newest of all
        assert sum(len(runs) for runs in tree.levels) >= 4
        return tree

    def test_interleaved_tombstones_resolve_newest_first(self):
        tree = self._interleaved_tree()
        keys, tombstones = tree.scan_versions(8, 14)
        assert keys.tolist() == [8, 10, 11, 12, 14]
        assert tombstones.tolist() == [False, False, True, True, False]
        # range_query agrees: 8, 10, 14 live; 11 and 12 shadowed by deletes.
        assert tree.range_query(8, 14) == 3

    def test_point_interval_returns_single_newest_version(self):
        tree = self._interleaved_tree()
        for key, expect_tombstone in [(10, False), (11, True), (12, True)]:
            keys, tombstones = tree.scan_versions(key, key)
            assert keys.tolist() == [key]
            assert tombstones.tolist() == [expect_tombstone]
            assert tree.range_query(key, key) == (0 if expect_tombstone else 1)

    def test_point_interval_on_missing_key_is_empty(self):
        tree = make_tree()
        tree.bulk_load(np.arange(0, 100, 2))
        keys, tombstones = tree.scan_versions(13, 13)
        assert keys.size == 0
        assert tombstones.size == 0

    def test_interval_overlapping_no_run_is_empty_and_free(self):
        tree = make_tree()
        tree.bulk_load(np.arange(0, 1_000))
        tree.disk.reset()
        keys, tombstones = tree.scan_versions(50_000, 60_000)
        assert keys.size == 0
        assert tombstones.size == 0
        assert tree.disk.counters.total == 0

    def test_memtable_only_tree_scans_without_io(self):
        tree = make_tree()
        tree.put(3)
        tree.delete(5)
        tree.put(7)
        keys, tombstones = tree.scan_versions(0, 10)
        assert keys.tolist() == [3, 5, 7]
        assert tombstones.tolist() == [False, True, False]
        assert tree.disk.counters.total == 0


class TestBulkLoadAndStats:
    def test_bulk_load_places_all_entries(self):
        tree = make_tree()
        tree.bulk_load(np.arange(0, 3_000))
        assert tree.num_entries == 3_000

    def test_bulk_load_charges_no_io(self):
        tree = make_tree()
        tree.bulk_load(np.arange(0, 3_000))
        assert tree.disk.counters.total == 0

    def test_bulk_load_deduplicates(self):
        tree = make_tree()
        tree.bulk_load(np.array([1, 1, 2, 2, 3]))
        assert tree.num_entries == 3

    def test_stats_reflect_structure(self):
        tree = make_tree()
        tree.bulk_load(np.arange(0, 3_000))
        stats = tree.stats()
        assert stats.num_entries == 3_000
        assert stats.num_levels == len(tree.levels)
        assert sum(stats.entries_per_level) + stats.memtable_entries == 3_000

    def test_stats_report_filter_memory(self):
        tree = make_tree(bits=8.0)
        tree.bulk_load(np.arange(0, 3_000))
        assert tree.stats().filter_memory_bits > 0

    def test_deeper_levels_hold_more_entries(self):
        tree = make_tree()
        tree.bulk_load(np.arange(0, 4_000))
        entries = [e for e in tree.stats().entries_per_level if e > 0]
        assert entries == sorted(entries)


class TestLazyLeveling:
    def test_largest_level_keeps_a_single_run(self):
        tree = make_tree(policy=Policy.LAZY_LEVELING, size_ratio=4.0)
        for key in range(20 * tree.buffer_entries):
            tree.put(key * 3)
        occupied = [i for i, runs in enumerate(tree.levels) if runs]
        assert occupied, "the tree should hold disk-resident data"
        assert len(tree.levels[occupied[-1]]) == 1

    def test_upper_levels_stack_runs_like_tiering(self):
        tree = make_tree(policy=Policy.LAZY_LEVELING, size_ratio=4.0)
        max_upper_runs = 0
        for key in range(20 * tree.buffer_entries):
            tree.put(key * 3)
            for runs in tree.levels[:-1]:
                max_upper_runs = max(max_upper_runs, len(runs))
        assert max_upper_runs > 1  # genuinely tiered above the last level
        assert all(len(runs) < tree.size_ratio for runs in tree.levels)

    def test_no_entries_lost_through_compactions(self):
        tree = make_tree(policy=Policy.LAZY_LEVELING, size_ratio=3.0)
        keys = [int(k) for k in np.random.default_rng(3).permutation(3_000)]
        for key in keys:
            tree.put(key)
        assert tree.num_entries == len(set(keys))

    def test_compaction_traffic_sits_between_the_classical_policies(self):
        trees = {
            policy: make_tree(policy=policy, size_ratio=4.0)
            for policy in (Policy.LEVELING, Policy.TIERING, Policy.LAZY_LEVELING)
        }
        for key in range(10_000):
            for tree in trees.values():
                tree.put(key)
        writes = {
            policy: tree.disk.counters.compaction_writes
            for policy, tree in trees.items()
        }
        assert writes[Policy.LAZY_LEVELING] > 0
        assert (
            writes[Policy.TIERING]
            < writes[Policy.LAZY_LEVELING]
            < writes[Policy.LEVELING]
        )

    def test_reads_and_deletes_behave(self):
        tree = make_tree(policy=Policy.LAZY_LEVELING)
        tree.bulk_load(np.arange(0, 2_000, 2))
        assert tree.get(100)
        assert not tree.get(101)
        tree.delete(100)
        assert tree.get(100) is False
        assert tree.range_query(200, 299) == 50

    def test_bulk_load_matches_policy_steady_state(self):
        tree = make_tree(policy=Policy.LAZY_LEVELING, size_ratio=4.0)
        tree.bulk_load(np.arange(0, 6_000))
        occupied = [i for i, runs in enumerate(tree.levels) if runs]
        assert len(tree.levels[occupied[-1]]) == 1  # leveled largest level
        assert tree.num_entries == 6_000

    def test_single_level_tree_behaves_like_leveling(self):
        lazy = make_tree(policy=Policy.LAZY_LEVELING, size_ratio=50.0, num_entries=2_000)
        leveled = make_tree(policy=Policy.LEVELING, size_ratio=50.0, num_entries=2_000)
        for key in range(4 * lazy.buffer_entries):
            lazy.put(key)
            leveled.put(key)
        assert lazy.stats().runs_per_level == leveled.stats().runs_per_level
        assert (
            lazy.disk.counters.compaction_writes
            == leveled.disk.counters.compaction_writes
        )


class TestBloomSeedAllocation:
    """Every run creation bumps the seed counter before using it.

    Regression: ``_merge_runs`` used to read ``_seed + _run_counter`` before
    incrementing, while ``_new_run`` increments first — so a merged run
    reused the Bloom hash seed of the most recently created run, correlating
    the two filters' false positives.
    """

    def test_consecutive_runs_get_distinct_seeds(self):
        tree = make_tree()
        keys = np.arange(0, 20, dtype=np.int64)
        empty = np.zeros(keys.size, dtype=bool)
        flushed = tree._new_run(keys, empty, level=1)
        merged = tree._merge_runs([flushed], target_level=1)
        assert merged.bloom_filter.seed != flushed.bloom_filter.seed

    def test_all_live_run_seeds_are_pairwise_distinct(self):
        tree = make_tree(policy=Policy.TIERING, size_ratio=3.0, num_entries=2_000)
        for key in range(0, 6_000, 2):
            tree.put(key)
        seeds = [
            run.bloom_filter.seed for runs in tree.levels for run in runs
        ]
        assert len(tree.levels) >= 2  # compactions actually cascaded
        assert len(seeds) == len(set(seeds))


class TestBatchedGets:
    def test_get_many_matches_scalar_gets_and_io(self):
        rng = np.random.default_rng(17)
        scalar = make_tree(num_entries=2_000)
        batched = make_tree(num_entries=2_000)
        resident = np.arange(0, 4_000, 2)
        deletes = rng.choice(resident, size=30, replace=False)
        puts = rng.integers(10_000, 12_000, size=200)
        for tree in (scalar, batched):
            tree.bulk_load(resident)
            for key in deletes:
                tree.delete(int(key))
            for key in puts:
                tree.put(int(key))
            tree.disk.reset()
        probe = np.concatenate(
            [rng.choice(resident, size=60), rng.integers(1, 4_000, size=40) * 2 - 1]
        ).astype(np.int64)
        expected = np.array([scalar.get(int(key)) for key in probe])
        answers = batched.get_many(probe)
        assert np.array_equal(answers, expected)
        assert batched.disk.counters == scalar.disk.counters

    def test_get_many_empty_batch_is_free(self):
        tree = make_tree()
        tree.bulk_load(np.arange(100))
        tree.disk.reset()
        assert tree.get_many(np.array([], dtype=np.int64)).size == 0
        assert tree.disk.counters.total == 0

    def test_memtable_hits_charge_no_io(self):
        tree = make_tree()
        tree.put(7)
        tree.delete(9)
        tree.disk.reset()
        answers = tree.get_many(np.array([7, 9], dtype=np.int64))
        assert answers.tolist() == [True, False]
        assert tree.disk.counters.total == 0
