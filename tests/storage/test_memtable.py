"""Tests for the in-memory write buffer."""

import pytest

from repro.storage import Memtable


class TestMemtable:
    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            Memtable(0)

    def test_put_and_get(self):
        table = Memtable(10)
        table.put(5)
        present, tombstone = table.get(5)
        assert present and not tombstone

    def test_get_missing_key(self):
        table = Memtable(10)
        assert table.get(99) == (False, False)

    def test_delete_records_tombstone(self):
        table = Memtable(10)
        table.put(5)
        table.delete(5)
        present, tombstone = table.get(5)
        assert present and tombstone

    def test_update_overwrites_previous_entry(self):
        table = Memtable(10)
        table.delete(5)
        table.put(5)
        assert table.get(5) == (True, False)
        assert len(table) == 1

    def test_is_full_and_is_empty(self):
        table = Memtable(2)
        assert table.is_empty
        table.put(1)
        assert not table.is_full
        table.put(2)
        assert table.is_full

    def test_clear(self):
        table = Memtable(4)
        table.put(1)
        table.clear()
        assert table.is_empty

    def test_scan_returns_sorted_live_keys(self):
        table = Memtable(10)
        for key in (9, 3, 7, 5):
            table.put(key)
        table.delete(7)
        assert table.scan(0, 100).tolist() == [3, 5, 9]

    def test_scan_respects_bounds(self):
        table = Memtable(10)
        for key in range(10):
            table.put(key)
        assert table.scan(3, 6).tolist() == [3, 4, 5, 6]

    def test_sorted_items_returns_keys_and_tombstones(self):
        table = Memtable(10)
        table.put(4)
        table.delete(2)
        keys, tombstones = table.sorted_items()
        assert keys.tolist() == [2, 4]
        assert tombstones.tolist() == [True, False]

    def test_sorted_items_empty(self):
        keys, tombstones = Memtable(4).sorted_items()
        assert keys.size == 0
        assert tombstones.size == 0

    def test_len_counts_unique_keys(self):
        table = Memtable(10)
        table.put(1)
        table.put(1)
        table.put(2)
        assert len(table) == 2
