"""Tests for immutable sorted runs (fence pointers, filters, merging)."""

import numpy as np
import pytest

from repro.storage import SortedRun


def make_run(keys, bits=8.0, entries_per_page=4, tombstones=None, seed=0):
    return SortedRun(
        keys=np.asarray(keys, dtype=np.int64),
        entries_per_page=entries_per_page,
        bits_per_entry=bits,
        tombstones=None if tombstones is None else np.asarray(tombstones, dtype=bool),
        seed=seed,
    )


class TestConstruction:
    def test_basic_properties(self):
        run = make_run(range(0, 40, 2))
        assert run.num_entries == 20
        assert run.num_pages == 5
        assert run.min_key == 0
        assert run.max_key == 38

    def test_rejects_unsorted_keys(self):
        with pytest.raises(ValueError):
            make_run([3, 1, 2])

    def test_rejects_duplicate_keys(self):
        with pytest.raises(ValueError):
            make_run([1, 1, 2])

    def test_rejects_bad_page_size(self):
        with pytest.raises(ValueError):
            SortedRun(np.array([1, 2]), entries_per_page=0)

    def test_rejects_mismatched_tombstones(self):
        with pytest.raises(ValueError):
            make_run([1, 2, 3], tombstones=[True])

    def test_empty_run(self):
        run = make_run([])
        assert run.num_entries == 0
        assert run.num_pages == 0
        with pytest.raises(ValueError):
            _ = run.min_key

    def test_keys_view_is_read_only(self):
        run = make_run([1, 2, 3])
        with pytest.raises(ValueError):
            run.keys[0] = 99

    def test_filter_sized_by_bits_per_entry(self):
        small = make_run(range(100), bits=2.0)
        large = make_run(range(100), bits=16.0)
        assert large.filter_size_bits > small.filter_size_bits


class TestPointLookups:
    def test_lookup_finds_existing_key(self):
        run = make_run(range(0, 100, 2))
        found, tombstone, pages = run.lookup(42)
        assert found and not tombstone
        assert pages == 1

    def test_lookup_of_missing_key_out_of_range_costs_nothing(self):
        run = make_run(range(10, 20))
        found, _, pages = run.lookup(1_000)
        assert not found
        assert pages == 0

    def test_lookup_of_missing_key_in_range_costs_at_most_one_page(self):
        run = make_run(range(0, 100, 2), bits=0.0)  # no filter: always probes
        found, _, pages = run.lookup(41)
        assert not found
        assert pages == 1

    def test_bloom_filter_skips_most_missing_keys(self):
        run = make_run(range(0, 4_000, 2), bits=12.0)
        probes = range(1, 4_001, 2)
        total_pages = sum(run.lookup(key)[2] for key in probes)
        assert total_pages < 0.05 * len(list(probes))

    def test_tombstoned_key_reported(self):
        run = make_run([1, 2, 3], tombstones=[False, True, False])
        found, tombstone, _ = run.lookup(2)
        assert found and tombstone

    def test_page_of_uses_fence_pointers(self):
        run = make_run(range(0, 40), entries_per_page=10)
        assert run.page_of(0) == 0
        assert run.page_of(9) == 0
        assert run.page_of(10) == 1
        assert run.page_of(39) == 3

    def test_may_contain_respects_key_range(self):
        run = make_run(range(10, 20))
        assert not run.may_contain(5)
        assert not run.may_contain(100)


class TestRangeScans:
    def test_scan_returns_keys_in_interval(self):
        run = make_run(range(0, 100, 2))
        keys, pages = run.scan(10, 20)
        assert keys.tolist() == [10, 12, 14, 16, 18, 20]
        assert pages >= 1

    def test_scan_excludes_tombstones(self):
        run = make_run([1, 2, 3, 4], tombstones=[False, True, False, False])
        keys, _ = run.scan(1, 4)
        assert keys.tolist() == [1, 3, 4]

    def test_scan_outside_range_costs_nothing(self):
        run = make_run(range(10, 20))
        keys, pages = run.scan(100, 200)
        assert keys.size == 0
        assert pages == 0

    def test_scan_page_count_scales_with_interval(self):
        run = make_run(range(0, 1_000), entries_per_page=10)
        _, small = run.scan(0, 9)
        _, large = run.scan(0, 499)
        assert small == 1
        assert large == 50

    def test_empty_interval_with_no_matching_keys_still_seeks_one_page(self):
        run = make_run(range(0, 100, 10))
        keys, pages = run.scan(41, 49)
        assert keys.size == 0
        assert pages == 1

    def test_inverted_interval_returns_nothing(self):
        run = make_run(range(10))
        keys, pages = run.scan(5, 1)
        assert keys.size == 0
        assert pages == 0


class TestMerging:
    def test_merge_consolidates_duplicates_newest_wins(self):
        newer = make_run([1, 2, 3], tombstones=[False, True, False])
        older = make_run([2, 3, 4])
        merged = SortedRun.merge([newer, older], entries_per_page=4)
        assert merged.keys.tolist() == [1, 2, 3, 4]
        # Key 2 keeps the newer (tombstoned) version.
        found, tombstone, _ = merged.lookup(2)
        assert found and tombstone

    def test_merge_drop_tombstones(self):
        newer = make_run([1, 2], tombstones=[False, True])
        older = make_run([2, 3])
        merged = SortedRun.merge([newer, older], entries_per_page=4, drop_tombstones=True)
        assert merged.keys.tolist() == [1, 3]

    def test_merge_of_disjoint_runs_preserves_all_keys(self):
        a = make_run(range(0, 10))
        b = make_run(range(10, 20))
        merged = SortedRun.merge([a, b], entries_per_page=4)
        assert merged.num_entries == 20

    def test_merge_empty_list_gives_empty_run(self):
        merged = SortedRun.merge([], entries_per_page=4)
        assert merged.num_entries == 0

    def test_merge_result_is_sorted_and_unique(self):
        rng = np.random.default_rng(5)
        runs = []
        for seed in range(4):
            keys = np.unique(rng.integers(0, 500, size=100))
            runs.append(make_run(keys, seed=seed))
        merged = SortedRun.merge(runs, entries_per_page=8)
        assert np.all(np.diff(merged.keys) > 0)

    def test_from_sorted_keys_constructor(self):
        run = SortedRun.from_sorted_keys(np.array([1, 5, 9]), entries_per_page=2)
        assert run.num_entries == 3


class TestBatchedLookup:
    def test_lookup_many_matches_scalar_lookups(self):
        rng = np.random.default_rng(9)
        keys = np.unique(rng.integers(0, 2_000, size=400))
        tombstones = rng.random(keys.size) < 0.2
        run = make_run(keys, tombstones=tombstones.tolist(), seed=4)
        probe = rng.integers(-50, 2_050, size=300).astype(np.int64)
        found, tombstone, pages = run.lookup_many(probe)
        scalar = [run.lookup(int(key)) for key in probe]
        assert found.tolist() == [s[0] for s in scalar]
        assert tombstone.tolist() == [s[1] for s in scalar]
        assert pages == sum(s[2] for s in scalar)

    def test_pages_charged_per_probe_not_per_unique_page(self):
        # Two gets landing on the same page must charge two reads, exactly
        # like two scalar lookups would.
        run = make_run(range(0, 8), entries_per_page=4, bits=64.0)
        _, _, pages = run.lookup_many(np.array([1, 2], dtype=np.int64))
        assert pages == 2

    def test_lookup_many_empty_inputs(self):
        run = make_run(range(10))
        found, tombstone, pages = run.lookup_many(np.array([], dtype=np.int64))
        assert found.size == 0 and tombstone.size == 0 and pages == 0
        empty = SortedRun.merge([], entries_per_page=4)
        found, tombstone, pages = empty.lookup_many(np.array([1, 2], dtype=np.int64))
        assert not found.any() and not tombstone.any() and pages == 0

    def test_out_of_bounds_probes_charge_nothing(self):
        run = make_run(range(100, 200))
        found, _, pages = run.lookup_many(np.array([5, 500], dtype=np.int64))
        assert not found.any()
        assert pages == 0
