"""Persistent-backend hygiene on exception and parallel paths.

Every tree the executor builds must be released exactly once, even when a
session raises mid-run, a bulk load crashes half way, an incremental
migration is in flight, or the run is fanned out over a process pool.  A
leaked ``tree-*`` directory in the system temp dir is a regression.
"""

from __future__ import annotations

import tempfile

import pytest

from repro.lsm import LSMTuning, Policy, simulator_system
from repro.online import OnlineConfig, OnlineLSMController
from repro.storage import ExecutorConfig, WorkloadExecutor
from repro.storage.persistent import PersistentLSMTree
from repro.workloads import Session, SessionSequence, SessionType, Workload

_SYSTEM = simulator_system(num_entries=2_000)
_TUNING = LSMTuning(size_ratio=5.0, bits_per_entry=5.0, policy=Policy.LEVELING)


def _sequence(workload: Workload, sessions: int = 2) -> SessionSequence:
    session = Session(
        session_type=SessionType.WRITE, label="w", workloads=(workload,)
    )
    return SessionSequence(
        expected=Workload(z0=0.45, z1=0.45, q=0.05, w=0.05),
        sessions=(session,) * sessions,
    )


@pytest.fixture
def private_tmp(tmp_path, monkeypatch):
    """Redirect mkdtemp into an inspectable, initially empty directory."""
    monkeypatch.setenv("TMPDIR", str(tmp_path))
    monkeypatch.setattr(tempfile, "tempdir", None)
    return tmp_path


def _persistent_executor(**kwargs) -> WorkloadExecutor:
    config = ExecutorConfig(
        queries_per_workload=150, seed=11, backend="persistent", **kwargs
    )
    return WorkloadExecutor(_SYSTEM, config)


class TestBuildTreeFailure:
    def test_failed_bulk_load_removes_the_half_built_dir(
        self, private_tmp, monkeypatch
    ):
        def explode(self, keys):
            raise RuntimeError("disk full")

        monkeypatch.setattr(PersistentLSMTree, "bulk_load", explode)
        with pytest.raises(RuntimeError, match="disk full"):
            _persistent_executor().build_tree(_TUNING)
        assert list(private_tmp.iterdir()) == []

    def test_failed_bulk_load_cleans_a_user_data_dir_too(
        self, tmp_path, monkeypatch
    ):
        def explode(self, keys):
            raise RuntimeError("disk full")

        monkeypatch.setattr(PersistentLSMTree, "bulk_load", explode)
        executor = _persistent_executor(data_dir=str(tmp_path / "db"))
        with pytest.raises(RuntimeError):
            executor.build_tree(_TUNING)
        assert list((tmp_path / "db").glob("tree-*")) == []


class TestMidRunDisposal:
    def test_run_sequence_disposes_on_a_mid_session_crash(
        self, private_tmp, monkeypatch
    ):
        state = {"puts": 0}
        original = PersistentLSMTree.put

        def poisoned(self, key):
            state["puts"] += 1
            if state["puts"] > 40:
                raise RuntimeError("injected put failure")
            return original(self, key)

        monkeypatch.setattr(PersistentLSMTree, "put", poisoned)
        executor = _persistent_executor()
        with pytest.raises(RuntimeError, match="injected put failure"):
            executor.run_sequence(_TUNING, _sequence(Workload(0, 0, 0, 1.0)))
        assert state["puts"] > 40  # the crash happened mid-session
        assert list(private_tmp.iterdir()) == []

    def test_adaptive_run_disposes_a_mid_flight_migration_target(
        self, private_tmp, monkeypatch
    ):
        """A crash while a plan is in flight must release *both* trees."""
        saw_plan = []
        original = OnlineLSMController.execute

        def poisoned(self, operations):
            original(self, operations)
            if self.migration_in_progress:
                saw_plan.append(True)
                raise RuntimeError("crashed while migrating")

        monkeypatch.setattr(OnlineLSMController, "execute", poisoned)
        executor = _persistent_executor(batch_execution=False)
        online = OnlineConfig(
            window=150, check_interval=32, min_observations=64,
            cooldown=100_000, confirm_checks=1, rho=0.25, mode="nominal",
            horizon_ops=100_000, migration="incremental",
            migration_step_ops=10**6, migration_step_pages=8,
        )
        with pytest.raises(RuntimeError, match="crashed while migrating"):
            executor.run_sequence_adaptive(
                _TUNING,
                _sequence(Workload(0, 0, 1.0, 0), sessions=6),
                online=online,
            )
        assert saw_plan  # the injected crash really hit an in-flight plan
        assert list(private_tmp.iterdir()) == []


class TestParallelCompareHygiene:
    """The ``compare(parallel=True)`` × persistent-backend regression."""

    _TUNINGS = {
        "nominal": _TUNING,
        "robust": LSMTuning(8.0, 6.0, Policy.TIERING),
    }

    def test_parallel_compare_leaves_no_orphan_tree_dirs(self, private_tmp):
        executor = _persistent_executor()
        sequence = _sequence(Workload(0.3, 0.3, 0.1, 0.3))
        results = executor.compare(
            self._TUNINGS, sequence, parallel=True, processes=2
        )
        assert set(results) == set(self._TUNINGS)
        assert list(private_tmp.iterdir()) == []

    def test_parallel_matches_sequential_measurements(self, private_tmp):
        sequence = _sequence(Workload(0.3, 0.3, 0.1, 0.3))
        sequential = _persistent_executor().compare(self._TUNINGS, sequence)
        parallel = _persistent_executor().compare(
            self._TUNINGS, sequence, parallel=True, processes=2
        )
        assert parallel == sequential

    def test_shared_user_data_dir_keeps_one_tree_per_worker(self, tmp_path):
        executor = _persistent_executor(data_dir=str(tmp_path / "shared"))
        sequence = _sequence(Workload(0.3, 0.3, 0.1, 0.3))
        executor.compare(self._TUNINGS, sequence, parallel=True, processes=2)
        kept = list((tmp_path / "shared").glob("tree-*"))
        assert len(kept) == 2  # mkdtemp names are collision-free across workers

    def test_failing_worker_does_not_orphan_directories(
        self, private_tmp, monkeypatch
    ):
        def explode(self, keys):
            raise RuntimeError("worker down")

        monkeypatch.setattr(PersistentLSMTree, "bulk_load", explode)
        executor = _persistent_executor()
        sequence = _sequence(Workload(0.3, 0.3, 0.1, 0.3))
        with pytest.raises(RuntimeError, match="worker down"):
            executor.compare(self._TUNINGS, sequence, parallel=True, processes=2)
        assert list(private_tmp.iterdir()) == []
