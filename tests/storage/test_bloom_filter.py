"""Tests for the concrete Bloom filter used by the simulator."""

import numpy as np
import pytest

from repro.storage import BloomFilter


class TestBloomFilterBasics:
    def test_no_false_negatives(self):
        bf = BloomFilter(expected_entries=1_000, bits_per_entry=10.0, seed=1)
        keys = np.arange(0, 2_000, 2, dtype=np.uint64)
        bf.add_many(keys)
        assert all(bf.might_contain(int(k)) for k in keys)

    def test_false_positive_rate_close_to_theory(self):
        bits = 10.0
        bf = BloomFilter(expected_entries=2_000, bits_per_entry=bits, seed=2)
        bf.add_many(np.arange(0, 4_000, 2, dtype=np.uint64))
        probes = np.arange(1, 8_001, 2, dtype=np.uint64)  # keys never inserted
        false_positives = sum(bf.might_contain(int(k)) for k in probes)
        observed = false_positives / probes.size
        # Theory: ~0.0082 at 10 bits/entry; allow a generous band.
        assert observed < 0.05

    def test_more_bits_fewer_false_positives(self):
        keys = np.arange(0, 2_000, 2, dtype=np.uint64)
        probes = np.arange(1, 4_001, 2, dtype=np.uint64)

        def fp_count(bits: float) -> int:
            bf = BloomFilter(expected_entries=keys.size, bits_per_entry=bits, seed=3)
            bf.add_many(keys)
            return sum(bf.might_contain(int(k)) for k in probes)

        assert fp_count(12.0) <= fp_count(2.0)

    def test_zero_bits_is_degenerate_always_maybe(self):
        bf = BloomFilter(expected_entries=100, bits_per_entry=0.0)
        assert bf.might_contain(42)
        assert bf.size_bits == 0
        assert bf.expected_false_positive_rate() == 1.0

    def test_contains_operator(self):
        bf = BloomFilter(expected_entries=10, bits_per_entry=10.0)
        bf.add(7)
        assert 7 in bf

    def test_count_tracks_insertions(self):
        bf = BloomFilter(expected_entries=100, bits_per_entry=8.0)
        bf.add_many(np.arange(10, dtype=np.uint64))
        bf.add(99)
        assert bf.count == 11

    def test_empty_filter_expected_fpr_zero(self):
        bf = BloomFilter(expected_entries=100, bits_per_entry=8.0)
        assert bf.expected_false_positive_rate() == 0.0

    def test_rejects_negative_parameters(self):
        with pytest.raises(ValueError):
            BloomFilter(expected_entries=-1, bits_per_entry=8.0)
        with pytest.raises(ValueError):
            BloomFilter(expected_entries=10, bits_per_entry=-1.0)

    def test_different_seeds_produce_different_filters(self):
        keys = np.arange(0, 1_000, dtype=np.uint64)
        a = BloomFilter(1_000, 8.0, seed=1)
        b = BloomFilter(1_000, 8.0, seed=2)
        a.add_many(keys)
        b.add_many(keys)
        assert not np.array_equal(a._bits, b._bits)

    def test_add_many_with_empty_array_is_noop(self):
        bf = BloomFilter(expected_entries=10, bits_per_entry=8.0)
        bf.add_many(np.array([], dtype=np.uint64))
        assert bf.count == 0


class TestBatchedMembership:
    def test_might_contain_many_matches_scalar(self):
        rng = np.random.default_rng(3)
        members = rng.choice(100_000, size=500, replace=False).astype(np.uint64)
        bf = BloomFilter(expected_entries=500, bits_per_entry=6.0, seed=11)
        bf.add_many(members)
        probe = np.concatenate([members[:100], rng.integers(0, 200_000, size=400)]).astype(
            np.uint64
        )
        batched = bf.might_contain_many(probe)
        scalar = np.array([bf.might_contain(int(key)) for key in probe])
        assert np.array_equal(batched, scalar)

    def test_might_contain_many_empty_input(self):
        bf = BloomFilter(expected_entries=10, bits_per_entry=8.0)
        result = bf.might_contain_many(np.array([], dtype=np.uint64))
        assert result.dtype == bool and result.size == 0

    def test_degenerate_filter_answers_maybe_for_all(self):
        bf = BloomFilter(expected_entries=100, bits_per_entry=0.0)
        assert bf.might_contain_many(np.arange(5, dtype=np.uint64)).all()
