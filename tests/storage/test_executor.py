"""Tests for the workload executor (system-measurement harness)."""

import pytest

from repro.lsm import LSMTuning, Policy
from repro.online import OnlineConfig
from repro.storage import (
    AdaptiveSequenceMeasurement,
    ExecutorConfig,
    SequenceMeasurement,
    SessionMeasurement,
    WorkloadExecutor,
)
from repro.workloads import SessionType, Workload


def _session_measurement(num_queries, **overrides):
    base = dict(
        label="s",
        workload=Workload(0.25, 0.25, 0.25, 0.25),
        num_queries=num_queries,
        query_reads=0,
        query_writes=0,
        flush_writes=0,
        compaction_reads=0,
        compaction_writes=0,
        latency_us_per_query=0.0,
    )
    base.update(overrides)
    return SessionMeasurement(**base)


@pytest.fixture(scope="module")
def tunings():
    return {
        "nominal": LSMTuning(size_ratio=20.0, bits_per_entry=10.0, policy=Policy.LEVELING),
        "robust": LSMTuning(size_ratio=5.0, bits_per_entry=3.0, policy=Policy.LEVELING),
    }


class TestExecutorBasics:
    def test_build_tree_bulk_loads_and_resets_io(self, executor, tunings):
        tree = executor.build_tree(tunings["robust"])
        assert tree.num_entries == executor.system.num_entries
        assert tree.disk.counters.total == 0

    def test_same_key_space_across_tunings(self, executor, tunings):
        tree_a = executor.build_tree(tunings["nominal"])
        tree_b = executor.build_tree(tunings["robust"])
        assert tree_a.num_entries == tree_b.num_entries

    def test_run_session_reports_query_count(self, executor, tunings, session_generator, w11):
        tree = executor.build_tree(tunings["robust"])
        from repro.workloads import TraceGenerator

        session = session_generator.session(SessionType.READ, w11, workloads_per_session=2)
        trace = TraceGenerator(executor.key_space, seed=1)
        measurement = executor.run_session(tree, session, trace)
        assert measurement.num_queries == 2 * executor.config.queries_per_workload

    def test_session_measurement_has_non_negative_ios(
        self, executor, tunings, session_generator, w11
    ):
        measurement = executor.run_sequence(
            tunings["robust"], session_generator.paper_sequence(w11, workloads_per_session=1)
        )
        for session in measurement.sessions:
            assert session.ios_per_query >= 0.0
            assert session.latency_us_per_query >= 0.0


class TestSequenceExecution:
    def test_sequence_measurement_has_one_entry_per_session(
        self, executor, tunings, session_generator, w11
    ):
        sequence = session_generator.paper_sequence(w11, workloads_per_session=1)
        measurement = executor.run_sequence(tunings["robust"], sequence)
        assert len(measurement.sessions) == len(sequence)

    def test_write_session_generates_write_io(
        self, executor, tunings, session_generator, w11
    ):
        sequence = session_generator.paper_sequence(
            w11, include_writes=True, workloads_per_session=1
        )
        measurement = executor.run_sequence(tunings["robust"], sequence)
        write_sessions = [s for s in measurement.sessions if s.label == "write"]
        assert write_sessions
        assert write_sessions[0].flush_writes + write_sessions[0].compaction_writes > 0

    def test_read_only_sequence_generates_no_write_io(
        self, executor, tunings, session_generator, w7
    ):
        sequence = session_generator.paper_sequence(
            w7, include_writes=False, workloads_per_session=1
        )
        measurement = executor.run_sequence(tunings["robust"], sequence)
        # Only the small non-dominant write fraction can flush; it should be
        # a negligible share of total traffic.
        total_reads = sum(s.query_reads for s in measurement.sessions)
        total_compaction = sum(s.compaction_writes for s in measurement.sessions)
        assert total_reads > 0
        assert total_compaction <= total_reads

    def test_compare_runs_all_tunings(self, executor, tunings, session_generator, w11):
        sequence = session_generator.paper_sequence(w11, workloads_per_session=1)
        results = executor.compare(tunings, sequence)
        assert set(results) == {"nominal", "robust"}

    def test_parallel_compare_matches_sequential_exactly(
        self, executor, tunings, session_generator, w11
    ):
        """The multiprocessing pool must reproduce the sequential measurements
        bit for bit: every worker rebuilds the same key space and traces."""
        sequence = session_generator.paper_sequence(w11, workloads_per_session=1)
        sequential = executor.compare(tunings, sequence, parallel=False)
        parallel = executor.compare(tunings, sequence, parallel=True, processes=2)
        assert set(parallel) == set(sequential)
        for name in sequential:
            assert parallel[name] == sequential[name]

    def test_session_series_is_reportable(self, executor, tunings, session_generator, w11):
        sequence = session_generator.paper_sequence(w11, workloads_per_session=1)
        measurement = executor.run_sequence(tunings["robust"], sequence)
        series = measurement.session_series()
        assert len(series) == len(sequence)
        assert {"session", "workload", "ios_per_query", "latency_us_per_query"} <= set(
            series[0]
        )

    def test_average_metrics_are_finite(self, executor, tunings, session_generator, w11):
        sequence = session_generator.paper_sequence(w11, workloads_per_session=1)
        measurement = executor.run_sequence(tunings["nominal"], sequence)
        assert measurement.average_ios_per_query >= 0.0
        assert measurement.average_latency_us >= 0.0

    def test_latency_scales_with_configured_page_cost(self, small_system, session_generator, w11):
        fast = WorkloadExecutor(
            small_system,
            ExecutorConfig(queries_per_workload=200, read_latency_us=10.0, write_latency_us=10.0, seed=5),
        )
        slow = WorkloadExecutor(
            small_system,
            ExecutorConfig(queries_per_workload=200, read_latency_us=100.0, write_latency_us=100.0, seed=5),
        )
        tuning = LSMTuning(5.0, 3.0, Policy.LEVELING)
        sequence = session_generator.paper_sequence(w11, workloads_per_session=1)
        fast_measure = fast.run_sequence(tuning, sequence)
        slow_measure = slow.run_sequence(tuning, sequence)
        assert slow_measure.average_latency_us > fast_measure.average_latency_us


class TestAdaptiveExecution:
    @pytest.fixture()
    def online_config(self):
        return OnlineConfig(
            window=150,
            check_interval=50,
            min_observations=100,
            cooldown=600,
            confirm_checks=2,
            rho=0.5,
            mode="nominal",
            horizon_ops=100_000,
        )

    def test_adaptive_sequence_measures_every_session(
        self, executor, tunings, session_generator, w11, online_config
    ):
        sequence = session_generator.paper_sequence(w11, workloads_per_session=1)
        measurement = executor.run_sequence_adaptive(
            tunings["nominal"], sequence, online=online_config
        )
        assert isinstance(measurement, AdaptiveSequenceMeasurement)
        assert len(measurement.sessions) == len(sequence)
        assert measurement.initial_tuning == measurement.tuning
        assert measurement.average_ios_per_query >= 0.0

    def test_adaptive_migration_io_lands_in_session_measurements(
        self, executor, tunings, session_generator, w11, online_config
    ):
        """Migration pages must show up as compaction traffic in the very
        sessions where the migrations happened — adaptivity is not free."""
        sequence = session_generator.paper_sequence(w11, workloads_per_session=1)
        measurement = executor.run_sequence_adaptive(
            tunings["nominal"], sequence, online=online_config
        )
        if measurement.num_migrations == 0:
            pytest.skip("no drift fired for this sequence/seed")
        total_compaction = sum(
            s.compaction_reads + s.compaction_writes for s in measurement.sessions
        )
        assert total_compaction >= measurement.migration_pages

    def test_in_flight_incremental_plan_is_drained_at_stream_end(
        self, executor, tunings, session_generator, w11, online_config
    ):
        """A migration plan still running when the stream ends is drained
        before the measurement is returned: the events' planned page totals
        are fully charged, ``final_tuning`` is the tuning actually reached,
        and no tombstone hold survives on the live tree."""
        from dataclasses import replace

        sequence = session_generator.paper_sequence(w11, workloads_per_session=1)
        # Steps so far apart the plan cannot finish within the stream.
        online = replace(
            online_config,
            migration="incremental",
            migration_step_ops=10**6,
            migration_step_pages=16,
        )
        measurement = executor.run_sequence_adaptive(
            tunings["nominal"], sequence, online=online
        )
        if measurement.num_migrations == 0:
            pytest.skip("no drift fired for this sequence/seed")
        migrated = [e for e in measurement.events if e.migrated][0]
        assert measurement.final_tuning == migrated.decision.proposed
        total_compaction = sum(
            s.compaction_reads + s.compaction_writes for s in measurement.sessions
        )
        # The trailing drained steps land outside the session windows, so
        # the in-session compaction total undercuts the planned pages...
        assert total_compaction < measurement.migration_pages

    def test_compare_adaptive_adds_the_adaptive_entry(
        self, executor, tunings, session_generator, w11, online_config
    ):
        sequence = session_generator.paper_sequence(w11, workloads_per_session=1)
        results = executor.compare_adaptive(
            tunings, sequence, adaptive_from="robust", online=online_config
        )
        assert set(results) == {"nominal", "robust", "adaptive"}
        assert results["adaptive"].initial_tuning == tunings["robust"].rounded()

    def test_compare_adaptive_rejects_unknown_start(
        self, executor, tunings, session_generator, w11
    ):
        sequence = session_generator.paper_sequence(w11, workloads_per_session=1)
        with pytest.raises(KeyError):
            executor.compare_adaptive(tunings, sequence, adaptive_from="oracle")

    def test_compare_adaptive_rejects_reserved_name(
        self, executor, tunings, session_generator, w11
    ):
        sequence = session_generator.paper_sequence(w11, workloads_per_session=1)
        clashing = dict(tunings, adaptive=tunings["nominal"])
        with pytest.raises(ValueError):
            executor.compare_adaptive(clashing, sequence, adaptive_from="nominal")


class TestEmptySessionAccounting:
    """Zero-query sessions must not invent a phantom query to amortise over.

    ``ios_per_query`` used to divide by ``max(1, num_queries)``, so a session
    that executed nothing but still saw background traffic (a flush riding on
    the disk between snapshots) reported that traffic as the cost of one
    query that never ran — and dragged sequence averages with it.
    """

    def test_empty_session_reports_zero_ios_per_query(self):
        ghost = _session_measurement(num_queries=0, flush_writes=128,
                                     compaction_reads=64, compaction_writes=64)
        assert ghost.ios_per_query == 0.0
        assert ghost.read_ios_per_query == 0.0

    def test_single_query_session_still_amortises_normally(self):
        single = _session_measurement(num_queries=1, query_reads=3, flush_writes=5)
        assert single.ios_per_query == 8.0
        assert single.read_ios_per_query == 3.0

    def test_sequence_average_skips_empty_sessions(self):
        """The sequence mean weights non-empty sessions equally (the paper
        averages per-session costs) and excludes empty ones entirely — a
        zero-query session measured nothing, so averaging its 0.0 in would
        understate the sequence's cost."""
        tuning = LSMTuning(5.0, 5.0, policy=Policy.LEVELING)
        busy_a = _session_measurement(num_queries=10, query_reads=40,
                                      latency_us_per_query=4.0)
        busy_b = _session_measurement(num_queries=1_000, query_reads=2_000,
                                      latency_us_per_query=2.0)
        ghost = _session_measurement(num_queries=0, flush_writes=512)
        sequence = SequenceMeasurement(
            tuning=tuning, sessions=(busy_a, ghost, busy_b)
        )
        # (40/10 + 2000/1000) / 2 — equal session weights, ghost excluded.
        assert sequence.average_ios_per_query == pytest.approx(3.0)
        assert sequence.average_latency_us == pytest.approx(3.0)

    def test_all_empty_sequence_averages_to_zero(self):
        tuning = LSMTuning(5.0, 5.0, policy=Policy.LEVELING)
        sequence = SequenceMeasurement(
            tuning=tuning, sessions=(_session_measurement(num_queries=0),)
        )
        assert sequence.average_ios_per_query == 0.0
        assert sequence.average_latency_us == 0.0


class TestLazyLevelingExecution:
    def test_run_sequence_with_lazy_leveling_tuning(
        self, executor, session_generator, w7
    ):
        """End-to-end: a lazy-leveling tuning executes a full write-bearing
        sequence and produces non-trivial compaction traffic."""
        tuning = LSMTuning(
            size_ratio=4.0, bits_per_entry=4.0, policy=Policy.LAZY_LEVELING
        )
        sequence = session_generator.paper_sequence(
            w7, include_writes=True, workloads_per_session=1
        )
        measurement = executor.run_sequence(tuning, sequence)
        assert measurement.tuning.policy is Policy.LAZY_LEVELING
        assert len(measurement.sessions) == len(sequence)
        compactions = sum(
            s.compaction_reads + s.compaction_writes for s in measurement.sessions
        )
        assert compactions > 0
        assert measurement.average_ios_per_query > 0.0
