"""Conformance suite of the persistent SSTable backend.

The persistent tree must be observationally identical to the simulated one:
same live-key answers, same virtual-disk counters, same tree shape, on any
trace — and it must additionally survive process restarts and crashes.  The
tests here drive both backends through identical operation streams (across
every compaction policy, scalar and batched read paths, bulk loads and the
online controller's migrations) and assert equality, then exercise the
durability machinery: WAL replay, torn-record handling, crash-mid-flush
recovery, orphan sweeping and garbage collection.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.lsm import LSMTuning, Policy, simulator_system
from repro.storage import LSMTree, PersistentLSMTree, SortedRun, VirtualDisk
from repro.storage.persistent import SSTable, WriteAheadLog
from repro.storage.persistent.sstable import filter_sidecar_path, index_sidecar_path

_SYSTEM = simulator_system(num_entries=2_000)

#: One tuning per structural regime the compaction machinery distinguishes.
_TUNINGS = [
    LSMTuning(8.0, 6.0, Policy.LEVELING),
    LSMTuning(5.0, 5.0, Policy.TIERING),
    LSMTuning(6.0, 6.0, Policy.LAZY_LEVELING),
    LSMTuning(6.0, 6.0, Policy.ONE_LEVELING),
    LSMTuning(5.0, 5.0, Policy.FLUID, k_bound=3, z_bound=2),
    LSMTuning(5.0, 5.0, Policy.FLUID, k_bounds=(4.0, 2.0, 1.0), z_bound=1),
]

_TUNING_IDS = [
    "leveling", "tiering", "lazy-leveling", "one-leveling", "fluid", "fluid-kvec"
]


def _mixed_trace(seed: int, num_ops: int = 600):
    """A deterministic mixed put/get/delete/range stream."""
    rng = np.random.default_rng(seed)
    kinds = rng.choice(["put", "get", "delete", "range"], size=num_ops,
                       p=[0.45, 0.3, 0.15, 0.1])
    keys = rng.integers(0, 60_000, size=num_ops)
    return list(zip(kinds.tolist(), keys.tolist()))


def _drive(tree, trace):
    """Replay a trace, returning every query answer."""
    answers = []
    for kind, key in trace:
        if kind == "put":
            tree.put(key)
        elif kind == "delete":
            tree.delete(key)
        elif kind == "get":
            answers.append(tree.get(key))
        else:
            answers.append(tree.range_query(key, key + 700))
    return answers


def _persistent_pair(tuning, tmp_path, seed=3):
    """A (simulated, persistent) tree pair with identical seeds and disks."""
    sim = LSMTree(tuning, _SYSTEM, disk=VirtualDisk(), seed=seed)
    per = PersistentLSMTree(
        tuning, _SYSTEM, data_dir=tmp_path / "db", disk=VirtualDisk(), seed=seed
    )
    return sim, per


@pytest.mark.parametrize("tuning", _TUNINGS, ids=_TUNING_IDS)
class TestBackendConformance:
    """Simulated and persistent trees are observationally identical."""

    def test_identical_answers_counters_and_shape(self, tuning, tmp_path):
        sim, per = _persistent_pair(tuning, tmp_path)
        load = np.arange(0, 40_000, 13)
        sim.bulk_load(load)
        per.bulk_load(load)
        trace = _mixed_trace(seed=11)
        assert _drive(sim, trace) == _drive(per, trace)
        assert sim.disk.counters == per.disk.counters
        assert sim.stats() == per.stats()
        per.destroy()

    def test_batched_reads_match_across_backends(self, tuning, tmp_path):
        sim, per = _persistent_pair(tuning, tmp_path)
        load = np.arange(0, 30_000, 7)
        sim.bulk_load(load)
        per.bulk_load(load)
        rng = np.random.default_rng(23)
        for tree in (sim, per):
            for key in rng.integers(0, 35_000, 150).tolist():
                tree.put(key)
            rng = np.random.default_rng(23)  # same writes for both trees
        batch = np.r_[load[:50], np.arange(1, 400, 3), load[:10]]
        sim_found, sim_tomb = sim.lookup_entries(batch)
        per_found, per_tomb = per.lookup_entries(batch)
        assert np.array_equal(sim_found, per_found)
        assert np.array_equal(sim_tomb, per_tomb)
        assert sim.disk.counters == per.disk.counters
        per.destroy()

    def test_scan_versions_match_across_backends(self, tuning, tmp_path):
        sim, per = _persistent_pair(tuning, tmp_path)
        load = np.arange(0, 20_000, 5)
        sim.bulk_load(load)
        per.bulk_load(load)
        for tree in (sim, per):
            for key in range(100, 400, 5):
                tree.delete(key)
            for key in range(1_000, 1_300, 3):
                tree.put(key)
        for interval in [(0, 2_000), (150, 150), (99_000, 99_500), (395, 1_001)]:
            sim_keys, sim_tombs = sim.scan_versions(*interval)
            per_keys, per_tombs = per.scan_versions(*interval)
            assert np.array_equal(sim_keys, per_keys)
            assert np.array_equal(sim_tombs, per_tombs)
        assert sim.disk.counters == per.disk.counters
        per.destroy()

    def test_reopen_recovers_answers_and_shape(self, tuning, tmp_path):
        """Close + reopen (clean restart) preserves the whole tree state:
        installed runs via the manifest, buffered writes via WAL replay."""
        sim, per = _persistent_pair(tuning, tmp_path)
        load = np.arange(0, 25_000, 9)
        sim.bulk_load(load)
        per.bulk_load(load)
        trace = _mixed_trace(seed=31)
        _drive(sim, trace)
        _drive(per, trace)
        stats_before = per.stats()
        per.close()
        reopened = PersistentLSMTree(
            per.tuning, _SYSTEM, data_dir=tmp_path / "db", disk=VirtualDisk(), seed=3
        )
        assert reopened.stats() == stats_before
        probe = np.arange(0, 60_000, 17)
        sim_found, sim_tomb = sim.lookup_entries(probe)
        re_found, re_tomb = reopened.lookup_entries(probe)
        assert np.array_equal(sim_found, re_found)
        assert np.array_equal(sim_tomb, re_tomb)
        reopened.destroy()


class _FlushCrash(RuntimeError):
    """Injected failure standing in for a process kill."""


class _CrashingTree(PersistentLSMTree):
    """Persistent tree whose next manifest sync can be made to fail."""

    crash_next_sync = False

    def _sync_manifest(self) -> None:
        if self.crash_next_sync:
            self.crash_next_sync = False
            raise _FlushCrash("killed between SSTable writes and manifest swap")
        super()._sync_manifest()


class TestCrashRecovery:
    """Recovery from crashes at every point of the flush sequence."""

    _TUNING = LSMTuning(5.0, 5.0, Policy.TIERING)

    def _filled_tree(self, tmp_path, cls=PersistentLSMTree):
        tree = cls(
            self._TUNING, _SYSTEM, data_dir=tmp_path / "db",
            disk=VirtualDisk(), seed=3,
        )
        tree.bulk_load(np.arange(0, 20_000, 11))
        return tree

    def _reference_tree(self, writes):
        sim = LSMTree(self._TUNING, _SYSTEM, disk=VirtualDisk(), seed=3)
        sim.bulk_load(np.arange(0, 20_000, 11))
        for key in writes:
            sim.put(key)
        return sim

    def test_crash_before_any_flush_replays_the_wal(self, tmp_path):
        tree = self._filled_tree(tmp_path)
        writes = list(range(50_000, 50_000 + tree.buffer_entries // 2))
        for key in writes:
            tree.put(key)
        assert tree.memtable.is_empty is False
        tree.simulate_crash()
        recovered = self._filled_tree(tmp_path)
        assert recovered.stats().memtable_entries == len(writes)
        assert all(recovered.get(key) for key in writes)
        recovered.destroy()

    def test_crash_mid_flush_loses_no_acknowledged_write(self, tmp_path):
        """A crash after the flush wrote its SSTables but before the manifest
        swap: the old manifest plus the intact WAL reproduce every
        acknowledged write, and the stranded files are swept as orphans."""
        tree = self._filled_tree(tmp_path, cls=_CrashingTree)
        writes = []
        key = 50_000
        # Fill to one below the flush trigger, then let the next put crash
        # mid-flush (the WAL append of that put lands before the flush).
        while len(tree.memtable) < tree.buffer_entries - 1:
            tree.put(key)
            writes.append(key)
            key += 1
        tree.crash_next_sync = True
        with pytest.raises(_FlushCrash):
            tree.put(key)
        writes.append(key)
        tree.simulate_crash()

        recovered = self._filled_tree(tmp_path)
        # The crashed flush rolled back: every write is back in the memtable.
        assert recovered.stats().memtable_entries == len(writes)
        # Stranded SSTables (the flushed run, any compaction outputs) were
        # swept: on-disk files are exactly the manifest's runs.
        on_disk = {p.name for p in (tmp_path / "db").glob("run-*.sst")}
        referenced = {
            run.path.name for runs in recovered.levels for run in runs
        }
        assert on_disk == referenced
        # Liveness answers equal a reference that saw every write.
        reference = self._reference_tree(writes)
        probe = np.r_[np.arange(0, 22_000, 7), np.array(writes)]
        ref_found, ref_tomb = reference.lookup_entries(probe)
        rec_found, rec_tomb = recovered.lookup_entries(probe)
        assert np.array_equal(ref_found & ~ref_tomb, rec_found & ~rec_tomb)
        recovered.destroy()

    def test_crash_between_manifest_swap_and_wal_reset(self, tmp_path):
        """A crash after the manifest swap but before the WAL truncation:
        replaying the stale WAL re-applies flushed writes, which newest-wins
        reads absorb — no answer changes, nothing is lost."""
        tree = self._filled_tree(tmp_path)
        real_reset = WriteAheadLog.reset
        writes = []
        key = 50_000
        try:
            WriteAheadLog.reset = lambda self: (_ for _ in ()).throw(
                _FlushCrash("killed before WAL truncation")
            )
            with pytest.raises(_FlushCrash):
                while True:
                    tree.put(key)
                    writes.append(key)
                    key += 1
        finally:
            WriteAheadLog.reset = real_reset
        tree.simulate_crash()

        recovered = self._filled_tree(tmp_path)
        reference = self._reference_tree(writes)
        probe = np.r_[np.arange(0, 22_000, 7), np.array(writes)]
        ref_found, ref_tomb = reference.lookup_entries(probe)
        rec_found, rec_tomb = recovered.lookup_entries(probe)
        assert np.array_equal(ref_found & ~ref_tomb, rec_found & ~rec_tomb)
        recovered.destroy()


class TestWriteAheadLog:
    def test_round_trip(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.append(7)
        wal.append(-3, tombstone=True)
        wal.append(2**40)
        assert wal.replay() == [(7, False), (-3, True), (2**40, False)]
        assert wal.num_records == 3
        wal.reset()
        assert wal.replay() == []
        wal.close()

    def test_torn_trailing_record_is_dropped(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.append(1)
        wal.append(2)
        wal.close()
        data = path.read_bytes()
        path.write_bytes(data[:-4])  # tear the last record mid-write
        torn = WriteAheadLog(path)
        assert torn.replay() == [(1, False)]
        torn.close()

    def test_sync_mode_appends_survive(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log", sync=True)
        wal.append(5, tombstone=True)
        assert wal.replay() == [(5, True)]
        wal.close()

    _GROUP = [(7, False), (-3, True), (2**40, False), (0, False), (12, True)]

    def test_append_many_is_byte_identical_to_repeated_append(self, tmp_path):
        scalar = WriteAheadLog(tmp_path / "scalar.log")
        for key, tombstone in self._GROUP:
            scalar.append(key, tombstone)
        grouped = WriteAheadLog(tmp_path / "grouped.log")
        grouped.append_many(self._GROUP)
        scalar.close()
        grouped.close()
        assert (tmp_path / "grouped.log").read_bytes() == (
            tmp_path / "scalar.log"
        ).read_bytes()
        replayed = WriteAheadLog(tmp_path / "grouped.log")
        assert replayed.replay() == self._GROUP
        replayed.close()

    def test_append_many_of_nothing_is_a_no_op(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log", sync=True)
        wal.append_many([])
        assert wal.replay() == []
        assert (tmp_path / "wal.log").stat().st_size == 0
        wal.close()

    def test_crash_mid_group_keeps_the_complete_prefix(self, tmp_path):
        """A torn group commit must replay every record before the tear."""
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.append_many(self._GROUP)
        wal.close()
        record_size = 9  # struct "<qB"
        data = path.read_bytes()
        assert len(data) == record_size * len(self._GROUP)
        path.write_bytes(data[: 3 * record_size + 4])  # tear inside record 4
        torn = WriteAheadLog(path)
        assert torn.replay() == self._GROUP[:3]
        # The log stays appendable after a torn tail was truncated away.
        torn.append(99)
        assert torn.replay() == self._GROUP[:3] + [(99, False)]
        torn.close()

    def test_append_many_pays_a_single_fsync(self, tmp_path, monkeypatch):
        syncs = {"count": 0}
        real_fsync = os.fsync

        def counting_fsync(fd):
            syncs["count"] += 1
            return real_fsync(fd)

        monkeypatch.setattr(os, "fsync", counting_fsync)
        wal = WriteAheadLog(tmp_path / "wal.log", sync=True)
        wal.append_many(self._GROUP)
        assert syncs["count"] == 1
        for key, tombstone in self._GROUP:
            wal.append(key, tombstone)
        assert syncs["count"] == 1 + len(self._GROUP)
        wal.close()


class TestSSTable:
    """The on-disk table answers exactly like an in-memory sorted run."""

    def _pair(self, tmp_path, keys, tombstones=None, bits=5.0, seed=9):
        keys = np.asarray(keys, dtype=np.int64)
        if tombstones is None:
            tombstones = np.zeros(keys.size, dtype=bool)
        run = SortedRun(
            keys, entries_per_page=4, bits_per_entry=bits,
            tombstones=tombstones, seed=seed,
        )
        table = SSTable.create(
            tmp_path / "t.sst", keys, tombstones,
            entries_per_page=4, bits_per_entry=bits, seed=seed,
        )
        return run, table

    def test_lookup_parity_including_page_charges(self, tmp_path):
        keys = np.arange(0, 1_000, 3)
        tombs = (keys % 30) == 0
        run, table = self._pair(tmp_path, keys, tombs)
        for key in range(-5, 1_010):
            assert run.lookup(key) == table.lookup(key)
        table.close()

    def test_lookup_many_parity(self, tmp_path):
        keys = np.arange(0, 2_000, 7)
        tombs = (keys % 70) == 0
        run, table = self._pair(tmp_path, keys, tombs)
        probe = np.r_[keys[::5], np.arange(1, 500, 2), keys[:3], keys[:3]]
        run_f, run_t, run_pages = run.lookup_many(probe)
        tab_f, tab_t, tab_pages = table.lookup_many(probe)
        assert np.array_equal(run_f, tab_f)
        assert np.array_equal(run_t, tab_t)
        assert run_pages == tab_pages
        table.close()

    def test_scan_parity_over_every_interval_shape(self, tmp_path):
        keys = np.arange(0, 400, 5)
        tombs = (keys % 20) == 0
        run, table = self._pair(tmp_path, keys, tombs)
        intervals = [
            (0, 399), (-50, -1), (401, 900), (3, 4), (100, 100),
            (101, 104), (0, 0), (395, 395), (17, 230),
        ]
        for start, end in intervals:
            assert run.range_span(start, end) == table.range_span(start, end)
            run_scan = run.scan_entries(start, end)
            tab_scan = table.scan_entries(start, end)
            assert np.array_equal(run_scan[0], tab_scan[0])
            assert np.array_equal(run_scan[1], tab_scan[1])
            assert run_scan[2] == tab_scan[2]
        table.close()

    def test_open_round_trips_all_state(self, tmp_path):
        keys = np.arange(0, 300, 2)
        tombs = (keys % 10) == 0
        _, table = self._pair(tmp_path, keys, tombs)
        table.close()
        reopened = SSTable.open(tmp_path / "t.sst")
        assert reopened.num_entries == keys.size
        assert reopened.num_pages == table.num_pages
        assert np.array_equal(reopened.keys, keys)
        assert np.array_equal(reopened.tombstones, tombs)
        # The rebuilt Bloom filter answers bit-identically.
        probe = np.arange(-100, 400).astype(np.uint64)
        assert np.array_equal(
            table.bloom_filter.might_contain_many(probe),
            reopened.bloom_filter.might_contain_many(probe),
        )
        reopened.close()

    def test_empty_table(self, tmp_path):
        run, table = self._pair(tmp_path, np.empty(0, dtype=np.int64))
        assert table.num_pages == 0
        assert table.lookup(5) == (False, False, 0)
        assert table.range_span(0, 10).num_pages == 0
        with pytest.raises(ValueError):
            table.min_key
        table.close()

    def test_open_rejects_truncated_data_file(self, tmp_path):
        keys = np.arange(0, 100, 2)
        _, table = self._pair(tmp_path, keys)
        table.close()
        path = tmp_path / "t.sst"
        path.write_bytes(path.read_bytes()[:-9])
        with pytest.raises(ValueError, match="index sidecar"):
            SSTable.open(path)

    def test_delete_files_removes_sidecars(self, tmp_path):
        _, table = self._pair(tmp_path, np.arange(0, 40))
        table.delete_files()
        assert not (tmp_path / "t.sst").exists()
        assert not index_sidecar_path(tmp_path / "t.sst").exists()
        assert not filter_sidecar_path(tmp_path / "t.sst").exists()


class TestPersistentHousekeeping:
    _TUNING = LSMTuning(5.0, 5.0, Policy.LEVELING)

    def test_compaction_deletes_superseded_files(self, tmp_path):
        """After a flush's manifest sync, on-disk files are exactly the
        live runs — compaction inputs do not accumulate."""
        tree = PersistentLSMTree(
            self._TUNING, _SYSTEM, data_dir=tmp_path / "db",
            disk=VirtualDisk(), seed=3,
        )
        for key in range(6 * tree.buffer_entries):
            tree.put(key)
        live = {run.path.name for runs in tree.levels for run in runs}
        on_disk = {p.name for p in (tmp_path / "db").glob("run-*.sst")}
        assert on_disk == live
        # Sidecars track their data files one to one.
        npz_count = len(list((tmp_path / "db").glob("run-*.npz")))
        assert npz_count == 2 * len(live)
        tree.destroy()
        assert not (tmp_path / "db").exists()

    def test_compaction_disabled_stacks_runs(self, tmp_path):
        tree = PersistentLSMTree(
            self._TUNING, _SYSTEM, data_dir=tmp_path / "db",
            disk=VirtualDisk(), seed=3,
        )
        tree.compaction_enabled = False
        for key in range(4 * tree.buffer_entries):
            tree.put(key)
        assert len(tree.levels[0]) >= 4
        assert tree.disk.counters.compaction_reads == 0
        # Reads stay correct: newest-wins consolidation is structural.
        assert tree.get(1)
        assert not tree.get(4 * tree.buffer_entries + 5)
        tree.destroy()

    def test_sync_writes_mode_round_trips(self, tmp_path):
        tree = PersistentLSMTree(
            self._TUNING, _SYSTEM, data_dir=tmp_path / "db",
            disk=VirtualDisk(), seed=3, sync_writes=True,
        )
        tree.put(42)
        tree.delete(7)
        tree.simulate_crash()
        recovered = PersistentLSMTree(
            self._TUNING, _SYSTEM, data_dir=tmp_path / "db",
            disk=VirtualDisk(), seed=3,
        )
        assert recovered.get(42)
        assert recovered.memtable.get(7) == (True, True)
        recovered.destroy()


class TestExecutorIntegration:
    def test_persistent_backend_measurements_match_simulated(
        self, session_generator, w11
    ):
        """The measurement harness reports byte-identical numbers on both
        backends — the persistent substrate changes wall-clock time only."""
        from repro.storage import ExecutorConfig, WorkloadExecutor

        system = simulator_system(num_entries=2_000)
        sequence = session_generator.paper_sequence(w11, workloads_per_session=1)
        tuning = LSMTuning(5.0, 5.0, Policy.LEVELING)
        results = {}
        for backend in ("simulated", "persistent"):
            executor = WorkloadExecutor(
                system,
                ExecutorConfig(queries_per_workload=150, seed=5, backend=backend),
            )
            results[backend] = executor.run_sequence(tuning, sequence)
        assert results["simulated"] == results["persistent"]

    def test_persistent_trees_are_disposed_after_a_sequence(
        self, session_generator, w11, tmp_path
    ):
        from repro.storage import ExecutorConfig, WorkloadExecutor

        system = simulator_system(num_entries=2_000)
        sequence = session_generator.paper_sequence(w11, workloads_per_session=1)
        executor = WorkloadExecutor(
            system,
            ExecutorConfig(
                queries_per_workload=100, seed=5,
                backend="persistent", data_dir=str(tmp_path / "trees"),
            ),
        )
        executor.run_sequence(LSMTuning(5.0, 5.0, Policy.LEVELING), sequence)
        # A user-chosen data dir keeps the closed tree for inspection.
        kept = list((tmp_path / "trees").glob("tree-*"))
        assert len(kept) == 1
        assert (kept[0] / "MANIFEST.json").exists()

    def test_executor_config_rejects_unknown_backend(self):
        from repro.storage import ExecutorConfig

        with pytest.raises(ValueError, match="backend"):
            ExecutorConfig(backend="rocksdb")

    def test_adaptive_migration_stays_persistent(self, tmp_path):
        """The online controller's replacement trees come from the live
        tree's ``successor`` factory: a persistent tree migrates to another
        persistent tree, and the superseded directory is deleted."""
        tree = PersistentLSMTree(
            LSMTuning(5.0, 5.0, Policy.LEVELING), _SYSTEM,
            data_dir=tmp_path / "db", disk=VirtualDisk(), seed=3,
        )
        replacement = tree.successor(
            LSMTuning(4.0, 4.0, Policy.TIERING), seed=17
        )
        assert isinstance(replacement, PersistentLSMTree)
        assert replacement.data_dir != tree.data_dir
        assert replacement.data_dir.parent == tree.data_dir.parent
        replaced_dir = tree.data_dir
        tree.dispose()
        assert not replaced_dir.exists()
        replacement.destroy()
