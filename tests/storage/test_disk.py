"""Tests for the I/O-accounting virtual disk."""

import pytest

from repro.storage import IOCounters, VirtualDisk


class TestIOCounters:
    def test_totals(self):
        counters = IOCounters(
            query_reads=5, query_writes=1, compaction_reads=3, compaction_writes=4, flush_writes=2
        )
        assert counters.total_reads == 8
        assert counters.total_writes == 7
        assert counters.total == 15

    def test_snapshot_is_independent_copy(self):
        counters = IOCounters(query_reads=5)
        snap = counters.snapshot()
        counters.query_reads += 10
        assert snap.query_reads == 5

    def test_delta(self):
        before = IOCounters(query_reads=5, flush_writes=1)
        after = IOCounters(query_reads=9, flush_writes=4, compaction_reads=2)
        delta = after.delta(before)
        assert delta.query_reads == 4
        assert delta.flush_writes == 3
        assert delta.compaction_reads == 2


class TestVirtualDisk:
    def test_read_write_recording(self):
        disk = VirtualDisk()
        disk.read_pages(3)
        disk.read_pages(2, compaction=True)
        disk.write_pages(4, flush=True)
        disk.write_pages(5, compaction=True)
        disk.write_pages(1)
        assert disk.counters.query_reads == 3
        assert disk.counters.compaction_reads == 2
        assert disk.counters.flush_writes == 4
        assert disk.counters.compaction_writes == 5
        assert disk.counters.query_writes == 1

    def test_rejects_negative_counts(self):
        disk = VirtualDisk()
        with pytest.raises(ValueError):
            disk.read_pages(-1)
        with pytest.raises(ValueError):
            disk.write_pages(-1)

    def test_rejects_negative_latencies(self):
        with pytest.raises(ValueError):
            VirtualDisk(read_latency_us=-1.0)

    def test_latency_model(self):
        disk = VirtualDisk(read_latency_us=10.0, write_latency_us=30.0)
        disk.read_pages(4)
        disk.write_pages(2, flush=True)
        assert disk.latency_us() == pytest.approx(4 * 10.0 + 2 * 30.0)

    def test_latency_of_explicit_counters(self):
        disk = VirtualDisk(read_latency_us=1.0, write_latency_us=2.0)
        counters = IOCounters(query_reads=3, compaction_writes=5)
        assert disk.latency_us(counters) == pytest.approx(3 * 1.0 + 5 * 2.0)

    def test_reset(self):
        disk = VirtualDisk()
        disk.read_pages(3)
        disk.reset()
        assert disk.counters.total == 0

    def test_snapshot_then_delta_workflow(self):
        disk = VirtualDisk()
        disk.read_pages(2)
        before = disk.snapshot()
        disk.read_pages(7)
        delta = disk.counters.delta(before)
        assert delta.query_reads == 7
