"""Property tests for vectorised batch trace execution.

The batched read path (``BloomFilter.might_contain_many`` →
``SortedRun.lookup_many`` → ``LSMTree.get_many`` → the executor's GET-span
segmenter) carries one contract: **bit identity** with the scalar path.
Virtual-disk counters, tree state and session measurements must come out
byte-for-byte equal whether a trace is replayed one operation at a time or
in vectorised batches.  These tests pin that contract:

* random mixed op streams (gets, empty gets, puts-as-updates, deletes via
  pre-seeded tombstones, range scans) over every registered compaction
  policy — including per-level K_i vector bounds — with tiny buffers so
  flushes and compactions land mid-stream;
* executor-level session measurements, batched vs scalar;
* the adaptive loop with an incremental migration in flight, where batches
  route through the mixed migration state's ``get_many`` instead of the
  tree's.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsm import LSMTuning, Policy, simulator_system
from repro.online import MigrationPlan, OnlineConfig
from repro.storage import ExecutorConfig, LSMTree, WorkloadExecutor
from repro.storage.lsm_tree import execute_operation, execute_operations_batched
from repro.workloads import (
    KeySpace,
    Operation,
    OperationType,
    SessionGenerator,
    UncertaintyBenchmark,
    Workload,
)

_SYSTEM = simulator_system(num_entries=2_000)
_KEY_SPACE = KeySpace.build(_SYSTEM.num_entries, seed=7)

#: Every registered policy the simulator can run, including a fluid tuning
#: with a full per-level K_i bound vector.
_TUNINGS = [
    LSMTuning(8.0, 6.0, Policy.LEVELING),
    LSMTuning(5.0, 5.0, Policy.TIERING),
    LSMTuning(6.0, 6.0, Policy.LAZY_LEVELING),
    LSMTuning(6.0, 6.0, Policy.ONE_LEVELING),
    LSMTuning(5.0, 5.0, Policy.FLUID, k_bound=3, z_bound=2),
    LSMTuning(6.0, 6.0, Policy.FLUID, k_bounds=(4.0, 2.0, 1.0), z_bound=1.0),
]
_TUNING_IDS = [
    "leveling",
    "tiering",
    "lazy-leveling",
    "1-leveling",
    "fluid-scalar",
    "fluid-kvector",
]


@st.composite
def _operation_streams(draw) -> list[Operation]:
    """A random mixed op stream over the shared key space.

    Writes hit fresh keys *and* already-resident keys (updates), so flushed
    runs carry stale versions; gets split between resident and missing keys
    so both Bloom-positive and Bloom-negative probes occur; short range
    scans interleave to break GET spans.
    """
    existing = _KEY_SPACE.existing
    missing = _KEY_SPACE.missing
    num_ops = draw(st.integers(min_value=1, max_value=120))
    ops: list[Operation] = []
    for _ in range(num_ops):
        kind = draw(
            st.sampled_from(
                [
                    OperationType.GET,
                    OperationType.GET,
                    OperationType.GET,
                    OperationType.EMPTY_GET,
                    OperationType.PUT,
                    OperationType.RANGE,
                ]
            )
        )
        if kind is OperationType.GET:
            key = int(existing[draw(st.integers(0, existing.size - 1))])
        elif kind is OperationType.EMPTY_GET:
            key = int(missing[draw(st.integers(0, missing.size - 1))])
        elif kind is OperationType.PUT:
            if draw(st.booleans()):
                key = int(existing[draw(st.integers(0, existing.size - 1))])
            else:
                key = _KEY_SPACE.fresh_start + draw(st.integers(0, 10_000))
        else:
            key = int(existing[draw(st.integers(0, existing.size - 1))])
            ops.append(Operation(kind=kind, key=key, scan_length=draw(st.integers(1, 32))))
            continue
        ops.append(Operation(kind=kind, key=key))
    return ops


def _loaded_tree(tuning: LSMTuning, deletes: np.ndarray | None = None) -> LSMTree:
    tree = LSMTree(tuning, _SYSTEM, seed=9)
    tree.bulk_load(_KEY_SPACE.existing)
    if deletes is not None:
        for key in deletes:
            tree.delete(int(key))
    tree.disk.reset()
    return tree


class TestBatchedReplayBitIdentity:
    """execute_operations_batched == per-op execute_operation, bit for bit."""

    @pytest.mark.parametrize("tuning", _TUNINGS, ids=_TUNING_IDS)
    @given(
        ops=_operation_streams(),
        max_batch_ops=st.sampled_from([1, 2, 7, 64, 4_096]),
        delete_seed=st.integers(0, 2**16),
    )
    @settings(max_examples=15, deadline=None)
    def test_disk_counters_and_tree_state_match(
        self, tuning, ops, max_batch_ops, delete_seed
    ):
        rng = np.random.default_rng(delete_seed)
        deletes = rng.choice(_KEY_SPACE.existing, size=40, replace=False)
        scalar = _loaded_tree(tuning, deletes)
        batched = _loaded_tree(tuning, deletes)

        for op in ops:
            execute_operation(scalar, op)
        execute_operations_batched(batched, ops, max_batch_ops=max_batch_ops)

        assert batched.disk.counters == scalar.disk.counters
        assert batched.stats() == scalar.stats()

    @given(
        ops=_operation_streams(),
        probe_seed=st.integers(0, 2**16),
    )
    @settings(max_examples=15, deadline=None)
    def test_get_many_answers_and_io_match_scalar_gets(self, ops, probe_seed):
        tuning = LSMTuning(6.0, 5.0, Policy.LEVELING)
        rng = np.random.default_rng(probe_seed)
        deletes = rng.choice(_KEY_SPACE.existing, size=40, replace=False)
        scalar = _loaded_tree(tuning, deletes)
        batched = _loaded_tree(tuning, deletes)
        for op in ops:
            execute_operation(scalar, op)
            execute_operation(batched, op)

        probe = np.concatenate(
            [
                rng.choice(_KEY_SPACE.existing, size=30, replace=True),
                rng.choice(_KEY_SPACE.missing, size=10, replace=True),
                deletes[:10],
            ]
        ).astype(np.int64)
        before_scalar = scalar.disk.snapshot()
        before_batched = batched.disk.snapshot()
        expected = np.array([scalar.get(int(key)) for key in probe])
        answers = batched.get_many(probe)
        assert np.array_equal(answers, expected)
        assert batched.disk.counters.delta(before_batched) == scalar.disk.counters.delta(
            before_scalar
        )


@pytest.fixture(scope="module")
def sequence():
    bench = UncertaintyBenchmark(size=100, seed=42)
    generator = SessionGenerator(bench, seed=3)
    workload = Workload(z0=0.2, z1=0.4, q=0.1, w=0.3)
    return generator.paper_sequence(workload, include_writes=True, workloads_per_session=2)


class TestExecutorParity:
    """Session measurements are byte-identical, batched vs scalar."""

    def _executor(self, batch: bool) -> WorkloadExecutor:
        return WorkloadExecutor(
            _SYSTEM,
            ExecutorConfig(queries_per_workload=200, seed=5, batch_execution=batch),
        )

    @pytest.mark.parametrize(
        "tuning", [_TUNINGS[0], _TUNINGS[1], _TUNINGS[5]], ids=["leveling", "tiering", "kvector"]
    )
    def test_run_sequence_measurements_match(self, tuning, sequence):
        batched = self._executor(True).run_sequence(tuning, sequence)
        scalar = self._executor(False).run_sequence(tuning, sequence)
        assert batched == scalar

    @pytest.mark.parametrize("max_batch_ops", [1, 13, 4_096])
    def test_any_batch_bound_gives_the_same_measurement(self, max_batch_ops, sequence):
        reference = self._executor(False).run_sequence(_TUNINGS[0], sequence)
        executor = WorkloadExecutor(
            _SYSTEM,
            ExecutorConfig(
                queries_per_workload=200,
                seed=5,
                batch_execution=True,
                max_batch_ops=max_batch_ops,
            ),
        )
        assert executor.run_sequence(_TUNINGS[0], sequence) == reference

    def test_max_batch_ops_must_be_positive(self):
        with pytest.raises(ValueError, match="max_batch_ops"):
            ExecutorConfig(max_batch_ops=0)


class TestAdaptiveParity:
    """The online loop fires, migrates and measures identically under batching."""

    def _measure(self, batch: bool, sequence):
        executor = WorkloadExecutor(
            _SYSTEM,
            ExecutorConfig(queries_per_workload=200, seed=5, batch_execution=batch),
        )
        online = OnlineConfig(
            check_interval=64,
            min_observations=128,
            cooldown=256,
            confirm_checks=2,
            migration="incremental",
            migration_step_ops=32,
            migration_step_pages=8,
        )
        return executor.run_sequence_adaptive(_TUNINGS[0], sequence, online=online)

    def test_adaptive_run_with_incremental_migration_matches_scalar(self, sequence):
        batched = self._measure(True, sequence)
        scalar = self._measure(False, sequence)
        assert batched.sessions == scalar.sessions
        assert batched.events == scalar.events
        assert batched.final_tuning == scalar.final_tuning


def _mid_flight_plan() -> tuple[MigrationPlan, np.ndarray, np.ndarray]:
    """A migration caught mid-flight, with writes and deletes landed on top.

    Returns ``(plan, mid_plan_puts, mid_plan_deletes)``.  Puts are applied
    before deletes, so any key drawn into both ends up tombstoned — every key
    in ``mid_plan_deletes`` must read as dead through the mixed state.
    """
    source = _loaded_tree(LSMTuning(10.0, 8.0, Policy.LEVELING))
    target = LSMTree(
        LSMTuning(4.0, 6.0, Policy.TIERING), _SYSTEM, disk=source.disk, seed=33
    )
    checkpoint = np.sort(
        np.concatenate([run.keys for runs in source.levels for run in runs])
    )
    plan = MigrationPlan(source, target, checkpoint, max_step_pages=64)
    plan.run_next_step()
    plan.run_next_step()
    # Writes and deletes landing *during* the migration go to the target,
    # so some keys are resolved there (live or tombstoned) and the rest
    # fall through to the frozen source.
    rng = np.random.default_rng(21)
    puts = rng.choice(checkpoint, size=25, replace=False)
    deletes = rng.choice(checkpoint, size=25, replace=False)
    for key in puts:
        plan.put(int(key))
    for key in deletes:
        plan.delete(int(key))
    plan.source.disk.reset()
    return plan, puts, deletes


class TestMixedStateParity:
    """MigrationPlan.get_many == per-key MigrationPlan.get, I/O included."""

    @given(probe_seed=st.integers(0, 2**16))
    @settings(max_examples=10, deadline=None)
    def test_get_many_matches_scalar_fallthrough(self, probe_seed):
        scalar_plan, _, _ = _mid_flight_plan()
        batched_plan, _, _ = _mid_flight_plan()
        rng = np.random.default_rng(probe_seed)
        probe = np.concatenate(
            [
                rng.choice(_KEY_SPACE.existing, size=40, replace=True),
                rng.choice(_KEY_SPACE.missing, size=10, replace=True),
            ]
        ).astype(np.int64)
        expected = np.array([scalar_plan.get(int(key)) for key in probe])
        answers = batched_plan.get_many(probe)
        assert np.array_equal(answers, expected)
        assert batched_plan.source.disk.counters == scalar_plan.source.disk.counters


class TestAdversarialBatchScalarParity:
    """Batch == scalar on hostile probes: duplicate keys inside one batch,
    keys deleted mid-plan, and keys absent from both trees.

    The per-probe I/O charging contract means a key duplicated N times in a
    batch must cost exactly N scalar lookups — deduplicating probes (a
    tempting "optimisation") would silently change the simulator's counters.
    """

    @given(probe_seed=st.integers(0, 2**16), dup_factor=st.integers(2, 5))
    @settings(max_examples=8, deadline=None)
    def test_plan_get_many_on_duplicates_deletions_and_misses(
        self, probe_seed, dup_factor
    ):
        scalar_plan, _, deleted = _mid_flight_plan()
        batched_plan, _, _ = _mid_flight_plan()
        rng = np.random.default_rng(probe_seed)
        base = np.concatenate(
            [
                deleted,  # tombstoned mid-plan: target's deletion must shadow
                rng.choice(_KEY_SPACE.missing, size=15, replace=True),  # in neither
                rng.choice(_KEY_SPACE.existing, size=15, replace=True),
            ]
        )
        # Every key appears dup_factor times, shuffled so duplicates are not
        # adjacent — the batch path must answer and charge each occurrence.
        probe = np.repeat(base, dup_factor).astype(np.int64)
        rng.shuffle(probe)

        expected = np.array([scalar_plan.get(int(key)) for key in probe])
        answers = batched_plan.get_many(probe)

        assert np.array_equal(answers, expected)
        assert batched_plan.source.disk.counters == scalar_plan.source.disk.counters
        # Semantics, not just parity: mid-plan deletions read dead everywhere,
        # keys absent from both trees read dead everywhere.
        assert not answers[np.isin(probe, deleted)].any()
        assert not answers[np.isin(probe, _KEY_SPACE.missing)].any()

    @pytest.mark.parametrize(
        "tuning", [_TUNINGS[0], _TUNINGS[1], _TUNINGS[5]], ids=["leveling", "tiering", "kvector"]
    )
    @given(probe_seed=st.integers(0, 2**16), dup_factor=st.integers(2, 5))
    @settings(max_examples=8, deadline=None)
    def test_lookup_entries_matches_scalar_lookup_entry(
        self, tuning, probe_seed, dup_factor
    ):
        rng = np.random.default_rng(probe_seed)
        deletes = rng.choice(_KEY_SPACE.existing, size=40, replace=False)
        scalar = _loaded_tree(tuning, deletes)
        batched = _loaded_tree(tuning, deletes)

        base = np.concatenate(
            [
                deletes[:15],  # newest version is a tombstone
                rng.choice(_KEY_SPACE.missing, size=10, replace=True),  # absent
                rng.choice(_KEY_SPACE.existing, size=15, replace=True),
            ]
        )
        probe = np.repeat(base, dup_factor).astype(np.int64)
        rng.shuffle(probe)

        before_scalar = scalar.disk.snapshot()
        before_batched = batched.disk.snapshot()
        expected = [scalar.lookup_entry(int(key)) for key in probe]
        expected_found = np.array([found for found, _ in expected])
        expected_tombstone = np.array([tomb for _, tomb in expected])
        found, tombstone = batched.lookup_entries(probe)

        assert np.array_equal(found, expected_found)
        assert np.array_equal(tombstone, expected_tombstone)
        assert batched.disk.counters.delta(before_batched) == scalar.disk.counters.delta(
            before_scalar
        )
        # Three-state semantics on the hostile keys themselves.
        deleted_mask = np.isin(probe, deletes)
        assert found[deleted_mask].all() and tombstone[deleted_mask].all()
        missing_mask = np.isin(probe, _KEY_SPACE.missing)
        assert not found[missing_mask].any() and not tombstone[missing_mask].any()

    def test_single_key_repeated_batch_charges_per_probe(self):
        """A batch of one key repeated N times costs N scalar lookups."""
        scalar_plan, _, deleted = _mid_flight_plan()
        batched_plan, _, _ = _mid_flight_plan()
        probe = np.full(64, int(deleted[0]), dtype=np.int64)
        expected = np.array([scalar_plan.get(int(key)) for key in probe])
        answers = batched_plan.get_many(probe)
        assert np.array_equal(answers, expected)
        assert not answers.any()
        assert batched_plan.source.disk.counters == scalar_plan.source.disk.counters

    def test_all_absent_batch_matches_scalar(self):
        """Keys absent from both trees: only Bloom false positives pay I/O,
        and they pay identically on both paths."""
        scalar_plan, _, _ = _mid_flight_plan()
        batched_plan, _, _ = _mid_flight_plan()
        probe = _KEY_SPACE.missing[:80].astype(np.int64)
        expected = np.array([scalar_plan.get(int(key)) for key in probe])
        answers = batched_plan.get_many(probe)
        assert np.array_equal(answers, expected)
        assert not answers.any()
        assert batched_plan.source.disk.counters == scalar_plan.source.disk.counters

    def test_empty_batch_is_free(self):
        plan, _, _ = _mid_flight_plan()
        answers = plan.get_many(np.empty(0, dtype=np.int64))
        assert answers.size == 0
        assert plan.source.disk.counters.total == 0
