"""Property-based suite pinning the enlarged compaction-policy space.

The fluid LSM (per-level run bounds K/Z) and the short/long range-query
split enlarge the design space the model, simulator and tuners must agree
on.  This module pins the invariants that keep them consistent as the space
grows:

* **batch/scalar parity** — for every registered policy (and a spread of
  fluid ``(K, Z)`` bounds), ``cost_matrix`` equals the scalar
  ``cost_vector`` to 1e-9, at every long-range fraction;
* **positivity** — every cost component is positive and finite across the
  whole design box;
* **special-case recovery** — leveling, tiering and lazy leveling are exact
  (to 1e-12) corners of the fluid family (``K = Z = 1``,
  ``K = Z = T - 1``, ``K = T - 1, Z = 1``);
* **zero-weight guard** — a workload without range queries never evaluates
  the selectivity split into its cost, so a degenerate (infinite) range
  component cannot poison it via ``0 · inf`` (mirroring the robust dual's
  zero-weight fix of PR 1).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GridTuner, NominalTuner, RobustTuner
from repro.lsm import (
    ALL_POLICIES,
    FluidPolicy,
    LSMCostModel,
    LSMTuning,
    Policy,
    PolicySpec,
    SystemConfig,
)
from repro.workloads import Workload

_SYSTEM = SystemConfig()
_MODEL = LSMCostModel(_SYSTEM)

#: Fluid (K, Z) bounds exercised alongside the registered policies: the
#: three classical corners plus interior points (including bounds that get
#: clamped at small T).
_FLUID_BOUNDS: tuple[tuple[float, float], ...] = (
    (1.0, 1.0),
    (2.0, 1.0),
    (3.0, 2.0),
    (8.0, 4.0),
    (64.0, 1.0),
)

#: Per-level K_i vectors exercised alongside the scalar bounds: front-loaded
#: ladders, a single-level bump, and a vector that clamps at small T.
_FLUID_VECTORS: tuple[tuple[tuple[float, ...], float], ...] = (
    ((4.0, 2.0, 1.0), 1.0),
    ((2.0, 2.0, 1.0, 1.0), 2.0),
    ((1.0, 8.0, 1.0), 1.0),
    ((64.0, 16.0, 4.0, 1.0), 4.0),
)

#: Every policy spec the suite sweeps: one spec per registered policy (the
#: fluid entry carrying its default bounds) plus the parameterised fluid
#: variants above — scalar (K, Z) pairs and per-level K_i vectors.
_ALL_SPECS: tuple[PolicySpec, ...] = (
    tuple(PolicySpec(policy) for policy in ALL_POLICIES)
    + tuple(PolicySpec(Policy.FLUID, k_bound=k, z_bound=z) for k, z in _FLUID_BOUNDS)
    + tuple(
        PolicySpec(Policy.FLUID, k_bounds=vector, z_bound=z)
        for vector, z in _FLUID_VECTORS
    )
)


def _spec_ids(spec: PolicySpec) -> str:
    return spec.name


def _tuning_of(spec: PolicySpec, size_ratio: float, bits: float) -> LSMTuning:
    return LSMTuning(
        size_ratio=size_ratio,
        bits_per_entry=bits,
        policy=spec.policy,
        k_bound=spec.k_bound,
        z_bound=spec.z_bound,
        k_bounds=spec.k_bounds,
    )


#: Seeded random design grid shared by the non-hypothesis parity sweeps.
_RNG = np.random.default_rng(20260729)
_RATIOS = np.sort(
    np.concatenate([[2.0], _RNG.uniform(2.0, _SYSTEM.max_size_ratio, size=9)])
)
_BITS = np.sort(
    np.concatenate(
        [[0.0], _RNG.uniform(0.0, _SYSTEM.max_bits_per_entry - 0.01, size=7)]
    )
)


class TestBatchScalarParity:
    @pytest.mark.parametrize("spec", _ALL_SPECS, ids=_spec_ids)
    @pytest.mark.parametrize("nu", [0.0, 0.35, 1.0])
    def test_cost_matrix_matches_scalar_costs(self, spec, nu):
        """`cost_matrix` == scalar `cost_vector` to 1e-9 on a random grid."""
        matrix = _MODEL.cost_matrix(_RATIOS, _BITS, spec, long_range_fraction=nu)
        for i, ratio in enumerate(_RATIOS):
            for j, bits in enumerate(_BITS):
                scalar = _MODEL.cost_vector(
                    _tuning_of(spec, float(ratio), float(bits)), nu
                )
                np.testing.assert_allclose(
                    matrix[i, j], scalar, atol=1e-9, rtol=1e-9,
                    err_msg=f"{spec.name} at T={ratio}, h={bits}, nu={nu}",
                )

    @pytest.mark.parametrize("spec", _ALL_SPECS, ids=_spec_ids)
    def test_costs_positive_and_finite(self, spec):
        for nu in (0.0, 0.5, 1.0):
            matrix = _MODEL.cost_matrix(_RATIOS, _BITS, spec, long_range_fraction=nu)
            assert np.all(matrix > 0.0), spec.name
            assert np.all(np.isfinite(matrix)), spec.name


class TestFluidSpecialCases:
    """Leveling / tiering / lazy leveling are exact corners of fluid."""

    size_ratios = st.floats(min_value=2.0, max_value=100.0, allow_nan=False)
    bits = st.floats(
        min_value=0.0, max_value=_SYSTEM.max_bits_per_entry - 0.01, allow_nan=False
    )
    nus = st.sampled_from([0.0, 0.25, 1.0])

    @given(size_ratio=size_ratios, bits=bits, nu=nus)
    @settings(max_examples=60, deadline=None)
    def test_k1_z1_is_exactly_leveling(self, size_ratio, bits, nu):
        fluid = LSMTuning(size_ratio, bits, Policy.FLUID, k_bound=1, z_bound=1)
        leveled = LSMTuning(size_ratio, bits, Policy.LEVELING)
        np.testing.assert_allclose(
            _MODEL.cost_vector(fluid, nu), _MODEL.cost_vector(leveled, nu), atol=1e-12
        )

    @given(size_ratio=size_ratios, bits=bits, nu=nus)
    @settings(max_examples=60, deadline=None)
    def test_k_z_tminus1_is_exactly_tiering(self, size_ratio, bits, nu):
        bound = size_ratio - 1.0
        fluid = LSMTuning(
            size_ratio, bits, Policy.FLUID, k_bound=bound, z_bound=bound
        )
        tiered = LSMTuning(size_ratio, bits, Policy.TIERING)
        np.testing.assert_allclose(
            _MODEL.cost_vector(fluid, nu), _MODEL.cost_vector(tiered, nu), atol=1e-12
        )

    @given(size_ratio=size_ratios, bits=bits, nu=nus)
    @settings(max_examples=60, deadline=None)
    def test_default_fluid_is_exactly_lazy_leveling(self, size_ratio, bits, nu):
        fluid = LSMTuning(size_ratio, bits, Policy.FLUID)  # K = T-1, Z = 1
        lazy = LSMTuning(size_ratio, bits, Policy.LAZY_LEVELING)
        np.testing.assert_allclose(
            _MODEL.cost_vector(fluid, nu), _MODEL.cost_vector(lazy, nu), atol=1e-12
        )

    @given(size_ratio=size_ratios, bits=bits)
    @settings(max_examples=40, deadline=None)
    def test_fluid_interpolates_between_its_corners(self, size_ratio, bits):
        """Interior K sits between the leveling and tiering corners on every
        cost component (reads increase with K, writes decrease)."""
        interior = FluidPolicy(k_bound=min(3.0, size_ratio - 1.0), z_bound=1.0)
        levels = np.arange(1.0, 6.0)
        runs = interior.runs_per_level(size_ratio, levels, 6.0)
        assert np.all(runs >= 1.0 - 1e-12)
        assert np.all(runs <= size_ratio - 1.0 + 1e-12)
        merges = interior.merge_factor(size_ratio, levels, 6.0)
        assert np.all(merges <= (size_ratio - 1.0) / 2.0 + 1e-12)
        assert np.all(merges >= (size_ratio - 1.0) / size_ratio - 1e-12)


class TestRangeSplitProperties:
    @pytest.mark.parametrize("spec", _ALL_SPECS, ids=_spec_ids)
    def test_blend_is_monotone_between_the_regimes(self, spec):
        """Q(ν) is the convex blend of the short and long costs."""
        tuning = _tuning_of(spec, 8.0, 5.0)
        short = _MODEL.short_range_cost(tuning)
        long = _MODEL.long_range_cost(tuning)
        blended = _MODEL.range_read_cost(tuning, 0.4)
        assert blended == pytest.approx(0.6 * short + 0.4 * long, rel=1e-12)
        assert min(short, long) - 1e-12 <= blended <= max(short, long) + 1e-12

    def test_long_ranges_penalise_stacked_largest_levels(self):
        """The long-range worst case is what separates Z: tiering pays the
        multi-run largest level, lazy leveling and fluid (Z = 1) do not."""
        tiered = LSMTuning(8.0, 5.0, Policy.TIERING)
        lazy = LSMTuning(8.0, 5.0, Policy.LAZY_LEVELING)
        fluid = LSMTuning(8.0, 5.0, Policy.FLUID, k_bound=7, z_bound=1)
        assert _MODEL.long_range_cost(tiered) > _MODEL.long_range_cost(lazy)
        assert _MODEL.long_range_cost(fluid) == pytest.approx(
            _MODEL.long_range_cost(lazy), rel=1e-12
        )

    def test_zero_fraction_reproduces_the_pre_split_cost(self):
        for spec in _ALL_SPECS:
            tuning = _tuning_of(spec, 6.0, 4.0)
            assert _MODEL.range_read_cost(tuning) == pytest.approx(
                _MODEL.short_range_cost(tuning), rel=0
            )


class TestZeroWeightGuard:
    """A zero range weight must never evaluate — nor be poisoned by — the
    long-range selectivity split (the 0 · inf regression of the satellite)."""

    #: Workload with no range queries but a (vacuous) long-range fraction.
    _NO_RANGES = Workload(0.3, 0.3, 0.0, 0.4, long_range_fraction=0.9)

    def test_workload_cost_ignores_an_infinite_range_component(self, monkeypatch):
        tuning = LSMTuning(8.0, 5.0, Policy.FLUID, k_bound=4, z_bound=2)
        finite = _MODEL.workload_cost(self._NO_RANGES, tuning)
        monkeypatch.setattr(
            LSMCostModel, "long_range_cost", lambda self, t: float("inf")
        )
        monkeypatch.setattr(
            LSMCostModel, "short_range_cost", lambda self, t: float("inf")
        )
        guarded = _MODEL.workload_cost(self._NO_RANGES, tuning)
        assert np.isfinite(guarded)
        assert guarded == pytest.approx(finite, rel=1e-12)

    def test_cost_matrix_objectives_ignore_infinite_range_columns(self):
        costs = _MODEL.cost_matrix([4.0, 8.0], [3.0, 6.0], Policy.FLUID, 0.5)
        poisoned = costs.copy()
        poisoned[..., 2] = np.inf
        tuner = NominalTuner(system=_SYSTEM)
        objective = tuner._objective_from_costs(poisoned, self._NO_RANGES)
        assert np.all(np.isfinite(objective))
        np.testing.assert_allclose(
            objective, tuner._objective_from_costs(costs, self._NO_RANGES)
        )

    def test_robust_batch_objective_ignores_infinite_range_columns(self):
        costs = _MODEL.cost_matrix([4.0, 8.0], [3.0, 6.0], Policy.TIERING, 1.0)
        poisoned = costs.copy()
        poisoned[..., 2] = np.inf
        for rho in (0.0, 1.0):
            tuner = RobustTuner(rho=rho, system=_SYSTEM)
            objective = tuner._objective_from_costs(poisoned, self._NO_RANGES)
            assert np.all(np.isfinite(objective)), f"rho={rho}"

    def test_grid_tuner_objective_ignores_infinite_range_columns(self):
        costs = _MODEL.cost_matrix([4.0, 8.0], [3.0, 6.0], Policy.LEVELING, 1.0)
        poisoned = costs.copy()
        poisoned[..., 2] = np.inf
        tuner = GridTuner(system=_SYSTEM, bits_grid_points=3)
        values = tuner._objective_grid(self._NO_RANGES, poisoned)
        assert np.all(np.isfinite(values))

    def test_tuning_a_rangeless_long_fraction_workload_succeeds(self):
        """End to end: the tuner solves a q = 0 workload that still carries a
        long-range fraction, without the split ever firing."""
        result = NominalTuner(
            system=_SYSTEM,
            policies=(Policy.FLUID,),
            ratio_candidates=np.arange(2.0, 12.0),
            polish=False,
        ).tune(self._NO_RANGES)
        assert np.isfinite(result.objective)


class TestTunerConsistencyAcrossPolicies:
    """The fluid family is a superset: its tuned optimum can never be worse
    than any policy it contains, for any workload (model-level dominance)."""

    workloads = [
        Workload(0.25, 0.25, 0.25, 0.25),
        Workload(0.1, 0.2, 0.3, 0.4, long_range_fraction=0.5),
        Workload(0.05, 0.15, 0.05, 0.75, long_range_fraction=0.2),
    ]

    @pytest.mark.parametrize("index", range(len(workloads)))
    def test_fluid_dominates_its_corners(self, index):
        workload = self.workloads[index]
        cands = np.arange(2.0, 21.0)
        costs = {}
        for policy in (Policy.LEVELING, Policy.TIERING, Policy.LAZY_LEVELING,
                       Policy.FLUID):
            costs[policy] = NominalTuner(
                system=_SYSTEM,
                policies=(policy,),
                ratio_candidates=cands,
                polish=False,
            ).tune(workload).objective
        for corner in (Policy.LEVELING, Policy.TIERING, Policy.LAZY_LEVELING):
            assert costs[Policy.FLUID] <= costs[corner] + 1e-9

    @pytest.mark.parametrize("index", range(len(workloads)))
    def test_vector_search_dominates_the_uniform_sweep(self, index):
        """The K_i vector family contains every uniform (K, Z) design, so
        the vector-search optimum can never lose to the scalar sweep."""
        workload = self.workloads[index]
        cands = np.arange(2.0, 13.0)
        uniform = NominalTuner(
            system=_SYSTEM,
            policies=(Policy.FLUID,),
            ratio_candidates=cands,
            polish=False,
        ).tune(workload).objective
        vector = NominalTuner(
            system=_SYSTEM,
            policies=(Policy.FLUID,),
            ratio_candidates=cands,
            polish=False,
            k_vector_search=True,
        ).tune(workload).objective
        assert vector <= uniform + 1e-12


#: Scalar fluid (K, Z) corner pairs whose uniform-vector twins must behave
#: identically: the classical corners plus interior and clamping points.
_CORNER_PAIRS: tuple[tuple[float, float], ...] = (
    (1.0, 1.0),  # leveling
    (2.0, 1.0),
    (3.0, 2.0),
    (7.0, 1.0),  # lazy leveling at T = 8
    (7.0, 7.0),  # tiering at T = 8
    (64.0, 4.0),  # clamps everywhere on the grid
)


class TestUniformVectorCornerRecovery:
    """Exact-corner acceptance: uniform K_i vectors reproduce every scalar
    fluid tuning — and through them leveling / tiering / lazy leveling — to
    1e-12 in ``cost_matrix`` and *bit-identically* in the simulator
    (bulk-load bytes and Bloom filter bits)."""

    @pytest.mark.parametrize("k,z", _CORNER_PAIRS)
    @pytest.mark.parametrize("nu", [0.0, 0.35])
    def test_uniform_vector_cost_matrix_matches_scalar_to_1e12(self, k, z, nu):
        scalar = PolicySpec(Policy.FLUID, k_bound=k, z_bound=z)
        vector = PolicySpec(Policy.FLUID, k_bounds=(k,) * 6, z_bound=z)
        np.testing.assert_allclose(
            _MODEL.cost_matrix(_RATIOS, _BITS, vector, long_range_fraction=nu),
            _MODEL.cost_matrix(_RATIOS, _BITS, scalar, long_range_fraction=nu),
            rtol=0.0,
            atol=1e-12,
        )

    @pytest.mark.parametrize(
        "vector_tuning,classical",
        [
            (
                LSMTuning(8.0, 5.0, Policy.FLUID, k_bounds=(1.0,) * 5, z_bound=1.0),
                LSMTuning(8.0, 5.0, Policy.LEVELING),
            ),
            (
                LSMTuning(8.0, 5.0, Policy.FLUID, k_bounds=(7.0,) * 5, z_bound=7.0),
                LSMTuning(8.0, 5.0, Policy.TIERING),
            ),
            (
                LSMTuning(8.0, 5.0, Policy.FLUID, k_bounds=(7.0,) * 5, z_bound=1.0),
                LSMTuning(8.0, 5.0, Policy.LAZY_LEVELING),
            ),
        ],
        ids=["leveling", "tiering", "lazy-leveling"],
    )
    @pytest.mark.parametrize("nu", [0.0, 1.0])
    def test_uniform_vectors_recover_the_classical_policies(
        self, vector_tuning, classical, nu
    ):
        np.testing.assert_allclose(
            _MODEL.cost_vector(vector_tuning, nu),
            _MODEL.cost_vector(classical, nu),
            rtol=0.0,
            atol=1e-12,
        )

    @pytest.mark.parametrize("k,z", _CORNER_PAIRS)
    def test_simulator_bulk_load_is_bit_identical(self, k, z):
        """Same seed, scalar vs uniform-vector tuning: identical run keys,
        identical page counts, identical Bloom filter bits."""
        from repro.lsm import simulator_system
        from repro.storage import LSMTree
        from repro.workloads import KeySpace

        system = simulator_system(num_entries=2_000)
        keys = KeySpace.build(system.num_entries, seed=11).existing

        def load(tuning: LSMTuning) -> LSMTree:
            tree = LSMTree(tuning, system, seed=5)
            tree.bulk_load(keys)
            return tree

        scalar = load(LSMTuning(6.0, 6.0, Policy.FLUID, k_bound=k, z_bound=z))
        vector = load(
            LSMTuning(6.0, 6.0, Policy.FLUID, k_bounds=(k,) * 6, z_bound=z)
        )
        assert len(scalar.levels) == len(vector.levels)
        for got, want in zip(vector.levels, scalar.levels):
            assert len(got) == len(want)
            for got_run, want_run in zip(got, want):
                assert np.array_equal(got_run.keys, want_run.keys)
                assert got_run.num_pages == want_run.num_pages
                assert got_run.bits_per_entry == want_run.bits_per_entry
                assert np.array_equal(
                    got_run.bloom_filter._bits, want_run.bloom_filter._bits
                ), "Bloom assignments must be byte-identical"

    @pytest.mark.parametrize("k,z", [(1.0, 1.0), (3.0, 2.0), (7.0, 7.0)])
    def test_simulator_write_stream_is_bit_identical(self, k, z):
        """Beyond the load: an identical write/read stream drives the scalar
        and uniform-vector trees through identical compactions and I/O."""
        from repro.lsm import simulator_system
        from repro.storage import LSMTree
        from repro.workloads import KeySpace

        system = simulator_system(num_entries=2_000)
        keys = KeySpace.build(system.num_entries, seed=11).existing

        def run(tuning: LSMTuning):
            tree = LSMTree(tuning, system, seed=5)
            tree.bulk_load(keys)
            tree.disk.reset()
            rng = np.random.default_rng(3)
            for key in rng.integers(0, 2 * system.num_entries, size=2_000):
                tree.put(int(key))
            counters = tree.disk.snapshot()
            shape = [
                (np.asarray(r.keys).tobytes(), r.num_pages)
                for runs in tree.levels
                for r in runs
            ]
            return counters, shape

        scalar = run(LSMTuning(6.0, 6.0, Policy.FLUID, k_bound=k, z_bound=z))
        vector = run(
            LSMTuning(6.0, 6.0, Policy.FLUID, k_bounds=(k,) * 6, z_bound=z)
        )
        assert scalar == vector


class TestNonUniformVectorBehaviour:
    """Non-uniform vectors genuinely change per-level behaviour — this is
    what the refactor buys, so pin it from both sides."""

    def test_front_loaded_ladder_sits_between_its_uniform_envelopes(self):
        """A ladder's write cost lies between the uniform vectors of its
        smallest and largest bound; its read costs likewise."""
        ladder = LSMTuning(8.0, 5.0, Policy.FLUID, k_bounds=(4.0, 2.0, 1.0))
        low = LSMTuning(8.0, 5.0, Policy.FLUID, k_bound=1.0)
        high = LSMTuning(8.0, 5.0, Policy.FLUID, k_bound=4.0)
        for component in range(4):
            lo = min(
                _MODEL.cost_vector(low, 0.5)[component],
                _MODEL.cost_vector(high, 0.5)[component],
            )
            hi = max(
                _MODEL.cost_vector(low, 0.5)[component],
                _MODEL.cost_vector(high, 0.5)[component],
            )
            value = _MODEL.cost_vector(ladder, 0.5)[component]
            assert lo - 1e-12 <= value <= hi + 1e-12

    def test_simulator_honours_per_level_triggers(self):
        from repro.lsm import simulator_system
        from repro.storage import LSMTree
        from repro.workloads import KeySpace

        system = simulator_system(num_entries=3_000)
        keys = KeySpace.build(system.num_entries, seed=11).existing
        tuning = LSMTuning(
            5.0, 6.0, Policy.FLUID, k_bounds=(4.0, 2.0, 1.0), z_bound=1.0
        )
        tree = LSMTree(tuning, system, seed=5)
        tree.bulk_load(keys)
        rng = np.random.default_rng(3)
        for key in rng.integers(0, 2 * system.num_entries, size=4_000):
            tree.put(int(key))
        stats = tree.stats()
        caps = [
            tree.strategy.max_resident_runs(
                tree.size_ratio, level, stats.num_levels
            )
            for level in range(1, stats.num_levels + 1)
        ]
        assert all(
            runs <= cap for runs, cap in zip(stats.runs_per_level, caps)
        ), (stats.runs_per_level, caps)
        # The per-level caps genuinely differ (this is not a uniform tree).
        assert len(set(caps[:-1])) > 1

    def test_bulk_load_splits_runs_per_level(self):
        from repro.lsm import simulator_system
        from repro.storage import LSMTree
        from repro.workloads import KeySpace

        system = simulator_system(num_entries=3_000)
        keys = KeySpace.build(system.num_entries, seed=11).existing
        tuning = LSMTuning(
            4.0, 6.0, Policy.FLUID, k_bounds=(3.0, 1.0), z_bound=1.0
        )
        tree = LSMTree(tuning, system, seed=5)
        tree.bulk_load(keys)
        stats = tree.stats()
        last = stats.num_levels
        for level, runs in enumerate(stats.runs_per_level, start=1):
            cap = tree.strategy.max_resident_runs(tree.size_ratio, level, last)
            assert runs <= cap, (level, runs, cap)
        # Level 2 onwards is leveled (bound 1): a single run each.
        assert all(runs <= 1 for runs in stats.runs_per_level[1:])
