"""Tests for the evaluation metrics of Section 7.1."""

import numpy as np
import pytest

from repro.analysis import (
    average_delta_throughput,
    delta_throughput,
    throughput,
    throughput_range,
    throughputs,
    win_rate,
)
from repro.lsm import LSMCostModel, LSMTuning, Policy


@pytest.fixture(scope="module")
def model():
    from repro.lsm import SystemConfig

    return LSMCostModel(SystemConfig())


@pytest.fixture(scope="module")
def read_tuning():
    return LSMTuning(30.0, 10.0, Policy.LEVELING)


@pytest.fixture(scope="module")
def write_tuning():
    return LSMTuning(4.0, 2.0, Policy.TIERING)


class TestThroughput:
    def test_is_reciprocal_of_cost(self, model, read_tuning, w11):
        assert throughput(model, w11, read_tuning) == pytest.approx(
            1.0 / model.workload_cost(w11, read_tuning)
        )

    def test_throughputs_vectorises(self, model, read_tuning, bench_set):
        workloads = list(bench_set)[:20]
        values = throughputs(model, workloads, read_tuning)
        assert values.shape == (20,)
        assert np.all(values > 0)


class TestDeltaThroughput:
    def test_zero_for_identical_tunings(self, model, read_tuning, w11):
        assert delta_throughput(model, w11, read_tuning, read_tuning) == pytest.approx(0.0)

    def test_sign_convention(self, model, read_tuning, write_tuning, w11):
        """Positive when the candidate beats the baseline, and antisymmetric in
        the normalised sense of the paper's definition."""
        forward = delta_throughput(model, w11, read_tuning, write_tuning)
        backward = delta_throughput(model, w11, write_tuning, read_tuning)
        assert (forward > 0) != (backward > 0)

    def test_write_heavy_workload_favours_write_tuning(self, model, read_tuning, write_tuning):
        from repro.workloads import expected_workload

        write_heavy = expected_workload(4).workload
        assert delta_throughput(model, write_heavy, read_tuning, write_tuning) > 0

    def test_average_delta(self, model, read_tuning, write_tuning, bench_set):
        workloads = list(bench_set)[:30]
        mean = average_delta_throughput(model, workloads, read_tuning, write_tuning)
        individual = [
            delta_throughput(model, w, read_tuning, write_tuning) for w in workloads
        ]
        assert mean == pytest.approx(np.mean(individual))

    def test_average_delta_rejects_empty(self, model, read_tuning, write_tuning):
        with pytest.raises(ValueError):
            average_delta_throughput(model, [], read_tuning, write_tuning)


class TestThroughputRange:
    def test_non_negative(self, model, read_tuning, bench_set):
        workloads = list(bench_set)[:30]
        assert throughput_range(model, workloads, read_tuning) >= 0.0

    def test_zero_for_single_workload(self, model, read_tuning, w11):
        assert throughput_range(model, [w11], read_tuning) == pytest.approx(0.0)

    def test_matches_max_minus_min(self, model, read_tuning, bench_set):
        workloads = list(bench_set)[:30]
        values = throughputs(model, workloads, read_tuning)
        assert throughput_range(model, workloads, read_tuning) == pytest.approx(
            values.max() - values.min()
        )

    def test_rejects_empty(self, model, read_tuning):
        with pytest.raises(ValueError):
            throughput_range(model, [], read_tuning)


class TestWinRate:
    def test_bounds(self, model, read_tuning, write_tuning, bench_set):
        workloads = list(bench_set)[:30]
        rate = win_rate(model, workloads, read_tuning, write_tuning)
        assert 0.0 <= rate <= 1.0

    def test_complementary_rates(self, model, read_tuning, write_tuning, bench_set):
        workloads = list(bench_set)[:30]
        forward = win_rate(model, workloads, read_tuning, write_tuning)
        backward = win_rate(model, workloads, write_tuning, read_tuning)
        assert forward + backward <= 1.0 + 1e-9

    def test_identical_tunings_never_win(self, model, read_tuning, bench_set):
        workloads = list(bench_set)[:10]
        assert win_rate(model, workloads, read_tuning, read_tuning) == 0.0

    def test_rejects_empty(self, model, read_tuning, write_tuning):
        with pytest.raises(ValueError):
            win_rate(model, [], read_tuning, write_tuning)
