"""Tests for the model-based evaluation drivers (Figures 3–7)."""

import numpy as np
import pytest

from repro.analysis import (
    TuningCatalog,
    figure3_kl_histograms,
    figure4_delta_by_category,
    figure5_rho_impact,
    figure6_throughput_histograms,
    figure6_throughput_range,
    figure7_contour,
    section84_win_rate,
    tuning_table,
)
from repro.workloads import UncertaintyBenchmark, WorkloadCategory, expected_workload


@pytest.fixture(scope="module")
def catalog():
    return TuningCatalog(starts_per_policy=2)


@pytest.fixture(scope="module")
def small_benchmark():
    return UncertaintyBenchmark(size=200, seed=17)


class TestTuningCatalog:
    def test_nominal_is_cached(self, catalog):
        expected = expected_workload(11)
        first = catalog.nominal(expected)
        second = catalog.nominal(expected)
        assert first is second

    def test_robust_is_cached_per_rho(self, catalog):
        expected = expected_workload(11)
        first = catalog.robust(expected, 1.0)
        again = catalog.robust(expected, 1.0)
        other = catalog.robust(expected, 0.5)
        assert first is again
        assert other is not first

    def test_robust_records_rho(self, catalog):
        assert catalog.robust(expected_workload(7), 0.5).rho == 0.5


class TestFigure3:
    def test_histogram_structure(self, small_benchmark):
        result = figure3_kl_histograms(small_benchmark, reference_indices=(0, 1), bins=20)
        assert set(result) == {"w0", "w1"}
        assert result["w0"]["density"].shape == (20,)
        assert result["w0"]["bin_edges"].shape == (21,)

    def test_uniform_reference_concentrates_near_zero(self, small_benchmark):
        """Figure 3's key observation: divergences w.r.t. w0 are small, w.r.t.
        the skewed w1 they spread out to large values."""
        result = figure3_kl_histograms(small_benchmark, reference_indices=(0, 1))
        assert result["w0"]["mean"][0] < result["w1"]["mean"][0]


class TestFigure4:
    def test_shape_and_keys(self, catalog, small_benchmark):
        result = figure4_delta_by_category(
            catalog,
            small_benchmark,
            rhos=[1.0],
            categories=[WorkloadCategory.UNIFORM, WorkloadCategory.TRIMODAL],
        )
        assert set(result) == {"uniform", "trimodal"}
        assert set(result["trimodal"]) == {1.0}

    def test_skewed_categories_benefit_from_robustness(self, catalog, small_benchmark):
        """The paper's headline: robust tunings help the non-uniform categories."""
        result = figure4_delta_by_category(
            catalog,
            small_benchmark,
            rhos=[1.0],
            categories=[WorkloadCategory.UNIFORM, WorkloadCategory.TRIMODAL],
        )
        assert result["trimodal"][1.0] > result["uniform"][1.0]
        assert result["trimodal"][1.0] > 0.2


class TestFigure5:
    def test_structure(self, catalog, small_benchmark):
        result = figure5_rho_impact(
            catalog, small_benchmark, expected_index=11, rhos=(0.0, 1.0)
        )
        assert set(result) == {0.0, 1.0}
        assert result[1.0]["kl"].shape == (len(small_benchmark),)
        assert result[1.0]["delta"].shape == (len(small_benchmark),)

    def test_rho_zero_deltas_are_small(self, catalog, small_benchmark):
        """At rho = 0 the robust tuning matches the nominal, so deltas hug zero."""
        result = figure5_rho_impact(
            catalog, small_benchmark, expected_index=11, rhos=(0.0,)
        )
        assert np.abs(np.median(result[0.0]["delta"])) < 0.25

    def test_high_divergence_workloads_gain_more(self, catalog, small_benchmark):
        """Figure 5: the robust advantage grows with the observed divergence."""
        result = figure5_rho_impact(
            catalog, small_benchmark, expected_index=11, rhos=(1.0,)
        )
        kl = result[1.0]["kl"]
        delta = result[1.0]["delta"]
        far = delta[kl > np.median(kl)]
        near = delta[kl <= np.median(kl)]
        assert far.mean() > near.mean()


class TestFigure6:
    def test_histogram_keys(self, catalog, small_benchmark):
        result = figure6_throughput_histograms(
            catalog, small_benchmark, expected_index=11, rhos=(1.0,)
        )
        assert "nominal" in result
        assert "robust_rho_1" in result

    def test_robust_narrows_throughput_range(self, catalog, small_benchmark):
        """Figure 6b: the robust throughput range shrinks as rho grows."""
        result = figure6_throughput_range(
            catalog,
            small_benchmark,
            rhos=[0.25, 2.0],
            expected_indices=[7, 11],
        )
        assert result["robust"][2.0] <= result["robust"][0.25] + 1e-9
        assert result["robust"][2.0] <= result["nominal"][2.0]


class TestFigure7:
    def test_grid_shape(self, catalog, small_benchmark):
        result = figure7_contour(
            catalog, small_benchmark, expected_index=11, rhos=[0.5, 1.0], kl_bins=4
        )
        assert result["delta"].shape == (2, 4)
        assert result["rho_values"].shape == (2,)
        assert result["kl_edges"].shape == (5,)

    def test_moderate_rho_high_divergence_cell_is_positive(self, catalog, small_benchmark):
        result = figure7_contour(
            catalog, small_benchmark, expected_index=11, rhos=[1.0], kl_bins=4
        )
        row = result["delta"][0]
        finite = row[~np.isnan(row)]
        assert finite[-1] > 0  # the highest-divergence bin favours robustness


class TestTableAndWinRate:
    def test_tuning_table_covers_all_workloads(self, catalog):
        rows = tuning_table(catalog, rho=1.0)
        assert len(rows) == 15
        assert {row["workload"] for row in rows} == {f"w{i}" for i in range(15)}

    def test_tuning_table_reports_costs(self, catalog):
        rows = tuning_table(catalog, rho=1.0)
        for row in rows:
            assert row["robust_worst_case_cost"] >= row["nominal_cost"] - 1e-6

    def test_win_rate_exceeds_half_for_skewed_workloads(self, catalog, small_benchmark):
        """§8.4 (scaled down): the robust tuning wins the majority of
        comparisons for non-uniform expected workloads."""
        result = section84_win_rate(
            catalog,
            small_benchmark,
            rhos=[1.0],
            expected_indices=[7, 11],
        )
        assert result["win_rate"] > 0.5
        assert result["comparisons"] == 2 * len(small_benchmark)


class TestCostLandscape:
    def test_landscape_shape_and_positivity(self):
        from repro.analysis import cost_landscape
        from repro.lsm import Policy

        workload = expected_workload(0).workload
        surface = cost_landscape(workload, Policy.LAZY_LEVELING, bits_grid_points=7)
        assert surface["cost"].shape == (
            surface["size_ratios"].size,
            surface["bits_per_entry"].size,
        )
        assert np.all(surface["cost"] > 0)

    def test_landscape_minimum_matches_grid_tuner(self):
        from repro.analysis import cost_landscape
        from repro.core import GridTuner
        from repro.lsm import Policy

        workload = expected_workload(11).workload
        surface = cost_landscape(workload, Policy.LEVELING, bits_grid_points=33)
        grid = GridTuner(bits_grid_points=33, policies=(Policy.LEVELING,)).tune(workload)
        assert float(surface["cost"].min()) == pytest.approx(grid.objective, rel=1e-9)


class TestPolicyTable:
    def test_rows_cover_every_policy(self, catalog):
        from repro.analysis import policy_table

        rows = policy_table(catalog, expected_indices=(4, 11))
        assert len(rows) == 2
        for row in rows:
            for key in (
                "leveling_cost",
                "tiering_cost",
                "lazy-leveling_cost",
                "best_policy",
            ):
                assert key in row
            costs = {
                p: row[f"{p}_cost"]
                for p in ("leveling", "tiering", "lazy-leveling")
            }
            assert row["best_policy"] == min(costs, key=costs.get)


class TestKVectorFrontier:
    def test_rows_compare_uniform_and_vector_optima(self):
        from repro.analysis import kvector_frontier
        from repro.workloads import Workload

        rows = kvector_frontier(
            [
                ("mixed", Workload(0.05, 0.25, 0.05, 0.65, long_range_fraction=0.3)),
                ("reads", Workload(0.4, 0.4, 0.1, 0.1)),
            ],
            ratio_candidates=np.arange(2.0, 9.0),
        )
        assert [row["workload"] for row in rows] == ["mixed", "reads"]
        for row in rows:
            # The vector family contains every uniform design.
            assert 0.0 <= row["vector_advantage"] < 1.0
            assert row["vector_cost"] <= row["uniform_cost"]
            if row["vector_k_bounds"] is not None:
                assert all(b >= 1.0 for b in row["vector_k_bounds"])
